/// Routed-vs-direct SSSP: the first irregular app on the mesh. Sweeps the
/// virtual process count and compares direct WPs against 2-D and 3-D mesh
/// routing on the same graph, with the priority path on for every scheme
/// (under-threshold improvements ride insert_priority — over the mesh,
/// the RoutedHeader priority bit keeps them ahead of bulk at every hop).
///
/// Verification is the point, not the timing: every row must deliver
/// exactly once (tram inserted == delivered under quiescence), match
/// Dijkstra, and converge to distances bit-for-bit identical to the
/// direct-scheme run (FNV hash over the distance array). CI's bench-smoke
/// job fails on any `"verified": false` row. With --fault-drop/--fault-dup/
/// --fault-delay the same sweep runs over a lossy fabric through the
/// reliability layer (src/fault/), and the verification must still hold.
///
/// Runs non-SMP (one worker per process) so the process count is the only
/// variable. Emits BENCH_routed_sssp.json (override with --json).

#include <cstdio>
#include <string>

#include "route/virtual_mesh.hpp"
#include "sssp_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  bench::FaultOptions fault;
  std::string procs_arg;
  opt.extra = [&](util::Cli& cli) {
    cli.add_string("procs", &procs_arg,
                   "comma-separated virtual process counts to sweep");
    fault.register_cli(cli);
  };
  if (!opt.parse(argc, argv,
                 "fig_routed_sssp: direct vs 2-D vs 3-D mesh routing"))
    return 0;
  if (opt.json.empty()) opt.json = "BENCH_routed_sssp.json";

  graph::GeneratorParams gp;
  gp.num_vertices = opt.quick ? 20'000 : 50'000;
  gp.avg_degree = 8.0;
  gp.seed = 3;
  const graph::Csr g = graph::build_uniform(gp);

  std::vector<int> proc_counts = opt.quick ? std::vector<int>{8, 16}
                                           : std::vector<int>{8, 16, 64};
  if (!bench::resolve_proc_counts(procs_arg, proc_counts)) return 1;

  const std::vector<core::Scheme> schemes = {
      core::Scheme::WPs, core::Scheme::Mesh2D, core::Scheme::Mesh3D};

  util::Table table("Routed SSSP: " + std::to_string(gp.num_vertices) +
                    " vertices, priority path on, non-SMP" +
                    (fault.any() ? ", faulty fabric" : ""));
  table.set_header({"procs", "scheme", "mesh", "bufs", "wasted %", "msgs",
                    "fwd msgs", "pri msgs", "rtx", "wall s", "ok"});

  bench::JsonReporter json("routed_sssp");
  bench::ShapeChecker shapes;
  bench::RoutedVerifySweep sweep;

  // Priority-message totals per scheme at the largest scale (the one
  // SSSP-specific shape check the shared harness does not cover).
  std::vector<std::uint64_t> last_priority_msgs(schemes.size(), 0);

  rt::RuntimeConfig rt_cfg = bench::bench_runtime_nonsmp();
  rt_cfg.fault = fault.to_config();

  for (std::size_t pi = 0; pi < proc_counts.size(); ++pi) {
    const int procs = proc_counts[pi];
    const util::Topology topo(procs, 1, 1);
    sweep.start_scale();
    // The direct scheme's distance hash anchors the bit-for-bit
    // cross-check for the routed rows at this scale.
    std::uint64_t direct_hash = 0;
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      const core::Scheme scheme = schemes[si];
      core::TramConfig tram;
      tram.scheme = scheme;
      tram.buffer_items = 256;
      tram.priority_buffer_items = 16;
      std::string mesh = "-";
      if (core::is_routed(scheme)) {
        mesh = route::VirtualMesh::auto_factor(procs,
                                               core::mesh_ndims(scheme))
                   .to_string();
      }
      trace::phase(std::string(core::to_string(scheme)) + " p=" +
                   std::to_string(procs));
      const auto point =
          bench::run_sssp(g, topo, tram, static_cast<int>(opt.trials),
                          rt_cfg, /*prioritize_urgent=*/true);
      if (scheme == core::Scheme::WPs) direct_hash = point.dist_hash;

      // A row is verified only when delivery was exactly-once, the
      // distances match Dijkstra, AND they equal the direct run's
      // bit-for-bit.
      const bool verified = point.verified && point.exactly_once &&
                            point.dist_hash == direct_hash;

      const auto c = bench::routed_counters_from(
          point, point.items ? point.seconds * 1e9 /
                                   static_cast<double>(point.items)
                             : 0.0);
      sweep.add(c, verified);
      if (pi + 1 == proc_counts.size()) {
        last_priority_msgs[si] = point.priority_messages;
      }

      table.add_row(
          {util::Table::fmt_int(procs), core::to_string(scheme), mesh,
           util::Table::fmt_int(
               static_cast<long long>(point.max_reserved_buffers)),
           util::Table::fmt(point.wasted_pct, 2),
           util::Table::fmt_int(
               static_cast<long long>(point.tram_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.forwarded_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.priority_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.faults.retransmits)),
           util::Table::fmt(point.seconds, 4), verified ? "yes" : "NO"});

      json.add(bench::make_routed_row(core::to_string(scheme),
                                      topo.to_string(), mesh, c, verified));
    }
  }
  bench::emit(table, opt);
  json.write(opt.json);

  sweep.standard_checks(
      shapes,
      "every configuration verified: exactly-once, Dijkstra match, and "
      "distances bit-for-bit equal to direct");
  shapes.expect(last_priority_msgs[1] > 0 && last_priority_msgs[2] > 0,
                "under-threshold updates rode the routed priority path");
  shapes.report();
  return 0;
}
