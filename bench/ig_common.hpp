#pragma once
/// Shared runner for the index-gather figure benches (Figs 12-13).

#include "apps/index_gather.hpp"
#include "bench_common.hpp"
#include "runtime/machine.hpp"

namespace tram::bench {

struct IgPoint {
  double seconds = 0.0;
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  bool verified = true;
};

inline IgPoint run_ig(const util::Topology& topo,
                      const core::TramConfig& tram_cfg,
                      std::uint64_t requests_per_worker, int trials) {
  rt::Machine machine(topo, bench_runtime());
  apps::IgParams params;
  params.requests_per_worker = requests_per_worker;
  params.table_entries_per_worker = 1 << 12;
  params.tram = tram_cfg;
  apps::IndexGatherApp app(machine, params);

  IgPoint point;
  util::RunningStats lat_stats, p99_stats;
  point.seconds = median_seconds(trials, [&] {
    const auto res = app.run();
    lat_stats.add(res.latency.mean_ns() * 1e-3);
    p99_stats.add(res.latency.percentile_ns(0.99) * 1e-3);
    point.verified = point.verified && res.verified;
    if (!res.verified) {
      std::fprintf(stderr,
                   "[ig verify] scheme=%s topo=%s responses=%llu "
                   "expected=%llu wrong=%llu req(ins=%llu del=%llu) "
                   "resp(ins=%llu del=%llu)\n",
                   core::to_string(tram_cfg.scheme),
                   topo.to_string().c_str(),
                   static_cast<unsigned long long>(res.responses),
                   static_cast<unsigned long long>(
                       params.requests_per_worker *
                       static_cast<std::uint64_t>(topo.workers())),
                   static_cast<unsigned long long>(res.wrong_values),
                   static_cast<unsigned long long>(res.req_stats.items_inserted),
                   static_cast<unsigned long long>(res.req_stats.items_delivered),
                   static_cast<unsigned long long>(res.resp_stats.items_inserted),
                   static_cast<unsigned long long>(res.resp_stats.items_delivered));
      std::fprintf(stderr,
                   "[ig verify] req shipped items=%.0f msgs=%llu "
                   "sent=%llu handled=%llu in_flight=%llu pending=%llu\n",
                   res.req_stats.occupancy_at_ship.sum(),
                   static_cast<unsigned long long>(
                       res.req_stats.msgs_shipped),
                   static_cast<unsigned long long>(machine.total_sent()),
                   static_cast<unsigned long long>(machine.total_handled()),
                   static_cast<unsigned long long>(
                       machine.fabric().in_flight()),
                   static_cast<unsigned long long>(machine.total_pending()));
    }
    return res.run.wall_s;
  });
  point.mean_latency_us = lat_stats.mean();
  point.p99_latency_us = p99_stats.mean();
  return point;
}

}  // namespace tram::bench
