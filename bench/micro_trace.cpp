/// Trace-record microbenchmarks: the cost of one event on the hot path.
///
/// Three rows bracket the tracing layer's overhead claim:
///   BM_TraceRecordEnabled     — recording on: timestamp + 32-byte ring store
///   BM_TraceRecordDisabled    — recording off: one predicted branch
///   BM_TraceRecordCompiledOut — hand-inlined copy of the -DTRAM_TRACE=OFF
///                               stub expansion (empty body), the floor the
///                               disabled row must sit on
/// The disabled row is the one production pays for in untraced runs; it
/// should be indistinguishable from the compiled-out row. The enabled row
/// prices a span (maybe_now + complete), the unit the runtime/route/fault
/// layers record per batch — not per item.

#include <benchmark/benchmark.h>

#include "trace/trace.hpp"

namespace {

using namespace tram;

void BM_TraceRecordEnabled(benchmark::State& state) {
  trace::clear();
  trace::set_ring_capacity(4096);
  trace::set_enabled(true);
  trace::set_thread_name("bench");
  std::uint64_t n = 0;
  for (auto _ : state) {
    const std::uint64_t t0 = trace::maybe_now();
    benchmark::DoNotOptimize(n);
    trace::complete(trace::Cat::kRuntime, trace::kWorkerBusy, t0, ++n);
  }
  trace::set_enabled(false);
  trace::clear();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceRecordEnabled);

void BM_TraceRecordDisabled(benchmark::State& state) {
  trace::set_enabled(false);
  std::uint64_t n = 0;
  for (auto _ : state) {
    const std::uint64_t t0 = trace::maybe_now();
    benchmark::DoNotOptimize(n);
    trace::complete(trace::Cat::kRuntime, trace::kWorkerBusy, t0, ++n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceRecordDisabled);

// The -DTRAM_TRACE=OFF expansion, spelled out: maybe_now() is constexpr 0
// and complete() is an empty inline. Kept as a separate row (rather than a
// separate build) so one binary carries the whole comparison.
inline constexpr std::uint64_t stub_maybe_now() noexcept { return 0; }
inline void stub_complete(trace::Cat, std::uint16_t, std::uint64_t,
                          std::uint64_t, std::uint32_t = 0) noexcept {}

void BM_TraceRecordCompiledOut(benchmark::State& state) {
  std::uint64_t n = 0;
  for (auto _ : state) {
    const std::uint64_t t0 = stub_maybe_now();
    benchmark::DoNotOptimize(n);
    stub_complete(trace::Cat::kRuntime, trace::kWorkerBusy, t0, ++n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceRecordCompiledOut);

void BM_TraceInstantEnabled(benchmark::State& state) {
  trace::clear();
  trace::set_ring_capacity(4096);
  trace::set_enabled(true);
  trace::set_thread_name("bench");
  std::uint64_t n = 0;
  for (auto _ : state) {
    trace::instant(trace::Cat::kRoute, trace::kShip, ++n, 7);
  }
  trace::set_enabled(false);
  trace::clear();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceInstantEnabled);

}  // namespace

BENCHMARK_MAIN();
