/// Fig 16 reproduction: SSSP on the large graph (62M vertices in the
/// paper, scaled) over node counts, schemes {WW, WPs}. Expectation: WPs
/// total time is considerably better than WW (frequent flush calls and
/// memory footprint hurt WW), even though wasted updates are similar
/// (Fig 17).

#include <cstdio>

#include "sssp_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig16_sssp_large_time: Fig 16")) return 0;

  graph::GeneratorParams gp;
  gp.num_vertices = opt.quick ? 200'000 : 600'000;  // scaled from 62M
  gp.avg_degree = 8.0;
  const graph::Csr g = graph::build_uniform(gp);

  // Capped at 4 nodes: the 2p x 4w shape keeps worker+comm threads within
  // the host's cores, where the timing signal is clean.
  const std::vector<int> node_counts = {1, 2, 4};
  const std::vector<core::Scheme> schemes = {core::Scheme::WW,
                                             core::Scheme::WPs};

  util::Table table("Fig 16: SSSP large graph (" +
                    std::to_string(gp.num_vertices) +
                    " vertices, scaled from 62M) — total time (s)");
  std::vector<std::string> header{"scheme"};
  for (const int n : node_counts) header.push_back(std::to_string(n) + "n s");
  table.set_header(header);

  std::vector<std::vector<double>> secs(schemes.size());
  std::vector<std::vector<double>> msgs(schemes.size());
  bool all_verified = true;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> row{core::to_string(schemes[s])};
    for (const int nodes : node_counts) {
      core::TramConfig tram;
      tram.scheme = schemes[s];
      tram.buffer_items = 1024;
      // 1 proc x 4 workers per node keeps every thread on its own core.
      const auto topo = util::Topology(nodes, 1, 4);
      const auto point = bench::run_sssp(g, topo, tram,
                                         static_cast<int>(opt.trials));
      secs[s].push_back(point.seconds);
      msgs[s].push_back(static_cast<double>(point.tram_messages));
      all_verified = all_verified && point.verified;
      row.push_back(util::Table::fmt(point.seconds, 4) + " (" +
                    util::Table::fmt(point.mean_occupancy, 0) + "/msg)");
    }
    table.add_row(row);
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  const std::size_t last = node_counts.size() - 1;
  shapes.expect(all_verified, "distances match Dijkstra for every run");
  // Scale note (see EXPERIMENTS.md): the paper's absolute "WPs
  // considerably better than WW" holds at 512 PEs; at our 4-16 workers WW's
  // direct delivery is legitimately competitive. What reproduces is the
  // paper's *trend*: WW's time grows with node count much faster than
  // WPs', so the WPs/WW ratio falls toward (and past) 1 as the machine
  // grows.
  const double ww_growth = secs[0][last] / secs[0][0];
  const double wps_growth = secs[1][last] / secs[1][0];
  shapes.expect(ww_growth > 1.15 * wps_growth,
                "WW total time grows with node count faster than WPs "
                "(the paper's large-scale ordering in trend form)");
  // The mechanism behind the paper's WW collapse ("frequent flush calls"):
  // SSSP workers idle constantly waiting on updates, every idle flush
  // scans and ships WW's many per-worker buffers — so WW's message count
  // far exceeds WPs' at scale. Deterministic enough to assert directly.
  shapes.expect(msgs[0][last] > 1.3 * msgs[1][last],
                "WW ships clearly more (flush-driven) messages than WPs at "
                "the largest node count");
  shapes.report();
  return 0;
}
