/// Out-of-core streaming shuffle: the first workload whose working set
/// deliberately exceeds its memory budget (default 8x). Sweeps the
/// virtual process count and compares direct WsP against 2-D and 3-D
/// mesh routing on the same mmap'd input file.
///
/// Verification is a pure function of the record multiset: the CRC64 of
/// the merged sorted output must equal an in-memory reference sort of
/// the input, identically for every (scheme, scale, transport, fault)
/// cell — the sorted stream does not depend on how records travelled.
/// Each row also asserts exactly-once delivery and that the staging
/// pool's high-water stayed under the budget. CI's bench-smoke job fails
/// on any `"verified": false` row.
///
/// With --fault-drop/--fault-dup/--fault-delay the same shuffle runs
/// over a lossy fabric through the reliability layer (src/fault/), and
/// the CRC must not move. Runs non-SMP (one worker per process). Emits
/// BENCH_shuffle.json (override with --json).

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "route/virtual_mesh.hpp"
#include "shuffle/shuffle_app.hpp"

using namespace tram;

namespace {

struct ShufflePoint : bench::RoutedPointCounters {
  double seconds = 0.0;
  std::uint64_t records = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t spill_runs = 0;
  std::uint64_t merge_fanin = 0;
  std::uint64_t staging_peak = 0;
  std::uint64_t output_crc = 0;
  bool verified = true;
};

ShufflePoint run_shuffle(const util::Topology& topo,
                         const rt::RuntimeConfig& rt_cfg,
                         const core::TramConfig& tram_cfg,
                         const shuffle::ShuffleParams& base, int trials) {
  rt::Machine machine(topo, rt_cfg);
  shuffle::ShuffleParams params = base;
  params.tram = tram_cfg;
  shuffle::ShuffleApp app(machine, params);

  ShufflePoint point;
  point.seconds = bench::median_seconds(trials, [&] {
    const auto res = app.run();
    point.capture(res.tram, res.run, res.max_reserved_buffers,
                  machine.fault_stats());
    point.records = res.records_in;
    point.spill_bytes = res.spill_bytes;
    point.spill_runs = res.spill_runs;
    point.merge_fanin = res.merge_fanin_max;
    point.staging_peak = res.staging_peak_bytes;
    point.output_crc = res.output_crc;
    point.verified = point.verified && res.verified;
    return res.run.wall_s;
  });
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  bench::FaultOptions fault;
  std::string procs_arg;
  std::string bytes_arg;
  std::string budget_arg;
  std::string scheme_arg;
  std::string workdir = ".";
  opt.extra = [&](util::Cli& cli) {
    cli.add_string("bytes", &bytes_arg,
                   "total input bytes, e.g. 16M (default 16M; quick 4M)");
    cli.add_string("mem-budget", &budget_arg,
                   "staging+merge budget, e.g. 2M (default 2M; quick 512K)");
    cli.add_string("procs", &procs_arg,
                   "comma-separated virtual process counts to sweep");
    cli.add_string("scheme", &scheme_arg,
                   "run only this scheme (WsP, Mesh2D, Mesh3D)");
    cli.add_string("workdir", &workdir,
                   "directory for input/spill/output files");
    fault.register_cli(cli);
  };
  if (!opt.parse(argc, argv,
                 "fig_shuffle: out-of-core shuffle, direct vs mesh routing"))
    return 0;
  if (opt.json.empty()) opt.json = "BENCH_shuffle.json";

  std::uint64_t input_bytes = opt.quick ? 4ull << 20 : 16ull << 20;
  std::uint64_t budget = opt.quick ? 512ull << 10 : 2ull << 20;
  if (!bytes_arg.empty()) {
    input_bytes = bench::parse_size_bytes(bytes_arg);
    if (input_bytes == 0) {
      std::fprintf(stderr, "--bytes: cannot parse '%s'\n", bytes_arg.c_str());
      return 1;
    }
  }
  if (!budget_arg.empty()) {
    budget = bench::parse_size_bytes(budget_arg);
    if (budget == 0) {
      std::fprintf(stderr, "--mem-budget: cannot parse '%s'\n",
                   budget_arg.c_str());
      return 1;
    }
  }
  std::vector<int> proc_counts = opt.quick ? std::vector<int>{8, 16}
                                           : std::vector<int>{8, 16, 64};
  if (!bench::resolve_proc_counts(procs_arg, proc_counts)) return 1;

  std::vector<core::Scheme> schemes = {
      core::Scheme::WsP, core::Scheme::Mesh2D, core::Scheme::Mesh3D};
  if (!scheme_arg.empty()) {
    schemes.clear();
    for (const auto s : {core::Scheme::WsP, core::Scheme::Mesh2D,
                         core::Scheme::Mesh3D}) {
      if (scheme_arg == core::to_string(s)) schemes.push_back(s);
    }
    if (schemes.empty()) {
      std::fprintf(stderr, "--scheme: unknown scheme '%s'\n",
                   scheme_arg.c_str());
      return 1;
    }
  }

  const std::uint64_t records = input_bytes / sizeof(shuffle::Record);
  const std::string input_path = workdir + "/shuffle_input.bin";
  shuffle::write_random_input(input_path, records, /*seed=*/42);

  // The verification anchor. An in-memory reference sort is affordable up
  // to a generous bound; past it, the first cell's CRC anchors the rest
  // (cross-scheme/scale bit-identity is still fully checked).
  std::uint64_t reference_crc = 0;
  bool have_reference = false;
  if (input_bytes <= 64ull << 20) {
    reference_crc = shuffle::reference_sort_crc(input_path);
    have_reference = true;
  }

  util::Table table(
      "Out-of-core shuffle: " + std::to_string(records) + " records, budget " +
      std::to_string(budget >> 10) + " KiB (" +
      std::to_string(input_bytes / (budget ? budget : 1)) + "x), non-SMP" +
      (fault.any() ? ", faulty fabric" : ""));
  table.set_header({"procs", "scheme", "mesh", "spill KiB", "runs", "fanin",
                    "peak KiB", "fwd msgs", "rtx", "wall s", "ok"});

  bench::JsonReporter json("shuffle");
  bench::ShapeChecker shapes;
  bench::RoutedVerifySweep sweep;

  rt::RuntimeConfig rt_cfg = bench::bench_runtime_nonsmp();
  rt_cfg.fault = fault.to_config();

  shuffle::ShuffleParams base;
  base.input_path = input_path;
  base.output_path = workdir + "/shuffle_output.bin";
  base.spill_dir = workdir;
  base.mem_budget_bytes = budget;

  for (std::size_t pi = 0; pi < proc_counts.size(); ++pi) {
    const int procs = proc_counts[pi];
    const util::Topology topo(procs, 1, 1);
    sweep.start_scale();
    for (const auto scheme : schemes) {
      core::TramConfig tram;
      tram.scheme = scheme;
      tram.buffer_items = 256;
      std::string mesh = "-";
      if (core::is_routed(scheme)) {
        mesh = route::VirtualMesh::auto_factor(procs,
                                               core::mesh_ndims(scheme))
                   .to_string();
      }
      trace::phase(std::string(core::to_string(scheme)) + " p=" +
                   std::to_string(procs));
      const auto point = run_shuffle(topo, rt_cfg, tram, base,
                                     static_cast<int>(opt.trials));
      if (!have_reference) {
        reference_crc = point.output_crc;  // first cell anchors the rest
        have_reference = true;
      }
      const bool verified =
          point.verified && point.output_crc == reference_crc;

      const double ns_per_record =
          point.records ? point.seconds * 1e9 /
                              static_cast<double>(point.records)
                        : 0.0;
      const auto c = bench::routed_counters_from(point, ns_per_record);
      sweep.add(c, verified);

      table.add_row(
          {util::Table::fmt_int(procs), core::to_string(scheme), mesh,
           util::Table::fmt_int(
               static_cast<long long>(point.spill_bytes >> 10)),
           util::Table::fmt_int(static_cast<long long>(point.spill_runs)),
           util::Table::fmt_int(static_cast<long long>(point.merge_fanin)),
           util::Table::fmt_int(
               static_cast<long long>(point.staging_peak >> 10)),
           util::Table::fmt_int(
               static_cast<long long>(point.forwarded_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.faults.retransmits)),
           util::Table::fmt(point.seconds, 4), verified ? "yes" : "NO"});

      auto row = bench::make_routed_row(core::to_string(scheme),
                                        topo.to_string(), mesh, c, verified);
      char extra[256];
      std::snprintf(
          extra, sizeof extra,
          "\"records\": %llu, \"input_bytes\": %llu, "
          "\"mem_budget_bytes\": %llu, \"spill_bytes\": %llu, "
          "\"spill_runs\": %llu, \"merge_fanin\": %llu, "
          "\"staging_peak_bytes\": %llu, \"output_crc\": \"%016llx\"",
          static_cast<unsigned long long>(point.records),
          static_cast<unsigned long long>(input_bytes),
          static_cast<unsigned long long>(budget),
          static_cast<unsigned long long>(point.spill_bytes),
          static_cast<unsigned long long>(point.spill_runs),
          static_cast<unsigned long long>(point.merge_fanin),
          static_cast<unsigned long long>(point.staging_peak),
          static_cast<unsigned long long>(point.output_crc));
      row.extra_json = extra;
      json.add(row);
    }
  }
  bench::emit(table, opt);
  json.write(opt.json);

  if (schemes.size() == 3) {
    sweep.standard_checks(
        shapes,
        "every cell verified: CRC64 equals the reference sort, delivery "
        "exactly-once, staging peak within budget");
  } else {
    shapes.expect(sweep.all_verified(),
                  "every cell verified against the reference CRC");
  }
  shapes.report();
  std::remove(input_path.c_str());
  std::remove(base.output_path.c_str());
  return 0;
}
