/// Fig 13 reproduction: index-gather *total time* per scheme over node
/// counts (same runs as Fig 12, other metric). Expectation: total-time
/// ordering differs from the latency ordering — WPs pays destination-side
/// grouping and PP pays atomics, so WW can stay competitive on total time
/// even while losing on latency.

#include <cstdio>

#include "ig_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig13_ig_time: Fig 13")) return 0;

  const std::uint64_t requests = opt.quick ? 50'000 : 150'000;
  std::vector<int> node_counts = {2, 4, 8};
  if (opt.quick) node_counts = {2, 4};
  const int ppn = 2, wpp = 4;
  const std::vector<core::Scheme> schemes = {
      core::Scheme::WW, core::Scheme::WPs, core::Scheme::PP};

  util::Table table("Fig 13: index-gather total time (s), " +
                    std::to_string(requests) + " requests/PE");
  std::vector<std::string> header{"scheme"};
  for (const int n : node_counts) header.push_back(std::to_string(n) + "n s");
  table.set_header(header);

  std::vector<std::vector<double>> secs(schemes.size());
  bool all_verified = true;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> row{core::to_string(schemes[s])};
    for (const int nodes : node_counts) {
      core::TramConfig tram;
      tram.scheme = schemes[s];
      tram.buffer_items = 1024;
      const auto point = bench::run_ig(util::Topology(nodes, ppn, wpp), tram,
                                       requests,
                                       static_cast<int>(opt.trials));
      secs[s].push_back(point.seconds);
      all_verified = all_verified && point.verified;
      row.push_back(util::Table::fmt(point.seconds, 4));
    }
    table.add_row(row);
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  const std::size_t last = node_counts.size() - 1;
  shapes.expect(all_verified, "every response arrived with the right value");
  // The paper's total-time story: WW does not lose on total time the way
  // it loses on latency (grouping/atomics overheads bite WPs and PP).
  shapes.expect(secs[0][last] < 2.0 * secs[1][last],
                "WW total time stays within 2x of WPs (overhead, not "
                "latency, dominates IG total time)");
  shapes.report();
  return 0;
}
