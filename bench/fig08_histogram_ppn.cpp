/// Fig 8 reproduction: histogram with WPs, sweeping workers per process
/// (ppn in the paper's terminology) against non-SMP, weak scaling over
/// nodes. Expectation: fewer workers per process -> closer to non-SMP; the
/// paper settles on 8 workers/proc as on-par, we scale to 8 workers/node
/// and find the same monotone trend.

#include <cstdio>

#include "hist_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig08_histogram_ppn: Fig 8")) return 0;

  const std::uint64_t updates = opt.quick ? 32'000 : 64'000;
  // 4 nodes x 8 workers + comm threads is the largest shape that fits the
  // host's cores; beyond that, scheduler noise from oversubscription
  // swamps the comm-thread effect this figure isolates.
  const std::vector<int> node_counts = {2, 4};

  // Workers per node fixed at 8; processes per node varies.
  struct Config {
    std::string name;
    int ppn;   // processes per node
    int wpp;   // workers per process
    bool smp;
  };
  std::vector<Config> configs = {
      {"WPs (1 proc x 8 w)", 1, 8, true},
      {"WPs (2 procs x 4 w)", 2, 4, true},
      {"WPs (4 procs x 2 w)", 4, 2, true},
      {"non-SMP (8 procs x 1 w)", 8, 1, false},
  };

  util::Table table("Fig 8: histogram (WPs), workers/process sweep, " +
                    std::to_string(updates) + " updates/PE");
  std::vector<std::string> header{"config"};
  for (const int n : node_counts) header.push_back(std::to_string(n) + "n s");
  table.set_header(header);

  std::vector<std::vector<double>> secs(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::vector<std::string> row{configs[c].name};
    for (const int nodes : node_counts) {
      core::TramConfig tram;
      tram.scheme = core::Scheme::WPs;
      // Buffer 128 puts the message rate in the paper's regime, where the
      // comm thread's per-message work is a visible share of total time —
      // that serialization is exactly what this figure isolates.
      tram.buffer_items = 128;
      // Fine-grained regime: per-message comm work high enough that the
      // dedicated comm thread's serialization dominates scheduling noise
      // (the paper reaches the same regime via 8x the workers per node).
      auto rt_cfg = configs[c].smp ? bench::bench_runtime()
                                   : bench::bench_runtime_nonsmp();
      rt_cfg.comm_per_msg_send_ns = 6'000;
      rt_cfg.comm_per_msg_recv_ns = 6'000;
      const auto point = bench::run_histogram(
          util::Topology(nodes, configs[c].ppn, configs[c].wpp), rt_cfg,
          tram, updates, static_cast<int>(opt.trials));
      secs[c].push_back(point.seconds);
      row.push_back(util::Table::fmt(point.seconds, 4));
    }
    table.add_row(row);
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  const std::size_t last = node_counts.size() - 1;
  // 1 proc/node funnels all 8 workers through one comm thread; 2 procs
  // halves the funnel. (The 4-proc config also carries the most threads,
  // so its wall time is noisier — the 1p-vs-2p comparison is the clean
  // signal of the comm-thread bottleneck.)
  bool one_proc_slowest = true;
  for (std::size_t n = 0; n < node_counts.size(); ++n) {
    one_proc_slowest = one_proc_slowest && secs[0][n] > secs[1][n];
  }
  shapes.expect(one_proc_slowest,
                "1 process per node is slower than 2 at every node count "
                "(comm-thread bottleneck)");
  shapes.expect(secs[1][last] < 2.0 * secs[3][last],
                "the best SMP configuration runs within 2x of non-SMP");
  shapes.report();
  return 0;
}
