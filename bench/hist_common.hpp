#pragma once
/// Shared runner for the histogram figure benches (Figs 8-11).

#include <memory>

#include "apps/histogram.hpp"
#include "bench_common.hpp"
#include "runtime/machine.hpp"

namespace tram::bench {

struct HistoPoint : RoutedPointCounters {
  double seconds = 0.0;
  std::uint64_t flush_messages = 0;
  double mean_occupancy = 0.0;  // items per shipped message
  bool verified = true;
};

/// Build a fresh machine + app for the configuration and return the median
/// over `trials` timed runs.
inline HistoPoint run_histogram(const util::Topology& topo,
                                const rt::RuntimeConfig& rt_cfg,
                                const core::TramConfig& tram_cfg,
                                std::uint64_t updates_per_worker,
                                int trials) {
  rt::Machine machine(topo, rt_cfg);
  apps::HistogramParams params;
  params.updates_per_worker = updates_per_worker;
  params.bins_per_worker = 1 << 12;
  params.tram = tram_cfg;
  apps::HistogramApp app(machine, params);

  HistoPoint point;
  point.seconds = median_seconds(trials, [&] {
    const auto res = app.run();
    point.capture(res.tram, res.run, res.max_reserved_buffers,
                  machine.fault_stats());
    point.flush_messages = res.tram.flush_msgs;
    point.mean_occupancy = res.tram.occupancy_at_ship.mean();
    point.verified = point.verified && res.verified;
    return res.run.wall_s;
  });
  return point;
}

}  // namespace tram::bench
