#pragma once
/// Shared runner for the histogram figure benches (Figs 8-11).

#include <memory>

#include "apps/histogram.hpp"
#include "bench_common.hpp"
#include "runtime/machine.hpp"

namespace tram::bench {

struct HistoPoint {
  double seconds = 0.0;
  std::uint64_t tram_messages = 0;  // buffers shipped
  std::uint64_t flush_messages = 0;
  std::uint64_t fabric_messages = 0;
  std::uint64_t fabric_bytes = 0;
  /// Messages re-shipped by routing intermediates (0 for direct schemes).
  std::uint64_t forwarded_messages = 0;
  /// Routed last-hop messages shipped pre-sorted (the zero-copy scatter
  /// fast path; 0 for direct schemes).
  std::uint64_t sorted_messages = 0;
  /// Final-hop segments handed on as refcounted sub-views (0 direct).
  std::uint64_t subview_deliveries = 0;
  /// Forwarded bytes copied into intermediate slot buffers vs. staged as
  /// sub-views of the inbound/scratch slab (both 0 for direct schemes;
  /// copy is 0 with one worker per process — the zero-copy claim).
  std::uint64_t fwd_copy_bytes = 0;
  std::uint64_t fwd_subview_bytes = 0;
  /// Live source-side buffers on the worst worker (O(N) direct,
  /// O(d*N^(1/d)) routed).
  std::uint64_t max_reserved_buffers = 0;
  double mean_occupancy = 0.0;      // items per shipped message
  /// Fault/reliability counters (all zero for fault-free runs).
  core::FaultStats faults;
  bool verified = true;
};

/// Build a fresh machine + app for the configuration and return the median
/// over `trials` timed runs.
inline HistoPoint run_histogram(const util::Topology& topo,
                                const rt::RuntimeConfig& rt_cfg,
                                const core::TramConfig& tram_cfg,
                                std::uint64_t updates_per_worker,
                                int trials) {
  rt::Machine machine(topo, rt_cfg);
  apps::HistogramParams params;
  params.updates_per_worker = updates_per_worker;
  params.bins_per_worker = 1 << 12;
  params.tram = tram_cfg;
  apps::HistogramApp app(machine, params);

  HistoPoint point;
  point.seconds = median_seconds(trials, [&] {
    const auto res = app.run();
    point.tram_messages = res.tram.msgs_shipped;
    point.flush_messages = res.tram.flush_msgs;
    point.fabric_messages = res.run.fabric_messages;
    point.fabric_bytes = res.run.fabric_bytes;
    point.forwarded_messages = res.run.forwarded_messages;
    point.sorted_messages = res.tram.routed_sorted_msgs;
    point.subview_deliveries = res.tram.routed_subview_deliveries;
    point.fwd_copy_bytes = res.tram.routed_forward_copy_bytes;
    point.fwd_subview_bytes = res.tram.routed_forward_subview_bytes;
    point.max_reserved_buffers = res.max_reserved_buffers;
    point.mean_occupancy = res.tram.occupancy_at_ship.mean();
    point.faults = machine.fault_stats();
    point.verified = point.verified && res.verified;
    return res.run.wall_s;
  });
  return point;
}

}  // namespace tram::bench
