/// Ablation of the paper's future-work feature ("we plan to support
/// prioritization of items, which should help latency or cost sensitive
/// applications such SSSP and PDES even more directly"): SSSP with
/// under-threshold updates routed through small expedited priority
/// buffers, vs. the same scheme without. Expectation: fewer wasted updates
/// at equal (or better) total time, because the updates peers are waiting
/// on no longer sit behind bulk traffic.

#include <cstdio>

#include "apps/sssp.hpp"
#include "bench_common.hpp"
#include "graph/generator.hpp"
#include "runtime/machine.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "ablate_priority: SSSP with item priorities"))
    return 0;

  graph::GeneratorParams gp;
  gp.num_vertices = opt.quick ? 60'000 : 150'000;
  gp.avg_degree = 8.0;
  const graph::Csr g = graph::build_uniform(gp);

  util::Table table("Ablation: SSSP item prioritization (scheme WPs, "
                    "buffer 1024, priority buffer 64)");
  table.set_header({"config", "wasted %", "time s", "verified"});

  struct Row {
    double wasted = 0.0;
    double secs = 0.0;
    bool verified = true;
  };
  auto run_cfg = [&](bool prioritized) {
    rt::Machine machine(util::Topology(2, 2, 4), bench::bench_runtime());
    apps::SsspParams params;
    params.graph = &g;
    params.tram.scheme = core::Scheme::WPs;
    params.tram.buffer_items = 1024;
    params.tram.priority_buffer_items = prioritized ? 64 : 0;
    params.prioritize_urgent = prioritized;
    params.delta = 8;
    apps::SsspApp app(machine, params);
    Row row;
    util::RunningStats wasted;
    row.secs = bench::median_seconds(static_cast<int>(opt.trials), [&] {
      const auto res = app.run();
      wasted.add(res.wasted_pct);
      row.verified = row.verified && res.verified;
      return res.run.wall_s;
    });
    row.wasted = wasted.mean();
    return row;
  };

  const Row base = run_cfg(false);
  const Row prio = run_cfg(true);
  table.add_row({"bulk only", util::Table::fmt(base.wasted, 2),
                 util::Table::fmt(base.secs, 4),
                 base.verified ? "yes" : "NO"});
  table.add_row({"prioritized", util::Table::fmt(prio.wasted, 2),
                 util::Table::fmt(prio.secs, 4),
                 prio.verified ? "yes" : "NO"});
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  shapes.expect(base.verified && prio.verified,
                "both configurations verify against Dijkstra");
  // SSSP wall time on a shared box swings +/-25% run to run, which is
  // larger than prioritization's effect either way; the stable claims are
  // (a) no material regression in time and (b) wasted updates unchanged.
  // The feature's latency benefit itself is asserted deterministically by
  // core_priority_test.UrgentItemsSeeLowerLatencyThanBulk.
  shapes.expect(prio.secs < base.secs * 1.6,
                "prioritization does not materially regress total time");
  shapes.expect(prio.wasted <= base.wasted + 2.0,
                "wasted updates stay in the same band");
  shapes.report();
  return 0;
}
