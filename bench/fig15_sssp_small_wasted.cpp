/// Fig 15 reproduction: SSSP small graph — *wasted updates* (received
/// updates that no longer improve a distance), normalized as a percentage
/// of received updates. Expectation: PP < WPs < WW — lower item latency
/// means fewer peers keep speculating against stale distances.

#include <cstdio>

#include "sssp_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig15_sssp_small_wasted: Fig 15")) return 0;

  graph::GeneratorParams gp;
  gp.num_vertices = opt.quick ? 40'000 : 120'000;
  gp.avg_degree = 8.0;
  const graph::Csr g = graph::build_uniform(gp);

  std::vector<int> proc_counts = {4, 8, 16};
  if (opt.quick) proc_counts = {4, 8};
  const std::vector<core::Scheme> schemes = {
      core::Scheme::WW, core::Scheme::WPs, core::Scheme::PP};

  util::Table table("Fig 15: SSSP small graph — wasted updates (% of "
                    "received)");
  std::vector<std::string> header{"scheme"};
  for (const int p : proc_counts) header.push_back(std::to_string(p) + "p %");
  table.set_header(header);

  std::vector<std::vector<double>> wasted(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> row{core::to_string(schemes[s])};
    for (const int procs : proc_counts) {
      core::TramConfig tram;
      tram.scheme = schemes[s];
      tram.buffer_items = 256;
      const auto topo = util::Topology(procs / 2, 2, 4);
      const auto point = bench::run_sssp(g, topo, tram,
                                         static_cast<int>(opt.trials));
      wasted[s].push_back(point.wasted_pct);
      row.push_back(util::Table::fmt(point.wasted_pct, 2));
    }
    table.add_row(row);
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  const std::size_t last = proc_counts.size() - 1;
  shapes.expect(wasted[2][last] <= wasted[1][last] * 1.05,
                "PP wasted updates at or below WPs");
  shapes.expect(wasted[1][last] <= wasted[0][last] * 1.05,
                "WPs wasted updates at or below WW");
  shapes.report();
  return 0;
}
