/// Microbenchmarks of the aggregation hot paths: per-scheme insert cost,
/// and PP's atomic slot-claim under contention (the "overhead of atomics"
/// the paper cites against PP). These run the buffer structures directly,
/// without the runtime, so the numbers isolate the aggregation layer.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "core/pp_buffer.hpp"
#include "core/wire.hpp"

namespace {

using namespace tram;
using Entry = core::WireEntry<std::uint64_t>;

/// Baseline: the WW/WPs source-side path is a vector push + occasional
/// bulk clear.
void BM_WorkerBufferInsert(benchmark::State& state) {
  const std::size_t g = 1024;
  std::vector<Entry> buf;
  buf.reserve(g);
  std::uint64_t shipped = 0;
  Entry e{0, 3, 42};
  for (auto _ : state) {
    buf.push_back(e);
    if (buf.size() >= g) {
      shipped += buf.size();
      buf.clear();
    }
  }
  benchmark::DoNotOptimize(shipped);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkerBufferInsert);

/// PP shared-buffer insert with range(0) contending threads. Throughput
/// per thread drops as contention rises — that is PP's atomics overhead.
void BM_PpBufferInsertContended(benchmark::State& state) {
  static core::PpBuffer<Entry>* buffer = nullptr;
  if (state.thread_index() == 0) {
    buffer = new core::PpBuffer<Entry>(1024);
  }
  Entry e{0, 3, 42};
  std::uint64_t retries = 0;
  std::uint64_t sealed = 0;
  for (auto _ : state) {
    if (auto full = buffer->insert(e, retries)) sealed += full->size();
  }
  state.counters["cas_retries_per_insert"] = benchmark::Counter(
      static_cast<double>(retries),
      benchmark::Counter::kAvgIterations);
  benchmark::DoNotOptimize(sealed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    // Drain so the last partial buffer is not leaked logically.
    buffer->flush();
    delete buffer;
    buffer = nullptr;
  }
}
BENCHMARK(BM_PpBufferInsertContended)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

/// PP flush racing inserts: measures flush-side cost under write load.
void BM_PpBufferFlushUnderLoad(benchmark::State& state) {
  core::PpBuffer<Entry> buffer(1024);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int i = 0; i < 3; ++i) {
    writers.emplace_back([&] {
      Entry e{0, 1, 7};
      std::uint64_t r = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto sealed = buffer.insert(e, r);
        benchmark::DoNotOptimize(sealed);
      }
    });
  }
  for (auto _ : state) {
    auto partial = buffer.flush();
    benchmark::DoNotOptimize(partial);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}
BENCHMARK(BM_PpBufferFlushUnderLoad);

}  // namespace
