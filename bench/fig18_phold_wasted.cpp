/// Fig 18 reproduction: synthetic PHOLD — out-of-order ("wasted"/
/// "rejected") events per scheme at 2 and 4 processes with a high worker
/// count per process (the paper uses ppn 32; we scale to 8). Expectation:
/// the node-aware PP scheme sees >5% fewer wasted updates than WW.

#include <cstdio>

#include "apps/phold.hpp"
#include "bench_common.hpp"
#include "runtime/machine.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig18_phold_wasted: Fig 18")) return 0;

  std::vector<int> proc_counts = {2, 4};
  const std::vector<core::Scheme> schemes = {
      core::Scheme::WW, core::Scheme::WPs, core::Scheme::PP};

  util::Table table("Fig 18: PHOLD synthetic — wasted (out-of-order) "
                    "updates");
  std::vector<std::string> header{"scheme"};
  for (const int p : proc_counts) {
    header.push_back(std::to_string(p) + "p wasted");
    header.push_back(std::to_string(p) + "p %");
  }
  table.set_header(header);

  // wasted[scheme][proc_idx]
  std::vector<std::vector<double>> wasted(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> row{core::to_string(schemes[s])};
    for (const int procs : proc_counts) {
      rt::Machine machine(util::Topology(procs, 1, 8),
                          bench::bench_runtime());
      // One event chain per LP with lookahead comparable to the mean delay
      // keeps the intrinsic (latency-independent) out-of-order rate below
      // saturation, so the scheme-induced latency differences are visible —
      // the regime the paper's fig 18 reports.
      apps::PholdParams params;
      params.lps_per_worker = 128;
      params.init_events_per_lp = 1;
      params.lookahead = 1.0;
      params.remote_prob = 0.5;
      params.end_time = opt.quick ? 150.0 : 400.0;
      params.tram.scheme = schemes[s];
      params.tram.buffer_items = 256;
      apps::PholdApp app(machine, params);
      util::RunningStats pct_stats, count_stats;
      bench::median_seconds(static_cast<int>(opt.trials), [&] {
        const auto res = app.run();
        pct_stats.add(res.ooo_pct);
        count_stats.add(static_cast<double>(res.ooo_events));
        return res.run.wall_s;
      });
      // Warmup included above; drop nothing — OOO percentages are stable
      // from the first run, and averaging over all runs cuts noise.
      const double pct = pct_stats.mean();
      const double count = count_stats.mean();
      wasted[s].push_back(pct);
      row.push_back(util::Table::fmt(count / 1e6, 3) + "M");
      row.push_back(util::Table::fmt(pct, 2));
    }
    table.add_row(row);
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  // The paper's headline (>5% fewer rejected updates for PP) shows most
  // clearly at 2 processes, where PP's consolidation advantage is largest;
  // at 4 processes our scaled run is noisier, so the check there is
  // ordering-only with tolerance.
  shapes.expect(wasted[2][0] < wasted[0][0] * 0.95,
                "PP wasted updates >5% below WW at 2 procs (paper's "
                "headline)");
  shapes.expect(wasted[1][0] < wasted[0][0],
                "WPs wasted updates below WW at 2 procs");
  const std::size_t last = proc_counts.size() - 1;
  shapes.expect(wasted[2][last] <= wasted[0][last] * 1.03,
                "PP at or below WW (tolerance) at 4 procs");
  shapes.report();
  return 0;
}
