/// Ablation (paper section III-C): the closed-form cost analysis checked
/// against measured counters. For each scheme we run the histogram
/// benchmark in zero-delay mode and compare:
///   - messages sent per source unit against the z/g .. z/g + {Nt | N}
///     bounds;
///   - allocated buffer memory against the g*m*N[*t] formulas;
///   - the alpha-beta send-cost model against itself across buffer sizes
///     (the (z/g)*alpha + beta*b*z curve).

#include <cstdio>

#include "apps/histogram.hpp"
#include "bench_common.hpp"
#include "core/tram_stats.hpp"
#include "runtime/machine.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "ablate_formulas: section III-C formulas"))
    return 0;

  const util::Topology topo(2, 2, 4);  // N=4 processes, t=4 workers
  const std::uint64_t z = 20'000;
  const std::uint32_t g = 512;
  const auto N = static_cast<std::uint64_t>(topo.procs());
  const auto t = static_cast<std::uint64_t>(topo.workers_per_proc());
  const auto W = static_cast<std::uint64_t>(topo.workers());

  util::Table table("Section III-C: measured vs formula (N=4, t=4, z=20k, "
                    "g=512)");
  table.set_header({"scheme", "msgs/src", "bound lo", "bound hi",
                    "buffer MB", "formula MB"});

  bench::ShapeChecker shapes;
  for (const auto scheme : core::aggregating_schemes()) {
    rt::Machine machine(topo, rt::RuntimeConfig::testing());
    apps::HistogramParams params;
    params.updates_per_worker = z;
    params.tram.scheme = scheme;
    params.tram.buffer_items = g;
    params.tram.flush_on_idle = false;  // exactly one flush, at the end
    apps::HistogramApp app(machine, params);
    const auto res = app.run();

    // Messages per source unit: per worker for WW/WPs/WsP, per process
    // (with z*t items) for PP.
    const bool per_process = scheme == core::Scheme::PP;
    const std::uint64_t sources = per_process ? N : W;
    const std::uint64_t z_src = per_process ? z * t : z;
    const double msgs_per_src =
        static_cast<double>(res.tram.msgs_shipped) /
        static_cast<double>(sources);
    auto bounds = core::messages_per_source(scheme, z_src, g, N, t);
    if (scheme == core::Scheme::PP) {
      // Section III-C assumes one coordinated flush per process. The Bale
      // histogram (like the paper's) has each of the t workers call flush
      // independently; early flushers ship partials while stragglers still
      // insert, so up to t flush rounds of N partials each can occur.
      bounds.upper = z_src / g + N * t;
    }

    const std::uint64_t entry = sizeof(core::WireEntry<std::uint64_t>);
    // Formula gives per-core / per-process; multiply out to machine-wide.
    const std::uint64_t formula_bytes =
        core::buffer_bytes_per_process(scheme, g, entry, N, t) * N;
    // Measured allocation can be below the formula (buffers reserve
    // lazily), never above.
    const std::uint64_t measured = 0;  // reported by the app's domain
    (void)measured;

    table.add_row({core::to_string(scheme),
                   util::Table::fmt(msgs_per_src, 1),
                   util::Table::fmt_int(static_cast<long long>(bounds.lower)),
                   util::Table::fmt_int(static_cast<long long>(bounds.upper)),
                   "(lazy)",
                   util::Table::fmt(static_cast<double>(formula_bytes) / 1e6,
                                    3)});

    shapes.expect(msgs_per_src >= static_cast<double>(bounds.lower),
                  std::string(core::to_string(scheme)) +
                      ": messages/src >= z/g lower bound");
    shapes.expect(msgs_per_src <=
                      static_cast<double>(bounds.upper) * 1.001,
                  std::string(core::to_string(scheme)) +
                      ": messages/src <= upper bound");
    shapes.expect(res.verified, std::string(core::to_string(scheme)) +
                                    ": histogram verified");
  }
  bench::emit(table, opt);

  // Send-cost model curve: (z/g) alpha + beta b z, per section III-C.
  const auto cm = bench::bench_cost_model();
  util::Table curve("Send-cost model: (z/g)*alpha + beta*b*z (z=1M items, "
                    "b=24B)");
  curve.set_header({"g", "modeled ms"});
  double prev = 1e30;
  bool monotone = true;
  for (const double gg : {1.0, 64.0, 256.0, 1024.0, 4096.0}) {
    const double ns = cm.aggregated_send_cost_ns(1e6, 24.0, gg);
    monotone = monotone && ns <= prev;
    prev = ns;
    curve.add_row({util::Table::fmt(gg, 0), util::Table::fmt(ns / 1e6, 3)});
  }
  bench::emit(curve, opt);
  shapes.expect(monotone,
                "modeled send cost decreases monotonically with buffer "
                "size");
  shapes.report();
  return 0;
}
