#pragma once
/// Shared runner for the SSSP figure benches (Figs 14-17).

#include "apps/sssp.hpp"
#include "bench_common.hpp"
#include "graph/generator.hpp"
#include "runtime/machine.hpp"

namespace tram::bench {

struct SsspPoint {
  double seconds = 0.0;
  double wasted_pct = 0.0;
  std::uint64_t wasted = 0;
  std::uint64_t tram_messages = 0;
  double mean_occupancy = 0.0;
  bool verified = true;
};

inline SsspPoint run_sssp(const graph::Csr& g, const util::Topology& topo,
                          const core::TramConfig& tram_cfg, int trials) {
  rt::Machine machine(topo, bench_runtime());
  apps::SsspParams params;
  params.graph = &g;
  params.tram = tram_cfg;
  params.delta = 8;
  apps::SsspApp app(machine, params);

  SsspPoint point;
  util::RunningStats pct_stats;
  point.seconds = median_seconds(trials, [&] {
    const auto res = app.run();
    pct_stats.add(res.wasted_pct);
    point.wasted = res.wasted_updates;
    point.tram_messages = res.tram.msgs_shipped;
    point.mean_occupancy = res.tram.occupancy_at_ship.mean();
    point.verified = point.verified && res.verified;
    return res.run.wall_s;
  });
  point.wasted_pct = pct_stats.mean();
  return point;
}

}  // namespace tram::bench
