#pragma once
/// Shared runner for the SSSP figure benches (Figs 14-17 and the routed
/// sweep).

#include "apps/sssp.hpp"
#include "bench_common.hpp"
#include "graph/generator.hpp"
#include "runtime/machine.hpp"

namespace tram::bench {

struct SsspPoint : RoutedPointCounters {
  double seconds = 0.0;
  double wasted_pct = 0.0;
  std::uint64_t wasted = 0;
  double mean_occupancy = 0.0;
  bool verified = true;
  /// Items delivered through the tram domain (== inserted when delivery
  /// was exactly-once; exactly_once asserts that).
  std::uint64_t items = 0;
  bool exactly_once = true;
  std::uint64_t priority_messages = 0;
  /// FNV-1a over every vertex's final distance: two runs converged to
  /// bit-for-bit identical distances iff the hashes match (the routed
  /// benches cross-check this against the direct-scheme run).
  std::uint64_t dist_hash = 1469598103934665603ULL;  // FNV offset basis
};

/// Build a fresh machine + app for the configuration and return the median
/// over `trials` timed runs.
inline SsspPoint run_sssp(const graph::Csr& g, const util::Topology& topo,
                          const core::TramConfig& tram_cfg, int trials,
                          const rt::RuntimeConfig& rt_cfg = bench_runtime(),
                          bool prioritize_urgent = false) {
  rt::Machine machine(topo, rt_cfg);
  apps::SsspParams params;
  params.graph = &g;
  params.tram = tram_cfg;
  params.delta = 8;
  params.prioritize_urgent = prioritize_urgent;
  apps::SsspApp app(machine, params);

  SsspPoint point;
  util::RunningStats pct_stats;
  point.seconds = median_seconds(trials, [&] {
    const auto res = app.run();
    pct_stats.add(res.wasted_pct);
    point.capture(res.tram, res.run, res.max_reserved_buffers,
                  machine.fault_stats());
    point.wasted = res.wasted_updates;
    point.mean_occupancy = res.tram.occupancy_at_ship.mean();
    point.verified = point.verified && res.verified;
    point.items = res.tram.items_delivered;
    point.exactly_once = point.exactly_once &&
                         res.tram.items_inserted == res.tram.items_delivered;
    point.priority_messages = res.tram.priority_msgs;
    return res.run.wall_s;
  });
  point.wasted_pct = pct_stats.mean();
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    point.dist_hash ^= app.distance(v);
    point.dist_hash *= 1099511628211ULL;  // FNV-1a fold per vertex
  }
  return point;
}

}  // namespace tram::bench
