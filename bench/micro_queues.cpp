/// Substrate microbenchmarks: the queues every message crosses.

#include <benchmark/benchmark.h>

#include <thread>

#include "util/mpsc_queue.hpp"
#include "util/spsc_ring.hpp"

namespace {

using namespace tram;

void BM_SpscRingPushPop(benchmark::State& state) {
  util::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.try_push(v++);
    benchmark::DoNotOptimize(ring.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SpscRingThroughput(benchmark::State& state) {
  // Producer thread floods; the timed loop consumes.
  util::SpscRing<std::uint64_t> ring(4096);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) ring.try_push(v++);
  });
  std::uint64_t popped = 0;
  for (auto _ : state) {
    if (auto x = ring.try_pop()) {
      benchmark::DoNotOptimize(*x);
      ++popped;
    }
  }
  stop.store(true);
  producer.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(popped));
}
BENCHMARK(BM_SpscRingThroughput);

void BM_MpscQueue(benchmark::State& state) {
  // range(0) producers flood an MPSC queue; the timed loop consumes.
  util::MpscQueue<std::uint64_t> q;
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int i = 0; i < state.range(0); ++i) {
    producers.emplace_back([&] {
      std::uint64_t v = 0;
      while (!stop.load(std::memory_order_relaxed)) q.push(v++);
    });
  }
  std::uint64_t popped = 0;
  for (auto _ : state) {
    if (auto x = q.try_pop()) {
      benchmark::DoNotOptimize(*x);
      ++popped;
    }
  }
  stop.store(true);
  for (auto& t : producers) t.join();
  while (q.try_pop()) {
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(popped));
}
BENCHMARK(BM_MpscQueue)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
