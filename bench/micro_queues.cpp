/// Substrate microbenchmarks: the queues every message crosses.
///
/// Each hot-path benchmark is templated over the synchronization seam and
/// registered twice — once against RealSync (the shipping memory orders,
/// including this PR's relaxations: relaxed advisory loads, release-only
/// refcount decrements) and once against ConservativeSync (everything
/// seq_cst). The paired rows are the measured before/after for every
/// relaxation: a relaxation that does not beat its _SeqCst twin is not
/// carrying its weight.

#include <benchmark/benchmark.h>

#include <thread>

#include "util/mpsc_queue.hpp"
#include "util/payload_pool.hpp"
#include "util/spsc_ring.hpp"
#include "util/sync.hpp"

namespace {

using namespace tram;

template <typename Sync>
void BM_SpscRingPushPop(benchmark::State& state) {
  util::SpscRing<std::uint64_t, Sync> ring(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.try_push(v++);
    benchmark::DoNotOptimize(ring.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRingPushPop<util::RealSync>)->Name("BM_SpscRingPushPop");
BENCHMARK(BM_SpscRingPushPop<util::ConservativeSync>)
    ->Name("BM_SpscRingPushPop_SeqCst");

template <typename Sync>
void BM_SpscRingThroughput(benchmark::State& state) {
  // Producer thread floods; the timed loop consumes.
  util::SpscRing<std::uint64_t, Sync> ring(4096);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) ring.try_push(v++);
  });
  std::uint64_t popped = 0;
  for (auto _ : state) {
    if (auto x = ring.try_pop()) {
      benchmark::DoNotOptimize(*x);
      ++popped;
    }
  }
  stop.store(true);
  producer.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(popped));
}
BENCHMARK(BM_SpscRingThroughput<util::RealSync>)
    ->Name("BM_SpscRingThroughput");
BENCHMARK(BM_SpscRingThroughput<util::ConservativeSync>)
    ->Name("BM_SpscRingThroughput_SeqCst");

/// The idle-heuristic load this PR relaxed from acquire: workers poll it
/// on every scheduler turn, so its cost is pure overhead.
template <typename Sync>
void BM_SpscRingSizeApprox(benchmark::State& state) {
  util::SpscRing<std::uint64_t, Sync> ring(1024);
  for (int i = 0; i < 17; ++i) ring.try_push(std::uint64_t{1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.size_approx());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRingSizeApprox<util::RealSync>)
    ->Name("BM_SpscRingSizeApprox");
BENCHMARK(BM_SpscRingSizeApprox<util::ConservativeSync>)
    ->Name("BM_SpscRingSizeApprox_SeqCst");

template <typename Sync>
void BM_MpscQueue(benchmark::State& state) {
  // range(0) producers flood an MPSC queue; the timed loop consumes.
  util::MpscQueue<std::uint64_t, Sync> q;
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int i = 0; i < state.range(0); ++i) {
    producers.emplace_back([&] {
      std::uint64_t v = 0;
      while (!stop.load(std::memory_order_relaxed)) q.push(v++);
    });
  }
  std::uint64_t popped = 0;
  for (auto _ : state) {
    if (auto x = q.try_pop()) {
      benchmark::DoNotOptimize(*x);
      ++popped;
    }
  }
  stop.store(true);
  for (auto& t : producers) t.join();
  while (q.try_pop()) {
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(popped));
}
BENCHMARK(BM_MpscQueue<util::RealSync>)
    ->Name("BM_MpscQueue")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);
BENCHMARK(BM_MpscQueue<util::ConservativeSync>)
    ->Name("BM_MpscQueue_SeqCst")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

/// The consumer-side idle probe (relaxed after this PR): measured alone
/// because workers call it between every dispatch batch.
template <typename Sync>
void BM_MpscEmptyApprox(benchmark::State& state) {
  util::MpscQueue<std::uint64_t, Sync> q;
  q.push(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.empty_approx());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MpscEmptyApprox<util::RealSync>)->Name("BM_MpscEmptyApprox");
BENCHMARK(BM_MpscEmptyApprox<util::ConservativeSync>)
    ->Name("BM_MpscEmptyApprox_SeqCst");

/// Refcount churn on the shipping PayloadRef (release-decrement +
/// acquire-fence-on-zero after this PR). No seam parameter — the pool is
/// hardwired to DefaultSync — but paired with the copy cost it isolates:
/// copy+drop of a shared ref is two refcount ops and nothing else.
void BM_PayloadRefCopyDrop(benchmark::State& state) {
  util::PayloadPool pool;
  util::PayloadRef base = pool.acquire(256);
  for (auto _ : state) {
    util::PayloadRef copy = base;
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PayloadRefCopyDrop);

}  // namespace
