/// Ablation (paper section III-A): the comm thread as serializing
/// bottleneck. The paper finds that below ~167 ns of application work per
/// word of communication, one dedicated comm thread per process cannot
/// keep up. We sweep the modeled per-message comm cost at a fixed message
/// rate and show PingAck time scales with it in SMP 1-proc mode but not in
/// non-SMP mode, and that the SMP/non-SMP gap closes as the per-message
/// cost shrinks.

#include <cstdio>

#include "apps/pingack.hpp"
#include "bench_common.hpp"
#include "runtime/machine.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv,
                 "ablate_commthread: comm-thread serialization sweep"))
    return 0;

  const int workers_per_node = 8;
  const int msgs_per_worker = opt.quick ? 1'000 : 3'000;

  util::Table table(
      "Ablation: PingAck vs comm-thread per-message cost (2 nodes, 8 "
      "workers/node)");
  table.set_header({"per-msg cost ns", "SMP 1-proc s", "non-SMP s",
                    "ratio"});

  std::vector<double> ratios;
  for (const double cost : {0.0, 250.0, 500.0, 1'000.0, 2'000.0}) {
    auto smp_cfg = bench::bench_runtime();
    smp_cfg.comm_per_msg_send_ns = cost;
    smp_cfg.comm_per_msg_recv_ns = cost;
    auto nonsmp_cfg = bench::bench_runtime_nonsmp();
    nonsmp_cfg.comm_per_msg_send_ns = cost;
    nonsmp_cfg.comm_per_msg_recv_ns = cost;

    apps::PingAckParams params;
    params.messages_per_worker = msgs_per_worker;

    rt::Machine smp(util::Topology(2, 1, workers_per_node), smp_cfg);
    apps::PingAckApp smp_app(smp);
    const double t_smp = bench::median_seconds(
        static_cast<int>(opt.trials),
        [&] { return smp_app.run(params).total_s; });

    rt::Machine nonsmp(util::Topology(2, workers_per_node, 1), nonsmp_cfg);
    apps::PingAckApp nonsmp_app(nonsmp);
    const double t_nonsmp = bench::median_seconds(
        static_cast<int>(opt.trials),
        [&] { return nonsmp_app.run(params).total_s; });

    const double ratio = t_smp / t_nonsmp;
    ratios.push_back(ratio);
    table.add_row({util::Table::fmt(cost, 0), util::Table::fmt(t_smp, 4),
                   util::Table::fmt(t_nonsmp, 4),
                   util::Table::fmt(ratio, 2)});
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  shapes.expect(ratios.back() > ratios.front(),
                "the SMP/non-SMP gap widens with per-message comm cost");
  shapes.expect(ratios.back() > 2.0,
                "at high per-message cost, 1-proc SMP is >2x slower "
                "(serializing comm thread)");
  shapes.report();
  return 0;
}
