/// Fig 12 reproduction: index-gather request->response latency per scheme
/// over node counts, buffer 1024 for all schemes (as in the paper).
/// Expectation: latency PP < WPs < WW — the fewer independent buffers a
/// scheme keeps, the faster each buffer fills and ships, so items wait
/// less.

#include <cstdio>

#include "ig_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig12_ig_latency: Fig 12")) return 0;

  const std::uint64_t requests = opt.quick ? 50'000 : 150'000;  // scaled 8M
  std::vector<int> node_counts = {2, 4, 8};
  if (opt.quick) node_counts = {2, 4};
  const int ppn = 2, wpp = 4;
  const std::vector<core::Scheme> schemes = {
      core::Scheme::WW, core::Scheme::WPs, core::Scheme::PP};

  util::Table table("Fig 12: index-gather mean item latency (us), " +
                    std::to_string(requests) + " requests/PE");
  std::vector<std::string> header{"scheme"};
  for (const int n : node_counts) header.push_back(std::to_string(n) + "n us");
  table.set_header(header);

  std::vector<std::vector<double>> lat(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> row{core::to_string(schemes[s])};
    for (const int nodes : node_counts) {
      core::TramConfig tram;
      tram.scheme = schemes[s];
      tram.buffer_items = 1024;
      const auto point = bench::run_ig(util::Topology(nodes, ppn, wpp), tram,
                                       requests,
                                       static_cast<int>(opt.trials));
      lat[s].push_back(point.mean_latency_us);
      row.push_back(util::Table::fmt(point.mean_latency_us, 1));
    }
    table.add_row(row);
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  const std::size_t last = node_counts.size() - 1;
  shapes.expect(lat[2][last] < lat[1][last],
                "PP latency below WPs at the largest node count");
  shapes.expect(lat[1][last] < lat[0][last],
                "WPs latency below WW at the largest node count");
  shapes.report();
  return 0;
}
