/// Microbenchmark of the pooled zero-copy payload path. Two measurements:
///
///  1. raw pool: acquire/fill/release of g-sized slabs from one thread —
///     the per-message buffer-management cost floor;
///  2. end-to-end: a TramDomain insert -> ship -> deliver workload on the
///     modeled fabric, reporting messages/sec, items/sec, and the pool
///     recycle rate observed during the measured (post-warmup) trial.
///
/// The acceptance bar for the zero-copy refactor: steady-state recycle
/// rate >= 95% and zero heap fallbacks — i.e. the hot path performs no
/// per-message heap allocation.

#include <cstdio>

#include "bench_common.hpp"
#include "core/tram.hpp"
#include "runtime/machine.hpp"
#include "util/payload_pool.hpp"
#include "util/timebase.hpp"

using namespace tram;

namespace {

struct PathResult {
  double msgs_per_sec = 0.0;
  double items_per_sec = 0.0;
  util::PayloadPool::Stats pool;
};

PathResult raw_pool_path(const bench::BenchOptions& opt) {
  const std::size_t kSlabBytes = 16 * 1024;  // g=1024 entries of 16B
  const std::uint64_t iters = opt.quick ? 500'000 : 2'000'000;
  auto& pool = util::PayloadPool::global();
  // Warm the size class, then measure pure recycling.
  for (int i = 0; i < 64; ++i) {
    util::PayloadRef r = pool.acquire(kSlabBytes);
    r.data()[0] = std::byte{1};
  }
  pool.reset_stats();
  const std::uint64_t t0 = util::now_ns();
  for (std::uint64_t i = 0; i < iters; ++i) {
    util::PayloadRef r = pool.acquire(kSlabBytes);
    // Touch both ends so the compiler cannot elide the buffer.
    r.data()[0] = static_cast<std::byte>(i);
    r.data()[kSlabBytes - 1] = static_cast<std::byte>(i >> 8);
  }
  const std::uint64_t t1 = util::now_ns();
  PathResult res;
  res.msgs_per_sec =
      static_cast<double>(iters) / (static_cast<double>(t1 - t0) * 1e-9);
  res.items_per_sec = res.msgs_per_sec;
  res.pool = pool.stats();
  return res;
}

PathResult end_to_end_path(const bench::BenchOptions& opt) {
  rt::Machine machine(util::Topology(2, 1, 2), bench::bench_runtime());
  core::TramConfig tcfg;
  tcfg.scheme = core::Scheme::WPs;
  tcfg.buffer_items = 1024;
  std::atomic<std::uint64_t> delivered{0};
  core::TramDomain<std::uint64_t> dom(
      machine, tcfg, [&](rt::Worker&, const std::uint64_t&) {
        delivered.fetch_add(1, std::memory_order_relaxed);
      });
  const int workers = machine.topology().workers();
  const int items = opt.quick ? 50'000 : 200'000;

  auto trial = [&] {
    return machine
        .run([&](rt::Worker& w) {
          auto& h = dom.on(w);
          for (int i = 0; i < items; ++i) {
            h.insert(static_cast<WorkerId>((w.id() + i) % workers),
                     static_cast<std::uint64_t>(i));
          }
          h.flush_all();
        })
        .wall_s;
  };

  (void)trial();  // warmup primes every pool size class the path touches
  core::reset_payload_pool_stats();
  dom.reset_stats();
  const double secs = trial();

  PathResult res;
  const auto stats = dom.aggregate_stats();
  res.items_per_sec = static_cast<double>(stats.items_delivered) / secs;
  res.msgs_per_sec =
      static_cast<double>(stats.msgs_shipped + stats.regroup_msgs) / secs;
  res.pool = core::payload_pool_stats();
  return res;
}

void add_path_row(util::Table& table, const char* name,
                  const PathResult& r) {
  table.add_row(
      {name, util::Table::fmt(r.msgs_per_sec / 1e6, 3),
       util::Table::fmt(r.items_per_sec / 1e6, 3),
       util::Table::fmt(100.0 * r.pool.recycle_rate(), 2),
       util::Table::fmt_int(static_cast<long long>(r.pool.heap_fallbacks)),
       util::Table::fmt_int(static_cast<long long>(r.pool.slab_allocs))});
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv,
                 "micro_payload_pool: pooled zero-copy payload path "
                 "(messages/sec and buffer recycle rate)"))
    return 0;

  const PathResult raw = raw_pool_path(opt);
  const PathResult e2e = end_to_end_path(opt);

  util::Table table("Payload pool: allocation-free message path");
  table.set_header({"path", "Mmsgs/s", "Mitems/s", "recycle %",
                    "heap fallbacks", "slab allocs"});
  add_path_row(table, "raw acquire/release", raw);
  add_path_row(table, "tram insert->deliver", e2e);
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  shapes.expect(raw.pool.recycle_rate() >= 0.99,
                "raw pool path recycles >= 99% of buffers");
  shapes.expect(e2e.pool.recycle_rate() >= 0.95,
                "steady-state tram path recycles >= 95% of buffers");
  shapes.expect(raw.pool.heap_fallbacks == 0 && e2e.pool.heap_fallbacks == 0,
                "no heap fallbacks on the hot path");
  shapes.report();
  return 0;
}
