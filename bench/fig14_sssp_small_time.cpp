/// Fig 14 reproduction: SSSP total time on a small graph over process
/// counts, schemes {WW, WPs, PP}. The paper's small problem (8M vertices
/// over 8-32 processes) stresses latency: workers starve waiting for
/// updates, so schemes that ship buffers sooner win.

#include <cstdio>

#include "sssp_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig14_sssp_small_time: Fig 14")) return 0;

  graph::GeneratorParams gp;
  gp.num_vertices = opt.quick ? 40'000 : 120'000;  // scaled from 8M
  gp.avg_degree = 8.0;
  const graph::Csr g = graph::build_uniform(gp);

  std::vector<int> proc_counts = {4, 8, 16};
  if (opt.quick) proc_counts = {4, 8};
  const std::vector<core::Scheme> schemes = {
      core::Scheme::WW, core::Scheme::WPs, core::Scheme::PP};

  util::Table table("Fig 14: SSSP small graph (" +
                    std::to_string(gp.num_vertices) +
                    " vertices, scaled from 8M) — total time (s)");
  std::vector<std::string> header{"scheme"};
  for (const int p : proc_counts) header.push_back(std::to_string(p) + "p s");
  table.set_header(header);

  std::vector<std::vector<double>> secs(schemes.size());
  bool all_verified = true;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> row{core::to_string(schemes[s])};
    for (const int procs : proc_counts) {
      core::TramConfig tram;
      tram.scheme = schemes[s];
      tram.buffer_items = 256;
      // procs processes spread over procs/2 nodes, 4 workers each.
      const auto topo = util::Topology(procs / 2, 2, 4);
      const auto point = bench::run_sssp(g, topo, tram,
                                         static_cast<int>(opt.trials));
      secs[s].push_back(point.seconds);
      all_verified = all_verified && point.verified;
      row.push_back(util::Table::fmt(point.seconds, 4));
    }
    table.add_row(row);
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  const std::size_t last = proc_counts.size() - 1;
  shapes.expect(all_verified, "distances match Dijkstra for every run");
  shapes.expect(secs[1][last] <= secs[0][last] * 1.1,
                "WPs at least matches WW on the small graph");
  shapes.report();
  return 0;
}
