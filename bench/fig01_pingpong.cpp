/// Fig 1 reproduction: ping-pong RTT/2 between two nodes across message
/// sizes. Expectation: time is flat for small messages (alpha-dominated)
/// and grows once beta*bytes rivals alpha.

#include <cstdio>

#include "apps/pingpong.hpp"
#include "bench_common.hpp"
#include "runtime/machine.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig01_pingpong: Fig 1 (alpha-beta ping-pong)"))
    return 0;

  // Same sweep as the paper's x-axis, truncated in quick mode.
  std::vector<std::size_t> sizes = {1,    4,     16,     64,     256,
                                    1024, 4096,  16384,  65536,  262144,
                                    1048576, 2097152};
  // Quick mode thins the middle of the sweep but keeps both regimes
  // (alpha-dominated small sizes, bandwidth-dominated large sizes).
  if (opt.quick) {
    sizes = {1, 64, 1024, 4096, 65536, 1048576, 2097152};
  }

  rt::Machine machine(util::Topology(2, 1, 1), bench::bench_runtime());
  apps::PingPongApp app(machine);

  util::Table table("Fig 1: ping-pong between two physical nodes (RTT/2)");
  table.set_header({"bytes", "one-way us"});

  std::vector<double> us;
  for (const std::size_t s : sizes) {
    const double t = bench::median_seconds(
        static_cast<int>(opt.trials), [&] {
          return app.run({.payload_bytes = s, .iterations = opt.quick ? 60 : 150})
              .one_way_us;
        });
    us.push_back(t);
    table.add_row({util::Table::fmt_int(static_cast<long long>(s)),
                   util::Table::fmt(t, 2)});
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  // Alpha-dominated plateau: 1B and 1KB within 2x of each other.
  const std::size_t idx_1k = opt.quick ? 2 : 5;
  const std::size_t idx_4k = opt.quick ? 3 : 6;
  shapes.expect(us[idx_1k] < 2.0 * us[0] + 1.0,
                "small-message time is flat (latency-dominated)");
  // Bandwidth regime: the largest size is clearly slower than 4KB.
  shapes.expect(us.back() > 2.0 * us[idx_4k],
                "large messages are bandwidth-dominated");
  shapes.report();
  return 0;
}
