/// Routed-vs-direct PHOLD: the second irregular app on the mesh. Sweeps
/// the virtual process count and compares direct WPs against 2-D and 3-D
/// mesh routing on the same synthetic event workload.
///
/// Verification is the point, not the timing: every event chain draws its
/// successors from the event's own RNG stream (see apps/phold.hpp), so
/// the machine-wide event count is a pure function of the seed — a routed
/// row is verified only when delivery was exactly-once (tram inserted ==
/// delivered under quiescence) AND its event count matches the
/// direct-scheme run bit-for-bit. CI's bench-smoke job fails on any
/// `"verified": false` row. With --fault-drop/--fault-dup/--fault-delay
/// the same sweep runs over a lossy fabric through the reliability layer
/// (src/fault/), and the verification must still hold.
///
/// Runs non-SMP (one worker per process) so the process count is the only
/// variable. Emits BENCH_routed_phold.json (override with --json).

#include <cstdio>
#include <string>

#include "apps/phold.hpp"
#include "bench_common.hpp"
#include "route/virtual_mesh.hpp"
#include "runtime/machine.hpp"

using namespace tram;

namespace {

struct PholdPoint : bench::RoutedPointCounters {
  double seconds = 0.0;
  std::uint64_t events = 0;
  double ooo_pct = 0.0;
  std::uint64_t items = 0;
  bool exactly_once = true;
};

PholdPoint run_phold(const util::Topology& topo,
                     const core::TramConfig& tram_cfg,
                     const rt::RuntimeConfig& rt_cfg, double end_time,
                     int trials) {
  rt::Machine machine(topo, rt_cfg);
  apps::PholdParams params;
  params.lps_per_worker = 32;
  params.init_events_per_lp = 1;
  params.lookahead = 1.0;
  params.remote_prob = 0.5;
  params.end_time = end_time;
  params.tram = tram_cfg;
  apps::PholdApp app(machine, params);

  PholdPoint point;
  util::RunningStats pct_stats;
  point.seconds = bench::median_seconds(trials, [&] {
    const auto res = app.run();
    pct_stats.add(res.ooo_pct);
    point.capture(res.tram, res.run, res.max_reserved_buffers,
                  machine.fault_stats());
    point.events = res.events_processed;
    point.items = res.tram.items_delivered;
    point.exactly_once = point.exactly_once &&
                         res.tram.items_inserted == res.tram.items_delivered;
    return res.run.wall_s;
  });
  point.ooo_pct = pct_stats.mean();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  bench::FaultOptions fault;
  std::string procs_arg;
  opt.extra = [&](util::Cli& cli) {
    cli.add_string("procs", &procs_arg,
                   "comma-separated virtual process counts to sweep");
    fault.register_cli(cli);
  };
  if (!opt.parse(argc, argv,
                 "fig_routed_phold: direct vs 2-D vs 3-D mesh routing"))
    return 0;
  if (opt.json.empty()) opt.json = "BENCH_routed_phold.json";

  const double end_time = opt.quick ? 80.0 : 150.0;
  std::vector<int> proc_counts = opt.quick ? std::vector<int>{8, 16}
                                           : std::vector<int>{8, 16, 64};
  if (!bench::resolve_proc_counts(procs_arg, proc_counts)) return 1;

  const std::vector<core::Scheme> schemes = {
      core::Scheme::WPs, core::Scheme::Mesh2D, core::Scheme::Mesh3D};

  util::Table table("Routed PHOLD: 32 LPs/PE, end_time=" +
                    util::Table::fmt(end_time, 0) + ", non-SMP" +
                    (fault.any() ? ", faulty fabric" : ""));
  table.set_header({"procs", "scheme", "mesh", "events", "ooo %", "bufs",
                    "msgs", "fwd msgs", "rtx", "wall s", "ok"});

  bench::JsonReporter json("routed_phold");
  bench::ShapeChecker shapes;
  bench::RoutedVerifySweep sweep;

  rt::RuntimeConfig rt_cfg = bench::bench_runtime_nonsmp();
  rt_cfg.fault = fault.to_config();

  for (std::size_t pi = 0; pi < proc_counts.size(); ++pi) {
    const int procs = proc_counts[pi];
    const util::Topology topo(procs, 1, 1);
    sweep.start_scale();
    // The direct scheme's event count anchors the bit-for-bit
    // cross-check for the routed rows at this scale.
    std::uint64_t direct_events = 0;
    for (const auto scheme : schemes) {
      core::TramConfig tram;
      tram.scheme = scheme;
      tram.buffer_items = 256;
      std::string mesh = "-";
      if (core::is_routed(scheme)) {
        mesh = route::VirtualMesh::auto_factor(procs,
                                               core::mesh_ndims(scheme))
                   .to_string();
      }
      trace::phase(std::string(core::to_string(scheme)) + " p=" +
                   std::to_string(procs));
      const auto point = run_phold(topo, tram, rt_cfg, end_time,
                                   static_cast<int>(opt.trials));
      if (scheme == core::Scheme::WPs) direct_events = point.events;

      const bool verified =
          point.exactly_once && point.events == direct_events &&
          point.events > 0;

      const auto c = bench::routed_counters_from(
          point, point.items ? point.seconds * 1e9 /
                                   static_cast<double>(point.items)
                             : 0.0);
      sweep.add(c, verified);

      table.add_row(
          {util::Table::fmt_int(procs), core::to_string(scheme), mesh,
           util::Table::fmt_int(static_cast<long long>(point.events)),
           util::Table::fmt(point.ooo_pct, 2),
           util::Table::fmt_int(
               static_cast<long long>(point.max_reserved_buffers)),
           util::Table::fmt_int(
               static_cast<long long>(point.tram_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.forwarded_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.faults.retransmits)),
           util::Table::fmt(point.seconds, 4), verified ? "yes" : "NO"});

      json.add(bench::make_routed_row(core::to_string(scheme),
                                      topo.to_string(), mesh, c, verified));
    }
  }
  bench::emit(table, opt);
  json.write(opt.json);

  sweep.standard_checks(
      shapes,
      "every configuration verified: exactly-once and event counts "
      "bit-for-bit equal to direct");
  shapes.report();
  return 0;
}
