/// Fig 9 reproduction: histogram weak scaling (constant updates per PE)
/// over node counts, schemes {WW, WPs, PP, WsP, non-SMP}.
///
/// Scaling note: the paper runs 2-64 Delta nodes with 64 worker PEs each
/// and 1M updates/PE; we run 2-8 simulated nodes with 8 worker PEs each.
/// The governing ratio for WW's collapse — destinations per source worker
/// vs. updates per buffer (z/g) — crosses 1 inside our sweep just as it
/// does inside the paper's: at 8 nodes, 64 destinations x g=1024 > z, so
/// WW's sends become flush-dominated while the per-process schemes still
/// fill their buffers.

#include <cstdio>

#include "hist_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig09_histogram_weak: Fig 9")) return 0;

  const std::uint64_t updates = opt.quick ? 32'000 : 64'000;
  std::vector<int> node_counts = {2, 4, 8};
  if (opt.quick) node_counts = {2, 4};
  const int ppn = 2, wpp = 4;

  util::Table table("Fig 9: histogram weak scaling, " +
                    std::to_string(updates) + " updates/PE (scaled from 1M)");
  table.set_header({"scheme", "2 nodes s", "4 nodes s", "8 nodes s",
                    "verified"});

  struct SchemeRun {
    std::string name;
    core::Scheme scheme;
    bool smp;
  };
  std::vector<SchemeRun> runs = {
      {"WW", core::Scheme::WW, true},
      {"WPs", core::Scheme::WPs, true},
      {"PP", core::Scheme::PP, true},
      {"WsP", core::Scheme::WsP, true},
      {"non-SMP (WPs)", core::Scheme::WPs, false},
  };

  // secs[scheme][node_idx]
  std::vector<std::vector<double>> secs(runs.size());
  for (std::size_t s = 0; s < runs.size(); ++s) {
    std::vector<std::string> row{runs[s].name};
    bool verified = true;
    for (const int nodes : node_counts) {
      core::TramConfig tram;
      tram.scheme = runs[s].scheme;
      tram.buffer_items = 1024;
      const auto topo = runs[s].smp
                            ? util::Topology(nodes, ppn, wpp)
                            : util::Topology(nodes, ppn * wpp, 1);
      const auto point = bench::run_histogram(
          topo,
          runs[s].smp ? bench::bench_runtime()
                      : bench::bench_runtime_nonsmp(),
          tram, updates, static_cast<int>(opt.trials));
      secs[s].push_back(point.seconds);
      verified = verified && point.verified;
      row.push_back(util::Table::fmt(point.seconds, 4));
    }
    while (row.size() < 4) row.push_back("-");
    row.push_back(verified ? "yes" : "NO");
    table.add_row(row);
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  const std::size_t last = node_counts.size() - 1;
  shapes.expect(secs[1][last] <= secs[0][last],
                "WPs beats WW at the largest node count");
  shapes.expect(secs[0][last] / secs[0][0] > secs[1][last] / secs[1][0],
                "WW degrades faster with node count than WPs "
                "(flush-dominated sends)");
  // Paper: WsP scales worse than WPs (source-side sorting). Our WsP uses a
  // counting sort, cheaper than the paper's sort, so we only require that
  // WsP shows no large advantage — see EXPERIMENTS.md for the discussion.
  shapes.expect(secs[3][last] >= 0.75 * secs[1][last],
                "WsP does not substantially beat WPs (source-side sorting "
                "brings no free win)");
  shapes.report();
  return 0;
}
