/// Fig 17 reproduction: SSSP large graph — wasted updates. Expectation:
/// unlike the small graph (Fig 15), the large, well-scaling problem shows
/// *no significant difference* in wasted updates across schemes: buffers
/// fill quickly everywhere, so scheme-induced latency differences shrink
/// relative to the work per phase.

#include <cmath>
#include <cstdio>

#include "sssp_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig17_sssp_large_wasted: Fig 17")) return 0;

  graph::GeneratorParams gp;
  gp.num_vertices = opt.quick ? 200'000 : 600'000;
  gp.avg_degree = 8.0;
  const graph::Csr g = graph::build_uniform(gp);

  const std::vector<int> node_counts = {1, 2, 4};  // see fig16 scale note
  const std::vector<core::Scheme> schemes = {core::Scheme::WW,
                                             core::Scheme::WPs};

  util::Table table("Fig 17: SSSP large graph — wasted updates (% of "
                    "received)");
  std::vector<std::string> header{"scheme"};
  for (const int n : node_counts) header.push_back(std::to_string(n) + "n %");
  table.set_header(header);

  std::vector<std::vector<double>> wasted(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> row{core::to_string(schemes[s])};
    for (const int nodes : node_counts) {
      core::TramConfig tram;
      tram.scheme = schemes[s];
      tram.buffer_items = 1024;
      const auto topo = util::Topology(nodes, 1, 4);  // see fig16 note
      const auto point = bench::run_sssp(g, topo, tram,
                                         static_cast<int>(opt.trials));
      wasted[s].push_back(point.wasted_pct);
      row.push_back(util::Table::fmt(point.wasted_pct, 2));
    }
    table.add_row(row);
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  const std::size_t last = node_counts.size() - 1;
  // "No significant difference": within 15 percentage points (the paper's
  // bars are visually close; ours carry run-to-run noise too).
  shapes.expect(std::abs(wasted[0][last] - wasted[1][last]) < 15.0,
                "wasted updates similar across WW and WPs on the large "
                "graph");
  shapes.report();
  return 0;
}
