/// Microbenchmark of the grouping/sorting step (paper section III-C: the
/// destination-side grouping of a g-item buffer across t workers costs
/// O(g + t)). Compares the WPs destination-side bucket pass with the WsP
/// source-side counting sort across g and t, and — for the routed last
/// hop — the old copy-regroup (count pass + per-rank slab + scatter copy)
/// against the sorted sub-view scatter (source counting sort into one
/// slab, receiver slices refcounted views).

#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <vector>

#include "core/grouping.hpp"
#include "core/wire.hpp"
#include "util/payload_pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace tram;
using Entry = core::WireEntry<std::uint64_t>;

std::vector<Entry> make_entries(std::size_t g, int t) {
  util::Xoshiro256 rng(123);
  std::vector<Entry> entries(g);
  for (auto& e : entries) {
    e.dest = static_cast<WorkerId>(rng.below(static_cast<std::uint64_t>(t)));
    e.item = rng();
  }
  return entries;
}

/// WPs receiver: single pass bucketing into per-worker vectors.
void BM_DestinationGrouping(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  const int t = static_cast<int>(state.range(1));
  const auto entries = make_entries(g, t);
  for (auto _ : state) {
    std::vector<std::vector<Entry>> groups(static_cast<std::size_t>(t));
    for (const Entry& e : entries) {
      groups[static_cast<std::size_t>(e.dest)].push_back(e);
    }
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * g));
}
BENCHMARK(BM_DestinationGrouping)
    ->Args({512, 4})->Args({1024, 4})->Args({4096, 4})
    ->Args({1024, 8})->Args({1024, 32});

/// WsP source: counting sort (two passes, no per-bucket allocation).
void BM_SourceCountingSort(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  const int t = static_cast<int>(state.range(1));
  const auto entries = make_entries(g, t);
  for (auto _ : state) {
    std::uint32_t counts[core::kMaxLocalWorkers] = {};
    for (const Entry& e : entries) counts[e.dest]++;
    std::uint32_t offsets[core::kMaxLocalWorkers];
    std::uint32_t acc = 0;
    for (int r = 0; r < t; ++r) {
      offsets[r] = acc;
      acc += counts[r];
    }
    std::vector<Entry> sorted(entries.size());
    for (const Entry& e : entries) sorted[offsets[e.dest]++] = e;
    benchmark::DoNotOptimize(sorted);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * g));
}
BENCHMARK(BM_SourceCountingSort)
    ->Args({512, 4})->Args({1024, 4})->Args({4096, 4})
    ->Args({1024, 8})->Args({1024, 32});

/// Routed last hop, before: the receiving process count-passes the
/// unsorted batch, acquires a fresh pool slab per destination rank, and
/// scatter-copies every entry into it.
void BM_LastHopCopyRegroup(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  const int t = static_cast<int>(state.range(1));
  const auto entries = make_entries(g, t);
  for (auto _ : state) {
    std::uint32_t counts[core::kMaxLocalWorkers] = {};
    for (const Entry& e : entries) counts[e.dest]++;
    std::array<util::PayloadRef, core::kMaxLocalWorkers> refs;
    std::array<Entry*, core::kMaxLocalWorkers> cursor{};
    for (int r = 0; r < t; ++r) {
      if (counts[r] == 0) continue;
      refs[static_cast<std::size_t>(r)] =
          util::PayloadPool::global().acquire(counts[r] * sizeof(Entry));
      cursor[static_cast<std::size_t>(r)] = reinterpret_cast<Entry*>(
          refs[static_cast<std::size_t>(r)].data());
    }
    for (const Entry& e : entries) {
      *cursor[static_cast<std::size_t>(e.dest)]++ = e;
    }
    benchmark::DoNotOptimize(refs);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * g));
}
BENCHMARK(BM_LastHopCopyRegroup)
    ->Args({512, 4})->Args({1024, 4})->Args({4096, 4})
    ->Args({1024, 8})->Args({1024, 32});

/// Routed last hop, after: the shipper counting-sorts into one slab
/// behind a RoutedSortedHeader (core/grouping.hpp — the ship-side cost),
/// and the receiver walks the segment counts slicing a refcounted
/// sub-view per rank (the whole receive-side cost: no copy, no per-rank
/// allocation).
void BM_LastHopSubviewScatter(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  const int t = static_cast<int>(state.range(1));
  const auto entries = make_entries(g, t);
  for (auto _ : state) {
    core::RoutedSortedHeader hdr;
    hdr.base.magic = core::RoutedHeader::kSortedMagic;
    util::PayloadRef slab = util::PayloadPool::global().acquire(
        sizeof hdr + g * sizeof(Entry));
    core::counting_sort_segments(
        std::span<const Entry>(entries), t,
        [](WorkerId w) { return w; }, hdr.segments,
        reinterpret_cast<Entry*>(slab.data() + sizeof hdr));
    std::memcpy(slab.data(), &hdr, sizeof hdr);
    std::array<util::PayloadRef, core::kMaxLocalWorkers> views;
    std::size_t offset = sizeof hdr;
    for (int r = 0; r < t; ++r) {
      const std::size_t bytes = hdr.segments.counts[r] * sizeof(Entry);
      if (bytes == 0) continue;
      views[static_cast<std::size_t>(r)] = slab.subref(offset, bytes);
      offset += bytes;
    }
    benchmark::DoNotOptimize(views);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * g));
}
BENCHMARK(BM_LastHopSubviewScatter)
    ->Args({512, 4})->Args({1024, 4})->Args({4096, 4})
    ->Args({1024, 8})->Args({1024, 32});

}  // namespace
