/// Microbenchmark of the grouping/sorting step (paper section III-C: the
/// destination-side grouping of a g-item buffer across t workers costs
/// O(g + t)). Compares the WPs destination-side bucket pass with the WsP
/// source-side counting sort across g and t.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "core/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace tram;
using Entry = core::WireEntry<std::uint64_t>;

std::vector<Entry> make_entries(std::size_t g, int t) {
  util::Xoshiro256 rng(123);
  std::vector<Entry> entries(g);
  for (auto& e : entries) {
    e.dest = static_cast<WorkerId>(rng.below(static_cast<std::uint64_t>(t)));
    e.item = rng();
  }
  return entries;
}

/// WPs receiver: single pass bucketing into per-worker vectors.
void BM_DestinationGrouping(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  const int t = static_cast<int>(state.range(1));
  const auto entries = make_entries(g, t);
  for (auto _ : state) {
    std::vector<std::vector<Entry>> groups(static_cast<std::size_t>(t));
    for (const Entry& e : entries) {
      groups[static_cast<std::size_t>(e.dest)].push_back(e);
    }
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * g));
}
BENCHMARK(BM_DestinationGrouping)
    ->Args({512, 4})->Args({1024, 4})->Args({4096, 4})
    ->Args({1024, 8})->Args({1024, 32});

/// WsP source: counting sort (two passes, no per-bucket allocation).
void BM_SourceCountingSort(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  const int t = static_cast<int>(state.range(1));
  const auto entries = make_entries(g, t);
  for (auto _ : state) {
    std::uint32_t counts[core::kMaxLocalWorkers] = {};
    for (const Entry& e : entries) counts[e.dest]++;
    std::uint32_t offsets[core::kMaxLocalWorkers];
    std::uint32_t acc = 0;
    for (int r = 0; r < t; ++r) {
      offsets[r] = acc;
      acc += counts[r];
    }
    std::vector<Entry> sorted(entries.size());
    for (const Entry& e : entries) sorted[offsets[e.dest]++] = e;
    benchmark::DoNotOptimize(sorted);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * g));
}
BENCHMARK(BM_SourceCountingSort)
    ->Args({512, 4})->Args({1024, 4})->Args({4096, 4})
    ->Args({1024, 8})->Args({1024, 32});

}  // namespace
