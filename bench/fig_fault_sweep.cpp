/// Recovery-path sweep: loss rate x scheme x recovery mode -> ns/item,
/// retransmit profile, and exactly-once verification on a contended,
/// lossy fabric. This is the benchmark that makes src/fault/ a
/// first-class measured subsystem instead of a correctness-only feature.
///
/// Every cell runs the histogram workload (commutative increments, so
/// the final table is order-independent) through the reliability layer
/// and verifies two things: the app-level exactly-once count, and that
/// the distributed table is *bit-identical* to a fault-free reference
/// run of the same seed — a dropped, duplicated, or reordered packet
/// that leaks past recovery corrupts the table and fails the row.
///
/// Recovery modes A/B the tentpole against the PR 5 baseline on the same
/// fault seed:
///   - "sack": SACK bitmap + fast retransmit + batch timer recovery
///     (cfg.sack = true) — one ack round names every hole, a k-loss
///     burst recovers in O(1) timeout rounds;
///   - "hol":  cumulative ack only (cfg.sack = false) — the PR 5
///     head-of-line probe, one loss recovered per timeout round.
/// Both run the same adaptive RTO and AIMD window, so the only variable
/// is the recovery scheme; the shape check asserts "sack" spends
/// strictly fewer timer rounds than "hol" at the highest loss rate.
///
/// The cost model adds per-link contention (CostModel::link_per_msg_ns)
/// so converging traffic queues on destination ingress links — the
/// regime where the AIMD window and pacing are observable (paced_msgs,
/// max_inflight_msgs, link_busy_ns in the JSON).
///
/// Unlike the other figure benches this driver exits nonzero when a row
/// fails to verify or a shape check fails: its checks are counter-based
/// (drops injected, timer rounds, byte overheads), not wall-clock-based,
/// so they are stable on a noisy box — which is what lets CI use it as
/// the recovery-path regression gate. Emits BENCH_fault_sweep.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/histogram.hpp"
#include "bench_common.hpp"
#include "route/virtual_mesh.hpp"

using namespace tram;

namespace {

struct SweepPoint : bench::RoutedPointCounters {
  double seconds = 0.0;
  bool verified = true;
  std::uint64_t table_hash = 0;
};

/// FNV-1a over the whole distributed table: any lost, duplicated, or
/// corrupted increment changes it.
std::uint64_t hash_tables(const apps::HistogramApp& app, int workers) {
  std::uint64_t h = 1469598103934665603ull;
  for (int w = 0; w < workers; ++w) {
    for (const std::uint64_t v : app.table_slice(w)) {
      std::uint64_t x = v;
      for (int i = 0; i < 8; ++i) {
        h ^= (x & 0xff);
        h *= 1099511628211ull;
        x >>= 8;
      }
    }
  }
  return h;
}

SweepPoint run_cell(const util::Topology& topo,
                    const rt::RuntimeConfig& rt_cfg,
                    const core::TramConfig& tram_cfg,
                    std::uint64_t updates_per_worker, int trials) {
  rt::Machine machine(topo, rt_cfg);
  apps::HistogramParams params;
  params.updates_per_worker = updates_per_worker;
  params.bins_per_worker = 1 << 12;
  params.tram = tram_cfg;
  apps::HistogramApp app(machine, params);

  SweepPoint point;
  point.seconds = bench::median_seconds(trials, [&] {
    const auto res = app.run();
    point.capture(res.tram, res.run, res.max_reserved_buffers,
                  machine.fault_stats());
    point.verified = point.verified && res.verified;
    return res.run.wall_s;
  });
  // Every trial reruns the same seed, so the surviving table is the
  // deterministic final state — hash it for the bit-identical check.
  point.table_hash = hash_tables(app, topo.workers());
  return point;
}

std::vector<double> parse_rate_list(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end != tok.c_str() + tok.size() || v <= 0.0 ||
        v > 0.9) {
      return {};
    }
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  std::string procs_arg;
  std::string drops_arg;
  std::int64_t fault_seed = 1;
  opt.extra = [&](util::Cli& cli) {
    cli.add_string("procs", &procs_arg,
                   "comma-separated virtual process counts to sweep");
    cli.add_string("drops", &drops_arg,
                   "comma-separated drop rates to sweep (e.g. 0.05,0.15)");
    cli.add_int("fault-seed", &fault_seed, "fault schedule seed");
  };
  if (!opt.parse(argc, argv,
                 "fig_fault_sweep: loss rate x scheme x recovery mode"))
    return 0;
  if (opt.json.empty()) opt.json = "BENCH_fault_sweep.json";
  if (fault_seed < 0) {
    std::fprintf(stderr, "--fault-seed must be non-negative\n");
    return 1;
  }

  const std::uint64_t updates = opt.quick ? 2'000 : 8'000;
  const std::uint32_t g = 256;
  std::vector<int> proc_counts{8, 16};
  if (!bench::resolve_proc_counts(procs_arg, proc_counts)) return 1;
  std::vector<double> drop_rates{0.05, 0.15};
  if (!drops_arg.empty()) {
    drop_rates = parse_rate_list(drops_arg);
    if (drop_rates.empty()) {
      std::fprintf(stderr, "--drops: cannot parse '%s'\n",
                   drops_arg.c_str());
      return 1;
    }
  }
  const double max_drop =
      *std::max_element(drop_rates.begin(), drop_rates.end());

  const std::vector<core::Scheme> schemes = {core::Scheme::WPs,
                                             core::Scheme::Mesh2D};
  struct Mode {
    const char* name;
    bool sack;
  };
  const std::vector<Mode> modes = {{"sack", true}, {"hol", false}};

  // Contended fabric: destination ingress links serialize converging
  // traffic, so the AIMD window has something real to pace against.
  rt::RuntimeConfig base_cfg = bench::bench_runtime_nonsmp();
  base_cfg.cost.link_per_msg_ns = 400.0;
  base_cfg.cost.link_per_byte_ns = 0.05;

  util::Table table("Fault sweep: " + std::to_string(updates) +
                    " updates/PE, g=" + std::to_string(g) +
                    ", non-SMP, contended links");
  table.set_header({"procs", "scheme", "mode", "drop", "rtx", "fast",
                    "rto", "dup", "paced", "win", "ns/item", "ok"});

  bench::JsonReporter json("fault_sweep");
  bench::ShapeChecker shapes;

  struct CellId {
    int procs;
    core::Scheme scheme;
    double drop;
    bool sack;
  };
  std::vector<std::pair<CellId, SweepPoint>> cells;
  bool all_verified = true;

  for (const int procs : proc_counts) {
    const util::Topology topo(procs, 1, 1);
    for (const auto scheme : schemes) {
      core::TramConfig tram;
      tram.scheme = scheme;
      tram.buffer_items = g;
      std::string mesh = "-";
      if (core::is_routed(scheme)) {
        mesh = route::VirtualMesh::auto_factor(procs,
                                               core::mesh_ndims(scheme))
                   .to_string();
      }
      // Fault-free reference: the bit-identical anchor for this
      // (procs, scheme) on the same workload seed and cost model.
      rt::RuntimeConfig ref_cfg = base_cfg;
      ref_cfg.fault = fault::FaultConfig{};
      const SweepPoint ref = run_cell(topo, ref_cfg, tram, updates, 1);
      if (!ref.verified) {
        std::fprintf(stderr, "fault-free reference failed to verify\n");
        return 1;
      }

      for (const double drop : drop_rates) {
        for (const auto& mode : modes) {
          rt::RuntimeConfig rt_cfg = base_cfg;
          rt_cfg.fault.drop_rate = drop;
          rt_cfg.fault.seed = static_cast<std::uint64_t>(fault_seed);
          rt_cfg.fault.sack = mode.sack;
          trace::phase(std::string(core::to_string(scheme)) + " p=" +
                       std::to_string(procs) + " drop=" +
                       std::to_string(drop) + " " + mode.name);
          const SweepPoint point = run_cell(
              topo, rt_cfg, tram, updates, static_cast<int>(opt.trials));
          const bool verified =
              point.verified && point.table_hash == ref.table_hash;
          all_verified = all_verified && verified;

          const double ns_per_item =
              point.seconds * 1e9 /
              static_cast<double>(updates *
                                  static_cast<std::uint64_t>(procs));
          const auto& f = point.faults;
          table.add_row(
              {util::Table::fmt_int(procs), core::to_string(scheme),
               mode.name, util::Table::fmt(drop, 2),
               util::Table::fmt_int(static_cast<long long>(f.retransmits)),
               util::Table::fmt_int(
                   static_cast<long long>(f.fast_retransmits)),
               util::Table::fmt_int(static_cast<long long>(f.rto_fires)),
               util::Table::fmt_int(static_cast<long long>(f.dup_drops)),
               util::Table::fmt_int(static_cast<long long>(f.paced_msgs)),
               util::Table::fmt_int(
                   static_cast<long long>(f.max_inflight_msgs)),
               util::Table::fmt(ns_per_item, 1),
               verified ? "yes" : "NO"});

          const auto c = bench::routed_counters_from(point, ns_per_item);
          bench::JsonRow row = bench::make_routed_row(
              core::to_string(scheme), topo.to_string(), mesh, c, verified);
          char extra[96];
          std::snprintf(extra, sizeof extra,
                        "\"drop\": %.2f, \"mode\": \"%s\"", drop,
                        mode.name);
          row.extra_json = extra;
          json.add(row);
          cells.push_back({CellId{procs, scheme, drop, mode.sack}, point});
        }
      }
    }
  }
  bench::emit(table, opt);
  json.write(opt.json);

  // -- shape checks (counter-based; this bench gates on them) --
  shapes.expect(all_verified,
                "every cell delivered exactly once and matched the "
                "fault-free reference table bit for bit");

  // The tentpole claim: at the highest loss rate, SACK recovery spends
  // strictly fewer retransmit-timer rounds than the PR 5 head-of-line
  // path on the same fault seed — multi-loss bursts resolve in batches
  // instead of one timeout per loss.
  std::uint64_t rto_sack = 0, rto_hol = 0;
  std::uint64_t fast_sack = 0;
  std::uint64_t drops_seen = 0;
  double rtx_over_total = 0.0;
  bool window_bounded = true;
  std::uint64_t link_busy = 0;
  for (const auto& [id, point] : cells) {
    const auto& f = point.faults;
    if (id.drop == max_drop) {
      (id.sack ? rto_sack : rto_hol) += f.rto_fires;
      if (id.sack) fast_sack += f.fast_retransmits;
    }
    drops_seen += f.faults_injected_drop;
    if (point.fabric_bytes > 0) {
      const double frac = static_cast<double>(f.rtx_bytes) /
                          static_cast<double>(point.fabric_bytes);
      rtx_over_total = std::max(rtx_over_total, frac);
    }
    window_bounded = window_bounded && f.max_inflight_msgs <= 64;
    link_busy += f.link_busy_ns;
  }
  shapes.expect(rto_sack < rto_hol,
                "SACK spends fewer RTO rounds than head-of-line at drop " +
                    std::to_string(max_drop) + " (" +
                    std::to_string(rto_sack) + " vs " +
                    std::to_string(rto_hol) + ")");
  shapes.expect(fast_sack > 0,
                "SACK mode fast-retransmitted at least one hole before "
                "its timer");
  shapes.expect(drops_seen > 0, "the sweep injected at least one drop");
  // Overhead bound: re-shipped bytes stay within a small multiple of the
  // injected loss (batch timer recovery re-ships live entries too, so
  // the bound is loose — but a retransmit storm blows far past it).
  shapes.expect(rtx_over_total <= 8.0 * max_drop + 0.05,
                "rtx-byte overhead bounded by injected loss (worst " +
                    std::to_string(rtx_over_total) + " of fabric bytes)");
  shapes.expect(window_bounded,
                "per-channel in-flight never exceeded window_max");
  shapes.expect(link_busy > 0,
                "contended cost model accrued link occupancy");

  const int failures = shapes.report();
  if (!all_verified || failures != 0) return 1;
  return 0;
}
