#pragma once
///
/// \file bench_common.hpp
/// \brief Shared harness for the figure-reproduction drivers.
///
/// Every fig* binary reproduces one figure of the paper: it sweeps the
/// figure's x-axis, prints the same series the paper plots, then evaluates
/// the *shape* expectations from DESIGN.md section 5 (who wins, where the
/// crossover falls) and prints SHAPE PASS/FAIL lines. Absolute numbers are
/// from our simulated fabric, not Delta — see EXPERIMENTS.md.
///
/// The scaled cost model: our workloads are ~10x smaller than the paper's
/// (one box instead of 64 Delta nodes), so per-message costs are scaled up
/// to keep the paper's governing ratio — per-message cost >> per-item
/// cost — at the same order. alpha stays microseconds; beta stays ~0.1
/// ns/B; the comm thread costs ~1.5us per message, making it the
/// serialization bottleneck exactly as in section III-A.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/scheme.hpp"
#include "core/tram_stats.hpp"
#include "fault/fault_config.hpp"
#include "net/cost_model.hpp"
#include "runtime/config.hpp"
#include "runtime/machine.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/topology.hpp"

namespace tram::bench {

/// Command-line/env options common to every figure driver.
struct BenchOptions {
  bool quick = false;  // ~4x smaller workloads (CI mode)
  std::int64_t trials = 3;
  bool csv = false;
  /// When nonempty, also write results as a JSON array to this path
  /// (see JsonReporter; benches with a perf trajectory set a default).
  std::string json;
  /// When nonempty, enable the tracing layer (src/trace/) and write the
  /// merged Chrome trace-event JSON here when the bench finishes (the
  /// destructor covers every return path), plus the per-phase summary.
  std::string trace;
  /// Driver hook to register extra options before parsing (e.g.
  /// fig_routed_histogram's --procs sweep override).
  std::function<void(util::Cli&)> extra;

  BenchOptions() = default;
  BenchOptions(const BenchOptions&) = delete;
  BenchOptions& operator=(const BenchOptions&) = delete;
  ~BenchOptions() { finish_trace(); }

  /// Parse argv; also honors TRAM_QUICK=1. Returns false on --help/err.
  bool parse(int argc, char** argv, const std::string& what) {
    util::Cli cli(what);
    cli.add_flag("quick", &quick, "run a reduced sweep (also TRAM_QUICK=1)");
    cli.add_int("trials", &trials, "timed trials per configuration");
    cli.add_flag("csv", &csv, "also print CSV rows");
    cli.add_string("json", &json, "write a JSON result array to this path");
    cli.add_string("trace", &trace,
                   "write a Chrome/Perfetto trace-event JSON to this path");
    if (extra) extra(cli);
    if (!cli.parse(argc, argv)) return false;
    if (const char* env = std::getenv("TRAM_QUICK");
        env && env[0] == '1') {
      quick = true;
    }
    if (!trace.empty()) {
      trace::set_enabled(true);
      trace::set_thread_name("main");
    }
    return true;
  }

  /// Write the trace file and the per-phase summary once (destructor
  /// fallback; call earlier to place the summary in the output).
  void finish_trace() {
    if (trace.empty() || trace_written_) return;
    trace_written_ = true;
    trace::set_enabled(false);
    trace::write_chrome_json(trace);
    trace::print_phase_summary(stdout);
  }

 private:
  bool trace_written_ = false;
};

/// Parse "8,16,64" into proc counts (the CI smoke jobs run the small
/// topologies only). Any malformed token — including trailing garbage
/// like "8x16" — empties the result; the caller then errors out rather
/// than silently sweeping a truncated list.
inline std::vector<int> parse_proc_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (tok.empty() || end != tok.c_str() + tok.size() || v <= 0 ||
        v > 1'000'000) {  // also rejects values an int cast would mangle
      return {};
    }
    out.push_back(static_cast<int>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Resolve a bench's proc-count sweep against its --procs override: an
/// empty argument keeps the defaults, a parseable list replaces them,
/// and malformed input reports and returns false (the caller exits
/// nonzero rather than sweeping a truncated list).
inline bool resolve_proc_counts(const std::string& arg,
                                std::vector<int>& counts) {
  if (arg.empty()) return true;
  if (auto parsed = parse_proc_list(arg); !parsed.empty()) {
    counts = std::move(parsed);
    return true;
  }
  std::fprintf(stderr, "--procs: cannot parse '%s'\n", arg.c_str());
  return false;
}

/// Parse "8M" / "512K" / "1G" / "4096" into bytes. Returns 0 on any
/// malformed input (including trailing garbage) — sizes are never
/// legitimately zero, so callers error out on 0.
inline std::uint64_t parse_size_bytes(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) return 0;
  std::uint64_t mult = 1;
  switch (*end) {
    case 'K': case 'k': mult = 1ull << 10; ++end; break;
    case 'M': case 'm': mult = 1ull << 20; ++end; break;
    case 'G': case 'g': mult = 1ull << 30; ++end; break;
    default: break;
  }
  if (*end != '\0') return 0;
  return static_cast<std::uint64_t>(v) * mult;
}

/// Fault-injection knobs shared by the routed benches: a lossy-fabric
/// sweep is the same sweep with these applied to the RuntimeConfig.
struct FaultOptions {
  double drop = 0.0;
  double dup = 0.0;
  std::int64_t delay_ns = 0;
  std::int64_t seed = 1;

  void register_cli(util::Cli& cli) {
    cli.add_double("fault-drop", &drop,
                   "packet drop probability (installs the reliability "
                   "layer when nonzero)");
    cli.add_double("fault-dup", &dup, "packet duplication probability");
    cli.add_int("fault-delay", &delay_ns, "extra per-packet delay, ns");
    cli.add_int("fault-seed", &seed, "fault schedule seed");
  }

  bool any() const noexcept { return drop > 0.0 || dup > 0.0 || delay_ns > 0; }

  fault::FaultConfig to_config() const {
    // A negative value would wrap through the uint64 cast into a
    // centuries-long delay (or a bogus seed) while any() reports no
    // faults — fail fast instead.
    if (delay_ns < 0 || seed < 0) {
      std::fprintf(stderr,
                   "--fault-delay and --fault-seed must be non-negative\n");
      std::exit(1);
    }
    fault::FaultConfig f;
    f.drop_rate = drop;
    f.dup_rate = dup;
    f.delay_ns = static_cast<std::uint64_t>(delay_ns);
    f.seed = static_cast<std::uint64_t>(seed);
    f.validate();  // rate errors surface here, not mid-sweep
    return f;
  }
};

/// One configuration's result in a bench sweep, as serialized by
/// JsonReporter — the machine-readable perf trajectory next to the
/// human-readable table.
struct JsonRow {
  std::string scheme;    // aggregation scheme ("WPs", "Mesh2D", ...)
  std::string topology;  // machine shape ("4n x 2p x 8w")
  std::string mesh;      // virtual mesh extents ("8x8"; "-" for direct)
  double ns_per_item = 0.0;
  std::uint64_t messages = 0;   // fabric-level (aggregated) messages
  std::uint64_t bytes = 0;      // fabric-level bytes
  std::uint64_t forwarded = 0;  // messages re-shipped by intermediates
  std::uint64_t sorted = 0;     // pre-sorted last-hop (fast path) messages
  std::uint64_t subviews = 0;   // final-hop segments handed on zero-copy
  /// Forwarded bytes memcpy'd into intermediate slot buffers (0 on the
  /// wpp==1 zero-copy path) vs. staged as refcounted sub-views.
  std::uint64_t fwd_copy_bytes = 0;
  std::uint64_t fwd_subview_bytes = 0;
  /// Worst-case bytes pinned in staged forward runs on any one worker
  /// (the sub-view retention high-water; 0 for direct schemes).
  std::uint64_t max_staged_fwd_bytes = 0;
  std::uint64_t max_buffers = 0;  // live source buffers, worst worker
  /// Fault/reliability counters (src/fault/); all zero when the run was
  /// fault-free.
  core::FaultStats faults;
  /// Extra bench-specific fields, pre-rendered as JSON ("\"k\": v, ...");
  /// spliced into the row object verbatim when nonempty.
  std::string extra_json;
  bool verified = true;
};

/// The counter slice shared by every routed app bench: the app point
/// structs (HistoPoint / SsspPoint / PholdPoint / ShufflePoint) inherit
/// it and add their app-specific fields, so a new app cannot fork the
/// copy-paste again. capture() fills it from the pieces every app result
/// carries.
struct RoutedPointCounters {
  std::uint64_t tram_messages = 0;  // buffers shipped
  /// Messages re-shipped by routing intermediates (0 for direct schemes).
  std::uint64_t forwarded_messages = 0;
  /// Routed last-hop messages shipped pre-sorted (the zero-copy scatter
  /// fast path; 0 for direct schemes).
  std::uint64_t sorted_messages = 0;
  /// Final-hop segments handed on as refcounted sub-views (0 direct).
  std::uint64_t subview_deliveries = 0;
  /// Forwarded bytes copied into intermediate slot buffers vs. staged as
  /// sub-views of the inbound/scratch slab (both 0 for direct schemes;
  /// copy is 0 with one worker per process — the zero-copy claim).
  std::uint64_t fwd_copy_bytes = 0;
  std::uint64_t fwd_subview_bytes = 0;
  /// Worst-case staged-forward retention on any one worker (bytes).
  std::uint64_t max_staged_fwd_bytes = 0;
  std::uint64_t fabric_messages = 0;
  std::uint64_t fabric_bytes = 0;
  /// Live source-side buffers on the worst worker (O(N) direct,
  /// O(d*N^(1/d)) routed).
  std::uint64_t max_reserved_buffers = 0;
  /// Fault/reliability counters (all zero for fault-free runs).
  core::FaultStats faults;

  void capture(const core::WorkerTramStats& tram,
               const rt::Machine::RunResult& run, std::uint64_t max_reserved,
               const core::FaultStats& f) {
    tram_messages = tram.msgs_shipped;
    forwarded_messages = run.forwarded_messages;
    sorted_messages = tram.routed_sorted_msgs;
    subview_deliveries = tram.routed_subview_deliveries;
    fwd_copy_bytes = tram.routed_forward_copy_bytes;
    fwd_subview_bytes = tram.routed_forward_subview_bytes;
    max_staged_fwd_bytes = tram.max_staged_fwd_bytes;
    fabric_messages = run.fabric_messages;
    fabric_bytes = run.fabric_bytes;
    max_reserved_buffers = max_reserved;
    faults = f;
  }
};

/// The slice of a bench point every routed row reports — what
/// make_routed_row serializes and RoutedVerifySweep compares.
struct RoutedRowCounters {
  double ns_per_item = 0.0;
  std::uint64_t fabric_messages = 0;
  std::uint64_t fabric_bytes = 0;
  std::uint64_t forwarded_messages = 0;
  std::uint64_t sorted_messages = 0;
  std::uint64_t subview_deliveries = 0;
  std::uint64_t fwd_copy_bytes = 0;
  std::uint64_t fwd_subview_bytes = 0;
  std::uint64_t max_staged_fwd_bytes = 0;
  std::uint64_t max_reserved_buffers = 0;
  core::FaultStats faults;
};

/// Collect the shared counter slice out of a bench's point struct.
inline RoutedRowCounters routed_counters_from(const RoutedPointCounters& p,
                                              double ns_per_item) {
  RoutedRowCounters c;
  c.ns_per_item = ns_per_item;
  c.fabric_messages = p.fabric_messages;
  c.fabric_bytes = p.fabric_bytes;
  c.forwarded_messages = p.forwarded_messages;
  c.sorted_messages = p.sorted_messages;
  c.subview_deliveries = p.subview_deliveries;
  c.fwd_copy_bytes = p.fwd_copy_bytes;
  c.fwd_subview_bytes = p.fwd_subview_bytes;
  c.max_staged_fwd_bytes = p.max_staged_fwd_bytes;
  c.max_reserved_buffers = p.max_reserved_buffers;
  c.faults = p.faults;
  return c;
}

/// Build the JSON row every routed bench emits per (scheme, scale) cell.
inline JsonRow make_routed_row(const std::string& scheme,
                               const std::string& topology,
                               const std::string& mesh,
                               const RoutedRowCounters& c, bool verified) {
  JsonRow row;
  row.scheme = scheme;
  row.topology = topology;
  row.mesh = mesh;
  row.ns_per_item = c.ns_per_item;
  row.messages = c.fabric_messages;
  row.bytes = c.fabric_bytes;
  row.forwarded = c.forwarded_messages;
  row.sorted = c.sorted_messages;
  row.subviews = c.subview_deliveries;
  row.fwd_copy_bytes = c.fwd_copy_bytes;
  row.fwd_subview_bytes = c.fwd_subview_bytes;
  row.max_staged_fwd_bytes = c.max_staged_fwd_bytes;
  row.max_buffers = c.max_reserved_buffers;
  row.faults = c.faults;
  row.verified = verified;
  return row;
}


/// Accumulates JsonRows and writes them as one JSON document:
///   {"bench": <name>, "results": [ {...}, ... ]}
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench) : bench_(std::move(bench)) {}

  void add(JsonRow row) { rows_.push_back(std::move(row)); }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot open '%s'\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [",
                 bench_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const JsonRow& r = rows_[i];
      std::fprintf(f,
                   "%s\n    {\"scheme\": \"%s\", \"topology\": \"%s\", "
                   "\"mesh\": \"%s\", \"ns_per_item\": %.2f, "
                   "\"messages\": %llu, \"bytes\": %llu, "
                   "\"forwarded\": %llu, \"sorted\": %llu, "
                   "\"subviews\": %llu, "
                   "\"fwd_copy_bytes\": %llu, "
                   "\"fwd_subview_bytes\": %llu, "
                   "\"max_staged_fwd_bytes\": %llu, "
                   "\"max_buffers\": %llu, "
                   "\"faults_injected_drop\": %llu, "
                   "\"faults_injected_dup\": %llu, "
                   "\"faults_injected_delay\": %llu, "
                   "\"retransmits\": %llu, \"dup_drops\": %llu, "
                   "\"acks_sent\": %llu, "
                   "\"fast_retransmits\": %llu, \"rto_fires\": %llu, "
                   "\"rtx_bytes\": %llu, \"paced_msgs\": %llu, "
                   "\"max_inflight_msgs\": %llu, "
                   "\"link_busy_ns\": %llu, \"max_link_queue_ns\": %llu, "
                   "%s%s\"verified\": %s}",
                   i == 0 ? "" : ",", r.scheme.c_str(), r.topology.c_str(),
                   r.mesh.c_str(), r.ns_per_item,
                   static_cast<unsigned long long>(r.messages),
                   static_cast<unsigned long long>(r.bytes),
                   static_cast<unsigned long long>(r.forwarded),
                   static_cast<unsigned long long>(r.sorted),
                   static_cast<unsigned long long>(r.subviews),
                   static_cast<unsigned long long>(r.fwd_copy_bytes),
                   static_cast<unsigned long long>(r.fwd_subview_bytes),
                   static_cast<unsigned long long>(r.max_staged_fwd_bytes),
                   static_cast<unsigned long long>(r.max_buffers),
                   static_cast<unsigned long long>(
                       r.faults.faults_injected_drop),
                   static_cast<unsigned long long>(
                       r.faults.faults_injected_dup),
                   static_cast<unsigned long long>(
                       r.faults.faults_injected_delay),
                   static_cast<unsigned long long>(r.faults.retransmits),
                   static_cast<unsigned long long>(r.faults.dup_drops),
                   static_cast<unsigned long long>(r.faults.acks_sent),
                   static_cast<unsigned long long>(
                       r.faults.fast_retransmits),
                   static_cast<unsigned long long>(r.faults.rto_fires),
                   static_cast<unsigned long long>(r.faults.rtx_bytes),
                   static_cast<unsigned long long>(r.faults.paced_msgs),
                   static_cast<unsigned long long>(
                       r.faults.max_inflight_msgs),
                   static_cast<unsigned long long>(r.faults.link_busy_ns),
                   static_cast<unsigned long long>(
                       r.faults.max_link_queue_ns),
                   r.extra_json.c_str(), r.extra_json.empty() ? "" : ", ",
                   r.verified ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %zu results to %s\n", rows_.size(), path.c_str());
    return true;
  }

 private:
  std::string bench_;
  std::vector<JsonRow> rows_;
};

/// Interconnect model used by all figure benches (see file comment).
inline net::CostModel bench_cost_model() {
  net::CostModel m;
  m.alpha_remote_ns = 20'000.0;
  m.alpha_local_ns = 2'000.0;
  m.beta_remote_ns = 0.1;
  m.beta_local_ns = 0.02;
  // Kept well below the comm-thread per-message cost: real NICs accept
  // injections from many processes in parallel (per-process queue pairs),
  // so the node-level serialization point must not mask the comm thread.
  m.inject_ns = 200.0;
  return m;
}

/// Runtime config for SMP-mode figure runs.
inline rt::RuntimeConfig bench_runtime() {
  rt::RuntimeConfig cfg;
  cfg.cost = bench_cost_model();
  cfg.comm_per_msg_send_ns = 1'500.0;
  cfg.comm_per_msg_recv_ns = 1'500.0;
  cfg.comm_per_byte_ns = 0.05;
  return cfg;
}

/// Runtime config for non-SMP runs (each worker communicates for itself).
inline rt::RuntimeConfig bench_runtime_nonsmp() {
  rt::RuntimeConfig cfg = bench_runtime();
  cfg.dedicated_comm = false;
  return cfg;
}

/// Run `fn` (returning seconds) `trials` times after one warmup; returns
/// the median.
template <typename Fn>
double median_seconds(int trials, Fn&& fn) {
  (void)fn();  // warmup
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) samples.push_back(fn());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Collects shape-expectation results and prints a summary.
class ShapeChecker {
 public:
  void expect(bool ok, const std::string& what) {
    checks_.push_back({ok, what});
    if (!ok) failures_++;
  }

  /// Prints every check and returns the number of failures. Benches exit 0
  /// regardless (a noisy box must not break the pipeline); EXPERIMENTS.md
  /// records the outcomes.
  int report() const {
    std::printf("\n-- shape checks --\n");
    for (const auto& [ok, what] : checks_) {
      std::printf("[%s] %s\n", ok ? "SHAPE PASS" : "SHAPE FAIL",
                  what.c_str());
    }
    std::printf("%zu/%zu shape checks passed\n", checks_.size() - failures_,
                checks_.size());
    return static_cast<int>(failures_);
  }

 private:
  std::vector<std::pair<bool, std::string>> checks_;
  std::size_t failures_ = 0;
};

/// Direct-vs-routed verification bookkeeping shared by the routed app
/// benches: per-(scale, scheme) cells in sweep order — the first scheme
/// of each scale is the direct anchor — plus the structural shape checks
/// every routed bench asserts.
class RoutedVerifySweep {
 public:
  /// Call once per proc count, before that scale's add() calls.
  void start_scale() { cells_.emplace_back(); }
  void add(const RoutedRowCounters& c, bool verified) {
    cells_.back().push_back(Cell{c, verified});
  }

  bool all_verified() const {
    for (const auto& scale : cells_) {
      for (const auto& cell : scale) {
        if (!cell.verified) return false;
      }
    }
    return true;
  }

  /// The shared routed-bench shape checks, evaluated at the largest
  /// scale (cell order per scale: 0 = direct anchor, 1 = 2-D, 2 = 3-D):
  /// everything verified, the 2-D mesh beats direct on live buffers, and
  /// only the routed schemes forward through intermediates.
  void standard_checks(ShapeChecker& shapes,
                       const std::string& verified_what) const {
    shapes.expect(all_verified(), verified_what);
    const auto& last = cells_.back();
    const RoutedRowCounters& direct = last[0].c;
    const RoutedRowCounters& mesh2d = last[1].c;
    const RoutedRowCounters& mesh3d = last[2].c;
    shapes.expect(
        mesh2d.max_reserved_buffers < direct.max_reserved_buffers,
        "2-D mesh holds fewer live source buffers than direct at the "
        "largest scale");
    shapes.expect(direct.forwarded_messages == 0 &&
                      mesh2d.forwarded_messages > 0 &&
                      mesh3d.forwarded_messages > 0,
                  "only the routed schemes forward through intermediates");
  }

 private:
  struct Cell {
    RoutedRowCounters c;
    bool verified = false;
  };
  std::vector<std::vector<Cell>> cells_;
};

/// Print the table (and CSV when requested).
inline void emit(const util::Table& table, const BenchOptions& opt) {
  table.print();
  if (opt.csv) {
    std::printf("\n-- csv --\n%s", table.to_csv().c_str());
  }
}

}  // namespace tram::bench
