#pragma once
///
/// \file bench_common.hpp
/// \brief Shared harness for the figure-reproduction drivers.
///
/// Every fig* binary reproduces one figure of the paper: it sweeps the
/// figure's x-axis, prints the same series the paper plots, then evaluates
/// the *shape* expectations from DESIGN.md section 5 (who wins, where the
/// crossover falls) and prints SHAPE PASS/FAIL lines. Absolute numbers are
/// from our simulated fabric, not Delta — see EXPERIMENTS.md.
///
/// The scaled cost model: our workloads are ~10x smaller than the paper's
/// (one box instead of 64 Delta nodes), so per-message costs are scaled up
/// to keep the paper's governing ratio — per-message cost >> per-item
/// cost — at the same order. alpha stays microseconds; beta stays ~0.1
/// ns/B; the comm thread costs ~1.5us per message, making it the
/// serialization bottleneck exactly as in section III-A.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/cost_model.hpp"
#include "runtime/config.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/topology.hpp"

namespace tram::bench {

/// Command-line/env options common to every figure driver.
struct BenchOptions {
  bool quick = false;  // ~4x smaller workloads (CI mode)
  std::int64_t trials = 3;
  bool csv = false;
  /// When nonempty, also write results as a JSON array to this path
  /// (see JsonReporter; benches with a perf trajectory set a default).
  std::string json;
  /// Driver hook to register extra options before parsing (e.g.
  /// fig_routed_histogram's --procs sweep override).
  std::function<void(util::Cli&)> extra;

  /// Parse argv; also honors TRAM_QUICK=1. Returns false on --help/err.
  bool parse(int argc, char** argv, const std::string& what) {
    util::Cli cli(what);
    cli.add_flag("quick", &quick, "run a reduced sweep (also TRAM_QUICK=1)");
    cli.add_int("trials", &trials, "timed trials per configuration");
    cli.add_flag("csv", &csv, "also print CSV rows");
    cli.add_string("json", &json, "write a JSON result array to this path");
    if (extra) extra(cli);
    if (!cli.parse(argc, argv)) return false;
    if (const char* env = std::getenv("TRAM_QUICK");
        env && env[0] == '1') {
      quick = true;
    }
    return true;
  }
};

/// Parse "8,16,64" into proc counts (the CI smoke jobs run the small
/// topologies only). Any malformed token — including trailing garbage
/// like "8x16" — empties the result; the caller then errors out rather
/// than silently sweeping a truncated list.
inline std::vector<int> parse_proc_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (tok.empty() || end != tok.c_str() + tok.size() || v <= 0 ||
        v > 1'000'000) {  // also rejects values an int cast would mangle
      return {};
    }
    out.push_back(static_cast<int>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Resolve a bench's proc-count sweep against its --procs override: an
/// empty argument keeps the defaults, a parseable list replaces them,
/// and malformed input reports and returns false (the caller exits
/// nonzero rather than sweeping a truncated list).
inline bool resolve_proc_counts(const std::string& arg,
                                std::vector<int>& counts) {
  if (arg.empty()) return true;
  if (auto parsed = parse_proc_list(arg); !parsed.empty()) {
    counts = std::move(parsed);
    return true;
  }
  std::fprintf(stderr, "--procs: cannot parse '%s'\n", arg.c_str());
  return false;
}

/// One configuration's result in a bench sweep, as serialized by
/// JsonReporter — the machine-readable perf trajectory next to the
/// human-readable table.
struct JsonRow {
  std::string scheme;    // aggregation scheme ("WPs", "Mesh2D", ...)
  std::string topology;  // machine shape ("4n x 2p x 8w")
  std::string mesh;      // virtual mesh extents ("8x8"; "-" for direct)
  double ns_per_item = 0.0;
  std::uint64_t messages = 0;   // fabric-level (aggregated) messages
  std::uint64_t bytes = 0;      // fabric-level bytes
  std::uint64_t forwarded = 0;  // messages re-shipped by intermediates
  std::uint64_t sorted = 0;     // pre-sorted last-hop (fast path) messages
  std::uint64_t subviews = 0;   // final-hop segments handed on zero-copy
  std::uint64_t max_buffers = 0;  // live source buffers, worst worker
  bool verified = true;
};

/// Accumulates JsonRows and writes them as one JSON document:
///   {"bench": <name>, "results": [ {...}, ... ]}
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench) : bench_(std::move(bench)) {}

  void add(JsonRow row) { rows_.push_back(std::move(row)); }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot open '%s'\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [",
                 bench_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const JsonRow& r = rows_[i];
      std::fprintf(f,
                   "%s\n    {\"scheme\": \"%s\", \"topology\": \"%s\", "
                   "\"mesh\": \"%s\", \"ns_per_item\": %.2f, "
                   "\"messages\": %llu, \"bytes\": %llu, "
                   "\"forwarded\": %llu, \"sorted\": %llu, "
                   "\"subviews\": %llu, \"max_buffers\": %llu, "
                   "\"verified\": %s}",
                   i == 0 ? "" : ",", r.scheme.c_str(), r.topology.c_str(),
                   r.mesh.c_str(), r.ns_per_item,
                   static_cast<unsigned long long>(r.messages),
                   static_cast<unsigned long long>(r.bytes),
                   static_cast<unsigned long long>(r.forwarded),
                   static_cast<unsigned long long>(r.sorted),
                   static_cast<unsigned long long>(r.subviews),
                   static_cast<unsigned long long>(r.max_buffers),
                   r.verified ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %zu results to %s\n", rows_.size(), path.c_str());
    return true;
  }

 private:
  std::string bench_;
  std::vector<JsonRow> rows_;
};

/// Interconnect model used by all figure benches (see file comment).
inline net::CostModel bench_cost_model() {
  net::CostModel m;
  m.alpha_remote_ns = 20'000.0;
  m.alpha_local_ns = 2'000.0;
  m.beta_remote_ns = 0.1;
  m.beta_local_ns = 0.02;
  // Kept well below the comm-thread per-message cost: real NICs accept
  // injections from many processes in parallel (per-process queue pairs),
  // so the node-level serialization point must not mask the comm thread.
  m.inject_ns = 200.0;
  return m;
}

/// Runtime config for SMP-mode figure runs.
inline rt::RuntimeConfig bench_runtime() {
  rt::RuntimeConfig cfg;
  cfg.cost = bench_cost_model();
  cfg.comm_per_msg_send_ns = 1'500.0;
  cfg.comm_per_msg_recv_ns = 1'500.0;
  cfg.comm_per_byte_ns = 0.05;
  return cfg;
}

/// Runtime config for non-SMP runs (each worker communicates for itself).
inline rt::RuntimeConfig bench_runtime_nonsmp() {
  rt::RuntimeConfig cfg = bench_runtime();
  cfg.dedicated_comm = false;
  return cfg;
}

/// Run `fn` (returning seconds) `trials` times after one warmup; returns
/// the median.
template <typename Fn>
double median_seconds(int trials, Fn&& fn) {
  (void)fn();  // warmup
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) samples.push_back(fn());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Collects shape-expectation results and prints a summary.
class ShapeChecker {
 public:
  void expect(bool ok, const std::string& what) {
    checks_.push_back({ok, what});
    if (!ok) failures_++;
  }

  /// Prints every check and returns the number of failures. Benches exit 0
  /// regardless (a noisy box must not break the pipeline); EXPERIMENTS.md
  /// records the outcomes.
  int report() const {
    std::printf("\n-- shape checks --\n");
    for (const auto& [ok, what] : checks_) {
      std::printf("[%s] %s\n", ok ? "SHAPE PASS" : "SHAPE FAIL",
                  what.c_str());
    }
    std::printf("%zu/%zu shape checks passed\n", checks_.size() - failures_,
                checks_.size());
    return static_cast<int>(failures_);
  }

 private:
  std::vector<std::pair<bool, std::string>> checks_;
  std::size_t failures_ = 0;
};

/// Print the table (and CSV when requested).
inline void emit(const util::Table& table, const BenchOptions& opt) {
  table.print();
  if (opt.csv) {
    std::printf("\n-- csv --\n%s", table.to_csv().c_str());
  }
}

}  // namespace tram::bench
