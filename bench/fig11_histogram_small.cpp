/// Fig 11 reproduction: histogram with a small update count per PE (the
/// paper's 128K, scaled) — the flush-dominated regime standing in for
/// latency-sensitive applications with frequent flushes. Buffer sizes per
/// the paper: WW at 512, all others at 1024. Expectation: WPs clearly
/// best at scale; PP does not beat WPs (atomics overhead); WW worst at
/// the larger node counts.

#include <cstdio>

#include "hist_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig11_histogram_small: Fig 11")) return 0;

  const std::uint64_t updates = opt.quick ? 4'000 : 8'000;  // scaled 128K
  std::vector<int> node_counts = {2, 4, 8};
  if (opt.quick) node_counts = {2, 4};
  const int ppn = 2, wpp = 4;

  struct SchemeRun {
    std::string name;
    core::Scheme scheme;
    std::uint32_t buffer;
  };
  std::vector<SchemeRun> runs = {
      {"WW (512 buffer)", core::Scheme::WW, 512},
      {"WPs (1k buffer)", core::Scheme::WPs, 1024},
      {"PP (1k buffer)", core::Scheme::PP, 1024},
      {"WsP (1k buffer)", core::Scheme::WsP, 1024},
  };

  util::Table table("Fig 11: histogram, " + std::to_string(updates) +
                    " updates/PE (scaled 128K) — flush-heavy regime");
  std::vector<std::string> header{"scheme"};
  for (const int n : node_counts) header.push_back(std::to_string(n) + "n s");
  table.set_header(header);

  std::vector<std::vector<double>> secs(runs.size());
  for (std::size_t s = 0; s < runs.size(); ++s) {
    std::vector<std::string> row{runs[s].name};
    for (const int nodes : node_counts) {
      core::TramConfig tram;
      tram.scheme = runs[s].scheme;
      tram.buffer_items = runs[s].buffer;
      const auto point = bench::run_histogram(
          util::Topology(nodes, ppn, wpp), bench::bench_runtime(), tram,
          updates, static_cast<int>(opt.trials));
      secs[s].push_back(point.seconds);
      row.push_back(util::Table::fmt(point.seconds, 4));
    }
    table.add_row(row);
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  const std::size_t last = node_counts.size() - 1;
  shapes.expect(secs[1][last] <= secs[0][last],
                "WPs beats WW in the flush-heavy regime");
  shapes.expect(secs[2][last] >= 0.8 * secs[1][last],
                "PP does not meaningfully beat WPs (atomics overhead)");
  shapes.report();
  return 0;
}
