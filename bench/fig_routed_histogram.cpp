/// Routed-vs-direct histogram: the scaling experiment the paper's direct
/// schemes cannot run. Sweeps the virtual process count and compares
/// direct WPs against 2-D and 3-D mesh routing (src/route/) on the same
/// workload. Expectations: the direct scheme's live source buffers grow
/// O(N) while the meshes hold O(d*N^(1/d)); per-buffer fill (items/msg)
/// degrades for direct as N grows but stays flat for routed; routed pays
/// for this with forwarded (multi-hop) messages.
///
/// Runs non-SMP (one worker per process) so the process count is the only
/// variable. Emits BENCH_routed_histogram.json (override with --json).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "hist_common.hpp"
#include "route/virtual_mesh.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  std::string procs_arg;
  opt.extra = [&](util::Cli& cli) {
    cli.add_string("procs", &procs_arg,
                   "comma-separated virtual process counts to sweep");
  };
  if (!opt.parse(argc, argv,
                 "fig_routed_histogram: direct vs 2-D vs 3-D mesh routing"))
    return 0;
  if (opt.json.empty()) opt.json = "BENCH_routed_histogram.json";

  const std::uint64_t updates = opt.quick ? 4'000 : 20'000;
  // Small buffers keep the message rate meaningful at these scales; the
  // buffer-count contrast is independent of g.
  const std::uint32_t g = 256;
  std::vector<int> proc_counts = opt.quick ? std::vector<int>{16, 64}
                                           : std::vector<int>{8, 16, 27, 64};
  if (!bench::resolve_proc_counts(procs_arg, proc_counts)) return 1;

  const std::vector<core::Scheme> schemes = {
      core::Scheme::WPs, core::Scheme::Mesh2D, core::Scheme::Mesh3D};

  util::Table table("Routed histogram: " + std::to_string(updates) +
                    " updates/PE, g=" + std::to_string(g) + ", non-SMP");
  table.set_header({"procs", "scheme", "mesh", "bufs", "items/msg", "msgs",
                    "fwd msgs", "sorted", "wall s", "ok"});

  bench::JsonReporter json("routed_histogram");
  bench::ShapeChecker shapes;

  struct Cell {
    bench::HistoPoint point;
    std::string mesh;
  };
  std::vector<std::vector<Cell>> cells(proc_counts.size());

  for (std::size_t pi = 0; pi < proc_counts.size(); ++pi) {
    const int procs = proc_counts[pi];
    const util::Topology topo(procs, 1, 1);
    for (const auto scheme : schemes) {
      core::TramConfig tram;
      tram.scheme = scheme;
      tram.buffer_items = g;
      std::string mesh = "-";
      if (core::is_routed(scheme)) {
        mesh = route::VirtualMesh::auto_factor(procs,
                                               core::mesh_ndims(scheme))
                   .to_string();
      }
      const auto point = bench::run_histogram(
          topo, bench::bench_runtime_nonsmp(), tram, updates,
          static_cast<int>(opt.trials));
      cells[pi].push_back({point, mesh});

      const double ns_per_item =
          point.seconds * 1e9 /
          static_cast<double>(updates * static_cast<std::uint64_t>(procs));
      table.add_row(
          {util::Table::fmt_int(procs), core::to_string(scheme), mesh,
           util::Table::fmt_int(
               static_cast<long long>(point.max_reserved_buffers)),
           util::Table::fmt(point.mean_occupancy, 1),
           util::Table::fmt_int(
               static_cast<long long>(point.tram_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.forwarded_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.sorted_messages)),
           util::Table::fmt(point.seconds, 4),
           point.verified ? "yes" : "NO"});

      bench::JsonRow row;
      row.scheme = core::to_string(scheme);
      row.topology = topo.to_string();
      row.mesh = mesh;
      row.ns_per_item = ns_per_item;
      row.messages = point.fabric_messages;
      row.bytes = point.fabric_bytes;
      row.forwarded = point.forwarded_messages;
      row.sorted = point.sorted_messages;
      row.subviews = point.subview_deliveries;
      row.max_buffers = point.max_reserved_buffers;
      row.verified = point.verified;
      json.add(row);
    }
  }
  bench::emit(table, opt);
  json.write(opt.json);

  // Shape expectations (indices follow `schemes`: 0=WPs, 1=2D, 2=3D).
  bool all_verified = true;
  for (const auto& per_proc : cells) {
    for (const auto& c : per_proc) all_verified = all_verified && c.point.verified;
  }
  shapes.expect(all_verified,
                "every configuration delivered every item exactly once");

  const std::size_t last = proc_counts.size() - 1;  // largest proc count
  const auto& direct = cells[last][0].point;
  const auto& mesh2d = cells[last][1].point;
  const auto& mesh3d = cells[last][2].point;
  shapes.expect(mesh2d.max_reserved_buffers < direct.max_reserved_buffers,
                "2-D mesh holds fewer live source buffers than direct WPs "
                "at the largest scale");
  shapes.expect(mesh3d.max_reserved_buffers <= mesh2d.max_reserved_buffers,
                "3-D mesh holds no more live buffers than 2-D");
  shapes.expect(mesh2d.mean_occupancy > direct.mean_occupancy,
                "fewer, fatter buffers: routed messages carry more items "
                "than direct at the largest scale");
  shapes.expect(direct.forwarded_messages == 0 &&
                    mesh2d.forwarded_messages > 0,
                "only the routed scheme forwards through intermediates");
  shapes.expect(mesh2d.sorted_messages > 0 && mesh3d.sorted_messages > 0 &&
                    direct.sorted_messages == 0,
                "routed last hops ship pre-sorted (zero-copy scatter fast "
                "path)");
  shapes.report();
  return 0;
}
