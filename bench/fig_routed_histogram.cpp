/// Routed-vs-direct histogram: the scaling experiment the paper's direct
/// schemes cannot run. Sweeps the virtual process count and compares
/// direct WPs against 2-D and 3-D mesh routing (src/route/) on the same
/// workload. Expectations: the direct scheme's live source buffers grow
/// O(N) while the meshes hold O(d*N^(1/d)); per-buffer fill (items/msg)
/// degrades for direct as N grows but stays flat for routed; routed pays
/// for this with forwarded (multi-hop) messages.
///
/// With --fault-drop/--fault-dup/--fault-delay the sweep runs over a
/// lossy fabric through the reliability layer (src/fault/): every row
/// must still verify (exactly-once table totals), and the fault counters
/// land in the JSON. Without fault flags the bench additionally checks
/// the zero-cost guarantee: an explicitly all-zero FaultConfig leaves the
/// transport chain undecorated and the WPs ns/item unchanged (within
/// host noise).
///
/// Runs non-SMP (one worker per process) so the process count is the only
/// variable. Emits BENCH_routed_histogram.json (override with --json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hist_common.hpp"
#include "route/virtual_mesh.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  bench::FaultOptions fault;
  std::string procs_arg;
  opt.extra = [&](util::Cli& cli) {
    cli.add_string("procs", &procs_arg,
                   "comma-separated virtual process counts to sweep");
    fault.register_cli(cli);
  };
  if (!opt.parse(argc, argv,
                 "fig_routed_histogram: direct vs 2-D vs 3-D mesh routing"))
    return 0;
  if (opt.json.empty()) opt.json = "BENCH_routed_histogram.json";

  const std::uint64_t updates = opt.quick ? 4'000 : 20'000;
  // Small buffers keep the message rate meaningful at these scales; the
  // buffer-count contrast is independent of g.
  const std::uint32_t g = 256;
  std::vector<int> proc_counts = opt.quick ? std::vector<int>{16, 64}
                                           : std::vector<int>{8, 16, 27, 64};
  if (!bench::resolve_proc_counts(procs_arg, proc_counts)) return 1;

  const std::vector<core::Scheme> schemes = {
      core::Scheme::WPs, core::Scheme::Mesh2D, core::Scheme::Mesh3D};

  util::Table table("Routed histogram: " + std::to_string(updates) +
                    " updates/PE, g=" + std::to_string(g) + ", non-SMP" +
                    (fault.any() ? ", faulty fabric" : ""));
  table.set_header({"procs", "scheme", "mesh", "bufs", "items/msg", "msgs",
                    "fwd msgs", "sorted", "rtx", "wall s", "ok"});

  bench::JsonReporter json("routed_histogram");
  bench::ShapeChecker shapes;
  bench::RoutedVerifySweep sweep;

  rt::RuntimeConfig rt_cfg = bench::bench_runtime_nonsmp();
  rt_cfg.fault = fault.to_config();

  struct Cell {
    bench::HistoPoint point;
    std::string mesh;
  };
  std::vector<std::vector<Cell>> cells(proc_counts.size());

  for (std::size_t pi = 0; pi < proc_counts.size(); ++pi) {
    const int procs = proc_counts[pi];
    const util::Topology topo(procs, 1, 1);
    sweep.start_scale();
    for (const auto scheme : schemes) {
      core::TramConfig tram;
      tram.scheme = scheme;
      tram.buffer_items = g;
      std::string mesh = "-";
      if (core::is_routed(scheme)) {
        mesh = route::VirtualMesh::auto_factor(procs,
                                               core::mesh_ndims(scheme))
                   .to_string();
      }
      trace::phase(std::string(core::to_string(scheme)) + " p=" +
                   std::to_string(procs));
      const auto point = bench::run_histogram(
          topo, rt_cfg, tram, updates, static_cast<int>(opt.trials));
      cells[pi].push_back({point, mesh});

      const double ns_per_item =
          point.seconds * 1e9 /
          static_cast<double>(updates * static_cast<std::uint64_t>(procs));
      table.add_row(
          {util::Table::fmt_int(procs), core::to_string(scheme), mesh,
           util::Table::fmt_int(
               static_cast<long long>(point.max_reserved_buffers)),
           util::Table::fmt(point.mean_occupancy, 1),
           util::Table::fmt_int(
               static_cast<long long>(point.tram_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.forwarded_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.sorted_messages)),
           util::Table::fmt_int(
               static_cast<long long>(point.faults.retransmits)),
           util::Table::fmt(point.seconds, 4),
           point.verified ? "yes" : "NO"});

      const auto c = bench::routed_counters_from(point, ns_per_item);
      sweep.add(c, point.verified);
      json.add(bench::make_routed_row(core::to_string(scheme),
                                      topo.to_string(), mesh, c,
                                      point.verified));
    }
  }
  bench::emit(table, opt);
  json.write(opt.json);

  // Shape expectations (indices follow `schemes`: 0=WPs, 1=2D, 2=3D).
  sweep.standard_checks(
      shapes, "every configuration delivered every item exactly once");

  const std::size_t last = proc_counts.size() - 1;  // largest proc count
  const auto& direct = cells[last][0].point;
  const auto& mesh2d = cells[last][1].point;
  const auto& mesh3d = cells[last][2].point;
  shapes.expect(mesh3d.max_reserved_buffers <= mesh2d.max_reserved_buffers,
                "3-D mesh holds no more live buffers than 2-D");
  shapes.expect(mesh2d.sorted_messages > 0 && mesh3d.sorted_messages > 0 &&
                    direct.sorted_messages == 0,
                "routed last hops ship pre-sorted (zero-copy scatter fast "
                "path)");
  // End-to-end zero-copy forwarding: this sweep runs one worker per
  // process, so every intermediate forward must ride as a sub-view of the
  // inbound (or rebucket-scratch) slab — not a byte copied into a slot
  // buffer — and at the multi-hop scales the sub-view share is the whole
  // forwarded volume.
  shapes.expect(mesh2d.fwd_copy_bytes == 0 && mesh3d.fwd_copy_bytes == 0,
                "wpp==1 intermediates forward without copying into slot "
                "buffers at the largest scale");
  shapes.expect(mesh3d.fwd_subview_bytes > 0,
                "3-D mesh forwards ride as refcounted sub-views at the "
                "largest scale");

  if (fault.any()) {
    // A lossy sweep must actually have been lossy — and recovered. The
    // occupancy comparison below is fault-free-only: retransmit-
    // perturbed flush timing skews items/msg either way on a healthy
    // lossy run.
    const auto& f2d = cells[last][1].point.faults;
    shapes.expect(f2d.faults_injected_drop + f2d.faults_injected_dup +
                          f2d.faults_injected_delay >
                      0,
                  "faulty sweep injected at least one fault on the 2-D "
                  "mesh at the largest scale");
  } else {
    shapes.expect(mesh2d.mean_occupancy > direct.mean_occupancy,
                  "fewer, fatter buffers: routed messages carry more "
                  "items than direct at the largest scale");
    // Zero-cost guarantee for FaultConfig{} (all zero). Structural half:
    // the default config installs no decorators and counts nothing.
    const auto& f = cells[last][0].point.faults;
    shapes.expect(f.faults_injected_drop == 0 && f.retransmits == 0 &&
                      f.dup_drops == 0 && f.acks_sent == 0,
                  "fault-free sweep engaged none of the fault machinery");
    // Timing half: re-run the smallest WPs cell with an explicitly
    // all-zero FaultConfig — the identical code path, so ns/item may
    // differ only by host noise (generous band: this box is shared).
    const int procs0 = proc_counts[0];
    const util::Topology topo0(procs0, 1, 1);
    core::TramConfig tram0;
    tram0.scheme = core::Scheme::WPs;
    tram0.buffer_items = g;
    rt::RuntimeConfig explicit_zero = bench::bench_runtime_nonsmp();
    explicit_zero.fault = fault::FaultConfig{};
    const auto rerun = bench::run_histogram(
        topo0, explicit_zero, tram0, updates, static_cast<int>(opt.trials));
    const double base_ns =
        cells[0][0].point.seconds * 1e9 /
        static_cast<double>(updates * static_cast<std::uint64_t>(procs0));
    const double rerun_ns =
        rerun.seconds * 1e9 /
        static_cast<double>(updates * static_cast<std::uint64_t>(procs0));
    std::printf("\nzero-fault sanity: WPs@%d ns/item %.2f (sweep) vs %.2f "
                "(explicit FaultConfig{})\n",
                procs0, base_ns, rerun_ns);
    shapes.expect(rerun_ns < base_ns * 4.0 && base_ns < rerun_ns * 4.0,
                  "explicit all-zero FaultConfig leaves WPs ns/item "
                  "unchanged (within host noise)");
  }

  // Tracing overhead A/B: the smallest WPs cell with event recording
  // runtime-disabled vs enabled. The record path is one predicted branch
  // when off and a 32-byte ring store when on (bench/micro_trace.cpp
  // pins both), so traced ns/item must stay within 5% of untraced. Five
  // interleaved off/on pairs, each pair yielding a ratio, and the median
  // ratio judged: adjacent runs see the same host conditions (this box's
  // run-to-run swing dwarfs the effect under test), and the median sheds
  // the scheduler's outliers.
  {
    const int procs0 = proc_counts[0];
    const util::Topology topo0(procs0, 1, 1);
    core::TramConfig tram0;
    tram0.scheme = core::Scheme::WPs;
    tram0.buffer_items = g;
    const bool was_tracing = trace::enabled();
    trace::phase("trace A/B");
    std::vector<double> ratios;
    double off_ns = 0.0, on_ns = 0.0;
    const double denom =
        static_cast<double>(updates * static_cast<std::uint64_t>(procs0));
    for (int rep = 0; rep < 5; ++rep) {
      trace::set_enabled(false);
      const auto untraced = bench::run_histogram(
          topo0, rt_cfg, tram0, updates, static_cast<int>(opt.trials));
      trace::set_enabled(true);
      const auto traced = bench::run_histogram(
          topo0, rt_cfg, tram0, updates, static_cast<int>(opt.trials));
      ratios.push_back(traced.seconds / untraced.seconds);
      off_ns = untraced.seconds * 1e9 / denom;
      on_ns = traced.seconds * 1e9 / denom;
    }
    trace::set_enabled(was_tracing);
    std::sort(ratios.begin(), ratios.end());
    const double median = ratios[ratios.size() / 2];
    std::printf("\ntrace overhead A/B: WPs@%d ns/item %.2f (untraced) vs "
                "%.2f (traced); median of %zu pair ratios %+.1f%%\n",
                procs0, off_ns, on_ns, ratios.size(),
                (median - 1.0) * 100.0);
    shapes.expect(median < 1.05,
                  "traced ns/item within 5% of untraced (median of "
                  "interleaved pairs)");
  }
  opt.finish_trace();
  shapes.report();
  return 0;
}
