/// Fig 10 reproduction: histogram at a fixed node count, sweeping the
/// TramLib buffer size for schemes {WW, WPs, PP}. Expectation: the
/// process-level schemes improve (or hold) with larger buffers; WW
/// degrades once buffers stop filling (z per destination < g) because its
/// sends become flush-dominated.

#include <cstdio>

#include "hist_common.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig10_histogram_buffer: Fig 10")) return 0;

  // Paper: 8-node runs, buffers 512..4096, 1M updates/PE. Scaled: 4 nodes
  // x 4 workers = 16 destination PEs; z chosen so z/destination sits
  // between 512 and 4096 — the same straddle as the paper's run. One
  // process per node keeps total threads under the core count, so modeled
  // costs are not buried in scheduler noise.
  const std::uint64_t updates = opt.quick ? 24'000 : 48'000;
  const int nodes = 4, ppn = 1, wpp = 4;
  const std::vector<std::uint32_t> buffers = {512, 1024, 2048, 4096};
  const std::vector<core::Scheme> schemes = {
      core::Scheme::WW, core::Scheme::WPs, core::Scheme::PP};

  util::Table table("Fig 10: histogram buffer-size sweep, " +
                    std::to_string(nodes) + " nodes, " +
                    std::to_string(updates) + " updates/PE");
  std::vector<std::string> header{"scheme"};
  for (const auto b : buffers) {
    header.push_back(std::to_string(b) + " s");
    header.push_back(std::to_string(b) + " flush%");
  }
  table.set_header(header);

  std::vector<std::vector<double>> secs(schemes.size());
  std::vector<std::vector<double>> flush_frac(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> row{core::to_string(schemes[s])};
    for (const auto b : buffers) {
      core::TramConfig tram;
      tram.scheme = schemes[s];
      tram.buffer_items = b;
      const auto point = bench::run_histogram(
          util::Topology(nodes, ppn, wpp), bench::bench_runtime(), tram,
          updates, static_cast<int>(opt.trials));
      secs[s].push_back(point.seconds);
      const double ff = point.tram_messages
                            ? 100.0 *
                                  static_cast<double>(point.flush_messages) /
                                  static_cast<double>(point.tram_messages)
                            : 0.0;
      flush_frac[s].push_back(ff);
      row.push_back(util::Table::fmt(point.seconds, 4));
      row.push_back(util::Table::fmt(ff, 0));
    }
    table.add_row(row);
  }
  bench::emit(table, opt);

  // Scale note: the paper's WW *time* degradation past 2k buffers comes
  // from per-PE buffer footprint (512 destinations x multi-KB buffers
  // thrashing caches) — invisible at 16 workers. What is visible, and what
  // we check, is the mechanism behind it: at 4096 WW's sends become purely
  // flush-driven (buffers never fill) while the process-level schemes keep
  // filling theirs. See EXPERIMENTS.md.
  bench::ShapeChecker shapes;
  shapes.expect(secs[1].back() <= secs[1].front() * 1.5,
                "WPs holds (within noise) with larger buffers");
  shapes.expect(flush_frac[0].back() > 95.0,
                "WW sends are entirely flush-driven at 4096 (buffers never "
                "fill)");
  shapes.expect(flush_frac[0].back() > flush_frac[0].front() + 30.0,
                "WW flush share rises steeply with buffer size");
  shapes.expect(flush_frac[1].back() < flush_frac[0].back(),
                "WPs buffers still fill where WW's no longer do");
  shapes.report();
  return 0;
}
