/// Fig 3 reproduction: PingAck, SMP (varying processes per node) vs
/// non-SMP, on 2 nodes. Expectation (paper section III-A): with one process
/// per node the dedicated comm thread serializes all traffic and SMP is
/// several times slower than non-SMP; adding processes (each with its own
/// comm thread) closes most of the gap.

#include <cstdio>

#include "apps/pingack.hpp"
#include "bench_common.hpp"
#include "runtime/machine.hpp"

using namespace tram;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!opt.parse(argc, argv, "fig03_pingack: Fig 3 (SMP comm-thread woes)"))
    return 0;

  // 16 workers per node (scaled from the paper's 64); total message count
  // from node 0 is constant across configurations.
  const int workers_per_node = 16;
  const int total_msgs = opt.quick ? 16'000 : 48'000;
  const std::size_t payload = 64;

  util::Table table(
      "Fig 3: PingAck total time, 2 nodes, 16 worker PEs per node");
  table.set_header({"config", "time s"});

  struct Config {
    std::string name;
    int procs_per_node;
    bool smp;
  };
  std::vector<Config> configs = {
      {"non-SMP (16 procs x 1 worker)", workers_per_node, false},
      {"SMP 1 proc x 16 workers", 1, true},
      {"SMP 2 procs x 8 workers", 2, true},
      {"SMP 4 procs x 4 workers", 4, true},
      {"SMP 8 procs x 2 workers", 8, true},
  };

  std::vector<double> secs;
  for (const auto& c : configs) {
    const int wpp = workers_per_node / c.procs_per_node;
    rt::Machine machine(
        util::Topology(2, c.procs_per_node, wpp),
        c.smp ? bench::bench_runtime() : bench::bench_runtime_nonsmp());
    apps::PingAckApp app(machine);
    apps::PingAckParams params;
    params.messages_per_worker = total_msgs / workers_per_node;
    params.payload_bytes = payload;
    const double t = bench::median_seconds(
        static_cast<int>(opt.trials),
        [&] { return app.run(params).total_s; });
    secs.push_back(t);
    table.add_row({c.name, util::Table::fmt(t, 4)});
  }
  bench::emit(table, opt);

  bench::ShapeChecker shapes;
  shapes.expect(secs[1] > 2.5 * secs[0],
                "SMP with 1 process per node is several times slower than "
                "non-SMP (paper: ~5x)");
  shapes.expect(secs[4] < secs[1],
                "more processes per node improves SMP PingAck");
  shapes.expect(secs[4] < 1.8 * secs[0],
                "8 processes per node approaches non-SMP");
  shapes.report();
  return 0;
}
