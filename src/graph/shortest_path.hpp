#pragma once
///
/// \file shortest_path.hpp
/// \brief Sequential shortest-path references for verification.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace tram::graph {

/// Distance value for unreachable vertices.
inline constexpr std::uint64_t kUnreachable = ~std::uint64_t{0};

/// Dijkstra from `source`; returns one distance per vertex.
std::vector<std::uint64_t> dijkstra(const Csr& g, Vertex source);

/// Bellman-Ford (queue-based SPFA variant) — an independent oracle used to
/// cross-check the Dijkstra implementation in tests.
std::vector<std::uint64_t> bellman_ford(const Csr& g, Vertex source);

}  // namespace tram::graph
