#include "graph/generator.hpp"

#include <bit>
#include <cmath>

#include "util/rng.hpp"

namespace tram::graph {

namespace {

Weight random_weight(util::Xoshiro256& rng, Weight max_weight) {
  return static_cast<Weight>(1 + rng.below(max_weight));
}

void maybe_mirror(std::vector<Edge>& edges, bool symmetric) {
  if (!symmetric) return;
  const std::size_t n = edges.size();
  edges.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    edges.push_back({edges[i].to, edges[i].from, edges[i].weight});
  }
}

}  // namespace

std::vector<Edge> generate_uniform(const GeneratorParams& p) {
  util::Xoshiro256 rng = util::Xoshiro256::for_stream(p.seed, 0, /*purpose=*/1);
  const auto num_edges = static_cast<std::size_t>(
      static_cast<double>(p.num_vertices) * p.avg_degree);
  std::vector<Edge> edges;
  edges.reserve(num_edges * (p.symmetric ? 2 : 1));
  for (std::size_t i = 0; i < num_edges; ++i) {
    const auto from = static_cast<Vertex>(rng.below(p.num_vertices));
    const auto to = static_cast<Vertex>(rng.below(p.num_vertices));
    edges.push_back({from, to, random_weight(rng, p.max_weight)});
  }
  maybe_mirror(edges, p.symmetric);
  return edges;
}

std::vector<Edge> generate_rmat(const GeneratorParams& p) {
  util::Xoshiro256 rng = util::Xoshiro256::for_stream(p.seed, 0, /*purpose=*/2);
  const int scale = std::bit_width(
      std::bit_ceil(static_cast<std::uint32_t>(p.num_vertices)) >> 1);
  const double total = p.rmat_a + p.rmat_b + p.rmat_c + p.rmat_d;
  const double a = p.rmat_a / total;
  const double b = p.rmat_b / total;
  const double c = p.rmat_c / total;
  const auto num_edges = static_cast<std::size_t>(
      static_cast<double>(p.num_vertices) * p.avg_degree);
  std::vector<Edge> edges;
  edges.reserve(num_edges * (p.symmetric ? 2 : 1));
  for (std::size_t i = 0; i < num_edges; ++i) {
    Vertex from = 0, to = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      // Pick a quadrant of the recursive matrix.
      int quadrant;
      if (r < a) {
        quadrant = 0;
      } else if (r < a + b) {
        quadrant = 1;
      } else if (r < a + b + c) {
        quadrant = 2;
      } else {
        quadrant = 3;
      }
      from = static_cast<Vertex>((from << 1) | (quadrant >> 1));
      to = static_cast<Vertex>((to << 1) | (quadrant & 1));
    }
    if (from >= p.num_vertices || to >= p.num_vertices) {
      from %= p.num_vertices;
      to %= p.num_vertices;
    }
    edges.push_back({from, to, random_weight(rng, p.max_weight)});
  }
  maybe_mirror(edges, p.symmetric);
  return edges;
}

Csr build_uniform(const GeneratorParams& p) {
  const auto edges = generate_uniform(p);
  return Csr(p.num_vertices, edges);
}

Csr build_rmat(const GeneratorParams& p) {
  const auto edges = generate_rmat(p);
  return Csr(p.num_vertices, edges);
}

}  // namespace tram::graph
