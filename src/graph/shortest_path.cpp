#include "graph/shortest_path.hpp"

#include <deque>
#include <queue>

namespace tram::graph {

std::vector<std::uint64_t> dijkstra(const Csr& g, Vertex source) {
  std::vector<std::uint64_t> dist(g.num_vertices(), kUnreachable);
  using Item = std::pair<std::uint64_t, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;  // stale entry
    const auto nbrs = g.neighbors(v);
    const auto wts = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint64_t nd = d + wts[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        heap.push({nd, nbrs[i]});
      }
    }
  }
  return dist;
}

std::vector<std::uint64_t> bellman_ford(const Csr& g, Vertex source) {
  std::vector<std::uint64_t> dist(g.num_vertices(), kUnreachable);
  std::vector<bool> queued(g.num_vertices(), false);
  std::deque<Vertex> queue;
  dist[source] = 0;
  queue.push_back(source);
  queued[source] = true;
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    queued[v] = false;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint64_t nd = dist[v] + wts[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        if (!queued[nbrs[i]]) {
          queue.push_back(nbrs[i]);
          queued[nbrs[i]] = true;
        }
      }
    }
  }
  return dist;
}

}  // namespace tram::graph
