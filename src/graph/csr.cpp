#include "graph/csr.hpp"

#include <algorithm>

namespace tram::graph {

Csr::Csr(Vertex num_vertices, std::span<const Edge> edges) : n_(num_vertices) {
  offsets_.assign(n_ + 1, 0);
  for (const Edge& e : edges) offsets_[e.from + 1]++;
  for (Vertex v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];
  targets_.resize(edges.size());
  weights_.resize(edges.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) {
    const std::size_t i = cursor[e.from]++;
    targets_[i] = e.to;
    weights_[i] = e.weight;
  }
}

std::size_t Csr::max_degree() const {
  std::size_t best = 0;
  for (Vertex v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

}  // namespace tram::graph
