#pragma once
///
/// \file csr.hpp
/// \brief Compressed sparse row graph, shared read-only across workers.
///
/// The SSSP benchmark follows the paper's SMP argument: "large read-only
/// data structures can be shared among workers without making multiple
/// copies" — one CSR per machine, every worker reads it directly.

#include <cstdint>
#include <span>
#include <vector>

namespace tram::graph {

using Vertex = std::uint32_t;
using Weight = std::uint32_t;

struct Edge {
  Vertex from;
  Vertex to;
  Weight weight;
};

class Csr {
 public:
  Csr() = default;
  /// Build from an edge list (directed; callers add both directions for an
  /// undirected graph). Duplicates and self-loops are kept as-is.
  Csr(Vertex num_vertices, std::span<const Edge> edges);

  Vertex num_vertices() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return targets_.size(); }

  /// Out-neighbors of v, parallel to weights(v).
  std::span<const Vertex> neighbors(Vertex v) const {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }
  std::span<const Weight> weights(Vertex v) const {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }
  std::size_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::size_t max_degree() const;

 private:
  Vertex n_ = 0;
  std::vector<std::size_t> offsets_;  // n_+1 entries
  std::vector<Vertex> targets_;
  std::vector<Weight> weights_;
};

/// Block partition of [0, n) over `parts` owners: owner i holds a
/// contiguous range; sizes differ by at most one.
struct BlockPartition {
  BlockPartition(std::uint64_t n, int parts)
      : n_(n), parts_(parts), base_(n / static_cast<std::uint64_t>(parts)),
        extra_(n % static_cast<std::uint64_t>(parts)) {}

  int owner(std::uint64_t v) const {
    // First `extra_` parts have base_+1 elements.
    const std::uint64_t big = extra_ * (base_ + 1);
    if (v < big) return static_cast<int>(v / (base_ + 1));
    return static_cast<int>(extra_ + (v - big) / base_);
  }
  std::uint64_t begin(int p) const {
    const auto pp = static_cast<std::uint64_t>(p);
    if (pp <= extra_) return pp * (base_ + 1);
    return extra_ * (base_ + 1) + (pp - extra_) * base_;
  }
  std::uint64_t end(int p) const { return begin(p + 1); }
  std::uint64_t size(int p) const { return end(p) - begin(p); }
  std::uint64_t total() const { return n_; }
  int parts() const { return parts_; }

 private:
  std::uint64_t n_;
  int parts_;
  std::uint64_t base_;
  std::uint64_t extra_;
};

}  // namespace tram::graph
