#pragma once
///
/// \file generator.hpp
/// \brief Deterministic synthetic graph generators.
///
/// Two families cover the paper's SSSP inputs:
///  - uniform: Erdos-Renyi-style with a fixed average degree (the paper's
///    well-scaling "large input");
///  - rmat: Graph500-style power-law generator (irregular degree
///    distribution, stresses load balance).
///
/// Both are reproducible from a seed and return directed edge lists with
/// weights uniform in [1, max_weight].

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace tram::graph {

struct GeneratorParams {
  Vertex num_vertices = 1 << 16;
  /// Average out-degree (number of directed edges = n * avg_degree).
  double avg_degree = 8.0;
  Weight max_weight = 64;
  std::uint64_t seed = 42;
  /// RMAT corner probabilities (a + b + c + d = 1 enforced by normalizing).
  double rmat_a = 0.57, rmat_b = 0.19, rmat_c = 0.19, rmat_d = 0.05;
  /// Make the graph symmetric (add the reverse of every edge).
  bool symmetric = true;
};

/// Uniformly random endpoints.
std::vector<Edge> generate_uniform(const GeneratorParams& p);

/// Recursive-matrix (RMAT) generator; num_vertices is rounded up to a
/// power of two internally, extra vertices are simply isolated.
std::vector<Edge> generate_rmat(const GeneratorParams& p);

/// Convenience: generate and build the CSR in one call.
Csr build_uniform(const GeneratorParams& p);
Csr build_rmat(const GeneratorParams& p);

}  // namespace tram::graph
