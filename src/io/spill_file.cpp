#include "io/spill_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace tram::io {

SpillWriter::SpillWriter(std::string path) : path_(std::move(path)) {}

SpillWriter::~SpillWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void SpillWriter::write_run(std::span<const std::byte> run) {
  begin_run();
  append(run);
  end_run();
}

void SpillWriter::begin_run() {
  if (file_ == nullptr) {
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) {
      throw std::runtime_error("SpillWriter: cannot create '" + path_ +
                               "': " + std::strerror(errno));
    }
  }
  run_open_ = true;
  open_run_bytes_ = 0;
}

void SpillWriter::append(std::span<const std::byte> bytes) {
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    throw std::runtime_error("SpillWriter: short write to '" + path_ + "'");
  }
  open_run_bytes_ += bytes.size();
}

void SpillWriter::end_run() {
  runs_.push_back({bytes_written_, open_run_bytes_});
  bytes_written_ += open_run_bytes_;
  open_run_bytes_ = 0;
  run_open_ = false;
}

void SpillWriter::flush() {
  if (file_ != nullptr && std::fflush(file_) != 0) {
    throw std::runtime_error("SpillWriter: flush of '" + path_ +
                             "' failed: " + std::strerror(errno));
  }
}

std::size_t RunReader::refill(std::span<std::byte> buf) {
  const std::uint64_t left = end_ - pos_;
  std::size_t want = buf.size();
  if (static_cast<std::uint64_t>(want) > left) {
    want = static_cast<std::size_t>(left);
  }
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::pread(fd_, buf.data() + got, want - got,
                              static_cast<off_t>(pos_ + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "RunReader: pread failed: %s\n",
                   std::strerror(errno));
      std::abort();
    }
    if (n == 0) {
      // The run index promised these bytes; EOF here means the file was
      // truncated after the writer flushed. Unrecoverable.
      std::fprintf(stderr,
                   "RunReader: spill file truncated (wanted %zu bytes at "
                   "offset %llu, got %zu)\n",
                   want, static_cast<unsigned long long>(pos_), got);
      std::abort();
    }
    got += static_cast<std::size_t>(n);
  }
  pos_ += got;
  return got;
}

SpillReader::SpillReader(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw std::runtime_error("SpillReader: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
}

SpillReader::~SpillReader() {
  if (fd_ >= 0) ::close(fd_);
}

}  // namespace tram::io
