#pragma once
///
/// \file mapped_file.hpp
/// \brief Read-only mmap'd input files and a whole-record chunk reader.
///
/// The out-of-core shuffle (src/shuffle/) streams datasets larger than
/// RAM: sources never hold more than one chunk's worth of working set,
/// the kernel pages the rest in and out behind the mapping. MappedFile
/// is the mapping (open + mmap + madvise(SEQUENTIAL), munmap on
/// destruction); ChunkReader walks a byte range of it in configurable
/// chunk-sized steps, rounding every chunk down to whole records so a
/// record never straddles two chunks handed to the caller.
///
/// Partial-tail handling is a correctness boundary, not a convenience:
/// a file whose size is not a multiple of the record size is corrupt
/// input (a truncated write, the wrong record type), and delivering the
/// tail as a short record would silently skew every downstream checksum.
/// ChunkReader aborts on it (death-tested in io_mapped_file_test).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace tram::io {

/// A file mapped read-only into the address space for its lifetime.
/// Empty files map to an empty span (mmap rejects zero-length mappings,
/// so no mapping is created). Open or map failure throws.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::string& path() const noexcept { return path_; }
  std::size_t size() const noexcept { return size_; }
  std::span<const std::byte> bytes() const noexcept {
    return {static_cast<const std::byte*>(data_), size_};
  }

 private:
  std::string path_;
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Streams a byte range as chunks of whole records. The chunk size is a
/// target: every chunk holds max(1, chunk_bytes / record_bytes) records,
/// so a chunk boundary never splits a record, and the final chunk
/// carries the (whole-record) tail. A range that is not a multiple of
/// record_bytes aborts — see the file comment.
class ChunkReader {
 public:
  ChunkReader(std::span<const std::byte> bytes, std::size_t record_bytes,
              std::size_t chunk_bytes);

  /// The next chunk of whole records; empty at end of range.
  std::span<const std::byte> next() noexcept {
    if (pos_ >= bytes_.size()) return {};
    const std::size_t n = bytes_.size() - pos_ < chunk_bytes_
                              ? bytes_.size() - pos_
                              : chunk_bytes_;
    const auto chunk = bytes_.subspan(pos_, n);
    pos_ += n;
    return chunk;
  }

  std::size_t records_total() const noexcept {
    return bytes_.size() / record_bytes_;
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t record_bytes_;
  std::size_t chunk_bytes_;  ///< rounded down to whole records
  std::size_t pos_ = 0;
};

}  // namespace tram::io
