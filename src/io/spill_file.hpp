#pragma once
///
/// \file spill_file.hpp
/// \brief Buffered sorted-run writer/reader with a run index.
///
/// A spill file is a sequence of sorted runs appended back to back; the
/// writer keeps the index (offset + byte length per run) in memory, and
/// the reader hands out per-run cursors that refill a caller-provided
/// buffer with pread — stateless on the shared descriptor, so any number
/// of run cursors (the k-way merge holds one per run) can interleave
/// reads without seek coordination.
///
/// The io layer is record-agnostic: runs are byte ranges. Record framing
/// (and the guarantee that refill buffers hold whole records) lives one
/// layer up, in src/shuffle/.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tram::io {

/// One sorted run inside a spill file.
struct SpillRun {
  std::uint64_t offset = 0;  ///< byte offset of the run's first byte
  std::uint64_t bytes = 0;   ///< run length in bytes
};

/// Append-only run writer. One writer per file; write_run appends the
/// whole (already sorted) run through a buffered stream and records it
/// in the index. Not thread-safe — in the shuffle each destination
/// worker owns its spill file.
class SpillWriter {
 public:
  explicit SpillWriter(std::string path);
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Append one sorted run. Opens the file lazily on the first call, so
  /// a worker that never spills never creates a file.
  void write_run(std::span<const std::byte> run);

  /// Streaming alternative to write_run for runs too large to hold in
  /// memory (cascade merges): begin_run, any number of appends, end_run
  /// (which records the run in the index).
  void begin_run();
  void append(std::span<const std::byte> bytes);
  void end_run();

  /// Flush buffered bytes to the OS (the reader opens the file fresh,
  /// so everything written must be visible). Idempotent.
  void flush();

  const std::string& path() const noexcept { return path_; }
  const std::vector<SpillRun>& runs() const noexcept { return runs_; }
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<SpillRun> runs_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t open_run_bytes_ = 0;
  bool run_open_ = false;
};

/// Sequential reader over one run: refills a caller-provided buffer via
/// pread on the reader's shared descriptor. Obtained from SpillReader.
class RunReader {
 public:
  /// Fill `buf` with the next min(buf.size, remaining) bytes of the run;
  /// returns the number of bytes read (0 at end of run). Short reads
  /// from the OS are retried; a true truncation aborts (the writer's
  /// index said the bytes exist — anything else is file corruption).
  std::size_t refill(std::span<std::byte> buf);

  std::uint64_t remaining() const noexcept { return end_ - pos_; }

 private:
  friend class SpillReader;
  RunReader(int fd, SpillRun run) noexcept
      : fd_(fd), pos_(run.offset), end_(run.offset + run.bytes) {}

  int fd_ = -1;  ///< owned by the SpillReader this cursor came from
  std::uint64_t pos_ = 0;
  std::uint64_t end_ = 0;
};

/// Opens a spill file for reading and vends per-run cursors. Must
/// outlive every RunReader it hands out.
class SpillReader {
 public:
  explicit SpillReader(const std::string& path);
  ~SpillReader();

  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;

  RunReader run(const SpillRun& r) const noexcept { return {fd_, r}; }

 private:
  int fd_ = -1;
};

}  // namespace tram::io
