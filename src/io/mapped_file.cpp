#include "io/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace tram::io {

MappedFile::MappedFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("MappedFile: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("MappedFile: cannot stat '" + path +
                             "': " + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ != 0) {
    data_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data_ == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      data_ = nullptr;
      throw std::runtime_error("MappedFile: mmap of '" + path +
                               "' failed: " + std::strerror(err));
    }
    // Sources stream front to back; tell the kernel so readahead works
    // and cold pages behind the cursor are cheap to evict.
    ::madvise(data_, size_, MADV_SEQUENTIAL);
  }
  // The mapping pins the inode; the descriptor is not needed further.
  ::close(fd);
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

ChunkReader::ChunkReader(std::span<const std::byte> bytes,
                         std::size_t record_bytes, std::size_t chunk_bytes)
    : bytes_(bytes), record_bytes_(record_bytes) {
  if (record_bytes_ == 0) {
    std::fprintf(stderr, "ChunkReader: record_bytes must be nonzero\n");
    std::abort();
  }
  if (bytes_.size() % record_bytes_ != 0) {
    std::fprintf(stderr,
                 "ChunkReader: %zu bytes is not a whole number of %zu-byte "
                 "records (truncated or corrupt input)\n",
                 bytes_.size(), record_bytes_);
    std::abort();
  }
  const std::size_t per_chunk =
      chunk_bytes / record_bytes_ == 0 ? 1 : chunk_bytes / record_bytes_;
  chunk_bytes_ = per_chunk * record_bytes_;
}

}  // namespace tram::io
