#pragma once
///
/// \file phold.hpp
/// \brief Synthetic PHOLD for optimistic PDES (paper Fig. 18).
///
/// Logical processes (LPs) are block-distributed over workers. Each event
/// carries a virtual timestamp; processing an event at an LP spawns one
/// successor event at a random LP, with the timestamp advanced by
/// lookahead + Exp(mean). Following the paper, the simulation engine is a
/// place-holder: no real rollbacks — an event arriving with a timestamp
/// below the LP's last processed timestamp is counted as an out-of-order
/// ("wasted"/"rejected") update, the proxy for rollback pressure in an
/// optimistic engine. Message latency directly controls how often remote
/// events arrive late, so lower-latency aggregation schemes show fewer
/// wasted updates (PP wins by >5% in the paper).
///
/// Every event carries its own RNG stream: the successor's delay and
/// destination are drawn from the event itself, not the processing
/// worker, so the chain structure — and with it the machine-wide event
/// count — is a pure function of the run seed. Delivery interleaving
/// cannot perturb it, which lets the routed benches cross-check event
/// counts bit-for-bit against a direct-scheme run (only the out-of-order
/// rate, the latency-sensitive metric, varies with the scheme).
///
/// Scheme::Mesh2D/Mesh3D configurations run the same workload through
/// route::RoutedDomain instead of TramDomain (HistogramApp's routed/
/// direct split): identical delivery contract, multi-hop message path
/// (bench/fig_routed_phold.cpp sweeps the two side by side).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tram.hpp"
#include "graph/csr.hpp"
#include "route/routed_domain.hpp"
#include "runtime/machine.hpp"
#include "util/spinlock.hpp"

namespace tram::apps {

struct PholdParams {
  int lps_per_worker = 16;
  int init_events_per_lp = 4;
  /// Virtual end time: events scheduled past it are not regenerated.
  double end_time = 500.0;
  double mean_delay = 1.0;
  double lookahead = 0.1;
  /// Probability that an event's successor targets a remote LP.
  double remote_prob = 0.8;
  core::TramConfig tram;
  std::uint32_t progress_interval = 16;
};

struct PholdResult {
  rt::Machine::RunResult run;
  core::WorkerTramStats tram;
  std::uint64_t events_processed = 0;
  /// Events that arrived with a timestamp below the LP's clock.
  std::uint64_t ooo_events = 0;
  double ooo_pct = 0.0;
  /// Largest count of live source-side buffers on any one worker — O(N)
  /// for the direct schemes, O(d * N^(1/d)) for the routed ones.
  std::uint64_t max_reserved_buffers = 0;
};

class PholdApp {
 public:
  PholdApp(rt::Machine& machine, const PholdParams& params);
  PholdResult run(std::uint64_t seed = 1);

 private:
  struct Event {
    double ts;
    std::uint32_t lp;  // global LP id
    /// Seed of the RNG stream the successor's delay/destination are drawn
    /// from (see file comment: chain structure is delivery-order free).
    std::uint64_t stream;
  };

  struct WorkerState {
    std::vector<double> lp_clock;  // last processed timestamp per local LP
    std::uint64_t processed = 0;
    std::uint64_t ooo = 0;
  };

  void handle_event(rt::Worker& w, const Event& ev);
  void send_event(rt::Worker& w, WorkerId dest, const Event& ev);

  rt::Machine& machine_;
  PholdParams params_;
  graph::BlockPartition part_;  // LPs over workers
  /// Exactly one of the two is constructed, per params.tram.scheme.
  std::unique_ptr<core::TramDomain<Event>> direct_;
  std::unique_ptr<route::RoutedDomain<Event>> routed_;
  std::vector<util::Padded<WorkerState>> state_;
};

}  // namespace tram::apps
