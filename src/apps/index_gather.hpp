#pragma once
///
/// \file index_gather.hpp
/// \brief Bale-suite index-gather benchmark (paper Figs. 12-13).
///
/// Every PE issues `requests_per_worker` random-index requests into a
/// block-distributed table; the owner responds with the stored value. Both
/// request and response streams run through TramLib (each its own domain).
/// Because a requester observes its own send and receive timestamps, the
/// request->response round trip measures aggregation latency with no clock
/// skew — exactly why the paper uses IG as its latency probe.

#include <cstdint>
#include <vector>

#include "core/tram.hpp"
#include "graph/csr.hpp"
#include "runtime/machine.hpp"
#include "util/latency_histogram.hpp"
#include "util/spinlock.hpp"

namespace tram::apps {

struct IgParams {
  std::uint64_t requests_per_worker = 100'000;
  std::uint64_t table_entries_per_worker = 1 << 16;
  core::TramConfig tram;
  std::uint32_t progress_interval = 64;
};

struct IgResult {
  rt::Machine::RunResult run;
  core::WorkerTramStats tram;  // both domains merged
  core::WorkerTramStats req_stats;
  core::WorkerTramStats resp_stats;
  /// Request -> response round-trip latency, merged across workers.
  util::LatencyHistogram latency;
  std::uint64_t responses = 0;
  std::uint64_t wrong_values = 0;
  bool verified = false;
};

class IndexGatherApp {
 public:
  IndexGatherApp(rt::Machine& machine, const IgParams& params);
  IgResult run(std::uint64_t seed = 1);

  /// The deterministic table value stored at a global index.
  static std::uint64_t value_at(std::uint64_t index) {
    return index * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  }

 private:
  struct Request {
    std::uint64_t birth_ns;
    std::uint64_t index;
    WorkerId requester;
  };
  struct Response {
    std::uint64_t birth_ns;
    std::uint64_t index;
    std::uint64_t value;
  };

  /// Per-worker mutable state, each written by its owning worker.
  struct WorkerState {
    util::LatencyHistogram latency;
    std::uint64_t responses = 0;
    std::uint64_t wrong_values = 0;
  };

  rt::Machine& machine_;
  IgParams params_;
  graph::BlockPartition part_;
  std::vector<std::vector<std::uint64_t>> table_;
  core::TramDomain<Request> requests_;
  core::TramDomain<Response> responses_;
  std::vector<util::Padded<WorkerState>> state_;
};

}  // namespace tram::apps
