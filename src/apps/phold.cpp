#include "apps/phold.hpp"

namespace tram::apps {

PholdApp::PholdApp(rt::Machine& machine, const PholdParams& params)
    : machine_(machine),
      params_(params),
      part_(static_cast<std::uint64_t>(params.lps_per_worker) *
                static_cast<std::uint64_t>(machine.topology().workers()),
            machine.topology().workers()),
      domain_(machine, params.tram,
              [this](rt::Worker& w, const Event& ev) { handle_event(w, ev); }),
      state_(static_cast<std::size_t>(machine.topology().workers())) {
  for (int w = 0; w < machine.topology().workers(); ++w) {
    state_[static_cast<std::size_t>(w)].value.lp_clock.assign(
        part_.size(w), 0.0);
  }
}

void PholdApp::handle_event(rt::Worker& w, const Event& ev) {
  auto& st = state_[static_cast<std::size_t>(w.id())].value;
  double& clock = st.lp_clock[ev.lp - part_.begin(w.id())];
  ++st.processed;
  if (ev.ts < clock) {
    // Placeholder engine: record the would-be rollback, do not undo.
    ++st.ooo;
  } else {
    clock = ev.ts;
  }
  if (ev.ts >= params_.end_time) return;

  // Spawn the successor event.
  const double next_ts =
      ev.ts + params_.lookahead + w.rng().exponential(params_.mean_delay);
  std::uint32_t dest_lp;
  if (w.rng().uniform() < params_.remote_prob && part_.parts() > 1) {
    // Uniform LP on some other worker: draw until the owner differs (the
    // LP space is balanced, so this terminates almost immediately).
    do {
      dest_lp = static_cast<std::uint32_t>(w.rng().below(part_.total()));
    } while (part_.owner(dest_lp) == w.id());
  } else {
    dest_lp = static_cast<std::uint32_t>(
        part_.begin(w.id()) + w.rng().below(part_.size(w.id())));
  }
  domain_.on(w).insert(static_cast<WorkerId>(part_.owner(dest_lp)),
                       Event{next_ts, dest_lp});
}

PholdResult PholdApp::run(std::uint64_t seed) {
  for (int w = 0; w < machine_.topology().workers(); ++w) {
    auto& st = state_[static_cast<std::size_t>(w)].value;
    std::fill(st.lp_clock.begin(), st.lp_clock.end(), 0.0);
    st.processed = st.ooo = 0;
  }
  domain_.reset_stats();

  const auto result = machine_.run(
      [this](rt::Worker& w) {
        auto& tram = domain_.on(w);
        // Seed the initial event population on our own LPs.
        const std::uint64_t base = part_.begin(w.id());
        for (std::uint64_t lp = 0; lp < part_.size(w.id()); ++lp) {
          for (int k = 0; k < params_.init_events_per_lp; ++k) {
            const double ts =
                params_.lookahead + w.rng().exponential(params_.mean_delay);
            tram.insert(w.id(),
                        Event{ts, static_cast<std::uint32_t>(base + lp)});
          }
          if (params_.progress_interval != 0 &&
              lp % params_.progress_interval == 0) {
            w.progress();
          }
        }
        tram.flush_all();
      },
      seed);

  PholdResult res;
  res.run = result;
  res.tram = domain_.aggregate_stats();
  for (const auto& s : state_) {
    res.events_processed += s.value.processed;
    res.ooo_events += s.value.ooo;
  }
  res.ooo_pct = res.events_processed
                    ? 100.0 * static_cast<double>(res.ooo_events) /
                          static_cast<double>(res.events_processed)
                    : 0.0;
  return res;
}

}  // namespace tram::apps
