#include "apps/phold.hpp"

#include "util/rng.hpp"

namespace tram::apps {

PholdApp::PholdApp(rt::Machine& machine, const PholdParams& params)
    : machine_(machine),
      params_(params),
      part_(static_cast<std::uint64_t>(params.lps_per_worker) *
                static_cast<std::uint64_t>(machine.topology().workers()),
            machine.topology().workers()),
      state_(static_cast<std::size_t>(machine.topology().workers())) {
  auto deliver = [this](rt::Worker& w, const Event& ev) {
    handle_event(w, ev);
  };
  if (core::is_routed(params_.tram.scheme)) {
    routed_ = std::make_unique<route::RoutedDomain<Event>>(
        machine, params_.tram, deliver);
  } else {
    direct_ = std::make_unique<core::TramDomain<Event>>(
        machine, params_.tram, deliver);
  }
  for (int w = 0; w < machine.topology().workers(); ++w) {
    state_[static_cast<std::size_t>(w)].value.lp_clock.assign(
        part_.size(w), 0.0);
  }
}

void PholdApp::send_event(rt::Worker& w, WorkerId dest, const Event& ev) {
  if (routed_) {
    routed_->on(w).insert(dest, ev);
  } else {
    direct_->on(w).insert(dest, ev);
  }
}

void PholdApp::handle_event(rt::Worker& w, const Event& ev) {
  auto& st = state_[static_cast<std::size_t>(w.id())].value;
  double& clock = st.lp_clock[ev.lp - part_.begin(w.id())];
  ++st.processed;
  if (ev.ts < clock) {
    // Placeholder engine: record the would-be rollback, do not undo.
    ++st.ooo;
  } else {
    clock = ev.ts;
  }
  if (ev.ts >= params_.end_time) return;

  // Spawn the successor event, drawing from the event's own stream so
  // the chain is identical whatever order events are delivered in. The
  // successor's stream seed is drawn before the destination (whose
  // redraw loop consumes a partition-dependent number of draws), so
  // chain timing — and with it the event count — depends only on the
  // seed and the LP total, not on how LPs are spread over workers.
  util::Xoshiro256 rng(ev.stream);
  const double next_ts =
      ev.ts + params_.lookahead + rng.exponential(params_.mean_delay);
  const std::uint64_t next_stream = rng();
  std::uint32_t dest_lp;
  if (rng.uniform() < params_.remote_prob && part_.parts() > 1) {
    // Uniform LP on some other worker: draw until the owner differs (the
    // LP space is balanced, so this terminates almost immediately).
    do {
      dest_lp = static_cast<std::uint32_t>(rng.below(part_.total()));
    } while (part_.owner(dest_lp) == w.id());
  } else {
    dest_lp = static_cast<std::uint32_t>(
        part_.begin(w.id()) + rng.below(part_.size(w.id())));
  }
  send_event(w, static_cast<WorkerId>(part_.owner(dest_lp)),
             Event{next_ts, dest_lp, next_stream});
}

PholdResult PholdApp::run(std::uint64_t seed) {
  for (int w = 0; w < machine_.topology().workers(); ++w) {
    auto& st = state_[static_cast<std::size_t>(w)].value;
    std::fill(st.lp_clock.begin(), st.lp_clock.end(), 0.0);
    st.processed = st.ooo = 0;
  }
  if (direct_) direct_->reset_stats();
  if (routed_) routed_->reset_stats();

  const auto result = machine_.run(
      [this, seed](rt::Worker& w) {
        // Seed the initial event population on our own LPs, each chain
        // from its own (seed, lp, k) stream — independent of worker
        // count so the chain set depends only on the topology's LP total.
        const std::uint64_t base = part_.begin(w.id());
        for (std::uint64_t lp = 0; lp < part_.size(w.id()); ++lp) {
          for (int k = 0; k < params_.init_events_per_lp; ++k) {
            util::Xoshiro256 rng = util::Xoshiro256::for_stream(
                seed, base + lp, static_cast<std::uint64_t>(k));
            const double ts =
                params_.lookahead + rng.exponential(params_.mean_delay);
            send_event(w, w.id(),
                       Event{ts, static_cast<std::uint32_t>(base + lp),
                             rng()});
          }
          if (params_.progress_interval != 0 &&
              lp % params_.progress_interval == 0) {
            w.progress();
          }
        }
        if (routed_) {
          routed_->on(w).flush_all();
        } else {
          direct_->on(w).flush_all();
        }
      },
      seed);

  PholdResult res;
  res.run = result;
  res.tram =
      direct_ ? direct_->aggregate_stats() : routed_->aggregate_stats();
  res.max_reserved_buffers = direct_ ? direct_->max_reserved_buffers()
                                     : routed_->max_reserved_buffers();
  for (const auto& s : state_) {
    res.events_processed += s.value.processed;
    res.ooo_events += s.value.ooo;
  }
  res.ooo_pct = res.events_processed
                    ? 100.0 * static_cast<double>(res.ooo_events) /
                          static_cast<double>(res.events_processed)
                    : 0.0;
  return res;
}

}  // namespace tram::apps
