#include "apps/index_gather.hpp"

#include "util/timebase.hpp"

namespace tram::apps {

IndexGatherApp::IndexGatherApp(rt::Machine& machine, const IgParams& params)
    : machine_(machine),
      params_(params),
      part_(params.table_entries_per_worker *
                static_cast<std::uint64_t>(machine.topology().workers()),
            machine.topology().workers()),
      table_(static_cast<std::size_t>(machine.topology().workers())),
      requests_(machine, params.tram,
                [this](rt::Worker& w, const Request& req) {
                  // Owner-side lookup; reply through the response domain.
                  const auto& slice =
                      table_[static_cast<std::size_t>(w.id())];
                  const std::uint64_t value =
                      slice[req.index - part_.begin(w.id())];
                  responses_.on(w).insert(
                      req.requester,
                      Response{req.birth_ns, req.index, value});
                }),
      responses_(machine, params.tram,
                 [this](rt::Worker& w, const Response& resp) {
                   auto& st = state_[static_cast<std::size_t>(w.id())].value;
                   st.latency.add(util::now_ns() - resp.birth_ns);
                   ++st.responses;
                   if (resp.value != value_at(resp.index)) ++st.wrong_values;
                 }),
      state_(static_cast<std::size_t>(machine.topology().workers())) {
  for (int w = 0; w < machine.topology().workers(); ++w) {
    auto& slice = table_[static_cast<std::size_t>(w)];
    slice.resize(part_.size(w));
    const std::uint64_t base = part_.begin(w);
    for (std::uint64_t i = 0; i < slice.size(); ++i) {
      slice[i] = value_at(base + i);
    }
  }
}

IgResult IndexGatherApp::run(std::uint64_t seed) {
  for (auto& s : state_) s.value = WorkerState{};
  requests_.reset_stats();
  responses_.reset_stats();

  const std::uint64_t total_entries = part_.total();
  const auto result = machine_.run(
      [this, total_entries](rt::Worker& w) {
        auto& req = requests_.on(w);
        for (std::uint64_t i = 0; i < params_.requests_per_worker; ++i) {
          const std::uint64_t index = w.rng().below(total_entries);
          req.insert(
              static_cast<WorkerId>(part_.owner(index)),
              Request{util::now_ns(), index, w.id()});
          if (params_.progress_interval != 0 &&
              i % params_.progress_interval == 0) {
            w.progress();
          }
        }
        req.flush_all();
        // Responses keep flowing after the request loop; the scheduler loop
        // plus flush-on-idle finish the exchange, and QD ends the run.
      },
      seed);

  IgResult res;
  res.run = result;
  res.req_stats = requests_.aggregate_stats();
  res.resp_stats = responses_.aggregate_stats();
  res.tram = res.req_stats;
  res.tram.merge(res.resp_stats);
  for (const auto& s : state_) {
    res.latency.merge(s.value.latency);
    res.responses += s.value.responses;
    res.wrong_values += s.value.wrong_values;
  }
  const std::uint64_t expected =
      params_.requests_per_worker *
      static_cast<std::uint64_t>(machine_.topology().workers());
  res.verified = res.responses == expected && res.wrong_values == 0;
  return res;
}

}  // namespace tram::apps
