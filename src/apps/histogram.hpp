#pragma once
///
/// \file histogram.hpp
/// \brief Bale-suite histogram benchmark (paper Figs. 8-11).
///
/// A histogram table is block-distributed over all worker PEs; every PE
/// fires `updates_per_worker` increments at uniformly random global bins
/// through TramLib and flushes at the end. No reply traffic exists, so the
/// benchmark isolates aggregation *overhead* (total time, message counts);
/// latency is irrelevant here by design (paper section III-D).
///
/// Scheme::Mesh2D/Mesh3D configurations run the same workload through
/// route::RoutedDomain instead of TramDomain: identical delivery contract,
/// multi-hop message path (bench/fig_routed_histogram.cpp sweeps the two
/// side by side).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tram.hpp"
#include "graph/csr.hpp"
#include "route/routed_domain.hpp"
#include "runtime/machine.hpp"

namespace tram::apps {

struct HistogramParams {
  std::uint64_t updates_per_worker = 100'000;
  std::uint64_t bins_per_worker = 1 << 16;
  core::TramConfig tram;
  /// Pump progress() every this many inserts.
  std::uint32_t progress_interval = 64;
};

struct HistogramResult {
  rt::Machine::RunResult run;
  core::WorkerTramStats tram;
  /// Sum over the whole distributed table after the run.
  std::uint64_t table_total = 0;
  /// Largest count of live source-side buffers on any one worker — O(N)
  /// for the direct schemes, O(d * N^(1/d)) for the routed ones.
  std::uint64_t max_reserved_buffers = 0;
  /// table_total must equal workers * updates_per_worker.
  bool verified = false;
};

class HistogramApp {
 public:
  HistogramApp(rt::Machine& machine, const HistogramParams& params);

  /// One timed run (construct a fresh app per tram configuration).
  HistogramResult run(std::uint64_t seed = 1);

  /// Bin counts owned by one worker (for tests).
  const std::vector<std::uint64_t>& table_slice(WorkerId w) const {
    return tables_[static_cast<std::size_t>(w)];
  }

 private:
  rt::Machine& machine_;
  HistogramParams params_;
  graph::BlockPartition part_;
  /// Exactly one of the two is constructed, per params.tram.scheme.
  std::unique_ptr<core::TramDomain<std::uint64_t>> direct_;
  std::unique_ptr<route::RoutedDomain<std::uint64_t>> routed_;
  std::vector<std::vector<std::uint64_t>> tables_;
};

}  // namespace tram::apps
