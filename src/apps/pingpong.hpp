#pragma once
///
/// \file pingpong.hpp
/// \brief Ping-pong microbenchmark (paper Fig. 1).
///
/// Measures one-way message time (RTT/2) between two workers on different
/// nodes, across payload sizes, exposing the alpha-beta regime of the
/// fabric: flat time for small messages (latency-dominated), growing
/// linearly once beta * bytes rivals alpha.

#include <cstdint>

#include "runtime/machine.hpp"

namespace tram::apps {

struct PingPongParams {
  std::size_t payload_bytes = 8;
  int iterations = 200;
};

struct PingPongResult {
  /// Mean one-way time (RTT/2) in microseconds.
  double one_way_us = 0.0;
};

/// Requires a machine with at least two nodes; the ping runs between worker
/// 0 (node 0) and the first worker of node 1.
class PingPongApp {
 public:
  explicit PingPongApp(rt::Machine& machine);
  PingPongResult run(const PingPongParams& params);

 private:
  rt::Machine& machine_;
  EndpointId ep_ping_ = -1;
  EndpointId ep_pong_ = -1;
  WorkerId peer_ = kInvalidWorker;
  // Written by worker 0's thread only.
  int remaining_ = 0;
  std::size_t payload_bytes_ = 0;
  std::uint64_t t_start_ns_ = 0;
  std::uint64_t t_end_ns_ = 0;
  int iterations_ = 0;
};

}  // namespace tram::apps
