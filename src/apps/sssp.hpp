#pragma once
///
/// \file sssp.hpp
/// \brief Speculative single-source shortest path (paper Figs. 14-17).
///
/// Vertices are block-distributed, one chare per worker PE. Workers relax
/// edges speculatively as distance updates arrive: an update that improves
/// a vertex's distance propagates immediately when the new distance is
/// under the current threshold, and is deferred to a local priority queue
/// otherwise (the paper's threshold "helps prioritize updates with smaller
/// distances in order to minimize wasted updates"). Idle workers advance
/// their threshold and release deferred work; counting quiescence ends the
/// run when every queue and buffer is empty.
///
/// The benchmark is latency sensitive: the longer an improvement sits in an
/// aggregation buffer, the more speculative work peers perform against its
/// stale predecessor — so lower-latency schemes show fewer wasted updates
/// (PP < WPs < WW in the paper).
///
/// Scheme::Mesh2D/Mesh3D configurations run the same workload through
/// route::RoutedDomain instead of TramDomain (HistogramApp's routed/direct
/// split): identical delivery contract and threshold machinery, multi-hop
/// message path. With prioritize_urgent, under-threshold improvements ride
/// the routed priority slots and overtake bulk at every hop
/// (bench/fig_routed_sssp.cpp sweeps direct vs 2-D vs 3-D side by side).

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "core/tram.hpp"
#include "graph/csr.hpp"
#include "graph/shortest_path.hpp"
#include "route/routed_domain.hpp"
#include "runtime/machine.hpp"
#include "util/spinlock.hpp"

namespace tram::apps {

struct SsspParams {
  const graph::Csr* graph = nullptr;  // shared read-only across workers
  graph::Vertex source = 0;
  core::TramConfig tram;
  /// Threshold advance step (distance units) when an idle worker releases
  /// deferred updates.
  std::uint32_t delta = 64;
  std::uint32_t progress_interval = 32;
  /// Verify final distances against sequential Dijkstra.
  bool verify = true;
  /// Route updates at or under the threshold through TramLib's priority
  /// path (tram.priority_buffer_items must be nonzero): the paper's
  /// future-work prioritization, expected to cut wasted updates further.
  bool prioritize_urgent = false;
};

struct SsspResult {
  rt::Machine::RunResult run;
  core::WorkerTramStats tram;
  /// Remote updates received that did not improve a distance (the paper's
  /// "wasted updates").
  std::uint64_t wasted_updates = 0;
  /// All remote updates received.
  std::uint64_t received_updates = 0;
  /// wasted / received, in percent.
  double wasted_pct = 0.0;
  /// Edge relaxations performed (local + triggered by remote updates).
  std::uint64_t relaxations = 0;
  /// Largest count of live source-side buffers on any one worker — O(N)
  /// for the direct schemes, O(d * N^(1/d)) for the routed ones.
  std::uint64_t max_reserved_buffers = 0;
  bool verified = false;
};

class SsspApp {
 public:
  SsspApp(rt::Machine& machine, const SsspParams& params);
  SsspResult run(std::uint64_t seed = 1);

  /// Final distance of a vertex after the last run (UINT32_MAX if
  /// unreachable).
  std::uint32_t distance(graph::Vertex v) const;

 private:
  struct Update {
    graph::Vertex vertex;
    std::uint32_t dist;
  };
  using HeapItem = std::pair<std::uint32_t, graph::Vertex>;  // (dist, v)

  struct WorkerState {
    std::vector<std::uint32_t> dist;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>
        deferred;
    std::atomic<std::uint64_t> deferred_count{0};
    std::vector<HeapItem> stack;  // local propagation worklist
    std::uint32_t threshold = 0;
    std::uint64_t wasted = 0;
    std::uint64_t received = 0;
    std::uint64_t relaxations = 0;
  };

  void apply_update(rt::Worker& w, graph::Vertex v, std::uint32_t d);
  void relax_edges(rt::Worker& w, WorkerState& st, graph::Vertex v,
                   std::uint32_t d);
  void drain_stack(rt::Worker& w, WorkerState& st);
  void on_idle(rt::Worker& w);
  void flush_domain(rt::Worker& w);

  rt::Machine& machine_;
  SsspParams params_;
  graph::BlockPartition part_;
  /// Exactly one of the two is constructed, per params.tram.scheme.
  std::unique_ptr<core::TramDomain<Update>> direct_;
  std::unique_ptr<route::RoutedDomain<Update>> routed_;
  std::vector<util::Padded<WorkerState>> state_;
  std::vector<std::uint64_t> reference_;  // Dijkstra distances (verify)
};

}  // namespace tram::apps
