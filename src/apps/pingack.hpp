#pragma once
///
/// \file pingack.hpp
/// \brief The PingAck benchmark (paper section III-A, Figs. 2-3).
///
/// Two physical nodes. Every worker PE on node 0 sends `messages_per_worker`
/// messages of a given size to the same-rank PE on node 1; each node-1 PE
/// acks to PE 0 after receiving its full count; the measured time runs from
/// PE 0's first send to the last ack. Node 0 is all-send, node 1 all-receive,
/// isolating the per-side communication capacity — in SMP mode this exposes
/// the comm-thread serialization bottleneck that makes 1-process SMP ~5x
/// slower than non-SMP in the paper.

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/machine.hpp"
#include "util/spinlock.hpp"

namespace tram::apps {

struct PingAckParams {
  int messages_per_worker = 1000;
  std::size_t payload_bytes = 64;
  /// Pump progress() every this many sends (keeps receives interleaved).
  int progress_interval = 16;
};

struct PingAckResult {
  /// PE 0 first send -> last ack received, seconds.
  double total_s = 0.0;
  std::uint64_t fabric_messages = 0;
};

class PingAckApp {
 public:
  explicit PingAckApp(rt::Machine& machine);
  PingAckResult run(const PingAckParams& params);

 private:
  rt::Machine& machine_;
  EndpointId ep_data_ = -1;
  EndpointId ep_ack_ = -1;
  int expected_per_worker_ = 0;
  int payload_bytes_ = 0;
  int messages_per_worker_ = 0;
  int progress_interval_ = 16;
  int workers_per_node_ = 0;
  /// Per-worker receive counters (each written by its owner only).
  std::vector<util::Padded<int>> received_;
  int acks_ = 0;  // written by worker 0 only
  std::uint64_t t_start_ns_ = 0;
  std::uint64_t t_end_ns_ = 0;
};

}  // namespace tram::apps
