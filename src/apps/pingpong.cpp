#include "apps/pingpong.hpp"

#include <stdexcept>

#include "util/timebase.hpp"

namespace tram::apps {

PingPongApp::PingPongApp(rt::Machine& machine) : machine_(machine) {
  const auto& topo = machine.topology();
  if (topo.nodes() < 2) {
    throw std::invalid_argument("PingPongApp needs at least 2 nodes");
  }
  peer_ = topo.first_worker_of(topo.first_proc_of(1));

  ep_ping_ = machine_.register_endpoint([this](rt::Worker& w,
                                               rt::Message&& m) {
    // Echo the payload straight back.
    rt::Message reply;
    reply.endpoint = ep_pong_;
    reply.dst_worker = 0;
    reply.src_worker = w.id();
    reply.payload = std::move(m.payload);
    w.send(std::move(reply));
  });

  ep_pong_ = machine_.register_endpoint([this](rt::Worker& w,
                                               rt::Message&& m) {
    if (--remaining_ > 0) {
      rt::Message ping;
      ping.endpoint = ep_ping_;
      ping.dst_worker = peer_;
      ping.src_worker = w.id();
      ping.payload = std::move(m.payload);
      w.send(std::move(ping));
    } else {
      t_end_ns_ = util::now_ns();
    }
  });
}

PingPongResult PingPongApp::run(const PingPongParams& params) {
  remaining_ = params.iterations;
  iterations_ = params.iterations;
  payload_bytes_ = params.payload_bytes;

  machine_.run([this](rt::Worker& w) {
    if (w.id() != 0) return;
    t_start_ns_ = util::now_ns();
    rt::Message ping;
    ping.endpoint = ep_ping_;
    ping.dst_worker = peer_;
    ping.src_worker = 0;
    ping.payload.resize(payload_bytes_);
    w.send(std::move(ping));
  });

  PingPongResult res;
  res.one_way_us = static_cast<double>(t_end_ns_ - t_start_ns_) * 1e-3 /
                   (2.0 * iterations_);
  return res;
}

}  // namespace tram::apps
