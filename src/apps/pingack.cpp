#include "apps/pingack.hpp"

#include <stdexcept>

#include "util/timebase.hpp"

namespace tram::apps {

PingAckApp::PingAckApp(rt::Machine& machine) : machine_(machine) {
  const auto& topo = machine.topology();
  if (topo.nodes() != 2) {
    throw std::invalid_argument("PingAckApp needs exactly 2 nodes");
  }
  workers_per_node_ = topo.workers_per_node();
  received_.resize(static_cast<std::size_t>(topo.workers()));

  ep_data_ = machine_.register_endpoint([this](rt::Worker& w,
                                               rt::Message&&) {
    auto& count = received_[static_cast<std::size_t>(w.id())].value;
    if (++count == expected_per_worker_) {
      rt::Message ack;
      ack.endpoint = ep_ack_;
      ack.dst_worker = 0;
      ack.src_worker = w.id();
      w.send(std::move(ack));
    }
  });

  ep_ack_ = machine_.register_endpoint([this](rt::Worker&, rt::Message&&) {
    if (++acks_ == workers_per_node_) {
      t_end_ns_ = util::now_ns();
    }
  });
}

PingAckResult PingAckApp::run(const PingAckParams& params) {
  expected_per_worker_ = params.messages_per_worker;
  messages_per_worker_ = params.messages_per_worker;
  payload_bytes_ = static_cast<int>(params.payload_bytes);
  progress_interval_ = params.progress_interval;
  acks_ = 0;
  for (auto& r : received_) r.value = 0;

  const auto run = machine_.run([this](rt::Worker& w) {
    const auto& topo = w.machine().topology();
    if (topo.node_of_worker(w.id()) != 0) return;
    if (w.id() == 0) t_start_ns_ = util::now_ns();
    const WorkerId dest = w.id() + workers_per_node_;
    for (int i = 0; i < messages_per_worker_; ++i) {
      rt::Message m;
      m.endpoint = ep_data_;
      m.dst_worker = dest;
      m.src_worker = w.id();
      m.payload.resize(static_cast<std::size_t>(payload_bytes_));
      w.send(std::move(m));
      if (progress_interval_ > 0 && i % progress_interval_ == 0) {
        w.progress();
      }
    }
  });

  PingAckResult res;
  res.total_s = static_cast<double>(t_end_ns_ - t_start_ns_) * 1e-9;
  res.fabric_messages = run.fabric_messages;
  return res;
}

}  // namespace tram::apps
