#include "apps/histogram.hpp"

namespace tram::apps {

HistogramApp::HistogramApp(rt::Machine& machine,
                           const HistogramParams& params)
    : machine_(machine),
      params_(params),
      part_(params.bins_per_worker *
                static_cast<std::uint64_t>(machine.topology().workers()),
            machine.topology().workers()) {
  auto deliver = [this](rt::Worker& w, const std::uint64_t& bin) {
    auto& slice = tables_[static_cast<std::size_t>(w.id())];
    slice[bin - part_.begin(w.id())]++;
  };
  if (core::is_routed(params_.tram.scheme)) {
    routed_ = std::make_unique<route::RoutedDomain<std::uint64_t>>(
        machine, params_.tram, deliver);
  } else {
    direct_ = std::make_unique<core::TramDomain<std::uint64_t>>(
        machine, params_.tram, deliver);
  }
  tables_.resize(static_cast<std::size_t>(machine.topology().workers()));
  for (int w = 0; w < machine.topology().workers(); ++w) {
    tables_[static_cast<std::size_t>(w)].assign(part_.size(w), 0);
  }
}

HistogramResult HistogramApp::run(std::uint64_t seed) {
  for (auto& t : tables_) std::fill(t.begin(), t.end(), 0);
  if (direct_) direct_->reset_stats();
  if (routed_) routed_->reset_stats();

  const std::uint64_t total_bins = part_.total();
  const bool routed = routed_ != nullptr;
  const auto result = machine_.run(
      [this, total_bins, routed](rt::Worker& w) {
        auto* direct = direct_ ? &direct_->on(w) : nullptr;
        auto* mesh = routed_ ? &routed_->on(w) : nullptr;
        for (std::uint64_t i = 0; i < params_.updates_per_worker; ++i) {
          const std::uint64_t bin = w.rng().below(total_bins);
          const auto dest = static_cast<WorkerId>(part_.owner(bin));
          if (routed) {
            mesh->insert(dest, bin);
          } else {
            direct->insert(dest, bin);
          }
          if (params_.progress_interval != 0 &&
              i % params_.progress_interval == 0) {
            w.progress();
          }
        }
        // "Each PE invokes the flush call at the end of all updates."
        if (routed) {
          mesh->flush_all();
        } else {
          direct->flush_all();
        }
      },
      seed);

  HistogramResult res;
  res.run = result;
  res.tram = direct_ ? direct_->aggregate_stats() : routed_->aggregate_stats();
  res.max_reserved_buffers = direct_ ? direct_->max_reserved_buffers()
                                     : routed_->max_reserved_buffers();
  for (const auto& t : tables_) {
    for (const std::uint64_t c : t) res.table_total += c;
  }
  const std::uint64_t expected =
      params_.updates_per_worker *
      static_cast<std::uint64_t>(machine_.topology().workers());
  res.verified = res.table_total == expected &&
                 res.tram.items_delivered == expected;
  return res;
}

}  // namespace tram::apps
