#include "apps/histogram.hpp"

namespace tram::apps {

HistogramApp::HistogramApp(rt::Machine& machine,
                           const HistogramParams& params)
    : machine_(machine),
      params_(params),
      part_(params.bins_per_worker *
                static_cast<std::uint64_t>(machine.topology().workers()),
            machine.topology().workers()),
      domain_(machine, params.tram,
              [this](rt::Worker& w, const std::uint64_t& bin) {
                auto& slice = tables_[static_cast<std::size_t>(w.id())];
                slice[bin - part_.begin(w.id())]++;
              }) {
  tables_.resize(static_cast<std::size_t>(machine.topology().workers()));
  for (int w = 0; w < machine.topology().workers(); ++w) {
    tables_[static_cast<std::size_t>(w)].assign(part_.size(w), 0);
  }
}

HistogramResult HistogramApp::run(std::uint64_t seed) {
  for (auto& t : tables_) std::fill(t.begin(), t.end(), 0);
  domain_.reset_stats();

  const std::uint64_t total_bins = part_.total();
  const auto result = machine_.run(
      [this, total_bins](rt::Worker& w) {
        auto& tram = domain_.on(w);
        for (std::uint64_t i = 0; i < params_.updates_per_worker; ++i) {
          const std::uint64_t bin = w.rng().below(total_bins);
          tram.insert(static_cast<WorkerId>(part_.owner(bin)), bin);
          if (params_.progress_interval != 0 &&
              i % params_.progress_interval == 0) {
            w.progress();
          }
        }
        // "Each PE invokes the flush call at the end of all updates."
        tram.flush_all();
      },
      seed);

  HistogramResult res;
  res.run = result;
  res.tram = domain_.aggregate_stats();
  for (const auto& t : tables_) {
    for (const std::uint64_t c : t) res.table_total += c;
  }
  const std::uint64_t expected =
      params_.updates_per_worker *
      static_cast<std::uint64_t>(machine_.topology().workers());
  res.verified = res.table_total == expected &&
                 res.tram.items_delivered == expected;
  return res;
}

}  // namespace tram::apps
