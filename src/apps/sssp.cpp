#include "apps/sssp.hpp"

#include <algorithm>
#include <stdexcept>

namespace tram::apps {

SsspApp::SsspApp(rt::Machine& machine, const SsspParams& params)
    : machine_(machine),
      params_(params),
      part_(params.graph ? params.graph->num_vertices() : 1,
            machine.topology().workers()),
      state_(static_cast<std::size_t>(machine.topology().workers())) {
  if (params_.graph == nullptr) {
    throw std::invalid_argument("SsspApp: graph is required");
  }
  auto deliver = [this](rt::Worker& w, const Update& u) {
    auto& st = state_[static_cast<std::size_t>(w.id())].value;
    ++st.received;
    const std::uint32_t cur = st.dist[u.vertex - part_.begin(w.id())];
    if (u.dist >= cur) {
      ++st.wasted;  // speculative work someone already beat
      return;
    }
    apply_update(w, u.vertex, u.dist);
  };
  if (core::is_routed(params_.tram.scheme)) {
    routed_ = std::make_unique<route::RoutedDomain<Update>>(
        machine, params_.tram, deliver);
  } else {
    direct_ = std::make_unique<core::TramDomain<Update>>(
        machine, params_.tram, deliver);
  }
  for (int w = 0; w < machine.topology().workers(); ++w) {
    auto& st = state_[static_cast<std::size_t>(w)].value;
    st.dist.assign(part_.size(w), UINT32_MAX);
    rt::Worker& worker = machine.worker(w);
    worker.add_idle_hook([this](rt::Worker& wk) { on_idle(wk); });
    worker.add_pending_counter([&st] {
      return st.deferred_count.load(std::memory_order_acquire);
    });
  }
  if (params_.verify) {
    reference_ = graph::dijkstra(*params_.graph, params_.source);
  }
}

std::uint32_t SsspApp::distance(graph::Vertex v) const {
  const int owner = part_.owner(v);
  return state_[static_cast<std::size_t>(owner)].value.dist[v -
                                                            part_.begin(owner)];
}

void SsspApp::relax_edges(rt::Worker& w, WorkerState& st, graph::Vertex v,
                          std::uint32_t d) {
  ++st.relaxations;
  auto* direct = direct_ ? &direct_->on(w) : nullptr;
  auto* mesh = routed_ ? &routed_->on(w) : nullptr;
  const bool prioritize = params_.prioritize_urgent;
  const auto nbrs = params_.graph->neighbors(v);
  const auto wts = params_.graph->weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const graph::Vertex nb = nbrs[i];
    const std::uint32_t nd = d + wts[i];
    const int owner = part_.owner(nb);
    if (owner == w.id()) {
      st.stack.push_back({nd, nb});
    } else if (prioritize && nd <= st.threshold) {
      // Under-threshold improvements are what peers are speculating
      // against right now: ship them expedited through small buffers
      // (on a mesh, the priority bit keeps them ahead at every hop).
      if (mesh) {
        mesh->insert_priority(static_cast<WorkerId>(owner), Update{nb, nd});
      } else {
        direct->insert_priority(static_cast<WorkerId>(owner),
                                Update{nb, nd});
      }
    } else if (mesh) {
      mesh->insert(static_cast<WorkerId>(owner), Update{nb, nd});
    } else {
      direct->insert(static_cast<WorkerId>(owner), Update{nb, nd});
    }
  }
}

void SsspApp::drain_stack(rt::Worker& w, WorkerState& st) {
  while (!st.stack.empty()) {
    const auto [d, v] = st.stack.back();
    st.stack.pop_back();
    std::uint32_t& cur = st.dist[v - part_.begin(w.id())];
    if (d >= cur) continue;  // superseded locally
    cur = d;
    if (d > st.threshold) {
      st.deferred.push({d, v});
      st.deferred_count.fetch_add(1, std::memory_order_release);
      continue;
    }
    relax_edges(w, st, v, d);
  }
}

void SsspApp::apply_update(rt::Worker& w, graph::Vertex v, std::uint32_t d) {
  auto& st = state_[static_cast<std::size_t>(w.id())].value;
  st.stack.push_back({d, v});
  drain_stack(w, st);
}

void SsspApp::on_idle(rt::Worker& w) {
  auto& st = state_[static_cast<std::size_t>(w.id())].value;
  if (st.deferred.empty()) return;
  // Advance the threshold far enough to release at least the smallest
  // deferred distance, then relax everything now under it.
  st.threshold =
      std::max(st.threshold + params_.delta, st.deferred.top().first);
  while (!st.deferred.empty() && st.deferred.top().first <= st.threshold) {
    const auto [d, v] = st.deferred.top();
    st.deferred.pop();
    if (d == st.dist[v - part_.begin(w.id())]) {
      relax_edges(w, st, v, d);
      drain_stack(w, st);
    }
    // else: lazily discarded — a better distance already propagated.
    //
    // Decrement only after the entry is fully processed: any messages or
    // re-deferrals it produces are already visible to quiescence
    // detection, so there is no instant at which this work is invisible.
    st.deferred_count.fetch_sub(1, std::memory_order_release);
  }
}

void SsspApp::flush_domain(rt::Worker& w) {
  if (routed_) {
    routed_->on(w).flush_all();
  } else {
    direct_->on(w).flush_all();
  }
}

SsspResult SsspApp::run(std::uint64_t seed) {
  for (int w = 0; w < machine_.topology().workers(); ++w) {
    auto& st = state_[static_cast<std::size_t>(w)].value;
    std::fill(st.dist.begin(), st.dist.end(), UINT32_MAX);
    while (!st.deferred.empty()) st.deferred.pop();
    st.deferred_count.store(0, std::memory_order_relaxed);
    st.stack.clear();
    st.threshold = params_.delta;
    st.wasted = st.received = st.relaxations = 0;
  }
  if (direct_) direct_->reset_stats();
  if (routed_) routed_->reset_stats();

  const auto result = machine_.run(
      [this](rt::Worker& w) {
        if (part_.owner(params_.source) == w.id()) {
          apply_update(w, params_.source, 0);
          flush_domain(w);
        }
        // Everything else is message-driven; the scheduler loop, idle
        // hooks, and QD do the rest.
      },
      seed);

  SsspResult res;
  res.run = result;
  res.tram =
      direct_ ? direct_->aggregate_stats() : routed_->aggregate_stats();
  res.max_reserved_buffers = direct_ ? direct_->max_reserved_buffers()
                                     : routed_->max_reserved_buffers();
  for (const auto& s : state_) {
    res.wasted_updates += s.value.wasted;
    res.received_updates += s.value.received;
    res.relaxations += s.value.relaxations;
  }
  res.wasted_pct = res.received_updates
                       ? 100.0 * static_cast<double>(res.wasted_updates) /
                             static_cast<double>(res.received_updates)
                       : 0.0;
  if (params_.verify) {
    res.verified = true;
    for (graph::Vertex v = 0; v < params_.graph->num_vertices(); ++v) {
      const std::uint64_t expect = reference_[v];
      const std::uint32_t got = distance(v);
      const bool ok = expect == graph::kUnreachable
                          ? got == UINT32_MAX
                          : got == expect;
      if (!ok) {
        res.verified = false;
        break;
      }
    }
  }
  return res;
}

}  // namespace tram::apps
