/// Explicit instantiations of the RoutedDomain template for common item
/// types: catches template compile errors at library build time and speeds
/// up dependent TUs (mirrors core/instantiations.cpp).
#include <cstdint>

#include "route/routed_domain.hpp"

namespace tram::route {

template class RoutedDomain<std::uint32_t>;
template class RoutedDomain<std::uint64_t>;

}  // namespace tram::route
