#pragma once
///
/// \file routed_domain.hpp
/// \brief Multi-hop aggregation over a virtual mesh (Scheme::Mesh2D/3D).
///
/// RoutedDomain is the topological-routing sibling of core::TramDomain,
/// sharing its wire format, pooled EntryBuffers, stats, and delivery
/// contract, but replacing the direct one-buffer-per-destination-process
/// layout with one buffer per mesh coordinate per dimension. The message
/// lifecycle gains an intermediate stage:
///
///   insert -> hop-encode (one load of the Router's precomputed table)
///          -> ship (slab handle moves, RoutedHeader stamped in place;
///             a last-hop buffer ships pre-sorted by destination local
///             rank under RoutedHeader::kSortedMagic — sorted *in place*
///             by permutation, never copied into a fresh slab)
///          -> re-aggregate (intermediate classifies the batch once; a
///             single-destination extent forwards as a refcounted
///             sub-view of the inbound slab with zero copies, a mixed
///             extent counting-sorts once into scratch and forwards
///             runs as sub-views of the scratch slab)
///          -> ship (slot slab is extent 0; staged forward runs ride as
///             extra payload extents, rt::Message::extras — gather-send)
///          -> ... -> deliver (final process scatters refcounted
///             sub-views per rank instead of copying)
///
/// Forwarded bytes are therefore copied once (mixed extent: into
/// scratch) or not at all (single-destination extent); the only
/// remaining forward memcpy into a slot buffer is the SMP
/// final-dimension slot, whose ship permutes its own slab and so cannot
/// carry foreign extents. stats_.routed_forward_{copy,subview}_bytes
/// make the split measurable.
///
/// Every wire record carries its final destination worker
/// (WireEntry::dest), so intermediates never rewrite entries — they only
/// move them between buffers. Quiescence is safe across hops because a
/// re-bucketed entry raises this worker's pending counter before the
/// inbound message counts as handled, and flush-on-idle drains
/// intermediate buffers exactly like source buffers.
///
/// The payoff (and the reason this subsystem exists): a source worker's
/// live buffers shrink from the direct schemes' O(N) to
/// sum(dims_k - 1) + 1 = O(d * N^(1/d)), so per-buffer fill — and with it
/// message occupancy — stops degrading as the process count grows. The
/// price is up to d transport hops per item; the routed stats counters
/// (routed_hop_msgs / routed_forward_msgs / routed_forwarded_items) make
/// that trade measurable.
///
/// Hop accounting under a lossy fabric (cfg.fault, src/fault/): the
/// multi-hop path multiplies the state in flight — every intermediate
/// holds live buffers a direct scheme never had — but the domain itself
/// needs no loss-awareness. The reliability layer below dedups
/// retransmitted hop batches before they reach on_routed (a replayed
/// batch would otherwise re-bucket its entries twice and double-deliver),
/// and its unacked count extends quiescence detection, so a dropped hop
/// message keeps pending_/QD honest until its retransmit lands. Worker
/// stats here (routed_hop_msgs, routed_forwarded_items, ...) count each
/// ship once at ship time; transport-level retransmits appear only in
/// fabric message totals and core::FaultStats.
///
/// Urgent items (insert_priority, cfg.priority_buffer_items > 0) ride a
/// parallel set of small per-dimension slots shipped expedited with the
/// RoutedHeader::kPriority bit set: intermediates re-bucket them into
/// their own priority slots and flush them ahead of bulk, so priority
/// traffic overtakes bulk at every hop of the route — the property the
/// latency-sensitive irregular apps (SSSP threshold updates) depend on.

#include <array>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/config.hpp"
#include "core/grouping.hpp"
#include "core/tram_stats.hpp"
#include "core/wire.hpp"
#include "route/router.hpp"
#include "route/virtual_mesh.hpp"
#include "runtime/machine.hpp"
#include "runtime/message.hpp"
#include "runtime/worker.hpp"
#include "trace/trace.hpp"
#include "util/payload_pool.hpp"
#include "util/timebase.hpp"

namespace tram::route {

template <typename Item>
  requires std::is_trivially_copyable_v<Item>
class RoutedDomain {
 public:
  using Entry = core::WireEntry<Item>;
  /// Runs on the destination worker's thread for every delivered item.
  using DeliverFn = std::function<void(rt::Worker&, const Item&)>;

  class Handle;

  RoutedDomain(rt::Machine& machine, core::TramConfig cfg, DeliverFn deliver)
      : machine_(machine),
        cfg_(cfg),
        deliver_(std::move(deliver)),
        topo_(machine.topology()),
        router_(make_mesh(topo_.procs(), cfg)) {
    if (topo_.workers_per_proc() > core::kMaxLocalWorkers) {
      throw std::invalid_argument(
          "RoutedDomain: workers_per_proc exceeds kMaxLocalWorkers");
    }
    // Multi-hop routing makes idle flushing a correctness requirement,
    // not a latency knob: entries re-aggregated at an intermediate after
    // the application mains returned can only leave through the idle
    // hook. A config that disables it would hang quiescence forever on
    // the first partial intermediate buffer, so reject it loudly. The
    // timeout-flush knob is not implemented for routed domains (ROADMAP)
    // — reject rather than silently ignore.
    if (!cfg_.flush_on_idle) {
      throw std::invalid_argument(
          "RoutedDomain: flush_on_idle=false would strand intermediate-hop "
          "buffers (multi-hop routing requires idle flushing)");
    }
    if (cfg_.flush_timeout_ns != 0) {
      throw std::invalid_argument(
          "RoutedDomain: flush_timeout_ns is not supported for routed "
          "schemes");
    }
    register_endpoints();
    handles_.reserve(static_cast<std::size_t>(topo_.workers()));
    for (WorkerId w = 0; w < topo_.workers(); ++w) {
      handles_.push_back(
          std::unique_ptr<Handle>(new Handle(*this, machine.worker(w))));
    }
    install_hooks();
  }

  RoutedDomain(const RoutedDomain&) = delete;
  RoutedDomain& operator=(const RoutedDomain&) = delete;

  /// This worker's aggregation handle.
  Handle& on(rt::Worker& w) {
    return *handles_[static_cast<std::size_t>(w.id())];
  }
  Handle& handle(WorkerId w) { return *handles_[static_cast<std::size_t>(w)]; }

  const core::TramConfig& config() const noexcept { return cfg_; }
  const VirtualMesh& mesh() const noexcept { return router_.mesh(); }
  const Router& router() const noexcept { return router_; }
  rt::Machine& machine() noexcept { return machine_; }

  /// Merged stats across all workers (call after machine.run returns).
  core::WorkerTramStats aggregate_stats() const {
    core::WorkerTramStats total;
    for (const auto& h : handles_) total.merge(h->stats_);
    return total;
  }
  const core::WorkerTramStats& worker_stats(WorkerId w) const {
    return handles_[static_cast<std::size_t>(w)]->stats_;
  }

  /// Largest number of distinct aggregation buffers any single worker ever
  /// populated — the live-buffer count the mesh bounds by
  /// sum(dims_k - 1) + 1 (compare TramDomain, where the same metric grows
  /// to the destination-process count).
  std::uint64_t max_reserved_buffers() const {
    std::uint64_t m = 0;
    for (const auto& h : handles_) {
      if (h->reserved_buffers_ > m) m = h->reserved_buffers_;
    }
    return m;
  }

  /// Largest number of bytes any single worker ever had pinned in staged
  /// forward runs (sub-views awaiting their slot's next ship). Bounded by
  /// construction — a slot ships as soon as buffered + staged items reach
  /// the slot capacity, asserted at two fills per slot — and surfaced
  /// here so the retention policy is a measurable number, not a hope.
  std::uint64_t max_staged_forward_bytes() const {
    std::uint64_t m = 0;
    for (const auto& h : handles_) {
      if (h->staged_bytes_hwm_ > m) m = h->staged_bytes_hwm_;
    }
    return m;
  }

  /// Actual bytes reserved in aggregation buffers, machine-wide (same
  /// charge model as TramDomain::allocated_buffer_bytes).
  std::uint64_t allocated_buffer_bytes() const {
    std::uint64_t total = 0;
    for (const auto& h : handles_) {
      total += h->reserved_buffers_ *
               (sizeof(core::RoutedHeader) +
                std::uint64_t{cfg_.buffer_items} * sizeof(Entry));
    }
    return total;
  }

  /// Zero all counters between benchmark trials (machine must be idle).
  void reset_stats() {
    for (auto& h : handles_) {
      h->stats_ = core::WorkerTramStats{};
      // Re-arm the staged-forward high-water so each trial reports its
      // own retention peak (idle machine => staged_bytes_ is 0).
      h->staged_bytes_hwm_ = h->staged_bytes_;
    }
  }

 private:
  friend class Handle;

  static VirtualMesh make_mesh(int procs, const core::TramConfig& cfg) {
    const int d = core::mesh_ndims(cfg.scheme);
    if (d == 0) {
      throw std::invalid_argument(
          "RoutedDomain: scheme is not routed (use TramDomain)");
    }
    if (cfg.route_dims[0] != 0) {
      // Extents beyond the scheme's dimensionality are a mismatched
      // --scheme/--route-dims pair; truncating would silently run the
      // wrong topology.
      for (std::size_t k = static_cast<std::size_t>(d);
           k < cfg.route_dims.size(); ++k) {
        if (cfg.route_dims[k] != 0) {
          throw std::invalid_argument(
              "RoutedDomain: route_dims has more extents than the scheme "
              "has mesh dimensions");
        }
      }
      return VirtualMesh(procs, std::span<const int>(cfg.route_dims.data(),
                                                     static_cast<std::size_t>(d)));
    }
    return VirtualMesh::auto_factor(procs, d);
  }

  void register_endpoints() {
    // Hop delivery: a routed batch (header + entries) lands on some worker
    // of the hop process, which delivers finals and re-buckets the rest.
    ep_routed_ = machine_.register_endpoint(
        [this](rt::Worker& w, rt::Message&& m) {
          handle(w.id()).on_routed(w, m);
        });
    // Final-hop delivery: a batch addressed to one specific worker.
    ep_final_ = machine_.register_endpoint(
        [this](rt::Worker& w, rt::Message&& m) {
          handle(w.id()).deliver_batch(w, rt::decode_payload<Entry>(m));
        });
  }

  void install_hooks() {
    for (WorkerId w = 0; w < topo_.workers(); ++w) {
      Handle* h = handles_[static_cast<std::size_t>(w)].get();
      rt::Worker& worker = machine_.worker(w);
      worker.add_pending_counter([h] {
        return h->pending_.load(std::memory_order_acquire);
      });
      // Unconditional (the constructor rejected flush_on_idle=false):
      // intermediate buffers drain through this hook.
      worker.add_idle_hook([h](rt::Worker&) { h->flush_all(); });
    }
  }

  rt::Machine& machine_;
  core::TramConfig cfg_;
  DeliverFn deliver_;
  util::Topology topo_;
  Router router_;
  EndpointId ep_routed_ = -1;
  EndpointId ep_final_ = -1;
  std::vector<std::unique_ptr<Handle>> handles_;

 public:
  /// Per-worker routing endpoint. Obtain via RoutedDomain::on(worker);
  /// insert/flush_all must be called from the owning worker's thread.
  class Handle {
   public:
    /// Aggregate one item toward the given destination worker; it will
    /// arrive after up to mesh().ndims() hops.
    void insert(WorkerId dest, const Item& item) {
      auto& d = *domain_;
      ++stats_.items_inserted;
      Entry e;
      e.birth_ns = d.cfg_.latency_tracking ? util::now_ns() : 0;
      e.dest = dest;
      e.item = item;
      push_entry(row_[proc_of(dest)], e, /*hop=*/1, /*pri=*/false);
    }

    /// Aggregate an urgent item (the paper's future-work prioritization,
    /// over the mesh). Rides a second set of per-dimension buffer slots
    /// sized cfg.priority_buffer_items: small buffers fill (and ship)
    /// quickly, the messages are expedited, and the RoutedHeader carries
    /// a priority bit so every intermediate re-buckets the entries into
    /// its own priority slots and flushes them ahead of bulk — urgent
    /// items overtake bulk traffic at every hop, not just the first.
    /// Falls back to insert() when priority buffering is not configured.
    void insert_priority(WorkerId dest, const Item& item) {
      auto& d = *domain_;
      if (d.cfg_.priority_buffer_items == 0) {
        insert(dest, item);
        return;
      }
      ++stats_.items_inserted;
      ++stats_.priority_items;
      Entry e;
      e.birth_ns = d.cfg_.latency_tracking ? util::now_ns() : 0;
      e.dest = dest;
      e.item = item;
      push_entry(row_[proc_of(dest)], e, /*hop=*/1, /*pri=*/true);
    }

    /// Ship every partially filled buffer ("flush accumulated items").
    /// Idle workers call this automatically when flush_on_idle is set;
    /// intermediate buffers drain the same way. Priority slots flush
    /// first so urgent stragglers leave ahead of bulk at this hop too.
    void flush_all() {
      const std::uint64_t shipped0 = stats_.msgs_shipped;
      for (int slot = 0; slot < static_cast<int>(pri_bufs_.size());
           ++slot) {
        const auto s = static_cast<std::size_t>(slot);
        if (!pri_bufs_[s].empty() || pri_slot_staged_[s] != 0) {
          ship_slot(slot, /*from_flush=*/true, /*pri=*/true);
        }
      }
      for (int slot = 0; slot < static_cast<int>(bufs_.size()); ++slot) {
        const auto s = static_cast<std::size_t>(slot);
        if (!bufs_[s].empty() || slot_staged_[s] != 0) {
          ship_slot(slot, /*from_flush=*/true, /*pri=*/false);
        }
      }
      if (stats_.msgs_shipped > shipped0) {
        trace::instant(trace::Cat::kRoute, trace::kFlushIdle,
                       stats_.msgs_shipped - shipped0);
      }
    }

    const core::WorkerTramStats& stats() const noexcept { return stats_; }
    /// Items currently buffered at this worker (source or intermediate).
    std::uint64_t pending() const noexcept {
      return pending_.load(std::memory_order_acquire);
    }

   private:
    friend class RoutedDomain;

    Handle(RoutedDomain& d, rt::Worker& self)
        : domain_(&d),
          self_(&self),
          self_proc_(d.topo_.proc_of_worker(self.id())),
          wpp_(d.topo_.workers_per_proc()),
          row_(d.router_.row(d.topo_.proc_of_worker(self.id()))) {
      bufs_.resize(static_cast<std::size_t>(d.router_.slots()));
      // A final-dimension slot with several local workers ships in-place
      // permuted behind the wide sorted header, so its slab reserves the
      // wide header up front; everything else carries the 8-byte header.
      for (int slot = 0; slot < d.router_.slots(); ++slot) {
        bufs_[static_cast<std::size_t>(slot)].set_header_bytes(
            sorted_slot(slot) ? sizeof(core::RoutedSortedHeader)
                              : sizeof(core::RoutedHeader));
      }
      slot_hop_.assign(bufs_.size(), 0);
      slot_runs_.resize(bufs_.size());
      slot_staged_.assign(bufs_.size(), 0);
      slot_counted_.assign(bufs_.size(), false);
      if (d.cfg_.priority_buffer_items > 0) {
        // Priority slots mirror the bulk slot layout (one per mesh
        // coordinate per dimension) so the same Route record indexes
        // both: urgent entries re-aggregate per dimension exactly like
        // bulk, just through smaller, expedited buffers.
        pri_bufs_.resize(bufs_.size());
        for (int slot = 0; slot < d.router_.slots(); ++slot) {
          pri_bufs_[static_cast<std::size_t>(slot)].set_header_bytes(
              sorted_slot(slot) ? sizeof(core::RoutedSortedHeader)
                                : sizeof(core::RoutedHeader));
        }
        pri_slot_hop_.assign(pri_bufs_.size(), 0);
        pri_slot_runs_.resize(pri_bufs_.size());
        pri_slot_staged_.assign(pri_bufs_.size(), 0);
      }
    }

    /// A slot whose ship is the in-place permuted sorted form (final
    /// dimension, nontrivial local grouping). Such a slot's outgoing slab
    /// is rank-permuted at ship time, so forward runs cannot be staged on
    /// it as extents — they are the one remaining copy-in path.
    bool sorted_slot(int slot) const noexcept {
      return domain_->router_.ships_final(slot) && wpp_ > 1;
    }

    /// workers_per_proc == 1 (non-SMP) is the common bench shape; skip
    /// the integer division on the per-entry paths.
    ProcId proc_of(WorkerId w) const noexcept {
      return wpp_ == 1 ? w : w / wpp_;
    }
    LocalWorkerId rank_of(WorkerId w) const noexcept {
      return wpp_ == 1 ? 0 : w % wpp_;
    }

    /// Bucket an entry into its route's buffer (priority entries into the
    /// parallel priority slot); ship on fill. `hop` is the ordinal this
    /// entry's *next* ship will be (1 off the source, inbound hop + 1 off
    /// an intermediate).
    void push_entry(const Router::Route& r, const Entry& e,
                    std::uint8_t hop, bool pri) {
      auto& d = *domain_;
      const std::uint32_t cap =
          pri ? d.cfg_.priority_buffer_items : d.cfg_.buffer_items;
      const auto s = static_cast<std::size_t>(r.slot);
      auto& buf = (pri ? pri_bufs_ : bufs_)[s];
      note_slot_used(s, pri);
      buf.push(e, cap);
      auto& hops = pri ? pri_slot_hop_ : slot_hop_;
      if (hop > hops[s]) hops[s] = hop;
      pending_.fetch_add(1, std::memory_order_release);
      if (buf.size() + staged_of(s, pri) >= cap) {
        ship_slot(r.slot, /*from_flush=*/false, pri);
      }
    }

    /// Priority slots stay out of the live-buffer metric (mirrors
    /// TramDomain: the bound being measured is the bulk footprint the
    /// section III-C formulas charge). Counted on first use whether the
    /// slot first sees a pushed entry or a staged sub-view run.
    void note_slot_used(std::size_t s, bool pri) {
      if (pri || slot_counted_[s]) return;
      slot_counted_[s] = true;
      ++reserved_buffers_;
      // Every increment IS a new high-water mark (the count never drops
      // within a run) — the trace shows when the footprint grew.
      trace::instant(trace::Cat::kRoute, trace::kBufferHighWater,
                     reserved_buffers_, static_cast<std::uint32_t>(s));
    }

    std::uint32_t staged_of(std::size_t s, bool pri) const noexcept {
      return (pri ? pri_slot_staged_ : slot_staged_)[s];
    }

    /// Stage a forwarded run on a slot as a refcounted sub-view (of the
    /// inbound slab or of the re-bucket scratch): zero bytes move now;
    /// the run ships as an extra payload extent of the slot's next
    /// message. Only for non-sorted_slot() slots — a permuted sorted
    /// ship has no extent channel.
    void stage_run(int slot, util::PayloadRef run, std::uint32_t n,
                   std::uint8_t hop, bool pri) {
      auto& d = *domain_;
      assert(!sorted_slot(slot));
      const std::uint32_t cap_cfg =
          pri ? d.cfg_.priority_buffer_items : d.cfg_.buffer_items;
      const std::uint32_t cap = cap_cfg == 0 ? 1 : cap_cfg;
      const auto s = static_cast<std::size_t>(slot);
      auto& buf = (pri ? pri_bufs_ : bufs_)[s];
      auto& staged = (pri ? pri_slot_staged_ : slot_staged_)[s];
      auto& hops = pri ? pri_slot_hop_ : slot_hop_;
      note_slot_used(s, pri);
      pending_.fetch_add(n, std::memory_order_release);
      // Stage at most cap entries per pending run, shipping on every
      // fill. An inbound extent usually fits one fill, but the
      // reliability layer flattens a multi-extent ship into one framed
      // slab, so a re-framed extent can span several fills — chunking
      // (free: the chunks are sub-views of the same slab) keeps the
      // retention bound below independent of the transport stack.
      std::uint32_t off = 0;
      while (n > 0) {
        const std::uint32_t k = n < cap ? n : cap;
        (pri ? pri_slot_runs_ : slot_runs_)[s].push_back(PendingRun{
            run.subref(std::size_t{off} * sizeof(Entry),
                       std::size_t{k} * sizeof(Entry)),
            k});
        staged += k;
        // Retention bound: chunks are at most one fill (cap), and a slot
        // ships as soon as buffered + staged reaches cap, so the staged
        // backlog can never exceed two fills. A violation means a ship
        // was skipped and sub-view slabs are accumulating silently.
        assert(staged <= 2 * cap &&
               "staged forward runs exceed the two-fill retention bound");
        staged_bytes_ += std::uint64_t{k} * sizeof(Entry);
        if (staged_bytes_ > staged_bytes_hwm_) {
          staged_bytes_hwm_ = staged_bytes_;
          stats_.max_staged_fwd_bytes = staged_bytes_;
        }
        if (hop > hops[s]) hops[s] = hop;
        off += k;
        n -= k;
        if (buf.size() + staged >= cap) {
          ship_slot(slot, /*from_flush=*/false, pri);
        }
      }
    }

    /// Append a contiguous run into a slot's buffer by copy, shipping
    /// every time it fills. After the zero-copy forward path this only
    /// serves sorted_slot() slots (the in-place permuted ship owns its
    /// whole slab); every byte through here lands in
    /// routed_forward_copy_bytes at the caller.
    void append_run(int slot, const Entry* src, std::uint32_t n,
                    std::uint8_t hop, bool pri) {
      auto& d = *domain_;
      const std::uint32_t cap_cfg =
          pri ? d.cfg_.priority_buffer_items : d.cfg_.buffer_items;
      const std::uint32_t cap = cap_cfg == 0 ? 1 : cap_cfg;
      const auto s = static_cast<std::size_t>(slot);
      auto& buf = (pri ? pri_bufs_ : bufs_)[s];
      auto& hops = pri ? pri_slot_hop_ : slot_hop_;
      note_slot_used(s, pri);
      pending_.fetch_add(n, std::memory_order_release);
      while (n > 0) {
        const std::uint32_t room = cap - buf.size();
        const std::uint32_t k = n < room ? n : room;
        // Re-raise after every ship: ship_slot resets the slot's hop.
        if (hop > hops[s]) hops[s] = hop;
        buf.append(src, k, cap);
        src += k;
        n -= k;
        if (buf.size() >= cap) ship_slot(slot, /*from_flush=*/false, pri);
      }
    }

    /// Ship a slot's buffer (plus any staged forward runs) to its
    /// next-hop process. A sorted_slot() ships its own slab in-place
    /// permuted by destination local rank behind a RoutedSortedHeader —
    /// the permutation replaces the former counting-sort-into-fresh-slab
    /// copy. Every other slot ships its slab in place behind the plain
    /// RoutedHeader with staged runs attached as extra payload extents;
    /// when only staged runs exist, extent 0 degenerates to a pooled
    /// 8-byte header block. In all cases the handles move — ship copies
    /// nothing.
    void ship_slot(int slot, bool from_flush, bool pri) {
      auto& d = *domain_;
      const auto s = static_cast<std::size_t>(slot);
      auto& buf = (pri ? pri_bufs_ : bufs_)[s];
      auto& runs = (pri ? pri_slot_runs_ : slot_runs_)[s];
      auto& staged = (pri ? pri_slot_staged_ : slot_staged_)[s];
      const std::size_t n = buf.size() + staged;
      if (n == 0) return;
      const std::uint8_t hop = (pri ? pri_slot_hop_ : slot_hop_)[s];
      const bool sorted = d.router_.ships_final(slot);

      core::RoutedHeader hdr;
      hdr.magic = sorted ? core::RoutedHeader::kSortedMagic
                         : core::RoutedHeader::kMagic;
      hdr.dim = static_cast<std::uint16_t>(d.router_.dim_of_slot(slot));
      hdr.hop = hop;
      hdr.flags = pri ? core::RoutedHeader::kPriority : 0;

      rt::Message m;
      m.endpoint = d.ep_routed_;
      m.src_worker = self_->id();
      // Priority batches are always expedited, whatever the bulk policy:
      // expedited dispatch is what lets them overtake bulk in every
      // inbox along the route.
      m.expedited = pri || d.cfg_.expedited;
      m.hops = static_cast<std::uint8_t>(hop - 1);

      if (sorted && wpp_ > 1) {
        // Permute the slot's own slab into rank-grouped order and ship
        // it by moving the handle; the wide header space was reserved at
        // construction. Forward runs are never staged here (see
        // stage_run), so the slab is the whole message.
        assert(runs.empty() && staged == 0);
        core::RoutedSortedHeader shdr;
        shdr.base = hdr;
        core::permute_sort_segments(
            buf.data(), n, wpp_,
            [this](WorkerId dw) { return rank_of(dw); }, shdr.segments);
        std::memcpy(buf.header(), &shdr, sizeof shdr);
        m.payload = buf.take();
      } else {
        if (buf.empty()) {
          // Nothing but staged runs: a header-only extent 0 carries the
          // routing metadata (cheaper than copying the first run behind
          // a header, and the slot's idle slab — if any — stays put).
          m.payload = util::PayloadPool::global().acquire(sizeof hdr);
          std::memcpy(m.payload.data(), &hdr, sizeof hdr);
        } else {
          std::memcpy(buf.header(), &hdr, sizeof hdr);
          m.payload = buf.take();
        }
        if (!runs.empty()) {
          m.extras.reserve(runs.size());
          for (auto& r : runs) m.extras.push_back(std::move(r.bytes));
          runs.clear();
          staged_bytes_ -= std::uint64_t{staged} * sizeof(Entry);
          staged = 0;
        }
      }

      ++stats_.msgs_shipped;
      ++stats_.routed_hop_msgs;
      if (pri) ++stats_.priority_msgs;
      if (sorted) ++stats_.routed_sorted_msgs;
      if (hop > 1) ++stats_.routed_forward_msgs;
      if (from_flush) ++stats_.flush_msgs;
      stats_.occupancy_at_ship.add(static_cast<double>(n));
      (pri ? pri_slot_hop_ : slot_hop_)[s] = 0;
      // a1 packs the slot with what kind of ship this was: bit 16 pri,
      // 17 flush, 18 sorted fast path; hop in bits 24+.
      trace::instant(trace::Cat::kRoute, trace::kShip, n,
                     static_cast<std::uint32_t>(s) |
                         (pri ? 1u << 16 : 0) | (from_flush ? 1u << 17 : 0) |
                         (sorted ? 1u << 18 : 0) |
                         (static_cast<std::uint32_t>(hop) << 24));

      self_->send_to_proc(d.router_.ship_target(self_proc_, slot),
                          std::move(m));
      pending_.fetch_sub(n, std::memory_order_release);
    }

    /// A routed batch arrived at this process. Each payload extent is an
    /// independent entry array under the shared header: a pre-sorted
    /// last-hop batch scatters as refcounted sub-views; an unsorted hop
    /// extent is classified once and its runs delivered / re-staged as
    /// sub-views (or counting-sorted into scratch when it mixes buckets).
    void on_routed(rt::Worker& w, const rt::Message& msg) {
      const std::span<const std::byte> bytes = msg.payload.span();
      const core::RoutedWire wire = core::parse_routed_header(bytes, wpp_);
      const auto entries =
          rt::decode_payload<Entry>(bytes.subspan(wire.header_bytes));
      if (wire.sorted) {
        if (wpp_ == 1) {
          // Trivial grouping: every extent is our segment, whole.
          ++stats_.routed_subview_deliveries;
          deliver_batch(w, entries);
          for (const auto& ex : msg.extras) {
            ++stats_.routed_subview_deliveries;
            deliver_batch(w, rt::decode_payload<Entry>(ex.span()));
          }
          return;
        }
        // The in-place permuted SMP ship owns its whole slab; it never
        // carries extents (stage_run refuses sorted slots).
        assert(msg.extras.empty());
        scatter_sorted(w, msg, entries, wire.hdr.priority());
        trace::instant(trace::Cat::kRoute, trace::kScatterSorted,
                       entries.size());
      } else {
        const std::uint64_t t0 = trace::maybe_now();
        rebucket_message(w, wire, msg, entries);
        trace::complete(trace::Cat::kRoute, trace::kRebucket, t0,
                        entries.size(), wire.hdr.hop);
      }
    }

    /// Sorted last-hop delivery (wpp_ > 1): every entry terminates at
    /// this process and arrives grouped by destination local rank —
    /// deliver our own segment in place, forward each other rank's as a
    /// refcounted sub-view of the inbound slab (TramDomain's WsP scatter
    /// applied to the routed path; the slab recycles when the last
    /// segment drops).
    void scatter_sorted(rt::Worker& w, const rt::Message& msg,
                        std::span<const Entry> entries, bool pri) {
      auto& d = *domain_;
      core::SegmentHeader seg;
      std::memcpy(&seg, msg.payload.data() + sizeof(core::RoutedHeader),
                  sizeof seg);
      const LocalWorkerId own = rank_of(w.id());
      std::size_t offset = 0;
      for (int r = 0; r < wpp_; ++r) {
        const std::uint32_t count = seg.counts[r];
        if (count == 0) continue;
        if (offset + count > entries.size()) {
          std::fprintf(stderr,
                       "sorted routed message: segment counts overflow "
                       "the payload (%zu entries)\n",
                       entries.size());
          std::abort();
        }
        const auto segment = entries.subspan(offset, count);
        const std::size_t seg_bytes_off =
            sizeof(core::RoutedSortedHeader) + offset * sizeof(Entry);
        offset += count;
        ++stats_.routed_subview_deliveries;
        if (r == own) {
          deliver_batch(w, segment);
          continue;
        }
        rt::Message m;
        m.endpoint = d.ep_final_;
        m.dst_worker = d.topo_.worker_at(self_proc_, r);
        m.src_worker = w.id();
        m.expedited = pri || d.cfg_.expedited;
        m.payload = msg.payload.subref(seg_bytes_off,
                                       count * sizeof(Entry));
        ++stats_.regroup_msgs;
        w.send(std::move(m));
      }
      // Counts summing short of the payload would silently drop the tail
      // — the mirror image of the overflow aborted above, and the same
      // wire-corruption class.
      if (offset != entries.size()) {
        std::fprintf(stderr,
                     "sorted routed message: segment counts cover %zu of "
                     "%zu entries\n",
                     offset, entries.size());
        std::abort();
      }
    }

    /// Unsorted hop message: classify every entry of every extent by
    /// (final local rank | next-hop slot) in ONE pass, then move whole
    /// runs. A single-bucket extent — a relay stream whose batch shares
    /// one next hop — never copies: it is delivered in place or
    /// re-staged as a sub-view of the *inbound* slab and rides the next
    /// ship as an extra payload extent. Mixed extents pay exactly one
    /// copy, the rebucket scatter, aimed directly at its final resting
    /// place (next-hop slot buffers for forwards, a regroup scratch for
    /// other-rank finals). Processing the extents together keeps the
    /// per-batch amortization: an intermediate hop can receive several
    /// extents per message, and rebucketing each separately would pay
    /// the classify/scratch fixed costs per extent.
    void rebucket_message(rt::Worker& w, const core::RoutedWire& wire,
                          const rt::Message& msg,
                          std::span<const Entry> entries) {
      auto& d = *domain_;
      const core::RoutedHeader& hdr = wire.hdr;
      const bool pri = hdr.priority();
      const LocalWorkerId own = rank_of(w.id());
      const auto next_ord = static_cast<std::uint8_t>(hdr.hop + 1);
      const std::size_t nbuckets =
          static_cast<std::size_t>(wpp_) + bufs_.size();
      constexpr std::uint32_t kMixed = UINT32_MAX;

      extents_.clear();
      if (!entries.empty()) {
        extents_.push_back(
            ExtentView{entries, &msg.payload, wire.header_bytes, 0, 0});
      }
      for (const auto& ex : msg.extras) {
        const auto es = rt::decode_payload<Entry>(ex.span());
        if (!es.empty()) extents_.push_back(ExtentView{es, &ex, 0, 0, 0});
      }
      if (extents_.empty()) return;
      std::size_t total = 0;
      for (const auto& ext : extents_) total += ext.entries.size();

      // Pass 1 over every extent at once: shared bucket counts, the
      // per-entry bucket index, and per-extent single-bucket detection —
      // finals bucket to their local rank, forwards to wpp_ + next-hop
      // slot (one table load each).
      bucket_counts_.assign(nbuckets, 0);
      bucket_cursor_.resize(total);  // per-entry bucket, across extents
      std::size_t ci = 0;
      for (auto& ext : extents_) {
        ext.cursor_off = ci;
        std::uint32_t first = kMixed;
        bool mixed = false;
        for (const Entry& e : ext.entries) {
          const ProcId dst_proc = proc_of(e.dest);
          std::uint32_t b;
          if (dst_proc == self_proc_) {
            b = static_cast<std::uint32_t>(rank_of(e.dest));
          } else {
            const Router::Route& r = row_[dst_proc];
            // Dimension-ordered: the hop that carried this entry here
            // matched its coordinate in hdr.dim, so the next mismatch is
            // strictly higher — a cycle would mean wire corruption.
            assert(r.dim > static_cast<std::int16_t>(hdr.dim) &&
                   "routed entry does not advance dimension order");
            b = static_cast<std::uint32_t>(wpp_) +
                static_cast<std::uint32_t>(r.slot);
          }
          bucket_cursor_[ci++] = b;
          bucket_counts_[b]++;
          if (first == kMixed) {
            first = b;
          } else if (b != first) {
            mixed = true;
          }
        }
        ext.only = mixed ? kMixed : first;
      }

      // Single-bucket extents move whole, as sub-views of the inbound
      // slab they arrived in; their counts leave the shared totals so
      // the scratch below covers exactly the mixed remainder.
      std::size_t mixed_total = total;
      for (const auto& ext : extents_) {
        if (ext.only == kMixed) continue;
        const std::size_t n = ext.entries.size();
        const auto count = static_cast<std::uint32_t>(n);
        mixed_total -= n;
        bucket_counts_[ext.only] -= count;
        const std::size_t only = ext.only;
        if (only < static_cast<std::size_t>(wpp_)) {
          ++stats_.routed_subview_deliveries;
          if (static_cast<LocalWorkerId>(only) == own) {
            deliver_batch(w, ext.entries);
          } else {
            rt::Message m;
            m.endpoint = d.ep_final_;
            m.dst_worker =
                d.topo_.worker_at(self_proc_, static_cast<int>(only));
            m.src_worker = w.id();
            m.expedited = pri || d.cfg_.expedited;
            m.payload = ext.slab->subref(ext.base_off, n * sizeof(Entry));
            ++stats_.regroup_msgs;
            w.send(std::move(m));
          }
        } else {
          const int slot = static_cast<int>(only) - wpp_;
          stats_.routed_forwarded_items += count;
          if (sorted_slot(slot)) {
            stats_.routed_forward_copy_bytes += n * sizeof(Entry);
            append_run(slot, ext.entries.data(), count, next_ord, pri);
          } else {
            stats_.routed_forward_subview_bytes += n * sizeof(Entry);
            stage_run(slot,
                      ext.slab->subref(ext.base_off, n * sizeof(Entry)),
                      count, next_ord, pri);
          }
        }
      }
      if (mixed_total == 0) return;
      stats_.routed_rebucket_copy_bytes +=
          std::uint64_t{mixed_total} * sizeof(Entry);

      // Pass 2. Mixed entries pay exactly one copy — the rebucket
      // scatter — and its destination is chosen so no second copy ever
      // follows: forwards scatter STRAIGHT into their next-hop slot's
      // buffer (the scatter doubles as the append, and the slot still
      // ships one contiguous extent by moving its slab); finals bound
      // for other local ranks scatter into a scratch slab sized to just
      // them, so each regroup ships as a refcounted sub-view. An earlier
      // iteration scattered everything into scratch and staged forward
      // runs as sub-view extras — zero additional copies on paper, but
      // the per-extent handle churn and fragmented downstream extents
      // cost more than the one memcpy it saved. Sub-view forwarding
      // stays for single-bucket extents (above), where it genuinely
      // replaces a copy with a handle move.
      std::uint32_t finals_total = 0;
      for (std::size_t b = 0; b < static_cast<std::size_t>(wpp_); ++b) {
        finals_total += bucket_counts_[b];
      }
      bucket_starts_.resize(static_cast<std::size_t>(wpp_));
      std::uint32_t acc = 0;
      for (std::size_t b = 0; b < static_cast<std::size_t>(wpp_); ++b) {
        bucket_starts_[b] = acc;
        acc += bucket_counts_[b];
      }
      util::PayloadRef scratch;
      Entry* fin = nullptr;
      if (finals_total != 0) {
        scratch = util::PayloadPool::global().acquire(
            std::size_t{finals_total} * sizeof(Entry));
        fin = reinterpret_cast<Entry*>(scratch.data());
      }

      // Per-slot bookkeeping hoisted out of the per-entry loop: sticky
      // buffer accounting, the forwarded-items stat, and the pending_
      // credit (one bulk add instead of an atomic per entry; ship_slot
      // debits as slots drain during the scatter).
      const std::uint64_t fwd_mixed =
          std::uint64_t{mixed_total} - finals_total;
      if (fwd_mixed != 0) {
        pending_.fetch_add(fwd_mixed, std::memory_order_release);
      }
      for (std::size_t b = static_cast<std::size_t>(wpp_); b < nbuckets;
           ++b) {
        if (bucket_counts_[b] == 0) continue;
        note_slot_used(b - static_cast<std::size_t>(wpp_), pri);
        stats_.routed_forwarded_items += bucket_counts_[b];
      }
      const std::uint32_t cap_cfg =
          pri ? d.cfg_.priority_buffer_items : d.cfg_.buffer_items;
      const std::uint32_t cap = cap_cfg == 0 ? 1 : cap_cfg;
      auto& fbufs = pri ? pri_bufs_ : bufs_;
      auto& hops = pri ? pri_slot_hop_ : slot_hop_;
      for (const auto& ext : extents_) {
        if (ext.only != kMixed) continue;
        const std::size_t n = ext.entries.size();
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint32_t b = bucket_cursor_[ext.cursor_off + i];
          const Entry& e = ext.entries[i];
          if (b < static_cast<std::uint32_t>(wpp_)) {
            fin[bucket_starts_[b]++] = e;
            continue;
          }
          const auto s = static_cast<std::size_t>(b - wpp_);
          auto& buf = fbufs[s];
          buf.push(e, cap);
          // Re-raise after every ship: ship_slot resets the slot's hop.
          if (next_ord > hops[s]) hops[s] = next_ord;
          if (buf.size() + staged_of(s, pri) >= cap) {
            ship_slot(static_cast<int>(s), /*from_flush=*/false, pri);
          }
        }
      }

      // Finals: one batched delivery for our own rank, sub-views of the
      // scratch slab for the rest. A run's start is recovered as
      // cursor - count (bucket_starts_ walked forward in the scatter).
      for (int r = 0; r < wpp_; ++r) {
        const std::uint32_t count =
            bucket_counts_[static_cast<std::size_t>(r)];
        if (count == 0) continue;
        const std::uint32_t start =
            bucket_starts_[static_cast<std::size_t>(r)] - count;
        const auto segment = std::span<const Entry>(fin + start, count);
        // Count every segment handed off as a slab view (mirrors
        // scatter_sorted, so the SMP metric is path-independent).
        ++stats_.routed_subview_deliveries;
        if (r == own) {
          deliver_batch(w, segment);
          continue;
        }
        rt::Message m;
        m.endpoint = d.ep_final_;
        m.dst_worker = d.topo_.worker_at(self_proc_, r);
        m.src_worker = w.id();
        m.expedited = pri || d.cfg_.expedited;
        m.payload = scratch.subref(start * sizeof(Entry),
                                   count * sizeof(Entry));
        ++stats_.regroup_msgs;
        w.send(std::move(m));
      }
    }

    /// Final-hop delivery on the destination worker.
    void deliver_batch(rt::Worker& w, std::span<const Entry> entries) {
      auto& d = *domain_;
      const bool track = d.cfg_.latency_tracking;
      for (const Entry& e : entries) {
        if (e.dest != w.id()) {
          std::fprintf(stderr,
                       "routed misroute: entry dest=%d delivered on "
                       "worker=%d (mesh=%s)\n",
                       e.dest, w.id(), d.mesh().to_string().c_str());
          std::abort();
        }
        if (track && e.birth_ns != 0) {
          stats_.latency.add(util::now_ns() - e.birth_ns);
        }
        ++stats_.items_delivered;
        d.deliver_(w, e.item);
      }
    }

    RoutedDomain* domain_;
    rt::Worker* self_;
    ProcId self_proc_;
    int wpp_;  ///< workers per process, cached off the hot paths
    /// This process's row of the Router's precomputed table: the
    /// per-entry routing decision is row_[dst_proc], one indexed load.
    const Router::Route* row_;
    std::vector<core::EntryBuffer<Entry>> bufs_;
    /// Priority slots, mirroring bufs_'s layout; sized only when
    /// cfg.priority_buffer_items > 0 (insert_priority falls back to the
    /// bulk path otherwise).
    std::vector<core::EntryBuffer<Entry>> pri_bufs_;
    /// Per-slot pending hop ordinal: max over the entries currently in the
    /// slot's buffer of the hop their next ship will be.
    std::vector<std::uint8_t> slot_hop_;
    std::vector<std::uint8_t> pri_slot_hop_;
    /// A forwarded run staged for a slot's next ship: a refcounted
    /// sub-view of the slab the entries already live in (inbound extent
    /// or re-bucket scratch). Ships as an extra payload extent.
    struct PendingRun {
      util::PayloadRef bytes;
      std::uint32_t count = 0;
    };
    std::vector<std::vector<PendingRun>> slot_runs_;
    std::vector<std::vector<PendingRun>> pri_slot_runs_;
    /// Items staged in slot_runs_ per slot (kept alongside so the ship
    /// threshold check is O(1)).
    std::vector<std::uint32_t> slot_staged_;
    std::vector<std::uint32_t> pri_slot_staged_;
    /// One sticky flag per bulk slot for the reserved_buffers_ metric
    /// (replaces EntryBuffer::ever_acquired, which a staging-only slot
    /// would never set).
    std::vector<bool> slot_counted_;
    /// Bytes currently pinned by staged forward runs, and the worst case
    /// ever seen — the retention high-water mark max_staged_forward_bytes
    /// reports (max_reserved_buffers-style visibility for the sub-view
    /// backlog, which would otherwise grow silently).
    std::uint64_t staged_bytes_ = 0;
    std::uint64_t staged_bytes_hwm_ = 0;
    /// One inbound payload extent under rebucket_message: its decoded
    /// entries, the slab they live in (for sub-view staging), the byte
    /// offset of the entries within that slab, this extent's start in
    /// bucket_cursor_, and its sole bucket (UINT32_MAX when mixed).
    struct ExtentView {
      std::span<const Entry> entries;
      const util::PayloadRef* slab;
      std::size_t base_off;
      std::size_t cursor_off;
      std::uint32_t only;
    };
    /// rebucket_message scratch, reused across inbound batches (safe:
    /// handlers never nest — both transports enqueue rather than call
    /// through, so a ship inside a handler cannot re-enter it).
    std::vector<ExtentView> extents_;
    std::vector<std::uint32_t> bucket_counts_;
    std::vector<std::uint32_t> bucket_starts_;
    std::vector<std::uint32_t> bucket_cursor_;
    std::atomic<std::uint64_t> pending_{0};
    core::WorkerTramStats stats_;
    std::uint64_t reserved_buffers_ = 0;
  };
};

}  // namespace tram::route
