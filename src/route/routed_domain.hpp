#pragma once
///
/// \file routed_domain.hpp
/// \brief Multi-hop aggregation over a virtual mesh (Scheme::Mesh2D/3D).
///
/// RoutedDomain is the topological-routing sibling of core::TramDomain,
/// sharing its wire format, pooled EntryBuffers, stats, and delivery
/// contract, but replacing the direct one-buffer-per-destination-process
/// layout with one buffer per mesh coordinate per dimension. The message
/// lifecycle gains an intermediate stage:
///
///   insert -> hop-encode (pick the lowest mismatched dimension's buffer)
///          -> ship (slab handle moves, RoutedHeader stamped in place)
///          -> re-aggregate (intermediate re-buckets entries one
///             dimension up instead of delivering)
///          -> ship ... -> deliver (final process regroups to workers)
///
/// Every wire record carries its final destination worker
/// (WireEntry::dest), so intermediates never rewrite entries — they only
/// move them between buffers. Quiescence is safe across hops because a
/// re-bucketed entry raises this worker's pending counter before the
/// inbound message counts as handled, and flush-on-idle drains
/// intermediate buffers exactly like source buffers.
///
/// The payoff (and the reason this subsystem exists): a source worker's
/// live buffers shrink from the direct schemes' O(N) to
/// sum(dims_k - 1) + 1 = O(d * N^(1/d)), so per-buffer fill — and with it
/// message occupancy — stops degrading as the process count grows. The
/// price is up to d transport hops per item; the routed stats counters
/// (routed_hop_msgs / routed_forward_msgs / routed_forwarded_items) make
/// that trade measurable.

#include <array>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/config.hpp"
#include "core/tram_stats.hpp"
#include "core/wire.hpp"
#include "route/router.hpp"
#include "route/virtual_mesh.hpp"
#include "runtime/machine.hpp"
#include "runtime/message.hpp"
#include "runtime/worker.hpp"
#include "util/payload_pool.hpp"
#include "util/timebase.hpp"

namespace tram::route {

template <typename Item>
  requires std::is_trivially_copyable_v<Item>
class RoutedDomain {
 public:
  using Entry = core::WireEntry<Item>;
  /// Runs on the destination worker's thread for every delivered item.
  using DeliverFn = std::function<void(rt::Worker&, const Item&)>;

  class Handle;

  RoutedDomain(rt::Machine& machine, core::TramConfig cfg, DeliverFn deliver)
      : machine_(machine),
        cfg_(cfg),
        deliver_(std::move(deliver)),
        topo_(machine.topology()),
        router_(make_mesh(topo_.procs(), cfg)) {
    if (topo_.workers_per_proc() > core::kMaxLocalWorkers) {
      throw std::invalid_argument(
          "RoutedDomain: workers_per_proc exceeds kMaxLocalWorkers");
    }
    // Multi-hop routing makes idle flushing a correctness requirement,
    // not a latency knob: entries re-aggregated at an intermediate after
    // the application mains returned can only leave through the idle
    // hook. A config that disables it would hang quiescence forever on
    // the first partial intermediate buffer, so reject it loudly. The
    // timeout-flush and priority knobs are not implemented for routed
    // domains (ROADMAP) — reject rather than silently ignore.
    if (!cfg_.flush_on_idle) {
      throw std::invalid_argument(
          "RoutedDomain: flush_on_idle=false would strand intermediate-hop "
          "buffers (multi-hop routing requires idle flushing)");
    }
    if (cfg_.flush_timeout_ns != 0 || cfg_.priority_buffer_items != 0) {
      throw std::invalid_argument(
          "RoutedDomain: flush_timeout_ns / priority_buffer_items are not "
          "supported for routed schemes");
    }
    register_endpoints();
    handles_.reserve(static_cast<std::size_t>(topo_.workers()));
    for (WorkerId w = 0; w < topo_.workers(); ++w) {
      handles_.push_back(
          std::unique_ptr<Handle>(new Handle(*this, machine.worker(w))));
    }
    install_hooks();
  }

  RoutedDomain(const RoutedDomain&) = delete;
  RoutedDomain& operator=(const RoutedDomain&) = delete;

  /// This worker's aggregation handle.
  Handle& on(rt::Worker& w) {
    return *handles_[static_cast<std::size_t>(w.id())];
  }
  Handle& handle(WorkerId w) { return *handles_[static_cast<std::size_t>(w)]; }

  const core::TramConfig& config() const noexcept { return cfg_; }
  const VirtualMesh& mesh() const noexcept { return router_.mesh(); }
  const Router& router() const noexcept { return router_; }
  rt::Machine& machine() noexcept { return machine_; }

  /// Merged stats across all workers (call after machine.run returns).
  core::WorkerTramStats aggregate_stats() const {
    core::WorkerTramStats total;
    for (const auto& h : handles_) total.merge(h->stats_);
    return total;
  }
  const core::WorkerTramStats& worker_stats(WorkerId w) const {
    return handles_[static_cast<std::size_t>(w)]->stats_;
  }

  /// Largest number of distinct aggregation buffers any single worker ever
  /// populated — the live-buffer count the mesh bounds by
  /// sum(dims_k - 1) + 1 (compare TramDomain, where the same metric grows
  /// to the destination-process count).
  std::uint64_t max_reserved_buffers() const {
    std::uint64_t m = 0;
    for (const auto& h : handles_) {
      if (h->reserved_buffers_ > m) m = h->reserved_buffers_;
    }
    return m;
  }

  /// Actual bytes reserved in aggregation buffers, machine-wide (same
  /// charge model as TramDomain::allocated_buffer_bytes).
  std::uint64_t allocated_buffer_bytes() const {
    std::uint64_t total = 0;
    for (const auto& h : handles_) {
      total += h->reserved_buffers_ *
               (sizeof(core::RoutedHeader) +
                std::uint64_t{cfg_.buffer_items} * sizeof(Entry));
    }
    return total;
  }

  /// Zero all counters between benchmark trials (machine must be idle).
  void reset_stats() {
    for (auto& h : handles_) h->stats_ = core::WorkerTramStats{};
  }

 private:
  friend class Handle;

  static VirtualMesh make_mesh(int procs, const core::TramConfig& cfg) {
    const int d = core::mesh_ndims(cfg.scheme);
    if (d == 0) {
      throw std::invalid_argument(
          "RoutedDomain: scheme is not routed (use TramDomain)");
    }
    if (cfg.route_dims[0] != 0) {
      // Extents beyond the scheme's dimensionality are a mismatched
      // --scheme/--route-dims pair; truncating would silently run the
      // wrong topology.
      for (std::size_t k = static_cast<std::size_t>(d);
           k < cfg.route_dims.size(); ++k) {
        if (cfg.route_dims[k] != 0) {
          throw std::invalid_argument(
              "RoutedDomain: route_dims has more extents than the scheme "
              "has mesh dimensions");
        }
      }
      return VirtualMesh(procs, std::span<const int>(cfg.route_dims.data(),
                                                     static_cast<std::size_t>(d)));
    }
    return VirtualMesh::auto_factor(procs, d);
  }

  void register_endpoints() {
    // Hop delivery: a routed batch (header + entries) lands on some worker
    // of the hop process, which delivers finals and re-buckets the rest.
    ep_routed_ = machine_.register_endpoint(
        [this](rt::Worker& w, rt::Message&& m) {
          handle(w.id()).on_routed(w, m);
        });
    // Final-hop delivery: a batch addressed to one specific worker.
    ep_final_ = machine_.register_endpoint(
        [this](rt::Worker& w, rt::Message&& m) {
          handle(w.id()).deliver_batch(w, rt::decode_payload<Entry>(m));
        });
  }

  void install_hooks() {
    for (WorkerId w = 0; w < topo_.workers(); ++w) {
      Handle* h = handles_[static_cast<std::size_t>(w)].get();
      rt::Worker& worker = machine_.worker(w);
      worker.add_pending_counter([h] {
        return h->pending_.load(std::memory_order_acquire);
      });
      // Unconditional (the constructor rejected flush_on_idle=false):
      // intermediate buffers drain through this hook.
      worker.add_idle_hook([h](rt::Worker&) { h->flush_all(); });
    }
  }

  rt::Machine& machine_;
  core::TramConfig cfg_;
  DeliverFn deliver_;
  util::Topology topo_;
  Router router_;
  EndpointId ep_routed_ = -1;
  EndpointId ep_final_ = -1;
  std::vector<std::unique_ptr<Handle>> handles_;

 public:
  /// Per-worker routing endpoint. Obtain via RoutedDomain::on(worker);
  /// insert/flush_all must be called from the owning worker's thread.
  class Handle {
   public:
    /// Aggregate one item toward the given destination worker; it will
    /// arrive after up to mesh().ndims() hops.
    void insert(WorkerId dest, const Item& item) {
      auto& d = *domain_;
      ++stats_.items_inserted;
      Entry e;
      e.birth_ns = d.cfg_.latency_tracking ? util::now_ns() : 0;
      e.dest = dest;
      e.item = item;
      route_entry(e, /*hop=*/1);
    }

    /// Ship every partially filled buffer ("flush accumulated items").
    /// Idle workers call this automatically when flush_on_idle is set;
    /// intermediate buffers drain the same way.
    void flush_all() {
      for (int slot = 0; slot < static_cast<int>(bufs_.size()); ++slot) {
        if (!bufs_[static_cast<std::size_t>(slot)].empty()) {
          ship_slot(slot, /*from_flush=*/true);
        }
      }
    }

    const core::WorkerTramStats& stats() const noexcept { return stats_; }
    /// Items currently buffered at this worker (source or intermediate).
    std::uint64_t pending() const noexcept {
      return pending_.load(std::memory_order_acquire);
    }

   private:
    friend class RoutedDomain;

    Handle(RoutedDomain& d, rt::Worker& self)
        : domain_(&d),
          self_(&self),
          self_proc_(d.topo_.proc_of_worker(self.id())) {
      bufs_.resize(static_cast<std::size_t>(d.router_.slots()));
      for (auto& b : bufs_) {
        b.set_header_bytes(sizeof(core::RoutedHeader));
      }
      slot_hop_.assign(bufs_.size(), 0);
    }

    /// Bucket an entry into the buffer of its next hop; ship on fill.
    /// `hop` is the ordinal this entry's *next* ship will be (1 off the
    /// source, inbound hop + 1 off an intermediate).
    void route_entry(const Entry& e, std::uint16_t hop) {
      auto& d = *domain_;
      const ProcId dst_proc = d.topo_.proc_of_worker(e.dest);
      const Router::Hop h = d.router_.next_hop(self_proc_, dst_proc);
      const int slot = d.router_.slot(h);
      auto& buf = bufs_[static_cast<std::size_t>(slot)];
      if (!buf.ever_acquired()) ++reserved_buffers_;
      buf.push(e, d.cfg_.buffer_items);
      auto& slot_hop = slot_hop_[static_cast<std::size_t>(slot)];
      if (hop > slot_hop) slot_hop = hop;
      pending_.fetch_add(1, std::memory_order_release);
      if (buf.size() >= d.cfg_.buffer_items) {
        ship_slot(slot, /*from_flush=*/false);
      }
    }

    /// Stamp the RoutedHeader into the slab and ship it to the slot's
    /// next-hop process — the slab handle moves, nothing is copied.
    void ship_slot(int slot, bool from_flush) {
      auto& d = *domain_;
      auto& buf = bufs_[static_cast<std::size_t>(slot)];
      const std::size_t n = buf.size();
      const std::uint16_t hop = slot_hop_[static_cast<std::size_t>(slot)];

      core::RoutedHeader hdr;
      hdr.dim = static_cast<std::uint16_t>(d.router_.dim_of_slot(slot));
      hdr.hop = hop;
      std::memcpy(buf.header(), &hdr, sizeof hdr);

      rt::Message m;
      m.endpoint = d.ep_routed_;
      m.src_worker = self_->id();
      m.expedited = d.cfg_.expedited;
      m.hops = static_cast<std::uint8_t>(hop - 1);
      m.payload = buf.take();

      ++stats_.msgs_shipped;
      ++stats_.routed_hop_msgs;
      if (hop > 1) ++stats_.routed_forward_msgs;
      if (from_flush) ++stats_.flush_msgs;
      stats_.occupancy_at_ship.add(static_cast<double>(n));
      slot_hop_[static_cast<std::size_t>(slot)] = 0;

      self_->send_to_proc(d.router_.ship_target(self_proc_, slot),
                          std::move(m));
      pending_.fetch_sub(n, std::memory_order_release);
    }

    /// A routed batch arrived at this process: deliver the entries that
    /// terminate here (regrouping to their workers), re-bucket the rest
    /// into the next dimension's buffers.
    void on_routed(rt::Worker& w, const rt::Message& msg) {
      auto& d = *domain_;
      const std::span<const std::byte> bytes = msg.payload.span();
      if (bytes.size() < sizeof(core::RoutedHeader)) {
        std::fprintf(stderr, "routed message truncated (%zu bytes)\n",
                     bytes.size());
        std::abort();
      }
      core::RoutedHeader hdr;
      std::memcpy(&hdr, bytes.data(), sizeof hdr);
      if (hdr.magic != core::RoutedHeader::kMagic) {
        std::fprintf(stderr, "routed message with bad magic %x\n",
                     hdr.magic);
        std::abort();
      }
      const auto entries =
          rt::decode_payload<Entry>(bytes.subspan(sizeof hdr));
      const int t = d.topo_.workers_per_proc();
      const LocalWorkerId own = d.topo_.local_rank(w.id());

      // Count pass: finals per local rank (delivered below), the rest
      // re-bucketed one dimension up.
      std::uint32_t counts[core::kMaxLocalWorkers] = {};
      for (const Entry& e : entries) {
        if (d.topo_.proc_of_worker(e.dest) == self_proc_) {
          counts[d.topo_.local_rank(e.dest)]++;
        }
      }
      std::array<util::PayloadRef, core::kMaxLocalWorkers> refs;
      std::array<Entry*, core::kMaxLocalWorkers> cursor{};
      for (int r = 0; r < t; ++r) {
        if (r == own || counts[r] == 0) continue;
        refs[static_cast<std::size_t>(r)] =
            util::PayloadPool::global().acquire(counts[r] * sizeof(Entry));
        cursor[static_cast<std::size_t>(r)] = reinterpret_cast<Entry*>(
            refs[static_cast<std::size_t>(r)].data());
      }

      // Scatter pass.
      for (const Entry& e : entries) {
        const ProcId dst_proc = d.topo_.proc_of_worker(e.dest);
        if (dst_proc == self_proc_) {
          const auto r =
              static_cast<std::size_t>(d.topo_.local_rank(e.dest));
          if (static_cast<LocalWorkerId>(r) == own) {
            deliver_batch(w, std::span<const Entry>(&e, 1));
          } else {
            *cursor[r]++ = e;
          }
          continue;
        }
        // Dimension-ordered: the hop that carried this entry here matched
        // its coordinate in hdr.dim, so the next mismatch is strictly
        // higher — a cycle would mean wire corruption.
        assert(d.router_.next_hop(self_proc_, dst_proc).dim >
                   static_cast<int>(hdr.dim) &&
               "routed entry does not advance dimension order");
        ++stats_.routed_forwarded_items;
        route_entry(e, static_cast<std::uint16_t>(hdr.hop + 1));
      }

      for (int r = 0; r < t; ++r) {
        if (r == own || counts[r] == 0) continue;
        rt::Message m;
        m.endpoint = d.ep_final_;
        m.dst_worker = d.topo_.worker_at(self_proc_, r);
        m.src_worker = w.id();
        m.expedited = d.cfg_.expedited;
        m.payload = std::move(refs[static_cast<std::size_t>(r)]);
        ++stats_.regroup_msgs;
        w.send(std::move(m));
      }
    }

    /// Final-hop delivery on the destination worker.
    void deliver_batch(rt::Worker& w, std::span<const Entry> entries) {
      auto& d = *domain_;
      const bool track = d.cfg_.latency_tracking;
      for (const Entry& e : entries) {
        if (e.dest != w.id()) {
          std::fprintf(stderr,
                       "routed misroute: entry dest=%d delivered on "
                       "worker=%d (mesh=%s)\n",
                       e.dest, w.id(), d.mesh().to_string().c_str());
          std::abort();
        }
        if (track && e.birth_ns != 0) {
          stats_.latency.add(util::now_ns() - e.birth_ns);
        }
        ++stats_.items_delivered;
        d.deliver_(w, e.item);
      }
    }

    RoutedDomain* domain_;
    rt::Worker* self_;
    ProcId self_proc_;
    std::vector<core::EntryBuffer<Entry>> bufs_;
    /// Per-slot pending hop ordinal: max over the entries currently in the
    /// slot's buffer of the hop their next ship will be.
    std::vector<std::uint16_t> slot_hop_;
    std::atomic<std::uint64_t> pending_{0};
    core::WorkerTramStats stats_;
    std::uint64_t reserved_buffers_ = 0;
  };
};

}  // namespace tram::route
