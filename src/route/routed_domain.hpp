#pragma once
///
/// \file routed_domain.hpp
/// \brief Multi-hop aggregation over a virtual mesh (Scheme::Mesh2D/3D).
///
/// RoutedDomain is the topological-routing sibling of core::TramDomain,
/// sharing its wire format, pooled EntryBuffers, stats, and delivery
/// contract, but replacing the direct one-buffer-per-destination-process
/// layout with one buffer per mesh coordinate per dimension. The message
/// lifecycle gains an intermediate stage:
///
///   insert -> hop-encode (one load of the Router's precomputed table)
///          -> ship (slab handle moves, RoutedHeader stamped in place;
///             a last-hop buffer ships pre-sorted by destination local
///             rank under RoutedHeader::kSortedMagic)
///          -> re-aggregate (intermediate counting-sorts the batch once
///             and bulk-appends whole runs one dimension up)
///          -> ship ... -> deliver (final process scatters refcounted
///             sub-views per rank instead of copying)
///
/// Every wire record carries its final destination worker
/// (WireEntry::dest), so intermediates never rewrite entries — they only
/// move them between buffers. Quiescence is safe across hops because a
/// re-bucketed entry raises this worker's pending counter before the
/// inbound message counts as handled, and flush-on-idle drains
/// intermediate buffers exactly like source buffers.
///
/// The payoff (and the reason this subsystem exists): a source worker's
/// live buffers shrink from the direct schemes' O(N) to
/// sum(dims_k - 1) + 1 = O(d * N^(1/d)), so per-buffer fill — and with it
/// message occupancy — stops degrading as the process count grows. The
/// price is up to d transport hops per item; the routed stats counters
/// (routed_hop_msgs / routed_forward_msgs / routed_forwarded_items) make
/// that trade measurable.
///
/// Hop accounting under a lossy fabric (cfg.fault, src/fault/): the
/// multi-hop path multiplies the state in flight — every intermediate
/// holds live buffers a direct scheme never had — but the domain itself
/// needs no loss-awareness. The reliability layer below dedups
/// retransmitted hop batches before they reach on_routed (a replayed
/// batch would otherwise re-bucket its entries twice and double-deliver),
/// and its unacked count extends quiescence detection, so a dropped hop
/// message keeps pending_/QD honest until its retransmit lands. Worker
/// stats here (routed_hop_msgs, routed_forwarded_items, ...) count each
/// ship once at ship time; transport-level retransmits appear only in
/// fabric message totals and core::FaultStats.
///
/// Urgent items (insert_priority, cfg.priority_buffer_items > 0) ride a
/// parallel set of small per-dimension slots shipped expedited with the
/// RoutedHeader::kPriority bit set: intermediates re-bucket them into
/// their own priority slots and flush them ahead of bulk, so priority
/// traffic overtakes bulk at every hop of the route — the property the
/// latency-sensitive irregular apps (SSSP threshold updates) depend on.

#include <array>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/config.hpp"
#include "core/grouping.hpp"
#include "core/tram_stats.hpp"
#include "core/wire.hpp"
#include "route/router.hpp"
#include "route/virtual_mesh.hpp"
#include "runtime/machine.hpp"
#include "runtime/message.hpp"
#include "runtime/worker.hpp"
#include "util/payload_pool.hpp"
#include "util/timebase.hpp"

namespace tram::route {

template <typename Item>
  requires std::is_trivially_copyable_v<Item>
class RoutedDomain {
 public:
  using Entry = core::WireEntry<Item>;
  /// Runs on the destination worker's thread for every delivered item.
  using DeliverFn = std::function<void(rt::Worker&, const Item&)>;

  class Handle;

  RoutedDomain(rt::Machine& machine, core::TramConfig cfg, DeliverFn deliver)
      : machine_(machine),
        cfg_(cfg),
        deliver_(std::move(deliver)),
        topo_(machine.topology()),
        router_(make_mesh(topo_.procs(), cfg)) {
    if (topo_.workers_per_proc() > core::kMaxLocalWorkers) {
      throw std::invalid_argument(
          "RoutedDomain: workers_per_proc exceeds kMaxLocalWorkers");
    }
    // Multi-hop routing makes idle flushing a correctness requirement,
    // not a latency knob: entries re-aggregated at an intermediate after
    // the application mains returned can only leave through the idle
    // hook. A config that disables it would hang quiescence forever on
    // the first partial intermediate buffer, so reject it loudly. The
    // timeout-flush knob is not implemented for routed domains (ROADMAP)
    // — reject rather than silently ignore.
    if (!cfg_.flush_on_idle) {
      throw std::invalid_argument(
          "RoutedDomain: flush_on_idle=false would strand intermediate-hop "
          "buffers (multi-hop routing requires idle flushing)");
    }
    if (cfg_.flush_timeout_ns != 0) {
      throw std::invalid_argument(
          "RoutedDomain: flush_timeout_ns is not supported for routed "
          "schemes");
    }
    register_endpoints();
    handles_.reserve(static_cast<std::size_t>(topo_.workers()));
    for (WorkerId w = 0; w < topo_.workers(); ++w) {
      handles_.push_back(
          std::unique_ptr<Handle>(new Handle(*this, machine.worker(w))));
    }
    install_hooks();
  }

  RoutedDomain(const RoutedDomain&) = delete;
  RoutedDomain& operator=(const RoutedDomain&) = delete;

  /// This worker's aggregation handle.
  Handle& on(rt::Worker& w) {
    return *handles_[static_cast<std::size_t>(w.id())];
  }
  Handle& handle(WorkerId w) { return *handles_[static_cast<std::size_t>(w)]; }

  const core::TramConfig& config() const noexcept { return cfg_; }
  const VirtualMesh& mesh() const noexcept { return router_.mesh(); }
  const Router& router() const noexcept { return router_; }
  rt::Machine& machine() noexcept { return machine_; }

  /// Merged stats across all workers (call after machine.run returns).
  core::WorkerTramStats aggregate_stats() const {
    core::WorkerTramStats total;
    for (const auto& h : handles_) total.merge(h->stats_);
    return total;
  }
  const core::WorkerTramStats& worker_stats(WorkerId w) const {
    return handles_[static_cast<std::size_t>(w)]->stats_;
  }

  /// Largest number of distinct aggregation buffers any single worker ever
  /// populated — the live-buffer count the mesh bounds by
  /// sum(dims_k - 1) + 1 (compare TramDomain, where the same metric grows
  /// to the destination-process count).
  std::uint64_t max_reserved_buffers() const {
    std::uint64_t m = 0;
    for (const auto& h : handles_) {
      if (h->reserved_buffers_ > m) m = h->reserved_buffers_;
    }
    return m;
  }

  /// Actual bytes reserved in aggregation buffers, machine-wide (same
  /// charge model as TramDomain::allocated_buffer_bytes).
  std::uint64_t allocated_buffer_bytes() const {
    std::uint64_t total = 0;
    for (const auto& h : handles_) {
      total += h->reserved_buffers_ *
               (sizeof(core::RoutedHeader) +
                std::uint64_t{cfg_.buffer_items} * sizeof(Entry));
    }
    return total;
  }

  /// Zero all counters between benchmark trials (machine must be idle).
  void reset_stats() {
    for (auto& h : handles_) h->stats_ = core::WorkerTramStats{};
  }

 private:
  friend class Handle;

  static VirtualMesh make_mesh(int procs, const core::TramConfig& cfg) {
    const int d = core::mesh_ndims(cfg.scheme);
    if (d == 0) {
      throw std::invalid_argument(
          "RoutedDomain: scheme is not routed (use TramDomain)");
    }
    if (cfg.route_dims[0] != 0) {
      // Extents beyond the scheme's dimensionality are a mismatched
      // --scheme/--route-dims pair; truncating would silently run the
      // wrong topology.
      for (std::size_t k = static_cast<std::size_t>(d);
           k < cfg.route_dims.size(); ++k) {
        if (cfg.route_dims[k] != 0) {
          throw std::invalid_argument(
              "RoutedDomain: route_dims has more extents than the scheme "
              "has mesh dimensions");
        }
      }
      return VirtualMesh(procs, std::span<const int>(cfg.route_dims.data(),
                                                     static_cast<std::size_t>(d)));
    }
    return VirtualMesh::auto_factor(procs, d);
  }

  void register_endpoints() {
    // Hop delivery: a routed batch (header + entries) lands on some worker
    // of the hop process, which delivers finals and re-buckets the rest.
    ep_routed_ = machine_.register_endpoint(
        [this](rt::Worker& w, rt::Message&& m) {
          handle(w.id()).on_routed(w, m);
        });
    // Final-hop delivery: a batch addressed to one specific worker.
    ep_final_ = machine_.register_endpoint(
        [this](rt::Worker& w, rt::Message&& m) {
          handle(w.id()).deliver_batch(w, rt::decode_payload<Entry>(m));
        });
  }

  void install_hooks() {
    for (WorkerId w = 0; w < topo_.workers(); ++w) {
      Handle* h = handles_[static_cast<std::size_t>(w)].get();
      rt::Worker& worker = machine_.worker(w);
      worker.add_pending_counter([h] {
        return h->pending_.load(std::memory_order_acquire);
      });
      // Unconditional (the constructor rejected flush_on_idle=false):
      // intermediate buffers drain through this hook.
      worker.add_idle_hook([h](rt::Worker&) { h->flush_all(); });
    }
  }

  rt::Machine& machine_;
  core::TramConfig cfg_;
  DeliverFn deliver_;
  util::Topology topo_;
  Router router_;
  EndpointId ep_routed_ = -1;
  EndpointId ep_final_ = -1;
  std::vector<std::unique_ptr<Handle>> handles_;

 public:
  /// Per-worker routing endpoint. Obtain via RoutedDomain::on(worker);
  /// insert/flush_all must be called from the owning worker's thread.
  class Handle {
   public:
    /// Aggregate one item toward the given destination worker; it will
    /// arrive after up to mesh().ndims() hops.
    void insert(WorkerId dest, const Item& item) {
      auto& d = *domain_;
      ++stats_.items_inserted;
      Entry e;
      e.birth_ns = d.cfg_.latency_tracking ? util::now_ns() : 0;
      e.dest = dest;
      e.item = item;
      push_entry(row_[proc_of(dest)], e, /*hop=*/1, /*pri=*/false);
    }

    /// Aggregate an urgent item (the paper's future-work prioritization,
    /// over the mesh). Rides a second set of per-dimension buffer slots
    /// sized cfg.priority_buffer_items: small buffers fill (and ship)
    /// quickly, the messages are expedited, and the RoutedHeader carries
    /// a priority bit so every intermediate re-buckets the entries into
    /// its own priority slots and flushes them ahead of bulk — urgent
    /// items overtake bulk traffic at every hop, not just the first.
    /// Falls back to insert() when priority buffering is not configured.
    void insert_priority(WorkerId dest, const Item& item) {
      auto& d = *domain_;
      if (d.cfg_.priority_buffer_items == 0) {
        insert(dest, item);
        return;
      }
      ++stats_.items_inserted;
      ++stats_.priority_items;
      Entry e;
      e.birth_ns = d.cfg_.latency_tracking ? util::now_ns() : 0;
      e.dest = dest;
      e.item = item;
      push_entry(row_[proc_of(dest)], e, /*hop=*/1, /*pri=*/true);
    }

    /// Ship every partially filled buffer ("flush accumulated items").
    /// Idle workers call this automatically when flush_on_idle is set;
    /// intermediate buffers drain the same way. Priority slots flush
    /// first so urgent stragglers leave ahead of bulk at this hop too.
    void flush_all() {
      for (int slot = 0; slot < static_cast<int>(pri_bufs_.size());
           ++slot) {
        if (!pri_bufs_[static_cast<std::size_t>(slot)].empty()) {
          ship_slot(slot, /*from_flush=*/true, /*pri=*/true);
        }
      }
      for (int slot = 0; slot < static_cast<int>(bufs_.size()); ++slot) {
        if (!bufs_[static_cast<std::size_t>(slot)].empty()) {
          ship_slot(slot, /*from_flush=*/true, /*pri=*/false);
        }
      }
    }

    const core::WorkerTramStats& stats() const noexcept { return stats_; }
    /// Items currently buffered at this worker (source or intermediate).
    std::uint64_t pending() const noexcept {
      return pending_.load(std::memory_order_acquire);
    }

   private:
    friend class RoutedDomain;

    Handle(RoutedDomain& d, rt::Worker& self)
        : domain_(&d),
          self_(&self),
          self_proc_(d.topo_.proc_of_worker(self.id())),
          wpp_(d.topo_.workers_per_proc()),
          row_(d.router_.row(d.topo_.proc_of_worker(self.id()))) {
      bufs_.resize(static_cast<std::size_t>(d.router_.slots()));
      for (auto& b : bufs_) {
        b.set_header_bytes(sizeof(core::RoutedHeader));
      }
      slot_hop_.assign(bufs_.size(), 0);
      if (d.cfg_.priority_buffer_items > 0) {
        // Priority slots mirror the bulk slot layout (one per mesh
        // coordinate per dimension) so the same Route record indexes
        // both: urgent entries re-aggregate per dimension exactly like
        // bulk, just through smaller, expedited buffers.
        pri_bufs_.resize(bufs_.size());
        for (auto& b : pri_bufs_) {
          b.set_header_bytes(sizeof(core::RoutedHeader));
        }
        pri_slot_hop_.assign(pri_bufs_.size(), 0);
      }
    }

    /// workers_per_proc == 1 (non-SMP) is the common bench shape; skip
    /// the integer division on the per-entry paths.
    ProcId proc_of(WorkerId w) const noexcept {
      return wpp_ == 1 ? w : w / wpp_;
    }
    LocalWorkerId rank_of(WorkerId w) const noexcept {
      return wpp_ == 1 ? 0 : w % wpp_;
    }

    /// Bucket an entry into its route's buffer (priority entries into the
    /// parallel priority slot); ship on fill. `hop` is the ordinal this
    /// entry's *next* ship will be (1 off the source, inbound hop + 1 off
    /// an intermediate).
    void push_entry(const Router::Route& r, const Entry& e,
                    std::uint8_t hop, bool pri) {
      auto& d = *domain_;
      const std::uint32_t cap =
          pri ? d.cfg_.priority_buffer_items : d.cfg_.buffer_items;
      const auto s = static_cast<std::size_t>(r.slot);
      auto& buf = (pri ? pri_bufs_ : bufs_)[s];
      // Priority slots stay out of the live-buffer metric (mirrors
      // TramDomain: the bound being measured is the bulk footprint the
      // section III-C formulas charge).
      if (!pri && !buf.ever_acquired()) ++reserved_buffers_;
      buf.push(e, cap);
      auto& hops = pri ? pri_slot_hop_ : slot_hop_;
      if (hop > hops[s]) hops[s] = hop;
      pending_.fetch_add(1, std::memory_order_release);
      if (buf.size() >= cap) {
        ship_slot(r.slot, /*from_flush=*/false, pri);
      }
    }

    /// Append a contiguous run into a slot's buffer, shipping every time
    /// it fills — the batched form of push_entry (one memcpy per chunk
    /// instead of a push call per entry).
    void append_run(int slot, const Entry* src, std::uint32_t n,
                    std::uint8_t hop, bool pri) {
      auto& d = *domain_;
      const std::uint32_t cap_cfg =
          pri ? d.cfg_.priority_buffer_items : d.cfg_.buffer_items;
      const std::uint32_t cap = cap_cfg == 0 ? 1 : cap_cfg;
      const auto s = static_cast<std::size_t>(slot);
      auto& buf = (pri ? pri_bufs_ : bufs_)[s];
      auto& hops = pri ? pri_slot_hop_ : slot_hop_;
      if (!pri && !buf.ever_acquired()) ++reserved_buffers_;
      pending_.fetch_add(n, std::memory_order_release);
      while (n > 0) {
        const std::uint32_t room = cap - buf.size();
        const std::uint32_t k = n < room ? n : room;
        // Re-raise after every ship: ship_slot resets the slot's hop.
        if (hop > hops[s]) hops[s] = hop;
        buf.append(src, k, cap);
        src += k;
        n -= k;
        if (buf.size() >= cap) ship_slot(slot, /*from_flush=*/false, pri);
      }
    }

    /// Ship a slot's buffer to its next-hop process. A final slot (every
    /// entry terminates at the target process) ships pre-sorted by
    /// destination local rank: in place when the grouping is trivial
    /// (one worker per process), otherwise counting-sorted into a fresh
    /// slab behind a RoutedSortedHeader. Non-final slots ship their slab
    /// in place behind the plain RoutedHeader — the handle moves, nothing
    /// is copied.
    void ship_slot(int slot, bool from_flush, bool pri) {
      auto& d = *domain_;
      const auto s = static_cast<std::size_t>(slot);
      auto& buf = (pri ? pri_bufs_ : bufs_)[s];
      const std::size_t n = buf.size();
      const std::uint8_t hop = (pri ? pri_slot_hop_ : slot_hop_)[s];
      const bool sorted = d.router_.ships_final(slot);

      core::RoutedHeader hdr;
      hdr.magic = sorted ? core::RoutedHeader::kSortedMagic
                         : core::RoutedHeader::kMagic;
      hdr.dim = static_cast<std::uint16_t>(d.router_.dim_of_slot(slot));
      hdr.hop = hop;
      hdr.flags = pri ? core::RoutedHeader::kPriority : 0;

      rt::Message m;
      m.endpoint = d.ep_routed_;
      m.src_worker = self_->id();
      // Priority batches are always expedited, whatever the bulk policy:
      // expedited dispatch is what lets them overtake bulk in every
      // inbox along the route.
      m.expedited = pri || d.cfg_.expedited;
      m.hops = static_cast<std::uint8_t>(hop - 1);

      if (sorted && wpp_ > 1) {
        core::RoutedSortedHeader shdr;
        shdr.base = hdr;
        util::PayloadRef payload = util::PayloadPool::global().acquire(
            sizeof shdr + n * sizeof(Entry));
        core::counting_sort_segments(
            buf.entries(), wpp_,
            [this](WorkerId dw) { return rank_of(dw); }, shdr.segments,
            reinterpret_cast<Entry*>(payload.data() + sizeof shdr));
        std::memcpy(payload.data(), &shdr, sizeof shdr);
        m.payload = std::move(payload);
        buf.clear();  // keep the slot's slab; the sort copied out of it
      } else {
        std::memcpy(buf.header(), &hdr, sizeof hdr);
        m.payload = buf.take();
      }

      ++stats_.msgs_shipped;
      ++stats_.routed_hop_msgs;
      if (pri) ++stats_.priority_msgs;
      if (sorted) ++stats_.routed_sorted_msgs;
      if (hop > 1) ++stats_.routed_forward_msgs;
      if (from_flush) ++stats_.flush_msgs;
      stats_.occupancy_at_ship.add(static_cast<double>(n));
      (pri ? pri_slot_hop_ : slot_hop_)[s] = 0;

      self_->send_to_proc(d.router_.ship_target(self_proc_, slot),
                          std::move(m));
      pending_.fetch_sub(n, std::memory_order_release);
    }

    /// A routed batch arrived at this process: a pre-sorted last-hop
    /// batch scatters as refcounted sub-views; an unsorted hop batch is
    /// counting-sorted once and its runs delivered / re-bucketed in bulk.
    void on_routed(rt::Worker& w, const rt::Message& msg) {
      const std::span<const std::byte> bytes = msg.payload.span();
      const core::RoutedWire wire = core::parse_routed_header(bytes, wpp_);
      const auto entries =
          rt::decode_payload<Entry>(bytes.subspan(wire.header_bytes));
      if (wire.sorted) {
        scatter_sorted(w, msg, entries, wire.hdr.priority());
      } else {
        rebucket_batch(w, entries, wire.hdr);
      }
    }

    /// Sorted last-hop delivery: every entry terminates at this process
    /// and arrives grouped by destination local rank — deliver our own
    /// segment in place, forward each other rank's as a refcounted
    /// sub-view of the inbound slab (TramDomain's WsP scatter applied to
    /// the routed path; the slab recycles when the last segment drops).
    void scatter_sorted(rt::Worker& w, const rt::Message& msg,
                        std::span<const Entry> entries, bool pri) {
      auto& d = *domain_;
      if (wpp_ == 1) {
        // Trivial grouping: the whole payload is our segment.
        ++stats_.routed_subview_deliveries;
        deliver_batch(w, entries);
        return;
      }
      core::SegmentHeader seg;
      std::memcpy(&seg, msg.payload.data() + sizeof(core::RoutedHeader),
                  sizeof seg);
      const LocalWorkerId own = rank_of(w.id());
      std::size_t offset = 0;
      for (int r = 0; r < wpp_; ++r) {
        const std::uint32_t count = seg.counts[r];
        if (count == 0) continue;
        if (offset + count > entries.size()) {
          std::fprintf(stderr,
                       "sorted routed message: segment counts overflow "
                       "the payload (%zu entries)\n",
                       entries.size());
          std::abort();
        }
        const auto segment = entries.subspan(offset, count);
        const std::size_t seg_bytes_off =
            sizeof(core::RoutedSortedHeader) + offset * sizeof(Entry);
        offset += count;
        ++stats_.routed_subview_deliveries;
        if (r == own) {
          deliver_batch(w, segment);
          continue;
        }
        rt::Message m;
        m.endpoint = d.ep_final_;
        m.dst_worker = d.topo_.worker_at(self_proc_, r);
        m.src_worker = w.id();
        m.expedited = pri || d.cfg_.expedited;
        m.payload = msg.payload.subref(seg_bytes_off,
                                       count * sizeof(Entry));
        ++stats_.regroup_msgs;
        w.send(std::move(m));
      }
      // Counts summing short of the payload would silently drop the tail
      // — the mirror image of the overflow aborted above, and the same
      // wire-corruption class.
      if (offset != entries.size()) {
        std::fprintf(stderr,
                     "sorted routed message: segment counts cover %zu of "
                     "%zu entries\n",
                     offset, entries.size());
        std::abort();
      }
    }

    /// Unsorted hop batch: one counting sort by (final local rank |
    /// next-hop slot) into a pooled scratch slab, then whole runs move
    /// at once — our own finals in a single deliver_batch call, other
    /// ranks' as sub-views of the scratch slab, and every forward run
    /// bulk-appended into its slot's buffer.
    void rebucket_batch(rt::Worker& w, std::span<const Entry> entries,
                        const core::RoutedHeader& hdr) {
      auto& d = *domain_;
      const bool pri = hdr.priority();
      const LocalWorkerId own = rank_of(w.id());
      const std::size_t n = entries.size();
      const std::size_t nbuckets =
          static_cast<std::size_t>(wpp_) + bufs_.size();

      // Pass 1: bucket every entry — finals to their local rank,
      // forwards to wpp_ + next-hop slot (one table load each).
      bucket_counts_.assign(nbuckets, 0);
      bucket_cursor_.resize(n);  // reused as the per-entry bucket index
      for (std::size_t i = 0; i < n; ++i) {
        const Entry& e = entries[i];
        const ProcId dst_proc = proc_of(e.dest);
        std::uint32_t b;
        if (dst_proc == self_proc_) {
          b = static_cast<std::uint32_t>(rank_of(e.dest));
        } else {
          const Router::Route& r = row_[dst_proc];
          // Dimension-ordered: the hop that carried this entry here
          // matched its coordinate in hdr.dim, so the next mismatch is
          // strictly higher — a cycle would mean wire corruption.
          assert(r.dim > static_cast<std::int16_t>(hdr.dim) &&
                 "routed entry does not advance dimension order");
          b = static_cast<std::uint32_t>(wpp_) +
              static_cast<std::uint32_t>(r.slot);
        }
        bucket_cursor_[i] = b;
        bucket_counts_[b]++;
      }

      // Pass 2: scatter into the scratch slab, one contiguous run per
      // bucket. bucket_starts_ walks forward during the scatter; a run's
      // start is recovered afterwards as cursor - count.
      bucket_starts_.resize(nbuckets);
      std::uint32_t acc = 0;
      for (std::size_t b = 0; b < nbuckets; ++b) {
        bucket_starts_[b] = acc;
        acc += bucket_counts_[b];
      }
      util::PayloadRef scratch =
          util::PayloadPool::global().acquire(n * sizeof(Entry));
      Entry* sorted = reinterpret_cast<Entry*>(scratch.data());
      for (std::size_t i = 0; i < n; ++i) {
        sorted[bucket_starts_[bucket_cursor_[i]]++] = entries[i];
      }

      // Finals: one batched delivery for our own rank, sub-views of the
      // scratch slab for the rest.
      for (int r = 0; r < wpp_; ++r) {
        const std::uint32_t count =
            bucket_counts_[static_cast<std::size_t>(r)];
        if (count == 0) continue;
        const std::uint32_t start =
            bucket_starts_[static_cast<std::size_t>(r)] - count;
        const auto segment = std::span<const Entry>(sorted + start, count);
        // Count every segment handed off as a slab view (mirrors
        // scatter_sorted, so the SMP metric is path-independent).
        ++stats_.routed_subview_deliveries;
        if (r == own) {
          deliver_batch(w, segment);
          continue;
        }
        rt::Message m;
        m.endpoint = d.ep_final_;
        m.dst_worker = d.topo_.worker_at(self_proc_, r);
        m.src_worker = w.id();
        m.expedited = pri || d.cfg_.expedited;
        m.payload = scratch.subref(start * sizeof(Entry),
                                   count * sizeof(Entry));
        ++stats_.regroup_msgs;
        w.send(std::move(m));
      }

      // Forwards: bulk-append whole runs one dimension up. A priority
      // batch re-buckets into this hop's priority slots (the wire bit is
      // what keeps urgency alive past the first hop).
      const auto next_ord = static_cast<std::uint8_t>(hdr.hop + 1);
      for (std::size_t b = static_cast<std::size_t>(wpp_); b < nbuckets;
           ++b) {
        const std::uint32_t count = bucket_counts_[b];
        if (count == 0) continue;
        const std::uint32_t start = bucket_starts_[b] - count;
        stats_.routed_forwarded_items += count;
        append_run(static_cast<int>(b) - wpp_, sorted + start, count,
                   next_ord, pri);
      }
    }

    /// Final-hop delivery on the destination worker.
    void deliver_batch(rt::Worker& w, std::span<const Entry> entries) {
      auto& d = *domain_;
      const bool track = d.cfg_.latency_tracking;
      for (const Entry& e : entries) {
        if (e.dest != w.id()) {
          std::fprintf(stderr,
                       "routed misroute: entry dest=%d delivered on "
                       "worker=%d (mesh=%s)\n",
                       e.dest, w.id(), d.mesh().to_string().c_str());
          std::abort();
        }
        if (track && e.birth_ns != 0) {
          stats_.latency.add(util::now_ns() - e.birth_ns);
        }
        ++stats_.items_delivered;
        d.deliver_(w, e.item);
      }
    }

    RoutedDomain* domain_;
    rt::Worker* self_;
    ProcId self_proc_;
    int wpp_;  ///< workers per process, cached off the hot paths
    /// This process's row of the Router's precomputed table: the
    /// per-entry routing decision is row_[dst_proc], one indexed load.
    const Router::Route* row_;
    std::vector<core::EntryBuffer<Entry>> bufs_;
    /// Priority slots, mirroring bufs_'s layout; sized only when
    /// cfg.priority_buffer_items > 0 (insert_priority falls back to the
    /// bulk path otherwise).
    std::vector<core::EntryBuffer<Entry>> pri_bufs_;
    /// Per-slot pending hop ordinal: max over the entries currently in the
    /// slot's buffer of the hop their next ship will be.
    std::vector<std::uint8_t> slot_hop_;
    std::vector<std::uint8_t> pri_slot_hop_;
    /// rebucket_batch scratch, reused across inbound batches (safe:
    /// handlers never nest — both transports enqueue rather than call
    /// through, so a ship inside a handler cannot re-enter it).
    std::vector<std::uint32_t> bucket_counts_;
    std::vector<std::uint32_t> bucket_starts_;
    std::vector<std::uint32_t> bucket_cursor_;
    std::atomic<std::uint64_t> pending_{0};
    core::WorkerTramStats stats_;
    std::uint64_t reserved_buffers_ = 0;
  };
};

}  // namespace tram::route
