#include "route/virtual_mesh.hpp"

#include <stdexcept>

namespace tram::route {

VirtualMesh::VirtualMesh(int procs, std::span<const int> dims)
    : procs_(procs), ndims_(static_cast<int>(dims.size())) {
  if (procs < 1) throw std::invalid_argument("VirtualMesh: procs < 1");
  if (ndims_ < 1 || ndims_ > kMaxDims) {
    throw std::invalid_argument("VirtualMesh: need 1..3 dimensions");
  }
  long long product = 1;
  for (int k = 0; k < ndims_; ++k) {
    const int d = dims[static_cast<std::size_t>(k)];
    if (d < 1) throw std::invalid_argument("VirtualMesh: extent < 1");
    dims_[static_cast<std::size_t>(k)] = d;
    product *= d;
  }
  if (product != procs) {
    throw std::invalid_argument(
        "VirtualMesh: extents " + to_string() + " do not factor " +
        std::to_string(procs) + " processes");
  }
  int stride = 1;
  for (int k = 0; k < ndims_; ++k) {
    strides_[static_cast<std::size_t>(k)] = stride;
    stride *= dims_[static_cast<std::size_t>(k)];
  }
}

VirtualMesh VirtualMesh::auto_factor(int procs, int ndims) {
  if (procs < 1) throw std::invalid_argument("VirtualMesh: procs < 1");
  if (ndims < 1 || ndims > kMaxDims) {
    throw std::invalid_argument("VirtualMesh: need 1..3 dimensions");
  }
  // Peel off the largest divisor <= procs^(1/remaining) each round; the
  // leftover (largest) factor lands in the last dimension. Balanced when
  // procs is a d-th power; degrades gracefully (prime N -> 1 x ... x N).
  std::array<int, kMaxDims> dims{1, 1, 1};
  int rest = procs;
  for (int k = 0; k < ndims - 1; ++k) {
    const int remaining = ndims - k;
    int target = 1;
    while (true) {
      long long power = 1;
      for (int i = 0; i < remaining; ++i) power *= target + 1;
      if (power > rest) break;
      ++target;
    }
    int factor = 1;
    for (int d = target; d >= 1; --d) {
      if (rest % d == 0) {
        factor = d;
        break;
      }
    }
    dims[static_cast<std::size_t>(k)] = factor;
    rest /= factor;
  }
  dims[static_cast<std::size_t>(ndims - 1)] = rest;
  return VirtualMesh(procs,
                     std::span<const int>(dims.data(),
                                          static_cast<std::size_t>(ndims)));
}

std::string VirtualMesh::to_string() const {
  std::string s;
  for (int k = 0; k < ndims_; ++k) {
    if (k > 0) s += 'x';
    s += std::to_string(dims_[static_cast<std::size_t>(k)]);
  }
  return s;
}

}  // namespace tram::route
