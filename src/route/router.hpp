#pragma once
///
/// \file router.hpp
/// \brief Dimension-ordered next-hop computation over a VirtualMesh.
///
/// The Router turns (here, destination process) into the single decision a
/// routed source or intermediate needs: which aggregation buffer slot the
/// entry belongs in, and which process that slot ships to. Routing is
/// dimension-ordered (correct the lowest mismatched coordinate first), so
/// it is deadlock-free in the classic k-ary mesh sense and — more
/// importantly here — every forward strictly increases the dimension
/// index, which intermediates assert on.
///
/// Buffer slots are laid out per dimension then per coordinate:
///
///   [dim 0: coords 0..dims_0-1][dim 1: ...][...][local]
///
/// A worker's slot for (dim k, coord c) aggregates every entry whose next
/// hop is the process at our position with digit k replaced by c. The own
/// coordinate's slot in each dimension is never used; the one extra
/// "local" slot aggregates same-process destinations so they ride the
/// same batched delivery path. Live slots are therefore
/// sum(dims_k - 1) + 1 = O(d * N^(1/d)).
///
/// The constructor flattens the whole decision into a procs x procs table
/// of Route records, so the per-entry cost on the hot insert/re-bucket
/// paths is one indexed load instead of a dimension walk of divisions
/// (next_hop stays as the loop-based reference the table is checked
/// against). The table is quadratic in the process count — fine at the
/// simulated scales this runtime targets, and each worker handle only
/// touches its own row.

#include <cassert>
#include <cstdint>
#include <vector>

#include "route/virtual_mesh.hpp"
#include "util/types.hpp"

namespace tram::route {

class Router {
 public:
  /// One routing decision. When local is true the destination process is
  /// `here` itself and dim/coord are meaningless.
  struct Hop {
    bool local = false;
    int dim = 0;     ///< dimension this hop corrects
    int coord = 0;   ///< target coordinate along dim
    ProcId proc = 0; ///< next-hop process
  };

  /// One precomputed routing decision (what next_hop + slot compute,
  /// flattened): the aggregation slot at the looked-up source, the
  /// dimension this hop corrects (mesh().ndims() when the destination is
  /// the process itself), and the next-hop process.
  struct Route {
    std::int32_t slot = 0;
    std::int16_t dim = 0;
    ProcId proc = 0;
  };

  Router() = default;
  explicit Router(VirtualMesh mesh);

  const VirtualMesh& mesh() const noexcept { return mesh_; }

  /// Table-driven routing decision for an entry at `here` destined to
  /// process `dst`: one indexed load.
  const Route& route(ProcId here, ProcId dst) const noexcept {
    return table_[static_cast<std::size_t>(here) *
                      static_cast<std::size_t>(mesh_.procs()) +
                  static_cast<std::size_t>(dst)];
  }

  /// One source process's row of the table, indexed by destination
  /// process — a handle caches its own row so the per-entry decision is
  /// row[dst_proc].
  const Route* row(ProcId here) const noexcept {
    return table_.data() + static_cast<std::size_t>(here) *
                               static_cast<std::size_t>(mesh_.procs());
  }

  /// True when every entry aggregated into `slot` terminates at the
  /// slot's ship target: the local slot always, and any dimension whose
  /// higher dimensions all have extent 1 (dimension order guarantees the
  /// lower ones already match). The shipper of such a slot pre-sorts the
  /// batch by destination local rank (RoutedHeader::kSortedMagic) so the
  /// receiver scatters sub-views instead of copying.
  bool ships_final(int slot) const noexcept {
    return final_slot_[static_cast<std::size_t>(slot)] != 0;
  }

  /// The next hop for an entry at `here` destined to process `dst`,
  /// honoring dimension order: the lowest mismatched dimension is
  /// corrected first.
  Hop next_hop(ProcId here, ProcId dst) const noexcept {
    const int k = mesh_.first_mismatch(here, dst);
    Hop h;
    if (k == mesh_.ndims()) {
      h.local = true;
      h.proc = here;
      return h;
    }
    h.dim = k;
    h.coord = mesh_.coord(dst, k);
    h.proc = mesh_.with_coord(here, k, h.coord);
    return h;
  }

  /// Aggregation-buffer slot for a hop (see layout above).
  int slot(const Hop& h) const noexcept {
    if (h.local) return local_slot();
    return offsets_[static_cast<std::size_t>(h.dim)] + h.coord;
  }

  /// Slot count per worker: sum(dims_k) + 1 (slots at a worker's own
  /// coordinates stay empty; they exist so indexing is branch-free).
  int slots() const noexcept { return local_slot() + 1; }
  int local_slot() const noexcept {
    return offsets_[static_cast<std::size_t>(mesh_.ndims() - 1)] +
           mesh_.dim_size(mesh_.ndims() - 1);
  }

  /// Process a slot's buffer ships to from `here` (the slot's coordinate
  /// substituted into here's position; local_slot ships to here itself).
  ProcId ship_target(ProcId here, int slot) const noexcept {
    if (slot == local_slot()) return here;
    const int k = dim_of_slot(slot);
    return mesh_.with_coord(here, k,
                            slot - offsets_[static_cast<std::size_t>(k)]);
  }

  /// Dimension a slot belongs to (local_slot() maps to ndims()).
  int dim_of_slot(int slot) const noexcept {
    if (slot == local_slot()) return mesh_.ndims();
    for (int k = mesh_.ndims() - 1; k >= 0; --k) {
      if (slot >= offsets_[static_cast<std::size_t>(k)]) return k;
    }
    assert(false && "dim_of_slot: negative slot");
    return mesh_.ndims();
  }

 private:
  VirtualMesh mesh_;
  std::array<int, VirtualMesh::kMaxDims> offsets_{0, 0, 0};
  /// Flat procs x procs routing table, row-major by source process.
  std::vector<Route> table_;
  /// Per-slot: every entry in the slot terminates at the ship target.
  std::vector<std::uint8_t> final_slot_;
};

}  // namespace tram::route
