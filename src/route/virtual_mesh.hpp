#pragma once
///
/// \file virtual_mesh.hpp
/// \brief Virtual k-ary mesh over the machine's processes.
///
/// Topological routing (the TRAM line of work) stops paying one buffer per
/// destination process: the N processes are factored into a d-dimensional
/// virtual mesh (d = 2 or 3 here) and every process is a point in mixed
/// radix — dimension 0 is the fastest-varying digit. A message corrects
/// one coordinate per hop, so a source only ever aggregates toward the
/// sum(dims_k - 1) processes that differ from it in exactly one
/// coordinate: O(d * N^(1/d)) live buffers instead of O(N).
///
/// The mesh is *virtual*: it does not have to match the physical
/// interconnect. Extents come from --route-dims=AxB[xC] or are
/// auto-factored as near-balanced as the process count allows (a prime N
/// degenerates to 1 x N, which routes exactly like the direct schemes).

#include <array>
#include <span>
#include <string>

#include "util/types.hpp"

namespace tram::route {

class VirtualMesh {
 public:
  static constexpr int kMaxDims = 3;

  VirtualMesh() = default;

  /// A mesh of the given extents; their product must equal procs (throws
  /// std::invalid_argument otherwise). Extents of 1 are allowed and
  /// contribute nothing (that dimension never mismatches).
  VirtualMesh(int procs, std::span<const int> dims);

  /// Factor procs into ndims near-balanced extents, largest last (so the
  /// cheapest, most-aggregated dimension is corrected first).
  static VirtualMesh auto_factor(int procs, int ndims);

  int ndims() const noexcept { return ndims_; }
  int procs() const noexcept { return procs_; }
  int dim_size(int k) const noexcept { return dims_[static_cast<std::size_t>(k)]; }
  std::span<const int> dims() const noexcept {
    return {dims_.data(), static_cast<std::size_t>(ndims_)};
  }

  /// Coordinate of process p along dimension k (mixed-radix digit).
  int coord(ProcId p, int k) const noexcept {
    return (p / strides_[static_cast<std::size_t>(k)]) %
           dims_[static_cast<std::size_t>(k)];
  }

  /// Process at p's position with the dimension-k digit replaced by c.
  ProcId with_coord(ProcId p, int k, int c) const noexcept {
    const int stride = strides_[static_cast<std::size_t>(k)];
    return p + (c - coord(p, k)) * stride;
  }

  /// Lowest dimension in which a and b differ, or ndims() when equal
  /// (dimension-ordered routing corrects this dimension next).
  int first_mismatch(ProcId a, ProcId b) const noexcept {
    for (int k = 0; k < ndims_; ++k) {
      if (coord(a, k) != coord(b, k)) return k;
    }
    return ndims_;
  }

  /// Number of hops a message takes from a to b: the count of mismatched
  /// coordinates (0 when a == b).
  int hops(ProcId a, ProcId b) const noexcept {
    int n = 0;
    for (int k = 0; k < ndims_; ++k) {
      if (coord(a, k) != coord(b, k)) ++n;
    }
    return n;
  }

  /// "8x8" / "4x4x4" — bench table headers and JSON reports.
  std::string to_string() const;

  bool operator==(const VirtualMesh&) const = default;

 private:
  int procs_ = 1;
  int ndims_ = 0;
  std::array<int, kMaxDims> dims_{1, 1, 1};
  std::array<int, kMaxDims> strides_{1, 1, 1};
};

}  // namespace tram::route
