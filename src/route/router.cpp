#include "route/router.hpp"

namespace tram::route {

Router::Router(VirtualMesh mesh) : mesh_(mesh) {
  int offset = 0;
  for (int k = 0; k < mesh_.ndims(); ++k) {
    offsets_[static_cast<std::size_t>(k)] = offset;
    offset += mesh_.dim_size(k);
  }

  // Flatten next_hop + slot into the per-(source, destination) table the
  // hot paths index (next_hop remains the reference; route_test checks
  // the two agree on every pair).
  const auto n = static_cast<std::size_t>(mesh_.procs());
  table_.resize(n * n);
  for (ProcId here = 0; here < mesh_.procs(); ++here) {
    for (ProcId dst = 0; dst < mesh_.procs(); ++dst) {
      const Hop h = next_hop(here, dst);
      Route& r = table_[static_cast<std::size_t>(here) * n +
                        static_cast<std::size_t>(dst)];
      r.slot = slot(h);
      r.dim = static_cast<std::int16_t>(h.local ? mesh_.ndims() : h.dim);
      r.proc = h.proc;
    }
  }

  // A slot ships final (sorted-eligible) when no hop can follow it: the
  // local slot, and any dimension above which every extent is 1.
  final_slot_.assign(static_cast<std::size_t>(slots()), 0);
  for (int s = 0; s < slots(); ++s) {
    if (s == local_slot()) {
      final_slot_[static_cast<std::size_t>(s)] = 1;
      continue;
    }
    bool fin = true;
    for (int k = dim_of_slot(s) + 1; k < mesh_.ndims(); ++k) {
      if (mesh_.dim_size(k) > 1) fin = false;
    }
    final_slot_[static_cast<std::size_t>(s)] = fin ? 1 : 0;
  }
}

}  // namespace tram::route
