#include "route/router.hpp"

namespace tram::route {

Router::Router(VirtualMesh mesh) : mesh_(mesh) {
  int offset = 0;
  for (int k = 0; k < mesh_.ndims(); ++k) {
    offsets_[static_cast<std::size_t>(k)] = offset;
    offset += mesh_.dim_size(k);
  }
}

}  // namespace tram::route
