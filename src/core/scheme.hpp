#pragma once
///
/// \file scheme.hpp
/// \brief The aggregation schemes compared in the paper (section III-B).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tram::core {

/// Who buffers, and at what level, on each side.
enum class Scheme {
  /// No aggregation: every item is its own message (baseline).
  None,
  /// Source worker keeps one buffer per destination *worker* (Fig. 4).
  /// SMP-unaware: w workers hold w-1 buffers each.
  WW,
  /// Source worker keeps one buffer per destination *process*; the
  /// receiving PE groups items by destination worker (Fig. 5).
  WPs,
  /// Source worker keeps one buffer per destination *process* and groups
  /// (counting-sorts) the items by destination worker before sending
  /// (Fig. 6); the receiver scatters pre-built segments.
  WsP,
  /// The whole source *process* shares one buffer per destination process;
  /// workers claim slots with atomics (Fig. 7).
  PP,
  /// Topological routing over a virtual 2-D process mesh: the source
  /// worker keeps one buffer per mesh *coordinate* (O(2*sqrt(N)) buffers
  /// instead of the direct schemes' O(N)); messages hop dimension by
  /// dimension and are re-aggregated at intermediates (src/route/).
  Mesh2D,
  /// Same, over a 3-D mesh: O(3*cbrt(N)) buffers, up to 3 hops.
  Mesh3D,
};

const char* to_string(Scheme s);
/// Name -> scheme, case-insensitive ("WPs", "wps" and "WPS" all parse).
std::optional<Scheme> parse_scheme(std::string_view name);

/// The paper's direct schemes, in the order its figures list them.
std::vector<Scheme> all_schemes();
/// The direct aggregating schemes (everything but None and the meshes).
std::vector<Scheme> aggregating_schemes();
/// The topologically routed schemes (handled by route::RoutedDomain).
std::vector<Scheme> routed_schemes();

/// True for schemes routed over a virtual mesh (multi-hop, re-aggregated
/// at intermediates). These are driven by route::RoutedDomain, not
/// TramDomain.
inline bool is_routed(Scheme s) {
  return s == Scheme::Mesh2D || s == Scheme::Mesh3D;
}

/// Mesh dimensionality d of a routed scheme (0 for direct schemes).
inline int mesh_ndims(Scheme s) {
  switch (s) {
    case Scheme::Mesh2D: return 2;
    case Scheme::Mesh3D: return 3;
    default: return 0;
  }
}

/// True for schemes whose source-side buffers target processes (and whose
/// receiver must therefore route items to individual workers).
inline bool process_addressed(Scheme s) {
  return s == Scheme::WPs || s == Scheme::WsP || s == Scheme::PP;
}

/// True for schemes that share source-side buffers across a process.
inline bool shares_source_buffers(Scheme s) { return s == Scheme::PP; }

}  // namespace tram::core
