#pragma once
///
/// \file scheme.hpp
/// \brief The aggregation schemes compared in the paper (section III-B).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tram::core {

/// Who buffers, and at what level, on each side.
enum class Scheme {
  /// No aggregation: every item is its own message (baseline).
  None,
  /// Source worker keeps one buffer per destination *worker* (Fig. 4).
  /// SMP-unaware: w workers hold w-1 buffers each.
  WW,
  /// Source worker keeps one buffer per destination *process*; the
  /// receiving PE groups items by destination worker (Fig. 5).
  WPs,
  /// Source worker keeps one buffer per destination *process* and groups
  /// (counting-sorts) the items by destination worker before sending
  /// (Fig. 6); the receiver scatters pre-built segments.
  WsP,
  /// The whole source *process* shares one buffer per destination process;
  /// workers claim slots with atomics (Fig. 7).
  PP,
};

const char* to_string(Scheme s);
std::optional<Scheme> parse_scheme(std::string_view name);

/// All schemes, in the order the paper's figures list them.
std::vector<Scheme> all_schemes();
/// The aggregating schemes (everything but None).
std::vector<Scheme> aggregating_schemes();

/// True for schemes whose source-side buffers target processes (and whose
/// receiver must therefore route items to individual workers).
inline bool process_addressed(Scheme s) {
  return s == Scheme::WPs || s == Scheme::WsP || s == Scheme::PP;
}

/// True for schemes that share source-side buffers across a process.
inline bool shares_source_buffers(Scheme s) { return s == Scheme::PP; }

}  // namespace tram::core
