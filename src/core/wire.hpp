#pragma once
///
/// \file wire.hpp
/// \brief On-the-wire representation of aggregated items, and the pooled
/// buffer they are aggregated in.
///
/// Every scheme ships arrays of WireEntry<Item>. The paper's per-process
/// schemes must carry the destination worker alongside the item
/// ("<item, dest_w>" in Figs. 5-7); we carry it uniformly (WW pays 4 unused
/// bytes, far below alpha-equivalent cost) plus an optional birth timestamp
/// for the latency metric. Item must be trivially copyable.
///
/// EntryBuffer is the source-side aggregation buffer: entries are written
/// in place into a pooled payload slab (util::PayloadPool), so a full
/// buffer ships as a message by moving the slab handle — encode happens at
/// insert time, and no serialization or allocation remains on the ship
/// path. decode is the mirror image: rt::decode_payload views the same
/// slab bytes as entries at the destination.
///
/// WsP messages prepend a SegmentHeader: per-local-worker counts, so the
/// receiver scatters pre-grouped segments in O(t) instead of scanning g
/// items.
///
/// Routed (mesh) messages prepend a RoutedHeader instead: the mesh
/// dimension the message travelled along, its hop ordinal, and a flags
/// byte whose kPriority bit marks batches from the priority path — so
/// intermediates can validate dimension order, re-bucket urgent entries
/// into priority slots, and stats can attribute traffic per hop. The
/// entries that follow carry the *final* destination worker in
/// WireEntry::dest — intermediates never rewrite entries, they only
/// re-bucket them.
///
/// A routed message whose every entry terminates at the target process
/// (the last hop) is shipped *pre-sorted* by destination local rank and
/// marked RoutedHeader::kSortedMagic: the receiver scatters refcounted
/// sub-views per rank instead of copying (WsP's design applied to the
/// routed path). With more than one worker per process the sorted header
/// carries a SegmentHeader of per-rank counts (RoutedSortedHeader); with
/// one worker per process the grouping is trivial — a single segment — so
/// the 8-byte RoutedHeader suffices and the slab still ships in place.

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <type_traits>

#include "util/payload_pool.hpp"
#include "util/types.hpp"

namespace tram::core {

template <typename Item>
  requires std::is_trivially_copyable_v<Item>
struct WireEntry {
  /// Insert timestamp (ns) when latency tracking is on; 0 otherwise.
  std::uint64_t birth_ns = 0;
  /// Global id of the destination worker.
  WorkerId dest = kInvalidWorker;
  Item item{};
};

/// Fixed-size prefix of a WsP message: entry counts per destination local
/// rank. kMaxLocalWorkers bounds workers-per-process (the paper uses up to
/// 32; 64 leaves headroom).
inline constexpr int kMaxLocalWorkers = 64;

struct SegmentHeader {
  std::uint32_t counts[kMaxLocalWorkers] = {};
};

/// Fixed-size prefix of every routed (mesh) message. sizeof must stay a
/// multiple of alignof(WireEntry) (8) so the entries that follow decode
/// aligned in place.
struct RoutedHeader {
  /// Guards against a routed payload landing on a direct endpoint.
  /// kSortedMagic additionally marks the payload pre-sorted by
  /// destination local rank (every entry terminates at this process).
  std::uint32_t magic = kMagic;
  /// Mesh dimension the message was shipped along. Dimension-ordered
  /// routing corrects dimensions lowest-first, so every entry a receiver
  /// re-buckets goes to a dimension strictly greater than this.
  std::uint16_t dim = 0;
  /// Hop ordinal of this message: 1 for a ship off the source worker,
  /// 1 + max inbound hop for a ship off an intermediate (bounded by the
  /// mesh dimensionality, so 8 bits is generous).
  std::uint8_t hop = 1;
  /// kPriority flag rides here. Orthogonal to the sorted magic: a batch
  /// can be both pre-sorted and priority.
  std::uint8_t flags = 0;

  static constexpr std::uint32_t kMagic = 0x524d5348;        // "RMSH"
  static constexpr std::uint32_t kSortedMagic = 0x524d5353;  // "RMSS"
  /// The batch came off the priority path (Handle::insert_priority):
  /// intermediates re-bucket its entries into priority slots and flush
  /// them ahead of bulk, so urgency survives every hop — not just the
  /// first, which is what distinguishes routed prioritization from a
  /// one-shot expedited send.
  static constexpr std::uint8_t kPriority = 0x01;

  bool priority() const noexcept { return (flags & kPriority) != 0; }
};
static_assert(sizeof(RoutedHeader) == 8);

/// Prefix of a sorted (last-hop) routed message when the receiving process
/// has more than one worker: the per-rank counts the scatter walks. Both
/// header sizes are multiples of alignof(WireEntry) (8), so the entries
/// decode aligned in place either way.
struct RoutedSortedHeader {
  RoutedHeader base;  ///< base.magic == RoutedHeader::kSortedMagic
  SegmentHeader segments;
};
static_assert(sizeof(RoutedSortedHeader) ==
              sizeof(RoutedHeader) + sizeof(SegmentHeader));
static_assert(sizeof(RoutedSortedHeader) % 8 == 0);

/// Validated prefix of an inbound routed message.
struct RoutedWire {
  RoutedHeader hdr;
  bool sorted = false;
  /// Bytes to skip before the WireEntry array: sizeof(RoutedHeader), plus
  /// the SegmentHeader that sorted messages carry when the process runs
  /// more than one worker.
  std::size_t header_bytes = sizeof(RoutedHeader);
};

/// Parse and validate a routed message prefix. Truncation or an unknown
/// magic is wire corruption, not a recoverable condition — abort in every
/// build mode (mirrors rt::decode_payload).
inline RoutedWire parse_routed_header(std::span<const std::byte> bytes,
                                      int workers_per_proc) {
  RoutedWire w;
  if (bytes.size() < sizeof(RoutedHeader)) {
    std::fprintf(stderr, "routed message truncated (%zu bytes)\n",
                 bytes.size());
    std::abort();
  }
  std::memcpy(&w.hdr, bytes.data(), sizeof w.hdr);
  if (w.hdr.magic == RoutedHeader::kSortedMagic) {
    w.sorted = true;
    if (workers_per_proc > 1) {
      w.header_bytes = sizeof(RoutedSortedHeader);
      if (bytes.size() < sizeof(RoutedSortedHeader)) {
        std::fprintf(stderr,
                     "sorted routed message truncated (%zu bytes, "
                     "segment header expected)\n",
                     bytes.size());
        std::abort();
      }
    }
  } else if (w.hdr.magic != RoutedHeader::kMagic) {
    std::fprintf(stderr, "routed message with bad magic %x\n", w.hdr.magic);
    std::abort();
  }
  return w;
}

/// A worker-local aggregation buffer that encodes directly into pool
/// memory. push() lazily acquires a slab sized for the configured g; the
/// slab leaves through take() as a ready-to-send payload and the next push
/// re-acquires (which recycles a previously shipped slab in steady state).
///
/// A buffer may reserve fixed header space at the front of the slab
/// (set_header_bytes): entries encode after it, the caller stamps the
/// header just before take(), and the slab still ships by moving the
/// handle — this is how routed messages carry their RoutedHeader without a
/// second allocation or copy.
template <typename Entry>
  requires std::is_trivially_copyable_v<Entry>
class EntryBuffer {
 public:
  std::uint32_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// True once this buffer has ever acquired storage (memory-footprint
  /// accounting: mirrors the one-reserve-per-destination the formulas
  /// charge, even though the slab itself cycles through the pool).
  bool ever_acquired() const noexcept { return ever_acquired_; }

  /// Reserve header space at the front of every slab this buffer acquires.
  /// Must be a multiple of alignof(Entry) (entries follow in place) and
  /// set while the buffer is empty and unacquired.
  void set_header_bytes(std::uint32_t n) {
    assert(count_ == 0 && ref_.capacity() == 0);
    assert(n % alignof(Entry) == 0);
    header_bytes_ = n;
  }

  /// The reserved header region; valid once a slab is held (size() > 0).
  std::byte* header() noexcept { return ref_.data(); }

  Entry* data() noexcept {
    return reinterpret_cast<Entry*>(ref_.data() + header_bytes_);
  }
  const Entry* data() const noexcept {
    return reinterpret_cast<const Entry*>(ref_.data() + header_bytes_);
  }
  std::span<const Entry> entries() const noexcept { return {data(), count_}; }

  /// Append one entry; acquires a pooled slab of cap_items on the first
  /// push after construction or take(). The caller ships once size()
  /// reaches cap_items, so occupancy never exceeds the acquired capacity
  /// (cap_items == 0 degenerates to ship-every-item, like the vector
  /// buffer it replaced).
  void push(const Entry& e, std::uint32_t cap_items) {
    if (ref_.capacity() == 0) {
      const std::size_t items = cap_items == 0 ? 1 : cap_items;
      ref_ = util::PayloadPool::global().acquire(header_bytes_ +
                                                 items * sizeof(Entry));
      ever_acquired_ = true;
    }
    // The vector this replaced grew on overfill; a slab cannot. A caller
    // that fails to ship at cap_items would corrupt pool memory.
    assert(header_bytes_ + (std::size_t{count_} + 1) * sizeof(Entry) <=
               ref_.capacity() &&
           "EntryBuffer overfilled: ship threshold not enforced");
    data()[count_++] = e;
  }

  /// Bulk-append a contiguous run of entries (the batched re-bucket path:
  /// one memcpy replaces n push calls). The caller must have room —
  /// append at most cap_items - size() — and ships at cap_items exactly
  /// as with push().
  void append(const Entry* src, std::uint32_t n, std::uint32_t cap_items) {
    if (n == 0) return;
    if (ref_.capacity() == 0) {
      const std::size_t items = cap_items == 0 ? 1 : cap_items;
      ref_ = util::PayloadPool::global().acquire(header_bytes_ +
                                                 items * sizeof(Entry));
      ever_acquired_ = true;
    }
    assert(header_bytes_ + (std::size_t{count_} + n) * sizeof(Entry) <=
               ref_.capacity() &&
           "EntryBuffer overfilled: run exceeds remaining capacity");
    std::memcpy(data() + count_, src, std::size_t{n} * sizeof(Entry));
    count_ += n;
  }

  /// Hand the buffer off as a message payload sized to the actual
  /// occupancy (header included), resetting this buffer.
  util::PayloadRef take() {
    ref_.resize(header_bytes_ + std::size_t{count_} * sizeof(Entry));
    count_ = 0;
    return std::move(ref_);
  }

  /// Reset occupancy but keep the slab (for paths that copy out instead of
  /// shipping the buffer itself, e.g. WsP's counting sort).
  void clear() noexcept { count_ = 0; }

 private:
  util::PayloadRef ref_;
  std::uint32_t count_ = 0;
  std::uint32_t header_bytes_ = 0;
  bool ever_acquired_ = false;
};

}  // namespace tram::core
