#pragma once
///
/// \file wire.hpp
/// \brief On-the-wire representation of aggregated items.
///
/// Every scheme ships arrays of WireEntry<Item>. The paper's per-process
/// schemes must carry the destination worker alongside the item
/// ("<item, dest_w>" in Figs. 5-7); we carry it uniformly (WW pays 4 unused
/// bytes, far below alpha-equivalent cost) plus an optional birth timestamp
/// for the latency metric. Item must be trivially copyable.
///
/// WsP messages prepend a SegmentHeader: per-local-worker counts, so the
/// receiver scatters pre-grouped segments in O(t) instead of scanning g
/// items.

#include <cstdint>
#include <type_traits>

#include "util/types.hpp"

namespace tram::core {

template <typename Item>
  requires std::is_trivially_copyable_v<Item>
struct WireEntry {
  /// Insert timestamp (ns) when latency tracking is on; 0 otherwise.
  std::uint64_t birth_ns = 0;
  /// Global id of the destination worker.
  WorkerId dest = kInvalidWorker;
  Item item{};
};

/// Fixed-size prefix of a WsP message: entry counts per destination local
/// rank. kMaxLocalWorkers bounds workers-per-process (the paper uses up to
/// 32; 64 leaves headroom).
inline constexpr int kMaxLocalWorkers = 64;

struct SegmentHeader {
  std::uint32_t counts[kMaxLocalWorkers] = {};
};

}  // namespace tram::core
