#pragma once
///
/// \file grouping.hpp
/// \brief Destination-rank counting sort shared by every pre-sorted ship
/// path.
///
/// The paper's WsP scheme moves the destination-side grouping cost to the
/// source: a two-pass counting sort by destination local rank, written
/// straight into the outgoing slab after a SegmentHeader of per-rank
/// counts, lets the receiver scatter refcounted sub-views in O(t) instead
/// of scanning g entries. The same sort serves the routed schemes' last
/// hop (src/route/): the shipper of a final-dimension buffer knows every
/// entry terminates at the target process, so it can pre-group exactly
/// like a WsP source. This helper is that sort, extracted so the two
/// paths cannot drift.

#include <cstring>
#include <span>

#include "core/wire.hpp"
#include "util/types.hpp"

namespace tram::core {

/// Counting-sort `src` by destination local rank into `out` (which must
/// hold src.size() entries), filling `header.counts` for the receiver's
/// segment walk. `rank_of` maps a WireEntry destination worker to its
/// local rank in [0, t). A single-worker process degenerates to one
/// segment and a straight copy.
/// In-place variant: permute `data` into rank-grouped order (american-flag
/// counting sort) and fill `header.counts`. Same wire layout as
/// counting_sort_segments but no destination buffer — the routed last-hop
/// ship uses it to sort the slot's own slab and ship it by moving the
/// handle, removing the sort's copy-into-fresh-slab. O(n) swaps: every
/// swap retires one element into its final segment.
template <typename Entry, typename RankFn>
void permute_sort_segments(Entry* data, std::size_t n, int t,
                           RankFn&& rank_of, SegmentHeader& header) {
  if (t == 1) {
    header.counts[0] = static_cast<std::uint32_t>(n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    header.counts[rank_of(data[i].dest)]++;
  }
  // next[r] = first unplaced position of segment r; end[r] = one past it.
  std::uint32_t next[kMaxLocalWorkers];
  std::uint32_t end[kMaxLocalWorkers];
  std::uint32_t acc = 0;
  for (int r = 0; r < t; ++r) {
    next[r] = acc;
    acc += header.counts[r];
    end[r] = acc;
  }
  for (int r = 0; r < t; ++r) {
    while (next[r] < end[r]) {
      const int b = rank_of(data[next[r]].dest);
      if (b == r) {
        ++next[r];
      } else {
        Entry tmp = data[next[r]];
        data[next[r]] = data[next[b]];
        data[next[b]] = tmp;
        ++next[b];
      }
    }
  }
}

template <typename Entry, typename RankFn>
void counting_sort_segments(std::span<const Entry> src, int t,
                            RankFn&& rank_of, SegmentHeader& header,
                            Entry* out) {
  if (t == 1) {
    header.counts[0] = static_cast<std::uint32_t>(src.size());
    if (!src.empty()) std::memcpy(out, src.data(), src.size_bytes());
    return;
  }
  for (const Entry& e : src) {
    header.counts[rank_of(e.dest)]++;
  }
  std::uint32_t offsets[kMaxLocalWorkers];
  std::uint32_t acc = 0;
  for (int r = 0; r < t; ++r) {
    offsets[r] = acc;
    acc += header.counts[r];
  }
  for (const Entry& e : src) {
    out[offsets[rank_of(e.dest)]++] = e;
  }
}

}  // namespace tram::core
