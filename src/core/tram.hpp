#pragma once
///
/// \file tram.hpp
/// \brief TramLib: the shared memory-aware message aggregation library.
///
/// Public API (SPMD, mirroring the paper's Charm++ library):
///
///   TramDomain<Update> tram(machine, {.scheme = Scheme::WPs,
///                                     .buffer_items = 1024},
///                           [](rt::Worker& w, const Update& u) {
///                             /* delivered on the destination worker */
///                           });
///   machine.run([&](rt::Worker& self) {
///     auto& t = tram.on(self);
///     t.insert(dest_worker, Update{...});   // aggregated per the scheme
///     ...
///     t.flush_all();                        // ship partial buffers
///   });
///
/// At initialization the user passes the delivery function ("a pointer to
/// the charm++ object and function to which data needs to be delivered");
/// inserts check the destination buffer's fill against g and ship a message
/// when full; flushed messages are resized to their actual occupancy; idle
/// workers flush automatically when flush_on_idle is set.
///
/// The message path is zero-copy end to end: inserts encode entries in
/// place into pooled slabs (core::EntryBuffer / core::PpBuffer), a full
/// buffer ships by moving its slab handle into the Message payload, and
/// WsP's destination-side scatter forwards segments as refcounted views of
/// the inbound slab.
///
/// The five schemes differ only in the buffer granularity and the
/// destination-side routing — see scheme.hpp and the paper's Figs. 4-7.

#include <array>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/grouping.hpp"
#include "core/pp_buffer.hpp"
#include "core/tram_stats.hpp"
#include "core/wire.hpp"
#include "runtime/machine.hpp"
#include "runtime/message.hpp"
#include "runtime/worker.hpp"
#include "util/payload_pool.hpp"
#include "util/timebase.hpp"

namespace tram::core {

/// Sequence for SharedStore keys of PP state. Must be shared across ALL
/// TramDomain<T> instantiations: a function-local static inside the
/// template would give every item type its own counter, making two domains
/// of different item types collide on the same key — and SharedStore would
/// then hand one domain the other's buffers under the wrong type.
inline std::atomic<std::uint64_t> tram_pp_domain_seq{0};

template <typename Item>
  requires std::is_trivially_copyable_v<Item>
class TramDomain {
 public:
  using Entry = WireEntry<Item>;
  /// Runs on the destination worker's thread for every delivered item.
  using DeliverFn = std::function<void(rt::Worker&, const Item&)>;

  class Handle;

  TramDomain(rt::Machine& machine, TramConfig cfg, DeliverFn deliver)
      : machine_(machine),
        cfg_(cfg),
        deliver_(std::move(deliver)),
        topo_(machine.topology()) {
    if (is_routed(cfg_.scheme)) {
      throw std::invalid_argument(
          "TramDomain: routed scheme (use route::RoutedDomain)");
    }
    if (topo_.workers_per_proc() > kMaxLocalWorkers) {
      throw std::invalid_argument("TramDomain: workers_per_proc exceeds "
                                  "kMaxLocalWorkers");
    }
    register_endpoints();
    // Per-process shared PP state (allocated through the process's shared
    // store: PP's cross-worker buffers are process-local shared memory).
    if (cfg_.scheme == Scheme::PP) {
      const std::string key =
          "tram_pp_domain_" +
          std::to_string(tram_pp_domain_seq.fetch_add(1));
      pp_states_.resize(static_cast<std::size_t>(topo_.procs()));
      for (ProcId p = 0; p < topo_.procs(); ++p) {
        pp_states_[p] = machine.process(p).shared().template get_or_create<PpState>(
            key, [&] {
              return new PpState(static_cast<std::uint32_t>(topo_.procs()),
                                 cfg_.buffer_items);
            });
      }
    }
    handles_.reserve(static_cast<std::size_t>(topo_.workers()));
    for (WorkerId w = 0; w < topo_.workers(); ++w) {
      handles_.push_back(std::unique_ptr<Handle>(
          new Handle(*this, machine.worker(w))));
    }
    install_hooks();
  }

  TramDomain(const TramDomain&) = delete;
  TramDomain& operator=(const TramDomain&) = delete;

  /// This worker's aggregation handle.
  Handle& on(rt::Worker& w) {
    return *handles_[static_cast<std::size_t>(w.id())];
  }
  Handle& handle(WorkerId w) { return *handles_[static_cast<std::size_t>(w)]; }

  const TramConfig& config() const noexcept { return cfg_; }
  rt::Machine& machine() noexcept { return machine_; }

  /// Merged stats across all workers (call after machine.run returns).
  WorkerTramStats aggregate_stats() const {
    WorkerTramStats total;
    for (const auto& h : handles_) total.merge(h->stats_);
    return total;
  }
  const WorkerTramStats& worker_stats(WorkerId w) const {
    return handles_[static_cast<std::size_t>(w)]->stats_;
  }

  /// Actual bytes reserved in aggregation buffers, machine-wide (compare
  /// with the section III-C formulas). Counts each destination buffer a
  /// worker ever populated at its full g — the slab itself cycles through
  /// the payload pool, but the footprint charge matches the paper's model.
  std::uint64_t allocated_buffer_bytes() const {
    std::uint64_t total = 0;
    for (const auto& h : handles_) {
      total += h->reserved_buffers_ * std::uint64_t{cfg_.buffer_items} *
               sizeof(Entry);
    }
    for (const auto& pp : pp_states_) {
      if (pp) {
        total += static_cast<std::uint64_t>(pp->buffers.size()) *
                 cfg_.buffer_items * sizeof(Entry);
      }
    }
    return total;
  }

  /// Largest number of distinct aggregation buffers any single worker ever
  /// populated — grows with the destination count (workers for WW,
  /// processes for WPs/WsP; 0 for PP, whose buffers are process-shared).
  /// The routed schemes bound the same metric by O(d * N^(1/d)).
  std::uint64_t max_reserved_buffers() const {
    std::uint64_t m = 0;
    for (const auto& h : handles_) {
      if (h->reserved_buffers_ > m) m = h->reserved_buffers_;
    }
    return m;
  }

  /// Zero all counters between benchmark trials (machine must be idle).
  void reset_stats() {
    for (auto& h : handles_) h->stats_ = WorkerTramStats{};
  }

 private:
  friend class Handle;

  /// Shared source-side buffers for the PP scheme: one PpBuffer per
  /// destination process, plus the process's pending-item count.
  struct PpState {
    PpState(std::uint32_t nprocs, std::uint32_t g) {
      buffers.reserve(nprocs);
      for (std::uint32_t i = 0; i < nprocs; ++i) {
        buffers.push_back(std::make_unique<PpBuffer<Entry>>(g));
      }
    }
    std::vector<std::unique_ptr<PpBuffer<Entry>>> buffers;
    std::atomic<std::uint64_t> pending{0};
  };

  void register_endpoints() {
    // Final-hop delivery: a batch of entries addressed to this worker.
    ep_direct_ = machine_.register_endpoint(
        [this](rt::Worker& w, rt::Message&& m) {
          auto entries = rt::decode_payload<Entry>(m);
          handle(w.id()).deliver_batch(w, entries);
        });
    // Process-addressed unsorted batch (WPs, PP): the receiving PE groups
    // items by destination worker and local-sends each group.
    // (decode_payload aborts on a truncated payload in every build mode.)
    ep_grouped_ = machine_.register_endpoint(
        [this](rt::Worker& w, rt::Message&& m) {
          auto entries = rt::decode_payload<Entry>(m);
          handle(w.id()).regroup_and_deliver(w, entries);
        });
    // Process-addressed pre-sorted batch (WsP): scatter segments.
    ep_segmented_ = machine_.register_endpoint(
        [this](rt::Worker& w, rt::Message&& m) {
          handle(w.id()).scatter_segments(w, m);
        });
  }

  void install_hooks() {
    for (WorkerId w = 0; w < topo_.workers(); ++w) {
      Handle* h = handles_[static_cast<std::size_t>(w)].get();
      rt::Worker& worker = machine_.worker(w);
      worker.add_pending_counter([h] {
        return h->pending_.load(std::memory_order_acquire);
      });
      if (cfg_.scheme == Scheme::PP && topo_.local_rank(w) == 0) {
        PpState* pp = pp_states_[topo_.proc_of_worker(w)].get();
        worker.add_pending_counter([pp] {
          return pp->pending.load(std::memory_order_acquire);
        });
      }
      if (cfg_.flush_on_idle && cfg_.scheme != Scheme::None) {
        worker.add_idle_hook([h](rt::Worker&) { h->flush_all(); });
      }
    }
  }

  rt::Machine& machine_;
  TramConfig cfg_;
  DeliverFn deliver_;
  util::Topology topo_;
  EndpointId ep_direct_ = -1;
  EndpointId ep_grouped_ = -1;
  EndpointId ep_segmented_ = -1;
  std::vector<std::shared_ptr<PpState>> pp_states_;
  std::vector<std::unique_ptr<Handle>> handles_;

 public:
  /// Per-worker aggregation endpoint. Obtain via TramDomain::on(worker);
  /// insert/flush_all must be called from the owning worker's thread.
  class Handle {
   public:
    /// Aggregate one item toward the given destination worker.
    void insert(WorkerId dest, const Item& item) {
      auto& d = *domain_;
      ++stats_.items_inserted;
      Entry e;
      e.birth_ns = d.cfg_.latency_tracking ? util::now_ns() : 0;
      e.dest = dest;
      e.item = item;

      switch (d.cfg_.scheme) {
        case Scheme::None: {
          // One message per item: the unaggregated baseline.
          rt::Message m;
          m.endpoint = d.ep_direct_;
          m.dst_worker = dest;
          m.src_worker = self_->id();
          m.expedited = d.cfg_.expedited;
          m.payload = rt::encode_payload<Entry>(e);
          ++stats_.msgs_shipped;
          stats_.occupancy_at_ship.add(1.0);
          self_->send(std::move(m));
          return;
        }
        case Scheme::WW: {
          auto& buf = bufs_[static_cast<std::size_t>(dest)];
          buffer_push(buf, e);
          if (buf.size() >= d.cfg_.buffer_items) {
            ship_direct(dest, buf, /*from_flush=*/false);
          }
          break;
        }
        case Scheme::WPs:
        case Scheme::WsP: {
          const ProcId dp = d.topo_.proc_of_worker(dest);
          auto& buf = bufs_[static_cast<std::size_t>(dp)];
          buffer_push(buf, e);
          if (buf.size() >= d.cfg_.buffer_items) {
            ship_proc(dp, buf, /*from_flush=*/false);
          }
          break;
        }
        case Scheme::PP: {
          const ProcId dp = d.topo_.proc_of_worker(dest);
          auto* pp = d.pp_states_[self_proc_].get();
          pp->pending.fetch_add(1, std::memory_order_release);
          auto sealed = pp->buffers[static_cast<std::size_t>(dp)]->insert(
              e, stats_.pp_cas_retries);
          if (sealed) {
            ship_pp(dp, std::move(*sealed), /*from_flush=*/false);
          }
          break;
        }
        case Scheme::Mesh2D:
        case Scheme::Mesh3D:
          assert(false && "unreachable: TramDomain rejects routed schemes");
          break;
      }
      maybe_timeout_flush();
    }

    /// Aggregate an urgent item (the paper's future-work prioritization).
    /// Routed through small, expedited buffers so it ships and is
    /// delivered well ahead of bulk insert() traffic. Falls back to
    /// insert() when priority buffering is not configured.
    void insert_priority(WorkerId dest, const Item& item) {
      auto& d = *domain_;
      const std::uint32_t g_hi = d.cfg_.priority_buffer_items;
      if (g_hi == 0 || d.cfg_.scheme == Scheme::None) {
        insert(dest, item);
        return;
      }
      ++stats_.items_inserted;
      ++stats_.priority_items;
      Entry e;
      e.birth_ns = d.cfg_.latency_tracking ? util::now_ns() : 0;
      e.dest = dest;
      e.item = item;
      if (d.cfg_.scheme == Scheme::WW) {
        auto& buf = pri_bufs_[static_cast<std::size_t>(dest)];
        pri_push(buf, e, g_hi);
        if (buf.size() >= g_hi) ship_priority_direct(dest, buf);
      } else {
        const ProcId dp = d.topo_.proc_of_worker(dest);
        auto& buf = pri_bufs_[static_cast<std::size_t>(dp)];
        pri_push(buf, e, g_hi);
        if (buf.size() >= g_hi) ship_priority_proc(dp, buf);
      }
    }

    /// Ship every partially filled buffer ("flush accumulated items").
    void flush_all() {
      auto& d = *domain_;
      // Priority buffers first: urgent stragglers leave before bulk.
      if (!pri_bufs_.empty()) {
        if (d.cfg_.scheme == Scheme::WW) {
          for (WorkerId dest = 0;
               dest < static_cast<WorkerId>(pri_bufs_.size()); ++dest) {
            auto& buf = pri_bufs_[static_cast<std::size_t>(dest)];
            if (!buf.empty()) ship_priority_direct(dest, buf);
          }
        } else {
          for (ProcId dp = 0; dp < static_cast<ProcId>(pri_bufs_.size());
               ++dp) {
            auto& buf = pri_bufs_[static_cast<std::size_t>(dp)];
            if (!buf.empty()) ship_priority_proc(dp, buf);
          }
        }
      }
      switch (d.cfg_.scheme) {
        case Scheme::None:
          return;
        case Scheme::WW:
          for (WorkerId dest = 0; dest < static_cast<WorkerId>(bufs_.size());
               ++dest) {
            auto& buf = bufs_[static_cast<std::size_t>(dest)];
            if (!buf.empty()) ship_direct(dest, buf, /*from_flush=*/true);
          }
          break;
        case Scheme::WPs:
        case Scheme::WsP:
          for (ProcId dp = 0; dp < static_cast<ProcId>(bufs_.size()); ++dp) {
            auto& buf = bufs_[static_cast<std::size_t>(dp)];
            if (!buf.empty()) ship_proc(dp, buf, /*from_flush=*/true);
          }
          break;
        case Scheme::PP: {
          auto* pp = d.pp_states_[self_proc_].get();
          for (ProcId dp = 0; dp < static_cast<ProcId>(pp->buffers.size());
               ++dp) {
            auto partial = pp->buffers[static_cast<std::size_t>(dp)]->flush();
            if (partial && !partial->empty()) {
              ship_pp(dp, std::move(*partial), /*from_flush=*/true);
            }
          }
          break;
        }
        case Scheme::Mesh2D:
        case Scheme::Mesh3D:
          assert(false && "unreachable: TramDomain rejects routed schemes");
          break;
      }
      last_flush_ns_ = util::now_ns();
    }

    const WorkerTramStats& stats() const noexcept { return stats_; }
    /// Items currently buffered at this worker (excludes PP shared state).
    std::uint64_t pending() const noexcept {
      return pending_.load(std::memory_order_acquire);
    }

   private:
    friend class TramDomain;

    Handle(TramDomain& d, rt::Worker& self)
        : domain_(&d),
          self_(&self),
          self_proc_(d.topo_.proc_of_worker(self.id())) {
      switch (d.cfg_.scheme) {
        case Scheme::WW:
          bufs_.resize(static_cast<std::size_t>(d.topo_.workers()));
          break;
        case Scheme::WPs:
        case Scheme::WsP:
          bufs_.resize(static_cast<std::size_t>(d.topo_.procs()));
          break;
        default:
          break;
      }
      if (d.cfg_.priority_buffer_items > 0 &&
          d.cfg_.scheme != Scheme::None) {
        // Priority buffers are always worker-local (even under PP: sharing
        // would reintroduce the very latency the priority path removes),
        // at the scheme's destination granularity.
        pri_bufs_.resize(d.cfg_.scheme == Scheme::WW
                             ? static_cast<std::size_t>(d.topo_.workers())
                             : static_cast<std::size_t>(d.topo_.procs()));
      }
    }

    void pri_push(EntryBuffer<Entry>& buf, const Entry& e,
                  std::uint32_t g_hi) {
      buf.push(e, g_hi);
      pending_.fetch_add(1, std::memory_order_release);
    }

    /// Priority ship, WW granularity: straight to the destination worker,
    /// always expedited.
    void ship_priority_direct(WorkerId dest, EntryBuffer<Entry>& buf) {
      auto& d = *domain_;
      const std::size_t n = buf.size();
      rt::Message m;
      m.endpoint = d.ep_direct_;
      m.dst_worker = dest;
      m.src_worker = self_->id();
      m.expedited = true;
      m.payload = buf.take();
      account_ship(n, /*from_flush=*/false);
      ++stats_.priority_msgs;
      self_->send(std::move(m));
      pending_.fetch_sub(n, std::memory_order_release);
    }

    /// Priority ship, process granularity: expedited grouped message (the
    /// receiver groups; priority batches are small, so the grouping cost
    /// is negligible even for WsP, which skips its source sort here).
    void ship_priority_proc(ProcId dp, EntryBuffer<Entry>& buf) {
      auto& d = *domain_;
      const std::size_t n = buf.size();
      rt::Message m;
      m.endpoint = d.ep_grouped_;
      m.src_worker = self_->id();
      m.expedited = true;
      m.payload = buf.take();
      account_ship(n, /*from_flush=*/false);
      ++stats_.priority_msgs;
      self_->send_to_proc(dp, std::move(m));
      pending_.fetch_sub(n, std::memory_order_release);
    }

    void buffer_push(EntryBuffer<Entry>& buf, const Entry& e) {
      if (!buf.ever_acquired()) ++reserved_buffers_;
      buf.push(e, domain_->cfg_.buffer_items);
      pending_.fetch_add(1, std::memory_order_release);
    }

    void maybe_timeout_flush() {
      const auto& cfg = domain_->cfg_;
      if (cfg.flush_timeout_ns == 0) return;
      if ((++insert_tick_ & 0x3ff) != 0) return;  // check every 1024 inserts
      const std::uint64_t now = util::now_ns();
      if (now - last_flush_ns_ > cfg.flush_timeout_ns) flush_all();
    }

    /// WW ship: the filled slab goes straight to the destination worker.
    void ship_direct(WorkerId dest, EntryBuffer<Entry>& buf,
                     bool from_flush) {
      auto& d = *domain_;
      const std::size_t n = buf.size();
      rt::Message m;
      m.endpoint = d.ep_direct_;
      m.dst_worker = dest;
      m.src_worker = self_->id();
      m.expedited = d.cfg_.expedited;
      m.payload = buf.take();
      account_ship(n, from_flush);
      self_->send(std::move(m));
      pending_.fetch_sub(n, std::memory_order_release);
    }

    /// WPs/WsP ship: message to the destination process (WsP sorts first,
    /// directly into a fresh pool slab; WPs ships its slab as-is).
    void ship_proc(ProcId dp, EntryBuffer<Entry>& buf, bool from_flush) {
      auto& d = *domain_;
      const std::size_t n = buf.size();
      rt::Message m;
      m.src_worker = self_->id();
      m.expedited = d.cfg_.expedited;
      if (d.cfg_.scheme == Scheme::WsP) {
        m.endpoint = d.ep_segmented_;
        m.payload = build_segmented_payload(buf);
        buf.clear();  // keep the slab; the sort copied out of it
      } else {
        m.endpoint = d.ep_grouped_;
        m.payload = buf.take();
      }
      account_ship(n, from_flush);
      self_->send_to_proc(dp, std::move(m));
      pending_.fetch_sub(n, std::memory_order_release);
    }

    /// PP ship: the sealed/flushed shared slab, handed off as-is.
    void ship_pp(ProcId dp, util::PooledBatch<Entry>&& batch,
                 bool from_flush) {
      auto& d = *domain_;
      const std::size_t n = batch.size();
      rt::Message m;
      m.endpoint = d.ep_grouped_;
      m.src_worker = self_->id();
      m.expedited = d.cfg_.expedited;
      m.payload = std::move(batch).take_ref();
      account_ship(n, from_flush);
      self_->send_to_proc(dp, std::move(m));
      d.pp_states_[self_proc_]->pending.fetch_sub(
          n, std::memory_order_release);
    }

    void account_ship(std::size_t n, bool from_flush) {
      ++stats_.msgs_shipped;
      if (from_flush) ++stats_.flush_msgs;
      stats_.occupancy_at_ship.add(static_cast<double>(n));
    }

    /// Source-side grouping for WsP: the shared counting sort
    /// (core/grouping.hpp), written straight into the outgoing pool slab
    /// after a SegmentHeader of per-rank counts.
    util::PayloadRef build_segmented_payload(const EntryBuffer<Entry>& buf) {
      auto& d = *domain_;
      const std::span<const Entry> src = buf.entries();
      util::PayloadRef payload = util::PayloadPool::global().acquire(
          sizeof(SegmentHeader) + src.size() * sizeof(Entry));
      SegmentHeader header;
      counting_sort_segments(
          src, d.topo_.workers_per_proc(),
          [&](WorkerId w) { return d.topo_.local_rank(w); }, header,
          reinterpret_cast<Entry*>(payload.data() + sizeof header));
      std::memcpy(payload.data(), &header, sizeof header);
      return payload;
    }

    /// Final-hop delivery on the destination worker.
    void deliver_batch(rt::Worker& w, std::span<const Entry> entries) {
      auto& d = *domain_;
      const bool track = d.cfg_.latency_tracking;
      for (const Entry& e : entries) {
        if (e.dest != w.id()) {
          std::fprintf(stderr,
                       "TRAM misroute: entry dest=%d delivered on worker=%d "
                       "(scheme=%s)\n",
                       e.dest, w.id(), to_string(d.cfg_.scheme));
          std::abort();
        }
        if (track && e.birth_ns != 0) {
          stats_.latency.add(util::now_ns() - e.birth_ns);
        }
        ++stats_.items_delivered;
        d.deliver_(w, e.item);
      }
    }

    /// Destination-side grouping (WPs, PP): deliver our own items in
    /// place, bucket the rest straight into per-rank pool slabs and
    /// local-send each slab (one count pass + one scatter pass: the
    /// O(g + t) delay of section III-C, now allocation-free).
    void regroup_and_deliver(rt::Worker& w, std::span<const Entry> entries) {
      auto& d = *domain_;
      const int t = d.topo_.workers_per_proc();
      const ProcId proc = d.topo_.proc_of_worker(w.id());
      if (t == 1) {
        deliver_batch(w, entries);
        return;
      }
      std::uint32_t counts[kMaxLocalWorkers] = {};
      for (const Entry& e : entries) {
        counts[d.topo_.local_rank(e.dest)]++;
      }
      const LocalWorkerId own = d.topo_.local_rank(w.id());
      std::array<util::PayloadRef, kMaxLocalWorkers> refs;
      std::array<Entry*, kMaxLocalWorkers> cursor{};
      for (int r = 0; r < t; ++r) {
        if (r == own || counts[r] == 0) continue;
        refs[static_cast<std::size_t>(r)] =
            util::PayloadPool::global().acquire(counts[r] * sizeof(Entry));
        cursor[static_cast<std::size_t>(r)] = reinterpret_cast<Entry*>(
            refs[static_cast<std::size_t>(r)].data());
      }
      for (const Entry& e : entries) {
        const auto r =
            static_cast<std::size_t>(d.topo_.local_rank(e.dest));
        if (static_cast<LocalWorkerId>(r) == own) {
          deliver_batch(w, std::span<const Entry>(&e, 1));
        } else {
          *cursor[r]++ = e;
        }
      }
      for (int r = 0; r < t; ++r) {
        if (r == own || counts[r] == 0) continue;
        rt::Message m;
        m.endpoint = d.ep_direct_;
        m.dst_worker = d.topo_.worker_at(proc, r);
        m.src_worker = w.id();
        m.expedited = d.cfg_.expedited;
        m.payload = std::move(refs[static_cast<std::size_t>(r)]);
        ++stats_.regroup_msgs;
        w.send(std::move(m));
      }
    }

    /// Destination-side scatter (WsP): segments are pre-sorted, so each
    /// remote segment ships as a refcounted view of the inbound slab — no
    /// copy at all; the slab recycles once the last segment is handled.
    void scatter_segments(rt::Worker& w, const rt::Message& msg) {
      auto& d = *domain_;
      const int t = d.topo_.workers_per_proc();
      const ProcId proc = d.topo_.proc_of_worker(w.id());
      const std::span<const std::byte> bytes = msg.payload.span();
      SegmentHeader header;
      std::memcpy(&header, bytes.data(), sizeof header);
      auto entries = rt::decode_payload<Entry>(bytes.subspan(sizeof header));
      const LocalWorkerId own = d.topo_.local_rank(w.id());
      std::size_t offset = 0;
      for (int r = 0; r < t; ++r) {
        const std::uint32_t count = header.counts[r];
        if (count == 0) continue;
        auto segment = entries.subspan(offset, count);
        const std::size_t seg_bytes_off =
            sizeof(SegmentHeader) + offset * sizeof(Entry);
        offset += count;
        if (r == own) {
          deliver_batch(w, segment);
          continue;
        }
        rt::Message m;
        m.endpoint = d.ep_direct_;
        m.dst_worker = d.topo_.worker_at(proc, r);
        m.src_worker = w.id();
        m.expedited = d.cfg_.expedited;
        m.payload = msg.payload.subref(seg_bytes_off, count * sizeof(Entry));
        ++stats_.regroup_msgs;
        w.send(std::move(m));
      }
    }

    TramDomain* domain_;
    rt::Worker* self_;
    ProcId self_proc_;
    std::vector<EntryBuffer<Entry>> bufs_;
    std::vector<EntryBuffer<Entry>> pri_bufs_;
    std::atomic<std::uint64_t> pending_{0};
    WorkerTramStats stats_;
    std::uint64_t reserved_buffers_ = 0;
    std::uint64_t insert_tick_ = 0;
    std::uint64_t last_flush_ns_ = 0;
  };
};

}  // namespace tram::core
