#pragma once
///
/// \file pp_buffer.hpp
/// \brief The PP scheme's process-shared aggregation buffer.
///
/// One PpBuffer per (source process, destination process). All workers of
/// the source process insert concurrently; the paper: "this coalescing in
/// the source process is achieved using atomics". Design:
///
///  - state_ packs (epoch << 32) | reserved. A writer claims slot
///    `reserved` with a bounded CAS (increment only while reserved < g);
///    the CAS-retry count is the paper's "overhead of atomics".
///  - committed_ counts completed slot writes. The writer whose commit
///    makes the buffer full becomes the *sealer*: it detaches the filled
///    slab, installs a fresh one from the payload pool, resets committed_,
///    bumps the epoch with reserved = 0 (reopening the buffer), and ships
///    the detached slab — no copy. Writers that observe reserved >= g spin
///    briefly until the sealer reopens.
///  - flush() (partial send) blocks new claims by CASing reserved to g,
///    waits for in-flight slot writes to commit, detaches/replaces the
///    slab the same way, and reopens. The epoch in the high bits makes
///    claim CASes ABA-safe across reopen.
///
/// Slots live in a pooled payload slab (util::PayloadPool): the sealed
/// buffer IS the outgoing message payload, and the replacement slab is a
/// recycled one in steady state, so the seal path neither copies nor
/// allocates. The swap is safe because a new-epoch writer can only read
/// the slab pointer after the release store that reopens state_, which
/// happens after the swap; old-epoch writers have all committed before the
/// sealer runs.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>

#include "util/payload_pool.hpp"
#include "util/spinlock.hpp"

namespace tram::core {

template <typename Entry>
class PpBuffer {
 public:
  explicit PpBuffer(std::uint32_t capacity)
      : buf_(util::PayloadPool::global().acquire(std::size_t{capacity} *
                                                 sizeof(Entry))),
        cap_(capacity) {}

  PpBuffer(const PpBuffer&) = delete;
  PpBuffer& operator=(const PpBuffer&) = delete;

  /// Insert one entry. Returns the full buffer contents (as a pooled,
  /// ready-to-ship batch) when the caller became the sealer and must ship
  /// them; nullopt otherwise. Thread-safe. cas_retries is incremented for
  /// every failed claim attempt.
  std::optional<util::PooledBatch<Entry>> insert(const Entry& e,
                                                 std::uint64_t& cas_retries) {
    for (;;) {
      std::uint64_t s = state_.load(std::memory_order_acquire);
      const auto reserved = static_cast<std::uint32_t>(s);
      if (reserved >= cap_) {
        // Buffer full; the sealer (or a flusher) is reopening it.
        util::cpu_relax();
        ++cas_retries;
        continue;
      }
      if (!state_.compare_exchange_weak(s, s + 1, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        ++cas_retries;
        continue;
      }
      slots()[reserved] = e;
      // acq_rel: release publishes our slot write; acquire synchronizes the
      // sealer with every earlier writer's release.
      const std::uint32_t c =
          committed_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (c == cap_) {
        util::PayloadRef out = detach_and_replace();
        committed_.store(0, std::memory_order_relaxed);
        const std::uint64_t epoch = s >> 32;
        state_.store((epoch + 1) << 32, std::memory_order_release);
        return util::PooledBatch<Entry>(std::move(out));
      }
      return std::nullopt;
    }
  }

  /// Ship whatever is buffered (possibly nothing). Returns the partial
  /// contents, or nullopt when the buffer is empty. Thread-safe; concurrent
  /// flushes serialize on an internal lock, and flush-vs-insert races are
  /// resolved by the same claim protocol.
  std::optional<util::PooledBatch<Entry>> flush() {
    std::lock_guard<util::Spinlock> guard(flush_mu_);
    for (;;) {
      std::uint64_t s = state_.load(std::memory_order_acquire);
      const auto reserved = static_cast<std::uint32_t>(s);
      if (reserved == 0) return std::nullopt;
      if (reserved >= cap_) {
        // A writer-seal is completing; once it reopens, re-evaluate.
        util::cpu_relax();
        continue;
      }
      // Close the buffer to new claims.
      const std::uint64_t closed = (s & ~std::uint64_t{0xffffffff}) | cap_;
      if (!state_.compare_exchange_weak(s, closed,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        continue;
      }
      // Wait for the claimed writers to finish their slot writes.
      while (committed_.load(std::memory_order_acquire) != reserved) {
        util::cpu_relax();
      }
      util::PayloadRef out = detach_and_replace();
      out.resize(std::size_t{reserved} * sizeof(Entry));
      committed_.store(0, std::memory_order_relaxed);
      const std::uint64_t epoch = s >> 32;
      state_.store((epoch + 1) << 32, std::memory_order_release);
      return util::PooledBatch<Entry>(std::move(out));
    }
  }

  /// Approximate occupancy (claims in the current epoch, capped).
  std::uint32_t size_approx() const {
    const auto r = static_cast<std::uint32_t>(
        state_.load(std::memory_order_acquire));
    return r > cap_ ? cap_ : r;
  }

  std::uint32_t capacity() const noexcept { return cap_; }

 private:
  Entry* slots() noexcept { return reinterpret_cast<Entry*>(buf_.data()); }

  /// Detach the filled slab and install a fresh (recycled) one. Only the
  /// sealer/flusher runs this, after all claimed writes have committed and
  /// before the reopening release store.
  util::PayloadRef detach_and_replace() {
    util::PayloadRef out = std::move(buf_);
    buf_ = util::PayloadPool::global().acquire(std::size_t{cap_} *
                                               sizeof(Entry));
    return out;
  }

  util::PayloadRef buf_;
  const std::uint32_t cap_;
  /// (epoch << 32) | reserved-slot-count.
  alignas(util::kCacheLine) std::atomic<std::uint64_t> state_{0};
  alignas(util::kCacheLine) std::atomic<std::uint32_t> committed_{0};
  util::Spinlock flush_mu_;
};

}  // namespace tram::core
