/// Explicit instantiations of the TramDomain template for common item
/// types: catches template compile errors at library build time and speeds
/// up dependent TUs. (RoutedDomain has the same in
/// route/instantiations.cpp — its own layer.)
#include <cstdint>

#include "core/tram.hpp"

namespace tram::core {

template class TramDomain<std::uint32_t>;
template class TramDomain<std::uint64_t>;

}  // namespace tram::core
