#include "core/scheme.hpp"

namespace tram::core {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::None: return "None";
    case Scheme::WW: return "WW";
    case Scheme::WPs: return "WPs";
    case Scheme::WsP: return "WsP";
    case Scheme::PP: return "PP";
  }
  return "?";
}

std::optional<Scheme> parse_scheme(std::string_view name) {
  if (name == "None" || name == "none") return Scheme::None;
  if (name == "WW" || name == "ww") return Scheme::WW;
  if (name == "WPs" || name == "wps") return Scheme::WPs;
  if (name == "WsP" || name == "wsp") return Scheme::WsP;
  if (name == "PP" || name == "pp") return Scheme::PP;
  return std::nullopt;
}

std::vector<Scheme> all_schemes() {
  return {Scheme::None, Scheme::WW, Scheme::WPs, Scheme::WsP, Scheme::PP};
}

std::vector<Scheme> aggregating_schemes() {
  return {Scheme::WW, Scheme::WPs, Scheme::WsP, Scheme::PP};
}

}  // namespace tram::core
