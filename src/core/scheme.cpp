#include "core/scheme.hpp"

#include <cctype>

namespace tram::core {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::None: return "None";
    case Scheme::WW: return "WW";
    case Scheme::WPs: return "WPs";
    case Scheme::WsP: return "WsP";
    case Scheme::PP: return "PP";
    case Scheme::Mesh2D: return "Mesh2D";
    case Scheme::Mesh3D: return "Mesh3D";
  }
  return "?";
}

std::optional<Scheme> parse_scheme(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "none") return Scheme::None;
  if (lower == "ww") return Scheme::WW;
  if (lower == "wps") return Scheme::WPs;
  if (lower == "wsp") return Scheme::WsP;
  if (lower == "pp") return Scheme::PP;
  if (lower == "mesh2d") return Scheme::Mesh2D;
  if (lower == "mesh3d") return Scheme::Mesh3D;
  return std::nullopt;
}

std::vector<Scheme> all_schemes() {
  return {Scheme::None, Scheme::WW, Scheme::WPs, Scheme::WsP, Scheme::PP};
}

std::vector<Scheme> aggregating_schemes() {
  return {Scheme::WW, Scheme::WPs, Scheme::WsP, Scheme::PP};
}

std::vector<Scheme> routed_schemes() {
  return {Scheme::Mesh2D, Scheme::Mesh3D};
}

}  // namespace tram::core
