#pragma once
///
/// \file config.hpp
/// \brief TramLib configuration (scheme, buffer size, flush policy).

#include <array>
#include <cstdint>

#include "core/scheme.hpp"

namespace tram::core {

struct TramConfig {
  Scheme scheme = Scheme::WPs;

  /// Routed schemes only (Mesh2D/Mesh3D): explicit virtual-mesh extents
  /// (`--route-dims=AxB[xC]`). All-zero means auto-factor the process
  /// count into mesh_ndims(scheme) near-balanced dimensions. When set, the
  /// product of the first mesh_ndims(scheme) entries must equal the
  /// process count.
  std::array<int, 3> route_dims{0, 0, 0};

  /// Buffer size g: items per destination buffer. A buffer is shipped as
  /// one message when it reaches g items (or on flush).
  std::uint32_t buffer_items = 1024;

  /// Flush automatically whenever the owning worker goes idle. This is what
  /// bounds item latency for irregular applications (SSSP, PDES) — without
  /// it, the tail of a stream can sit in a partially-filled buffer forever.
  /// Routed schemes require it (RoutedDomain rejects false): entries
  /// re-aggregated at an intermediate hop have no other drain path.
  bool flush_on_idle = true;

  /// Stamp every item with its insert time and record delivery latency at
  /// the destination (the paper's latency metric). Adds 8 bytes per item on
  /// the wire, so benchmarks measuring pure overhead leave it off.
  bool latency_tracking = false;

  /// Ship TramLib messages as expedited (Charm++ expedited entry methods:
  /// delivered ahead of ordinary traffic — section III-B, basic
  /// optimizations).
  bool expedited = true;

  /// Optional time-based flush: when nonzero, a worker's idle/progress path
  /// flushes buffers older than this many nanoseconds.
  std::uint64_t flush_timeout_ns = 0;

  /// Item prioritization (the paper's future-work feature): when nonzero,
  /// Handle::insert_priority routes items through a second, small set of
  /// per-worker buffers of this many items, shipped as expedited messages.
  /// Small buffers fill (and therefore ship) quickly, and expedited
  /// delivery overtakes bulk traffic at every hop, so urgent items — SSSP
  /// distance improvements under the threshold, PDES events about to
  /// become stragglers — see a fraction of the bulk path's latency.
  std::uint32_t priority_buffer_items = 0;
};

}  // namespace tram::core
