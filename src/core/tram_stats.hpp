#pragma once
///
/// \file tram_stats.hpp
/// \brief TramLib instrumentation, and the paper's section III-C cost
/// formulas as checkable functions.

#include <cstdint>

#include "core/scheme.hpp"
#include "util/latency_histogram.hpp"
#include "util/payload_pool.hpp"
#include "util/stats.hpp"
#include "util/topology.hpp"

namespace tram::core {

/// Snapshot of the process-wide payload pool feeding every aggregation
/// buffer and message payload. Benchmarks report recycle_rate() (and
/// occupancy: outstanding/free_slabs) to substantiate the zero-copy,
/// allocation-free claim on the steady-state insert -> flush -> deliver
/// path.
inline util::PayloadPool::Stats payload_pool_stats() {
  return util::PayloadPool::global().stats();
}

/// Zero the pool counters between benchmark trials (cached slabs remain,
/// so a post-warmup trial measures pure recycling).
inline void reset_payload_pool_stats() {
  util::PayloadPool::global().reset_stats();
}

/// Per-worker aggregation counters (owned by one worker; merged after a
/// run, so plain fields suffice except where the QD thread also reads).
struct WorkerTramStats {
  std::uint64_t items_inserted = 0;
  std::uint64_t items_delivered = 0;
  /// Buffers shipped as messages by this worker (full-buffer sends).
  std::uint64_t msgs_shipped = 0;
  /// Subset of msgs_shipped triggered by flush (partially full).
  std::uint64_t flush_msgs = 0;
  /// Local regroup messages generated at the destination (WPs/WsP/PP).
  std::uint64_t regroup_msgs = 0;
  /// CAS retries while claiming PP slots (contention indicator).
  std::uint64_t pp_cas_retries = 0;
  /// Items routed through the priority path (insert_priority).
  std::uint64_t priority_items = 0;
  /// Expedited messages shipped by the priority path.
  std::uint64_t priority_msgs = 0;
  /// Routed schemes: messages shipped along a mesh dimension (every hop's
  /// ship, from sources and intermediates alike).
  std::uint64_t routed_hop_msgs = 0;
  /// Routed schemes: messages shipped from an intermediate hop (subset of
  /// routed_hop_msgs).
  std::uint64_t routed_forward_msgs = 0;
  /// Routed schemes: entries re-aggregated into a next-dimension buffer at
  /// an intermediate. An item whose destination differs from its source in
  /// k mesh dimensions contributes k-1 here (d-1 worst case).
  std::uint64_t routed_forwarded_items = 0;
  /// Routed schemes: last-hop messages shipped pre-sorted by destination
  /// local rank (RoutedHeader::kSortedMagic — the WsP-over-mesh fast
  /// path; subset of routed_hop_msgs).
  std::uint64_t routed_sorted_msgs = 0;
  /// Routed schemes: segments delivered or forwarded at the final process
  /// as refcounted views of a slab (own-rank spans delivered in place plus
  /// sub-view regroup messages) — zero-copy scatter adoption.
  std::uint64_t routed_subview_deliveries = 0;
  /// Routed schemes: forwarded bytes memcpy'd into a next-hop slot buffer
  /// at an intermediate. After the zero-copy forward path this is nonzero
  /// only for SMP final-dimension slots (whose ship permutes its own slab,
  /// so staged views cannot ride along); with one worker per process it is
  /// exactly 0 — the regression-checkable zero-copy claim.
  std::uint64_t routed_forward_copy_bytes = 0;
  /// Routed schemes: forwarded bytes staged as refcounted sub-views of an
  /// inbound or scratch slab instead of being copied into a slot buffer.
  std::uint64_t routed_forward_subview_bytes = 0;
  /// Routed schemes: bytes counting-sorted into the re-bucket scratch slab
  /// (the residual one-copy path, taken only when an inbound extent mixes
  /// buckets; single-destination extents bypass it entirely).
  std::uint64_t routed_rebucket_copy_bytes = 0;
  /// Routed schemes: largest number of bytes this worker ever had pinned
  /// in staged forward runs (sub-views awaiting their slot's next ship).
  /// A high-water mark, so merge() takes the max, not the sum.
  std::uint64_t max_staged_fwd_bytes = 0;
  /// Items per shipped message, observed at ship time.
  util::RunningStats occupancy_at_ship;
  /// Item latency (insert -> delivery), when latency_tracking is on.
  util::LatencyHistogram latency;

  void merge(const WorkerTramStats& o) {
    items_inserted += o.items_inserted;
    items_delivered += o.items_delivered;
    msgs_shipped += o.msgs_shipped;
    flush_msgs += o.flush_msgs;
    regroup_msgs += o.regroup_msgs;
    pp_cas_retries += o.pp_cas_retries;
    priority_items += o.priority_items;
    priority_msgs += o.priority_msgs;
    routed_hop_msgs += o.routed_hop_msgs;
    routed_forward_msgs += o.routed_forward_msgs;
    routed_forwarded_items += o.routed_forwarded_items;
    routed_sorted_msgs += o.routed_sorted_msgs;
    routed_subview_deliveries += o.routed_subview_deliveries;
    routed_forward_copy_bytes += o.routed_forward_copy_bytes;
    routed_forward_subview_bytes += o.routed_forward_subview_bytes;
    routed_rebucket_copy_bytes += o.routed_rebucket_copy_bytes;
    if (o.max_staged_fwd_bytes > max_staged_fwd_bytes) {
      max_staged_fwd_bytes = o.max_staged_fwd_bytes;
    }
    occupancy_at_ship.merge(o.occupancy_at_ship);
    latency.merge(o.latency);
  }
};

/// Fault-injection and reliability counters (src/fault/), filled
/// machine-wide by rt::Machine::fault_stats() from the two transport
/// decorators. All zero when fault injection is off — the zero-fault
/// path never touches this machinery.
struct FaultStats {
  /// Packets the fault layer swallowed / injected twice / held back.
  std::uint64_t faults_injected_drop = 0;
  std::uint64_t faults_injected_dup = 0;
  std::uint64_t faults_injected_delay = 0;
  /// Messages re-shipped, for any reason (timer or SACK hole).
  std::uint64_t retransmits = 0;
  /// Data messages the receiver-side dedup window consumed.
  std::uint64_t dup_drops = 0;
  /// Standalone cumulative acks (piggybacked acks ride data for free).
  std::uint64_t acks_sent = 0;
  /// Retransmits triggered by a SACK-reported hole, without waiting for
  /// the timer (subset of retransmits).
  std::uint64_t fast_retransmits = 0;
  /// Retransmit-timer expirations; with SACK each may batch several
  /// retransmits, so retransmits / rto_fires is the recovery batch size.
  std::uint64_t rto_fires = 0;
  /// Framed bytes re-shipped — the byte overhead recovery paid.
  std::uint64_t rtx_bytes = 0;
  /// Messages that waited in a sender-side pacing queue (past the AIMD
  /// congestion window) before first transmit.
  std::uint64_t paced_msgs = 0;
  /// High-water mark of per-channel transmitted-and-unacked messages —
  /// how far AIMD actually opened the window.
  std::uint64_t max_inflight_msgs = 0;
  /// Per-link contention (net::Fabric): total time cross-node messages
  /// occupied destination ingress links, and the worst single queueing
  /// delay behind one. Zero unless the cost model sets link occupancy.
  std::uint64_t link_busy_ns = 0;
  std::uint64_t max_link_queue_ns = 0;
};

/// ---- Section III-C formulas ----
/// Notation: g items per buffer, m bytes per item, N processes, t workers
/// per process, z items sent per source PE.

/// Buffer memory per source core (bytes).
inline std::uint64_t buffer_bytes_per_core(Scheme s, std::uint64_t g,
                                           std::uint64_t m, std::uint64_t N,
                                           std::uint64_t t) {
  switch (s) {
    case Scheme::WW: return g * m * N * t;     // one buffer per dest PE
    case Scheme::WPs:
    case Scheme::WsP: return g * m * N;        // one buffer per dest process
    case Scheme::PP: return 0;                 // buffers live on the process
    case Scheme::None: return 0;
    case Scheme::Mesh2D:
    case Scheme::Mesh3D: return 0;  // use routed_buffer_bytes_per_core(dims)
  }
  return 0;
}

/// Buffer memory per source process (bytes).
inline std::uint64_t buffer_bytes_per_process(Scheme s, std::uint64_t g,
                                              std::uint64_t m,
                                              std::uint64_t N,
                                              std::uint64_t t) {
  switch (s) {
    case Scheme::WW: return g * m * N * t * t;
    case Scheme::WPs:
    case Scheme::WsP: return g * m * N * t;
    case Scheme::PP: return g * m * N;  // shared: one buffer per dest process
    case Scheme::None: return 0;
    case Scheme::Mesh2D:
    case Scheme::Mesh3D: return 0;  // use routed_buffer_bytes_per_core(dims)
  }
  return 0;
}

/// Bounds on messages sent per source unit for z items from each source PE
/// (per PE for WW/WPs/WsP; per process for PP with z*t items contributed).
struct MessageBounds {
  std::uint64_t lower = 0;
  std::uint64_t upper = 0;
};

inline MessageBounds messages_per_source(Scheme s, std::uint64_t z,
                                         std::uint64_t g, std::uint64_t N,
                                         std::uint64_t t) {
  MessageBounds b;
  switch (s) {
    case Scheme::WW:
      b.lower = z / g;
      b.upper = z / g + N * t;
      break;
    case Scheme::WPs:
    case Scheme::WsP:
      b.lower = z / g;
      b.upper = z / g + N;
      break;
    case Scheme::PP:
      // Source-process aggregation: z here is items per source process.
      b.lower = z / g;
      b.upper = z / g + N;
      break;
    case Scheme::Mesh2D:
    case Scheme::Mesh3D: {
      // Dimension-ordered routing: each item is shipped up to d times, but
      // a worker only ever holds sum(dims_k - 1) live buffers, so the
      // flush term shrinks from N to ~d * N^(1/d).
      const int d = mesh_ndims(s);
      std::uint64_t side = 1;
      auto pow_d = [d](std::uint64_t v) {
        std::uint64_t r = 1;
        for (int i = 0; i < d; ++i) r *= v;
        return r;
      };
      while (pow_d(side + 1) <= N) ++side;
      b.lower = z / g;
      b.upper = static_cast<std::uint64_t>(d) * (z / g + side);
      break;
    }
    case Scheme::None:
      b.lower = b.upper = z;
      break;
  }
  return b;
}

/// ---- Routed (mesh) buffer formula ----
/// A routed source worker keeps one buffer per off-own coordinate per
/// dimension: sum_k (dims_k - 1) buffers, plus one for same-process
/// destinations — O(d * N^(1/d)) against the direct schemes' O(N).
template <typename Dims>
std::uint64_t routed_buffers_per_core(const Dims& dims) {
  std::uint64_t total = 1;  // the same-process (local regroup) buffer
  for (const int d : dims) {
    if (d > 1) total += static_cast<std::uint64_t>(d) - 1;
  }
  return total;
}

template <typename Dims>
std::uint64_t routed_buffer_bytes_per_core(std::uint64_t g, std::uint64_t m,
                                           const Dims& dims) {
  return g * m * routed_buffers_per_core(dims);
}

}  // namespace tram::core
