#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/timebase.hpp"

namespace tram::trace {

namespace detail {
std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() noexcept { return util::now_ns(); }
}  // namespace detail

namespace {

/// One thread's event ring. Single producer (the attached thread);
/// readers snapshot only after the producer has been joined, so slot
/// writes need no synchronization beyond the release store on head_.
struct Ring {
  explicit Ring(std::string n, std::size_t cap)
      : name(std::move(n)), buf(cap), capacity(cap) {}

  void push(const Event& e) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    buf[static_cast<std::size_t>(h % capacity)] = e;
    head.store(h + 1, std::memory_order_release);
  }

  std::string name;
  std::vector<Event> buf;
  std::size_t capacity;
  /// Monotone event count; the ring holds the last min(head, capacity)
  /// events and dropped (overwrote) head - capacity when head > capacity.
  std::atomic<std::uint64_t> head{0};
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
  std::vector<std::string> strings;
  std::unordered_map<std::string, std::uint32_t> string_idx;
  std::size_t ring_capacity = 8192;
  std::uint64_t anon_counter = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // immortal: threads may outlive main
  return *r;
}

thread_local Ring* t_ring = nullptr;

Ring* attach_locked(Registry& reg, const std::string& name) {
  for (auto& r : reg.rings) {
    if (r->name == name) return r.get();
  }
  reg.rings.push_back(std::make_unique<Ring>(name, reg.ring_capacity));
  return reg.rings.back().get();
}

const char* cat_name(Cat c) noexcept {
  switch (c) {
    case Cat::kRuntime: return "runtime";
    case Cat::kRoute: return "route";
    case Cat::kFault: return "fault";
    case Cat::kShuffle: return "shuffle";
    case Cat::kCounter: return "counter";
    case Cat::kPhase: return "phase";
  }
  return "?";
}

}  // namespace

namespace detail {

void record(const Event& e) noexcept {
  Ring* r = t_ring;
  if (r == nullptr) {
    // First event from an unnamed thread: attach an anonymous ring. The
    // one-time lock is off every later record.
    auto& reg = registry();
    std::lock_guard<std::mutex> g(reg.mu);
    r = attach_locked(reg, "thread-" + std::to_string(reg.anon_counter++));
    t_ring = r;
  }
  r->push(e);
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t events) noexcept {
  auto& reg = registry();
  std::lock_guard<std::mutex> g(reg.mu);
  reg.ring_capacity = events == 0 ? 1 : events;
}

void set_thread_name(const std::string& name) {
#if TRAM_TRACE
  if (!enabled()) return;
  auto& reg = registry();
  std::lock_guard<std::mutex> g(reg.mu);
  t_ring = attach_locked(reg, name);
#else
  (void)name;
#endif
}

std::uint32_t intern(const std::string& s) {
  auto& reg = registry();
  std::lock_guard<std::mutex> g(reg.mu);
  if (auto it = reg.string_idx.find(s); it != reg.string_idx.end()) {
    return it->second;
  }
  const auto idx = static_cast<std::uint32_t>(reg.strings.size());
  reg.strings.push_back(s);
  reg.string_idx.emplace(s, idx);
  return idx;
}

const std::string& interned(std::uint32_t idx) {
  auto& reg = registry();
  std::lock_guard<std::mutex> g(reg.mu);
  static const std::string unknown = "?";
  return idx < reg.strings.size() ? reg.strings[idx] : unknown;
}

void phase(const std::string& name) {
#if TRAM_TRACE
  if (!enabled()) return;
  Event e;
  e.ts_ns = detail::now_ns();
  e.a1 = intern(name);
  e.id = kPhaseMark;
  e.cat = Cat::kPhase;
  e.kind = Kind::kPhase;
  detail::record(e);
#else
  (void)name;
#endif
}

std::uint64_t dropped_events() {
  auto& reg = registry();
  std::lock_guard<std::mutex> g(reg.mu);
  std::uint64_t total = 0;
  for (const auto& r : reg.rings) {
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    if (h > r->capacity) total += h - r->capacity;
  }
  return total;
}

void clear() {
  auto& reg = registry();
  std::lock_guard<std::mutex> g(reg.mu);
  // Contract: no other thread is recording. The calling thread's cached
  // ring pointer is the only one that can dangle — reset it.
  t_ring = nullptr;
  reg.rings.clear();
  reg.strings.clear();
  reg.string_idx.clear();
  reg.anon_counter = 0;
}

const char* event_name(std::uint16_t id) noexcept {
  switch (id) {
    case kWorkerBusy: return "worker busy";
    case kCommPump: return "comm pump";
    case kQdRound: return "qd round";
    case kShip: return "ship";
    case kRebucket: return "rebucket";
    case kScatterSorted: return "scatter sorted";
    case kBufferHighWater: return "buffer high-water";
    case kFlushIdle: return "flush on idle";
    case kRtoFire: return "rto fire";
    case kFastRetransmit: return "fast retransmit";
    case kSackShell: return "sack shells";
    case kCwnd: return "cwnd";
    case kSliceFill: return "slice fill";
    case kSpill: return "spill";
    case kMergePass: return "merge pass";
    case kMergeWorker: return "merge worker";
    case kCounterSample: return "counter";
    case kPhaseMark: return "phase";
  }
  return "event";
}

std::vector<RingSnapshot> snapshot_rings() {
  auto& reg = registry();
  std::lock_guard<std::mutex> g(reg.mu);
  std::vector<RingSnapshot> out;
  out.reserve(reg.rings.size());
  for (const auto& r : reg.rings) {
    RingSnapshot s;
    s.name = r->name;
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    const std::uint64_t n = h < r->capacity ? h : r->capacity;
    s.dropped = h - n;
    s.events.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i) {
      s.events.push_back(r->buf[static_cast<std::size_t>(i % r->capacity)]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<MergedEvent> merged_events() {
  const auto rings = snapshot_rings();
  std::vector<MergedEvent> all;
  std::size_t total = 0;
  for (const auto& r : rings) total += r.events.size();
  all.reserve(total);
  for (std::uint32_t ri = 0; ri < rings.size(); ++ri) {
    for (const Event& e : rings[ri].events) {
      all.push_back(MergedEvent{ri, e});
    }
  }
  // stable_sort keeps each ring's own (record-order) sequence for equal
  // timestamps; the ring index makes cross-ring ties deterministic too.
  std::stable_sort(all.begin(), all.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     if (a.e.ts_ns != b.e.ts_ns) return a.e.ts_ns < b.e.ts_ns;
                     return a.ring < b.ring;
                   });
  return all;
}

bool write_chrome_json(const std::string& path) {
  const auto rings = snapshot_rings();
  const auto all = merged_events();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::uint64_t t0 = UINT64_MAX;
  for (const auto& m : all) t0 = std::min(t0, m.e.ts_ns);
  if (t0 == UINT64_MAX) t0 = 0;
  const auto us = [t0](std::uint64_t ns) {
    return static_cast<double>(ns - t0) * 1e-3;
  };

  std::fprintf(f, "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
  std::fprintf(f,
               "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
               "\"process_name\", \"args\": {\"name\": \"tram\"}}");
  for (std::uint32_t ri = 0; ri < rings.size(); ++ri) {
    std::fprintf(f,
                 ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": %u, \"name\": "
                 "\"thread_name\", \"args\": {\"name\": \"%s\"}}",
                 ri + 1, rings[ri].name.c_str());
  }
  for (const auto& m : all) {
    const Event& e = m.e;
    const unsigned tid = m.ring + 1;
    switch (e.kind) {
      case Kind::kComplete:
        std::fprintf(
            f,
            ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
            "\"dur\": %.3f, \"name\": \"%s\", \"cat\": \"%s\", "
            "\"args\": {\"a0\": %" PRIu64 ", \"a1\": %u}}",
            tid, us(e.ts_ns), static_cast<double>(e.dur_ns) * 1e-3,
            event_name(e.id), cat_name(e.cat), e.a0, e.a1);
        break;
      case Kind::kInstant:
        std::fprintf(
            f,
            ",\n{\"ph\": \"i\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
            "\"s\": \"t\", \"name\": \"%s\", \"cat\": \"%s\", "
            "\"args\": {\"a0\": %" PRIu64 ", \"a1\": %u}}",
            tid, us(e.ts_ns), event_name(e.id), cat_name(e.cat), e.a0,
            e.a1);
        break;
      case Kind::kCounter: {
        std::string name;
        if (e.id == kCwnd) {
          name = "cwnd " + std::to_string(e.a1 >> 16) + "->" +
                 std::to_string(e.a1 & 0xffffu);
        } else {
          name = interned(e.a1);
        }
        std::fprintf(f,
                     ",\n{\"ph\": \"C\", \"pid\": 1, \"tid\": %u, "
                     "\"ts\": %.3f, \"name\": \"%s\", "
                     "\"args\": {\"value\": %" PRIu64 "}}",
                     tid, us(e.ts_ns), name.c_str(), e.a0);
        break;
      }
      case Kind::kPhase:
        std::fprintf(f,
                     ",\n{\"ph\": \"i\", \"pid\": 1, \"tid\": %u, "
                     "\"ts\": %.3f, \"s\": \"g\", \"name\": "
                     "\"phase: %s\", \"cat\": \"phase\"}",
                     tid, us(e.ts_ns), interned(e.a1).c_str());
        break;
    }
  }
  std::uint64_t dropped = 0;
  for (const auto& r : rings) dropped += r.dropped;
  std::fprintf(f,
               "\n],\n\"otherData\": {\"dropped_events\": %" PRIu64
               ", \"rings\": %zu}\n}\n",
               dropped, rings.size());
  const bool ok = std::fclose(f) == 0;
  if (ok) {
    std::printf("trace: wrote %zu events (%zu tracks, %" PRIu64
                " dropped) to %s\n",
                all.size(), rings.size(), dropped, path.c_str());
  }
  return ok;
}

void print_phase_summary(std::FILE* out) {
  const auto rings = snapshot_rings();
  const auto all = merged_events();
  if (all.empty()) return;

  // Phase boundaries from the merged stream; a synthetic "(run)" phase
  // covers everything before the first explicit marker.
  struct Phase {
    std::string name;
    std::uint64_t t0, t1;
  };
  std::uint64_t max_ts = 0;
  for (const auto& m : all) {
    max_ts = std::max(max_ts, m.e.ts_ns + m.e.dur_ns);
  }
  std::vector<Phase> phases;
  for (const auto& m : all) {
    if (m.e.kind != Kind::kPhase) continue;
    if (!phases.empty()) phases.back().t1 = m.e.ts_ns;
    phases.push_back(Phase{interned(m.e.a1), m.e.ts_ns, max_ts});
  }
  if (phases.empty()) {
    phases.push_back(Phase{"(run)", all.front().e.ts_ns, max_ts});
  }

  std::fprintf(out, "\n-- per-phase thread summary (busy/ovh/idle %%) --\n");
  std::fprintf(out, "%-28s %-12s %7s %7s %7s\n", "phase", "thread", "busy%",
               "ovh%", "idle%");
  for (const Phase& p : phases) {
    const double wall = static_cast<double>(p.t1 - p.t0);
    if (wall <= 0.0) continue;
    for (std::uint32_t ri = 0; ri < rings.size(); ++ri) {
      const std::string& name = rings[ri].name;
      const bool is_worker = name.rfind("worker", 0) == 0;
      const bool is_comm = name.rfind("comm", 0) == 0;
      if (!is_worker && !is_comm) continue;
      std::uint64_t busy = 0, ovh = 0;
      for (const Event& e : rings[ri].events) {
        if (e.kind != Kind::kComplete) continue;
        const std::uint64_t b = std::max(e.ts_ns, p.t0);
        const std::uint64_t t = std::min(e.ts_ns + e.dur_ns, p.t1);
        if (t <= b) continue;
        const std::uint64_t overlap = t - b;
        if (e.id == kWorkerBusy || e.id == kCommPump) {
          busy += overlap;
        } else if (e.cat == Cat::kRoute || e.cat == Cat::kFault ||
                   e.cat == Cat::kShuffle) {
          ovh += overlap;
        }
      }
      const double busy_pct = 100.0 * static_cast<double>(busy) / wall;
      const double ovh_pct = 100.0 * static_cast<double>(ovh) / wall;
      std::fprintf(out, "%-28.28s %-12.12s %7.2f %7.2f %7.2f\n",
                   p.name.c_str(), name.c_str(), busy_pct, ovh_pct,
                   std::max(0.0, 100.0 - busy_pct));
    }
  }
}

/// ---- CounterSampler ----

struct CounterSampler::Impl {
  std::thread th;
};

CounterSampler::CounterSampler(std::uint64_t interval_ns)
    : interval_ns_(interval_ns == 0 ? 100'000 : interval_ns),
      impl_(new Impl()) {}

CounterSampler::~CounterSampler() {
  stop();
  delete impl_;
}

void CounterSampler::add(const std::string& name,
                         std::function<std::uint64_t()> fn) {
  sources_.push_back(Source{intern(name), std::move(fn)});
}

void CounterSampler::start() {
#if TRAM_TRACE
  if (!stop_.load(std::memory_order_acquire)) return;  // already running
  stop_.store(false, std::memory_order_release);
  impl_->th = std::thread([this] {
    set_thread_name("counters");
    while (!stop_.load(std::memory_order_acquire)) {
      for (const Source& s : sources_) counter(s.name_idx, s.fn());
      std::this_thread::sleep_for(std::chrono::nanoseconds(interval_ns_));
    }
    // Closing sample so every series extends to the end of the run.
    for (const Source& s : sources_) counter(s.name_idx, s.fn());
  });
#endif
}

void CounterSampler::stop() {
  stop_.store(true, std::memory_order_release);
  if (impl_->th.joinable()) impl_->th.join();
}

}  // namespace tram::trace
