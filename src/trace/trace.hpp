#pragma once
///
/// \file trace.hpp
/// \brief Always-on tracing: per-thread event rings, counter sampling, and
/// Chrome trace-event JSON output.
///
/// The model is Charm++ Projections: each thread appends fixed-size binary
/// events to its own bounded ring (no locks, no allocation on the hot
/// path), a sampler thread snapshots machine-wide occupancy counters at a
/// fixed cadence, and at teardown TraceWriter merges every ring by
/// timestamp into one Chrome trace-event JSON file that chrome://tracing
/// and Perfetto load directly (one span track per worker/comm thread,
/// counter tracks, global phase markers).
///
/// Two gates keep the cost honest:
///  - compile time: the CMake option TRAM_TRACE (default ON) defines
///    TRAM_TRACE=1; when OFF every recording call below inlines to
///    nothing and the binary carries no tracing code on any hot path.
///  - run time: recording is off until set_enabled(true) (the benches
///    flip it when --trace=FILE is given). Disabled cost is one relaxed
///    atomic load and a predicted branch per call site.
///
/// Rings overwrite their oldest events when full and count what they
/// dropped — tracing never blocks and never allocates while recording.
/// Rings are keyed by thread *name* and live until clear(): a thread that
/// re-attaches under the same name (workers across Machine::run calls,
/// benchmark trials) appends to the same ring. Snapshot/merge/write are
/// only sound once writer threads have been joined (Machine::run joins
/// everything before returning).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace tram::trace {

/// Which subsystem recorded the event (one Perfetto category each).
enum class Cat : std::uint8_t {
  kRuntime = 0,
  kRoute = 1,
  kFault = 2,
  kShuffle = 3,
  kCounter = 4,
  kPhase = 5,
};

/// How the event renders: a point, a duration, a counter sample, or a
/// global phase marker.
enum class Kind : std::uint8_t {
  kInstant = 0,
  kComplete = 1,
  kCounter = 2,
  kPhase = 3,
};

/// Event ids (the `name` field of the emitted JSON — see event_name()).
enum EventId : std::uint16_t {
  // runtime
  kWorkerBusy = 1,   // Complete: a0 = messages dispatched this batch
  kCommPump = 2,     // Complete: a0 = egress + ingress items moved
  kQdRound = 3,      // Instant: a0 = sent - handled backlog, a1 = ok
  // route
  kShip = 16,           // Instant: a0 = entries, a1 = slot | flag bits
  kRebucket = 17,       // Complete: a0 = inbound entries, a1 = hop
  kScatterSorted = 18,  // Instant: a0 = entries
  kBufferHighWater = 19,  // Instant: a0 = live reserved buffers
  kFlushIdle = 20,        // Instant: a0 = slots shipped by this flush
  // fault
  kRtoFire = 32,         // Instant: a0 = batch retransmits, a1 = src<<16|dst
  kFastRetransmit = 33,  // Instant: a0 = hole retransmits, a1 = src<<16|dst
  kSackShell = 34,       // Instant: a0 = newly sacked, a1 = src<<16|dst
  kCwnd = 35,            // Counter: a0 = floor(cwnd), a1 = src<<16|dst
  // shuffle
  kSliceFill = 48,   // Instant: a0 = records in the filled slice
  kSpill = 49,       // Complete: a0 = records spilled, a1 = worker
  kMergePass = 50,   // Instant: a0 = fan-in of this cascade pass, a1 = pass
  kMergeWorker = 51, // Complete: a0 = spill runs merged, a1 = worker
  // generic
  kCounterSample = 64,  // Counter: a0 = value, a1 = interned name
  kPhaseMark = 65,      // Phase: a1 = interned name
};

/// One ring entry. 32 bytes, fixed: timestamp, duration (Complete only),
/// two payload args, id, category, kind.
struct Event {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t a0 = 0;
  std::uint32_t a1 = 0;
  std::uint16_t id = 0;
  Cat cat = Cat::kRuntime;
  Kind kind = Kind::kInstant;
};
static_assert(sizeof(Event) == 32, "trace events are fixed 32-byte records");

namespace detail {
extern std::atomic<bool> g_enabled;
std::uint64_t now_ns() noexcept;
/// Append to the calling thread's ring (attaching an anonymous ring on
/// first use). Wait-free after the first call; never allocates thereafter.
void record(const Event& e) noexcept;
}  // namespace detail

#if TRAM_TRACE

inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Timestamp for an eventual complete(): 0 (record nothing) when tracing
/// is off, so span sites pay only the enabled() branch.
inline std::uint64_t maybe_now() noexcept {
  return enabled() ? detail::now_ns() : 0;
}

inline void instant(Cat cat, std::uint16_t id, std::uint64_t a0 = 0,
                    std::uint32_t a1 = 0) noexcept {
  if (!enabled()) return;
  Event e;
  e.ts_ns = detail::now_ns();
  e.a0 = a0;
  e.a1 = a1;
  e.id = id;
  e.cat = cat;
  e.kind = Kind::kInstant;
  detail::record(e);
}

/// Close a span opened with maybe_now(). No-op when t0 == 0 (tracing was
/// off at open) or tracing is off now.
inline void complete(Cat cat, std::uint16_t id, std::uint64_t t0,
                     std::uint64_t a0 = 0, std::uint32_t a1 = 0) noexcept {
  if (t0 == 0 || !enabled()) return;
  const std::uint64_t now = detail::now_ns();
  Event e;
  e.ts_ns = t0;
  e.dur_ns = now > t0 ? now - t0 : 0;
  e.a0 = a0;
  e.a1 = a1;
  e.id = id;
  e.cat = cat;
  e.kind = Kind::kComplete;
  detail::record(e);
}

/// Counter sample on a named series (name pre-interned — see intern()).
inline void counter(std::uint32_t name_idx, std::uint64_t value) noexcept {
  if (!enabled()) return;
  Event e;
  e.ts_ns = detail::now_ns();
  e.a0 = value;
  e.a1 = name_idx;
  e.id = kCounterSample;
  e.cat = Cat::kCounter;
  e.kind = Kind::kCounter;
  detail::record(e);
}

/// Per-channel cwnd counter (fault layer): rendered as its own counter
/// track per (src, dst) pair (a1 = src << 16 | dst).
inline void cwnd_sample(std::uint64_t cwnd, std::uint32_t chan) noexcept {
  if (!enabled()) return;
  Event e;
  e.ts_ns = detail::now_ns();
  e.a0 = cwnd;
  e.a1 = chan;
  e.id = kCwnd;
  e.cat = Cat::kFault;
  e.kind = Kind::kCounter;
  detail::record(e);
}

#else  // !TRAM_TRACE — every recording call inlines to nothing.

constexpr bool enabled() noexcept { return false; }
constexpr std::uint64_t maybe_now() noexcept { return 0; }
inline void instant(Cat, std::uint16_t, std::uint64_t = 0,
                    std::uint32_t = 0) noexcept {}
inline void complete(Cat, std::uint16_t, std::uint64_t, std::uint64_t = 0,
                     std::uint32_t = 0) noexcept {}
inline void counter(std::uint32_t, std::uint64_t) noexcept {}
inline void cwnd_sample(std::uint64_t, std::uint32_t) noexcept {}

#endif  // TRAM_TRACE

/// ---- control plane (compiled in both modes; cheap, never hot) ----

/// Master runtime switch. Enable before Machine::run; disable before
/// write_chrome_json. In TRAM_TRACE=OFF builds this records the intent
/// but nothing is ever captured.
void set_enabled(bool on) noexcept;

/// Ring capacity in events for rings created after this call (default
/// 8192 ≈ 256 KiB/thread). Tests shrink it to exercise wrap.
void set_ring_capacity(std::size_t events) noexcept;

/// Attach the calling thread to the ring named `name`, creating it on
/// first use or re-attaching to an existing same-named ring (runs and
/// trials append to one track). No-op while tracing is disabled.
void set_thread_name(const std::string& name);

/// Intern a counter/phase name; the returned index is stable until
/// clear(). Takes a lock — intern once, sample many.
std::uint32_t intern(const std::string& s);
const std::string& interned(std::uint32_t idx);

/// Global phase marker: starts a new interval for the per-phase summary
/// and drops a global instant on the calling thread's track.
void phase(const std::string& name);

/// Sum of overwritten (dropped) events across all rings.
std::uint64_t dropped_events();

/// Drop every ring, phase, and interned string (tests; between benches).
/// Only sound when no other thread is recording.
void clear();

/// Human-readable name for an EventId ("worker busy", "rto fire", ...).
const char* event_name(std::uint16_t id) noexcept;

/// ---- snapshot / merge / write (call only after writers joined) ----

struct RingSnapshot {
  std::string name;
  std::uint64_t dropped = 0;
  std::vector<Event> events;  // oldest first
};
std::vector<RingSnapshot> snapshot_rings();

struct MergedEvent {
  std::uint32_t ring = 0;  // index into snapshot_rings() order
  Event e;
};
/// All events from all rings, sorted by (ts, ring, ring position) — the
/// stable tie-break keeps each ring's relative order.
std::vector<MergedEvent> merged_events();

/// Merge every ring and write Chrome trace-event JSON ("traceEvents"
/// array: thread_name metadata, X/i/C events, global phase instants).
/// Valid-but-near-empty in TRAM_TRACE=OFF builds. Returns false on I/O
/// error.
bool write_chrome_json(const std::string& path);

/// Per-phase busy/overhead/idle percentages per worker track, computed
/// from the merged stream (spans clipped to phase intervals).
void print_phase_summary(std::FILE* out = stdout);

/// ---- counter sampler ----

/// Periodically samples registered sources into counter events from its
/// own thread (ring "counters"). Sources must be safe to read from a
/// foreign thread (atomics or lock-protected) — the TSan job runs traced
/// machines. Machine::run owns one while tracing is enabled.
class CounterSampler {
 public:
  explicit CounterSampler(std::uint64_t interval_ns);
  ~CounterSampler();
  CounterSampler(const CounterSampler&) = delete;
  CounterSampler& operator=(const CounterSampler&) = delete;

  /// Register before start().
  void add(const std::string& name, std::function<std::uint64_t()> fn);
  void start();
  void stop();  // idempotent; joins the sampler thread

 private:
  struct Source {
    std::uint32_t name_idx;
    std::function<std::uint64_t()> fn;
  };
  std::uint64_t interval_ns_;
  std::vector<Source> sources_;
  std::atomic<bool> stop_{true};
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace tram::trace
