#pragma once
///
/// \file fault_schedule.hpp
/// \brief Deterministic, replayable fault schedule.
///
/// The fate of a packet is a pure function of (seed, src, dst, kind, seq,
/// attempt): no stream state is consumed, so the schedule does not depend
/// on thread interleaving or on how many acks/retransmits happened to be
/// sent in between — the same seed replays the same fates for the same
/// packet identities, every run. Keying on the ReliableHeader identity
/// (rather than a per-source draw counter) is also what keeps retransmits
/// honest: attempt k+1 of a sequence number draws a fresh fate, so a
/// dropped packet is not doomed to be re-dropped forever.
///
/// Scope of the guarantee: *first-attempt data fates* are bit-for-bit
/// reproducible whenever the application's send sequence is (seq numbers
/// are assigned in per-channel send order). Retransmit attempts and
/// standalone acks exist only because of wall-clock timeouts, so how many
/// of those fates get drawn — and, for acks, the ordinal they are keyed
/// on — varies run to run; aggregate fault counters on a lossy run are
/// reproducible in distribution, not exactly.

#include <cstdint>

#include "fault/fault_config.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace tram::fault {

/// What the fabric does to one injected packet. drop and dup compose: a
/// packet can be dropped *and* duplicated, in which case exactly one copy
/// survives — the dedup window's favourite corner case.
struct Fate {
  bool drop = false;
  bool dup = false;
  std::uint64_t extra_delay_ns = 0;

  bool faulty() const noexcept { return drop || dup || extra_delay_ns > 0; }
};

class FaultSchedule {
 public:
  explicit FaultSchedule(const FaultConfig& cfg) noexcept : cfg_(cfg) {}

  const FaultConfig& config() const noexcept { return cfg_; }

  /// The fate of attempt `attempt` of sequence `seq` on channel
  /// (src -> dst). Pure: same arguments + same seed give the same fate.
  Fate fate(ProcId src, ProcId dst, std::uint8_t kind, std::uint32_t seq,
            std::uint32_t attempt) const noexcept {
    // Fold the packet identity into a splitmix64 chain; each fold passes
    // through the mixer so nearby identities give unrelated draws.
    std::uint64_t sm = cfg_.seed;
    sm ^= util::splitmix64(sm) ^
          ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(dst));
    sm ^= util::splitmix64(sm) ^
          ((static_cast<std::uint64_t>(kind) << 56) ^
           (static_cast<std::uint64_t>(attempt) << 32) ^ seq);
    Fate f;
    f.drop = draw(sm) < cfg_.drop_rate;
    f.dup = draw(sm) < cfg_.dup_rate;
    if (cfg_.delay_ns > 0 && draw(sm) < cfg_.delay_rate) {
      f.extra_delay_ns = cfg_.delay_ns;
    }
    return f;
  }

 private:
  static double draw(std::uint64_t& sm) noexcept {
    return static_cast<double>(util::splitmix64(sm) >> 11) * 0x1.0p-53;
  }

  FaultConfig cfg_;
};

}  // namespace tram::fault
