#pragma once
///
/// \file fault_config.hpp
/// \brief Fault-injection knobs for the transport chain (src/fault/).
///
/// An all-zero config (the default) means the Machine builds the exact
/// transport it built before this subsystem existed — no decorators, no
/// headers, no per-message cost. Any nonzero fault knob makes the Machine
/// wrap the base transport in FaultyTransport (injects the faults) and
/// ReliableTransport (restores exactly-once on top of them); the two are
/// always installed together, because a lossy fabric without the recovery
/// protocol would simply hang quiescence on the first dropped packet.

#include <cstdint>
#include <stdexcept>

namespace tram::fault {

struct FaultConfig {
  /// Probability that a packet handed to the fabric vanishes.
  double drop_rate = 0.0;
  /// Probability that a packet is injected twice.
  double dup_rate = 0.0;
  /// Extra holding time applied to delayed packets, nanoseconds. Faults
  /// are injected only when this (or a rate above) is nonzero.
  std::uint64_t delay_ns = 0;
  /// Fraction of packets that pay delay_ns (1.0 = every packet). Values
  /// below 1 reorder packets against their undelayed peers, which is what
  /// exercises the receiver's out-of-order dedup window.
  double delay_rate = 1.0;
  /// Seed of the fault schedule. The fate of every (channel, seq, attempt)
  /// is a pure function of this seed — schedules replay bit-for-bit.
  std::uint64_t seed = 0x7a31;

  /// Retransmit timeout. 0 derives it from the machine's cost model:
  /// a few modeled round trips plus the injected delay (see
  /// ReliableTransport), floored so zero-cost test models still converge.
  /// A nonzero value also pins the timer: adaptive_rto is ignored, so
  /// experiments that fix rto_ns replay with an exactly known timeout.
  std::uint64_t rto_ns = 0;
  /// Holdoff before a receiver sends a standalone cumulative ack for
  /// inbound data no reverse traffic has piggybacked yet. 0 = rto / 8.
  std::uint64_t ack_delay_ns = 0;

  /// Piggyback a selective-ack bitmap (cumulative ack + out-of-order
  /// bitmap over the dedup window) on every message, and let the sender
  /// fast-retransmit the holes it names. Off = the PR 5 behavior: the
  /// cumulative ack alone, one head-of-line retransmit per RTO per
  /// channel. Kept as a knob so the fault sweep can A/B the two schemes.
  bool sack = true;
  /// Drive the retransmit timer from measured per-channel RTT (Jacobson
  /// srtt/rttvar, exponential backoff on repeat loss) instead of the
  /// static timeout. Ignored when rto_ns is set explicitly (above).
  bool adaptive_rto = true;
  /// AIMD send window, in messages per channel: start at window_init,
  /// grow additively on ack progress up to window_max, halve on loss
  /// (never below window_min). Messages past the window are paced —
  /// queued sender-side, still counted in in_flight() so quiescence
  /// detection cannot fire while they wait.
  std::uint32_t window_init = 8;
  std::uint32_t window_min = 2;
  std::uint32_t window_max = 64;
  /// Cap on unacked payload bytes per channel, on top of the message
  /// window. 0 = no byte cap.
  std::uint64_t window_bytes = 0;
  /// Clamp for the adaptive RTO. floor 0 derives the same minimum the
  /// static path uses; ceil bounds exponential backoff so one unlucky
  /// channel cannot stall recovery for seconds.
  std::uint64_t rto_floor_ns = 0;
  std::uint64_t rto_ceil_ns = 2'000'000'000;

  /// Whether any fault is configured (and thus whether the Machine
  /// installs the faulty + reliable transport decorators).
  bool enabled() const noexcept {
    return drop_rate > 0.0 || dup_rate > 0.0 || delay_ns > 0;
  }

  /// Rates past ~0.9 make retransmission convergence geometric-in-name-only
  /// (and 1.0 would never deliver anything); reject loudly instead of
  /// hanging quiescence detection.
  void validate() const {
    if (drop_rate < 0.0 || drop_rate > 0.9) {
      throw std::invalid_argument("FaultConfig: drop_rate must be in [0, 0.9]");
    }
    if (dup_rate < 0.0 || dup_rate > 0.9) {
      throw std::invalid_argument("FaultConfig: dup_rate must be in [0, 0.9]");
    }
    if (delay_rate < 0.0 || delay_rate > 1.0) {
      throw std::invalid_argument("FaultConfig: delay_rate must be in [0, 1]");
    }
    // A held packet blocks quiescence for its full delay; anything past a
    // minute is a wrapped negative or a typo, not an experiment.
    if (delay_ns > 60'000'000'000ULL) {
      throw std::invalid_argument(
          "FaultConfig: delay_ns must be at most 60s");
    }
    // window_min 0 would let AIMD collapse a channel to a zero window and
    // wedge quiescence with paced-forever messages.
    if (window_min < 1) {
      throw std::invalid_argument("FaultConfig: window_min must be >= 1");
    }
    if (window_min > window_init || window_init > window_max) {
      throw std::invalid_argument(
          "FaultConfig: need window_min <= window_init <= window_max");
    }
    // The SACK bitmap must be able to name every in-flight sequence past
    // the cumulative ack; a window wider than the bitmap would leave
    // unreportable holes that silently regress to head-of-line recovery.
    if (window_max > 64) {
      throw std::invalid_argument(
          "FaultConfig: window_max must be <= 64 (SACK bitmap width)");
    }
    if (rto_floor_ns > rto_ceil_ns) {
      throw std::invalid_argument(
          "FaultConfig: rto_floor_ns must be <= rto_ceil_ns");
    }
  }
};

}  // namespace tram::fault
