#pragma once
///
/// \file reliable_transport.hpp
/// \brief Exactly-once delivery over a faulty transport.
///
/// The protocol, per directed (src, dst) process channel:
///
///  - send: stamp a ReliableHeader — a fresh per-channel sequence number
///    plus the cumulative ack of the reverse channel (piggybacking) — in
///    front of the payload, keep the framed slab (refcounted, no copy) in
///    the channel's retransmit queue, and hand the message to the faulty
///    layer below.
///  - receive (DeliveryInterceptor::on_inbound, below every transport's
///    delivery tail): apply the piggybacked ack to the reverse channel's
///    retransmit queue; dedup the data sequence number against the
///    cumulative counter + out-of-order window (a duplicate is counted
///    and consumed); strip the header (zero-copy subref) and deliver.
///  - retransmit: one head-of-line probe per channel per timeout — the
///    cumulative ack advances past every delivered sequence once the
///    lowest missing one lands, so probing the head alone recovers any
///    loss pattern without retransmit storms.
///  - ack: piggybacked on all reverse traffic; when none shows up within
///    ack_delay the receiver's pump thread sends a standalone kAck that
///    the peer's interceptor consumes. Duplicates re-arm the ack so a
///    lost ack is always replaced.
///
/// Quiescence integration: in_flight() adds the count of sent-but-unacked
/// data messages to the inner transport's, so the machine cannot declare
/// quiescence while a dropped packet still needs re-shipping — and must
/// wait for the final acks, which the idle pump threads' poll() calls
/// provide. All channel state is spinlocked: under the inline transport
/// deliveries (and thus ack processing) run on the *sender's* thread, so
/// a channel's two ends can be touched concurrently.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>

#include "fault/fault_config.hpp"
#include "fault/reliable_wire.hpp"
#include "runtime/transport.hpp"
#include "util/spinlock.hpp"

namespace tram::fault {

class ReliableTransport final : public rt::Transport,
                                public rt::DeliveryInterceptor {
 public:
  ReliableTransport(rt::Machine& machine,
                    std::unique_ptr<rt::Transport> inner, FaultConfig cfg);

  // -- rt::Transport --
  void send(ProcId src_proc, rt::Message&& m) override;
  std::size_t poll(rt::Process& proc) override;
  std::uint64_t next_due_ns(ProcId p) const override;
  std::uint64_t in_flight() const override;
  std::uint64_t total_messages() const override;
  std::uint64_t total_bytes() const override;
  std::uint64_t total_forwarded() const override;
  void reset() override;

  // -- rt::DeliveryInterceptor --
  bool on_inbound(rt::Process& proc, rt::Message& m) override;

  /// Effective retransmit timeout (cfg.rto_ns, or derived from the cost
  /// model when 0).
  std::uint64_t rto_ns() const noexcept { return rto_ns_; }
  std::uint64_t ack_delay_ns() const noexcept { return ack_delay_ns_; }

  /// Reliability counters (tram_stats' FaultStats block).
  std::uint64_t retransmits() const noexcept {
    return retransmits_.load(std::memory_order_relaxed);
  }
  std::uint64_t dup_drops() const noexcept {
    return dup_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t acks_sent() const noexcept {
    return acks_sent_.load(std::memory_order_relaxed);
  }

 private:
  /// A sent-but-unacked data message, held for retransmission. msg shares
  /// the framed payload slab with the copy in flight.
  struct SendEntry {
    std::uint32_t seq = 0;
    rt::Message msg;
  };

  /// One directed channel. Sender-side fields are driven by the source's
  /// pump thread (plus ack application, which under the inline transport
  /// runs on the peer's thread); receiver-side fields by whichever thread
  /// delivers — hence the lock.
  struct Channel {
    mutable util::Spinlock mu;
    // Sender side.
    std::uint32_t next_seq = 0;
    std::deque<SendEntry> unacked;
    std::uint64_t probe_deadline_ns = 0;
    // Receiver side.
    std::uint32_t cum = 0;  ///< next expected sequence number
    std::set<std::uint32_t> ooo;  ///< received out of order, >= cum
    bool owes_ack = false;
    std::uint64_t ack_deadline_ns = 0;
  };

  Channel& ch(ProcId s, ProcId d) const noexcept {
    return ch_[static_cast<std::size_t>(s) *
                   static_cast<std::size_t>(procs_) +
               static_cast<std::size_t>(d)];
  }

  /// Pop every entry the cumulative ack covers off (data_src -> data_dst)'s
  /// retransmit queue.
  void apply_ack(ProcId data_src, ProcId data_dst, std::uint32_t ack);
  void send_standalone_ack(ProcId from, ProcId to, std::uint32_t ack);

  rt::Machine& machine_;
  std::unique_ptr<rt::Transport> inner_;
  const int procs_;
  std::uint64_t rto_ns_ = 0;
  std::uint64_t ack_delay_ns_ = 0;
  std::unique_ptr<Channel[]> ch_;
  std::atomic<std::uint64_t> unacked_total_{0};
  /// Channels currently owing a standalone ack. Together with
  /// unacked_total_ this gates poll()/next_due_ns()'s channel scan: an
  /// idle machine pays two atomic loads per pump iteration, not
  /// O(procs) spinlocks.
  std::atomic<std::uint64_t> owed_acks_total_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> dup_drops_{0};
  std::atomic<std::uint64_t> acks_sent_{0};
};

}  // namespace tram::fault
