#pragma once
///
/// \file reliable_transport.hpp
/// \brief Exactly-once delivery over a faulty transport, with SACK-based
/// recovery, an adaptive retransmit timer, and AIMD send-window pacing.
///
/// The protocol, per directed (src, dst) process channel:
///
///  - send: stamp a ReliableHeader — a fresh per-channel sequence number
///    plus the reverse channel's cumulative ack and SACK bitmap
///    (piggybacking) — in front of the payload, keep the framed slab
///    (refcounted, no copy) in the channel's retransmit queue, and hand
///    the message to the faulty layer below. Messages past the congestion
///    window are *paced*: queued sender-side (still counted by
///    in_flight(), so quiescence detection cannot fire under them) and
///    transmitted as acks open the window.
///  - receive (DeliveryInterceptor::on_inbound, below every transport's
///    delivery tail): apply the piggybacked ack + SACK to the reverse
///    channel's retransmit queue; dedup the data sequence number against
///    the cumulative counter + out-of-order window (a duplicate is
///    counted and consumed); strip the header (zero-copy subref) and
///    deliver.
///  - recovery: a SACK bit marks its entry received — the payload slab is
///    released early and the entry becomes a shell held only for seq
///    accounting. Unsacked entries serially below the highest SACKed
///    sequence are holes the fabric has demonstrably passed, so they are
///    fast-retransmitted once without waiting for the timer: one ack
///    round names (and recovers) every loss in the window. The timer is
///    the backstop: on expiry all unsacked in-window entries go out again
///    (with `sack=false`, the PR 5 behavior: head-of-line probe only,
///    one loss recovered per timeout round — kept for A/B benchmarks).
///  - timers: with adaptive_rto, each channel estimates RTT from
///    non-retransmitted entries (Karn's rule) via Jacobson's EWMAs
///    (srtt += err/8, rttvar += (|err|-rttvar)/4) and uses
///    rto = clamp(srtt + 4·rttvar, floor, ceil), doubled per consecutive
///    timeout and reset on cumulative progress. An explicit cfg.rto_ns
///    pins the timer and disables adaptation.
///  - window: AIMD. cwnd += acked/cwnd per cumulative advance (capped at
///    window_max), halved on the first loss signal of a recovery episode
///    (marked by recovery_end_seq = next_seq, TCP NewReno style),
///    collapsed to window_min on timeout. Never below window_min, so the
///    channel always drains.
///  - ack: piggybacked on all reverse traffic; when none shows up within
///    ack_delay the receiver's pump thread sends a standalone kAck that
///    the peer's interceptor consumes. Duplicates re-arm the ack so a
///    lost ack is always replaced.
///
/// Quiescence integration: in_flight() adds the count of unacked data
/// messages — transmitted *and* paced — to the inner transport's, so the
/// machine can declare quiescence neither while a dropped packet still
/// needs re-shipping nor while pacing holds data back. All channel state
/// is spinlocked: under the inline transport deliveries (and thus ack
/// processing) run on the *sender's* thread, so a channel's two ends can
/// be touched concurrently. No path ever holds two channel locks —
/// messages are collected under one lock and transmitted after release.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "fault/fault_config.hpp"
#include "fault/reliable_wire.hpp"
#include "runtime/transport.hpp"
#include "util/spinlock.hpp"

namespace tram::fault {

class ReliableTransport final : public rt::Transport,
                                public rt::DeliveryInterceptor {
 public:
  ReliableTransport(rt::Machine& machine,
                    std::unique_ptr<rt::Transport> inner, FaultConfig cfg);

  // -- rt::Transport --
  void send(ProcId src_proc, rt::Message&& m) override;
  std::size_t poll(rt::Process& proc) override;
  std::uint64_t next_due_ns(ProcId p) const override;
  std::uint64_t in_flight() const override;
  std::uint64_t total_messages() const override;
  std::uint64_t total_bytes() const override;
  std::uint64_t total_forwarded() const override;
  void reset() override;

  // -- rt::DeliveryInterceptor --
  bool on_inbound(rt::Process& proc, rt::Message& m) override;

  /// Base retransmit timeout (cfg.rto_ns, or derived from the cost model
  /// when 0). With adaptive_rto this is only the pre-first-sample value.
  std::uint64_t rto_ns() const noexcept { return rto_ns_; }
  std::uint64_t ack_delay_ns() const noexcept { return ack_delay_ns_; }
  bool sack_enabled() const noexcept { return sack_; }
  bool adaptive_rto_enabled() const noexcept { return adaptive_; }

  /// Reliability counters (tram_stats' FaultStats block).
  std::uint64_t retransmits() const noexcept {
    return retransmits_.load(std::memory_order_relaxed);
  }
  std::uint64_t dup_drops() const noexcept {
    return dup_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t acks_sent() const noexcept {
    return acks_sent_.load(std::memory_order_relaxed);
  }
  /// Retransmits triggered by a SACK hole (subset of retransmits()).
  std::uint64_t fast_retransmits() const noexcept {
    return fast_retransmits_.load(std::memory_order_relaxed);
  }
  /// Retransmit-timer expirations (each may batch several retransmits).
  std::uint64_t rto_fires() const noexcept {
    return rto_fires_.load(std::memory_order_relaxed);
  }
  /// Total framed bytes re-shipped — the overhead the recovery scheme
  /// pays for the injected loss.
  std::uint64_t rtx_bytes() const noexcept {
    return rtx_bytes_.load(std::memory_order_relaxed);
  }
  /// Messages that waited in a pacing queue before first transmit.
  std::uint64_t paced_msgs() const noexcept {
    return paced_msgs_.load(std::memory_order_relaxed);
  }
  /// High-water mark of per-channel transmitted-and-unacked messages —
  /// how far AIMD actually opened the window.
  std::uint64_t max_inflight_msgs() const noexcept {
    return max_inflight_msgs_.load(std::memory_order_relaxed);
  }

  /// Test accessors: snapshot one channel's estimator / window state.
  std::uint64_t debug_srtt_ns(ProcId src, ProcId dst) const;
  double debug_cwnd(ProcId src, ProcId dst) const;
  std::size_t debug_paced(ProcId src, ProcId dst) const;

 private:
  /// A sent-but-unacked data message, held for retransmission. msg shares
  /// the framed payload slab with the copy in flight. Once SACKed the
  /// entry is a shell: msg is released, only seq accounting remains until
  /// the cumulative ack passes it.
  struct SendEntry {
    std::uint32_t seq = 0;
    std::uint32_t rtx_count = 0;   ///< Karn: entries with rtx>0 never
                                   ///< contribute RTT samples.
    std::uint32_t bytes = 0;       ///< framed size, for the byte window
    bool sacked = false;
    bool fast_rtxed = false;  ///< one fast retransmit per entry per
                              ///< timeout round; the timer is the backstop
    std::uint64_t first_send_ns = 0;
    rt::Message msg;
  };

  /// One directed channel. Sender-side fields are driven by the source's
  /// pump thread (plus ack application, which under the inline transport
  /// runs on the peer's thread); receiver-side fields by whichever thread
  /// delivers — hence the lock.
  struct Channel {
    mutable util::Spinlock mu;
    // Sender side. unacked (transmitted at least once) and paced
    // (admitted, awaiting window space) are each seq-contiguous, and
    // paced continues where unacked ends.
    std::uint32_t next_seq = 0;
    std::deque<SendEntry> unacked;
    std::deque<SendEntry> paced;
    std::uint64_t probe_deadline_ns = 0;
    double cwnd = 0;                  ///< messages; >= window_min always
    std::uint32_t inflight_msgs = 0;  ///< transmitted, not acked/sacked
    std::uint64_t inflight_bytes = 0;
    std::uint64_t srtt_ns = 0;
    std::uint64_t rttvar_ns = 0;
    bool rtt_valid = false;
    std::uint32_t backoff_shift = 0;
    bool in_recovery = false;  ///< halve cwnd once per episode
    std::uint32_t recovery_end_seq = 0;
    // Receiver side.
    std::uint32_t cum = 0;  ///< next expected sequence number
    std::set<std::uint32_t> ooo;  ///< received out of order, >= cum
    bool owes_ack = false;
    std::uint64_t ack_deadline_ns = 0;
  };

  Channel& ch(ProcId s, ProcId d) const noexcept {
    return ch_[static_cast<std::size_t>(s) *
                   static_cast<std::size_t>(procs_) +
               static_cast<std::size_t>(d)];
  }

  /// Current retransmit timeout for a channel (lock held by caller).
  std::uint64_t rto_for(const Channel& c) const noexcept;
  /// Does the congestion window admit another transmit? (lock held)
  bool window_admits(const Channel& c) const noexcept;
  /// Fold an RTT sample into the channel's Jacobson estimator. (lock held)
  static void rtt_sample(Channel& c, std::uint64_t sample_ns) noexcept;
  /// Register a loss signal: halve once per recovery episode; a timeout
  /// additionally collapses the window and backs the timer off. (lock
  /// held)
  void loss_event(Channel& c, bool timeout) const noexcept;

  /// Apply a received (ack, sack) pair to (data_src -> data_dst)'s
  /// retransmit queue: pop covered entries, mark SACKed ones, fast-
  /// retransmit the holes, grow/shrink the window, then drain pacing.
  void apply_ack(ProcId data_src, ProcId data_dst, std::uint32_t ack,
                 std::uint64_t sack);
  /// Transmit paced entries while the window admits them.
  void drain_paced(ProcId src_proc, Channel& c);
  void send_standalone_ack(ProcId from, ProcId to, std::uint32_t ack,
                           std::uint64_t sack);

  rt::Machine& machine_;
  std::unique_ptr<rt::Transport> inner_;
  const int procs_;
  std::uint64_t rto_ns_ = 0;
  std::uint64_t ack_delay_ns_ = 0;
  std::uint64_t rto_floor_ns_ = 0;
  std::uint64_t rto_ceil_ns_ = 0;
  std::uint64_t window_bytes_ = 0;
  std::uint32_t window_init_ = 0;
  std::uint32_t window_min_ = 0;
  std::uint32_t window_max_ = 0;
  bool sack_ = true;
  bool adaptive_ = true;
  std::unique_ptr<Channel[]> ch_;
  /// Unacked data messages, transmitted or paced — the reliability
  /// layer's contribution to in_flight().
  std::atomic<std::uint64_t> unacked_total_{0};
  /// Channels currently owing a standalone ack. Together with
  /// unacked_total_ this gates poll()/next_due_ns()'s channel scan: an
  /// idle machine pays two atomic loads per pump iteration, not
  /// O(procs) spinlocks.
  std::atomic<std::uint64_t> owed_acks_total_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> dup_drops_{0};
  std::atomic<std::uint64_t> acks_sent_{0};
  std::atomic<std::uint64_t> fast_retransmits_{0};
  std::atomic<std::uint64_t> rto_fires_{0};
  std::atomic<std::uint64_t> rtx_bytes_{0};
  std::atomic<std::uint64_t> paced_msgs_{0};
  std::atomic<std::uint64_t> max_inflight_msgs_{0};
};

}  // namespace tram::fault
