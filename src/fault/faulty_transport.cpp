#include "fault/faulty_transport.hpp"

#include <mutex>
#include <utility>

#include "fault/reliable_wire.hpp"
#include "runtime/machine.hpp"
#include "runtime/process.hpp"
#include "util/timebase.hpp"

namespace tram::fault {

FaultyTransport::FaultyTransport(rt::Machine& machine,
                                 std::unique_ptr<rt::Transport> inner,
                                 FaultConfig cfg)
    : machine_(machine), inner_(std::move(inner)), sched_(cfg) {
  cfg.validate();
  const int procs = machine.topology().procs();
  state_.reserve(static_cast<std::size_t>(procs));
  for (int p = 0; p < procs; ++p) {
    state_.push_back(std::make_unique<SrcState>());
  }
}

void FaultyTransport::dispatch(ProcId src, rt::Message&& m,
                               std::uint64_t extra_delay_ns, SrcState& st) {
  if (extra_delay_ns == 0) {
    // Deliberately lock-free: the inline transport delivers synchronously
    // and the receiver's ack processing can recurse back into this layer.
    inner_->send(src, std::move(m));
    return;
  }
  // Held messages are released by this source's own poll(); count them
  // in flight first so quiescence detection can never miss the window.
  held_count_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<util::Spinlock> g(st.mu);
  st.held.push(Held{util::now_ns() + extra_delay_ns, std::move(m)});
}

void FaultyTransport::send(ProcId src_proc, rt::Message&& m) {
  auto& st = *state_[static_cast<std::size_t>(src_proc)];
  // Every message on this path was framed by ReliableTransport just
  // above; the header names the identity the fate is keyed on.
  const ReliableHeader h = parse_reliable_header(m.payload.span());
  const ProcId dst = rt::message_dst_proc(machine_, m);
  std::uint32_t seq = h.seq;
  std::uint32_t attempt = 0;
  {
    std::lock_guard<util::Spinlock> g(st.mu);
    if (h.kind == ReliableHeader::kData) {
      // The map gains one entry per data message ever sent from this
      // source; entries for long-acked sequences are dead weight, and the
      // fault layer cannot see acks to prune precisely. Bound it by
      // wholesale reset instead: a reset replays attempt ordinals from 0,
      // which only repeats already-drawn fates — attempts still increment
      // past any drop streak, so recovery always converges.
      if (st.attempts.size() >= kMaxAttemptEntries) st.attempts.clear();
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
           << 32) |
          h.seq;
      attempt = st.attempts[key]++;
    } else {
      seq = st.ack_ordinal++;
    }
  }
  const Fate fate = sched_.fate(src_proc, dst, h.kind, seq, attempt);

  if (fate.drop) drops_.fetch_add(1, std::memory_order_relaxed);
  if (fate.dup) dups_.fetch_add(1, std::memory_order_relaxed);
  const int copies = (fate.drop ? 0 : 1) + (fate.dup ? 1 : 0);
  if (copies == 0) return;
  if (fate.extra_delay_ns > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
  }
  if (copies == 2) {
    rt::Message copy = m;  // shares the payload slab (refcount bump)
    dispatch(src_proc, std::move(copy), fate.extra_delay_ns, st);
  }
  dispatch(src_proc, std::move(m), fate.extra_delay_ns, st);
}

std::size_t FaultyTransport::poll(rt::Process& proc) {
  auto& st = *state_[static_cast<std::size_t>(proc.id())];
  const std::uint64_t now = util::now_ns();
  std::vector<rt::Message> release;
  {
    std::lock_guard<util::Spinlock> g(st.mu);
    while (!st.held.empty() && st.held.top().due_ns <= now) {
      // priority_queue::top is const; the element is popped immediately
      // after, so the const_cast move is safe (same idiom as the packet
      // reorder heap).
      release.push_back(std::move(const_cast<Held&>(st.held.top()).m));
      st.held.pop();
    }
  }
  for (auto& m : release) {
    // Send outside the lock (see dispatch); the held count drops only
    // after the message is inside the inner transport, so in_flight()
    // never momentarily loses sight of it.
    inner_->send(proc.id(), std::move(m));
    held_count_.fetch_sub(1, std::memory_order_acq_rel);
  }
  return inner_->poll(proc);
}

std::uint64_t FaultyTransport::next_due_ns(ProcId p) const {
  const auto& st = *state_[static_cast<std::size_t>(p)];
  const std::uint64_t inner_due = inner_->next_due_ns(p);
  std::lock_guard<util::Spinlock> g(st.mu);
  if (st.held.empty()) return inner_due;
  const std::uint64_t held_due = st.held.top().due_ns;
  return inner_due == 0 || held_due < inner_due ? held_due : inner_due;
}

std::uint64_t FaultyTransport::in_flight() const {
  return held_count_.load(std::memory_order_acquire) + inner_->in_flight();
}

std::uint64_t FaultyTransport::total_messages() const {
  return inner_->total_messages();
}

std::uint64_t FaultyTransport::total_bytes() const {
  return inner_->total_bytes();
}

std::uint64_t FaultyTransport::total_forwarded() const {
  return inner_->total_forwarded();
}

void FaultyTransport::reset() {
  for (auto& st : state_) {
    while (!st->held.empty()) st->held.pop();
    st->attempts.clear();
    st->ack_ordinal = 0;
  }
  held_count_.store(0, std::memory_order_relaxed);
  drops_.store(0, std::memory_order_relaxed);
  dups_.store(0, std::memory_order_relaxed);
  delays_.store(0, std::memory_order_relaxed);
  inner_->reset();
}

}  // namespace tram::fault
