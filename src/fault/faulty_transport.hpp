#pragma once
///
/// \file faulty_transport.hpp
/// \brief Transport decorator that injects drop/duplicate/delay faults.
///
/// Sits between ReliableTransport (above) and the real transport (below):
/// every send consults the deterministic FaultSchedule, keyed on the
/// ReliableHeader identity the layer above just stamped, and either
/// swallows the message (drop), injects it twice (duplicate), or parks it
/// in a per-source holding heap released by that source's own pump thread
/// at poll() time (delay). Held messages count toward in_flight() so
/// quiescence detection never fires under a delayed packet, and the
/// earliest hold feeds next_due_ns() so idle pump threads sleep exactly
/// until the release.
///
/// Threading: poll(p) is only ever invoked from process p's pumping
/// thread, but send(p, ...) may arrive from ANY thread — the reliability
/// layer above fast-retransmits and drains its pacing queue from whatever
/// thread delivered the triggering ack (the peer's thread under the
/// inline transport). The per-source state (holding heap, attempt
/// counters) is therefore guarded by a per-source spinlock; inner sends
/// happen outside it so the inline transport's synchronous delivery
/// recursion can never self-deadlock. Aggregate counters stay atomic
/// (read by the QD thread and reporters).

#include <atomic>
#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "fault/fault_config.hpp"
#include "fault/fault_schedule.hpp"
#include "runtime/transport.hpp"
#include "util/spinlock.hpp"

namespace tram::fault {

class FaultyTransport final : public rt::Transport {
 public:
  FaultyTransport(rt::Machine& machine, std::unique_ptr<rt::Transport> inner,
                  FaultConfig cfg);

  void send(ProcId src_proc, rt::Message&& m) override;
  std::size_t poll(rt::Process& proc) override;
  std::uint64_t next_due_ns(ProcId p) const override;
  std::uint64_t in_flight() const override;
  std::uint64_t total_messages() const override;
  std::uint64_t total_bytes() const override;
  std::uint64_t total_forwarded() const override;
  void reset() override;

  const FaultSchedule& schedule() const noexcept { return sched_; }

  /// Per-fault injection counters (tram_stats' FaultStats block).
  std::uint64_t drops_injected() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t dups_injected() const noexcept {
    return dups_.load(std::memory_order_relaxed);
  }
  std::uint64_t delays_injected() const noexcept {
    return delays_.load(std::memory_order_relaxed);
  }

 private:
  /// A delayed message waiting for its release time.
  struct Held {
    std::uint64_t due_ns = 0;
    rt::Message m;
  };
  struct HeldLater {
    bool operator()(const Held& a, const Held& b) const noexcept {
      return a.due_ns > b.due_ns;
    }
  };
  /// Cap on the per-source attempt map before it is wholesale-cleared
  /// (see send()); bounds memory on service-length lossy runs.
  static constexpr std::size_t kMaxAttemptEntries = std::size_t{1} << 20;

  /// Per-source state; senders may be any thread (see file comment).
  struct SrcState {
    mutable util::Spinlock mu;
    std::priority_queue<Held, std::vector<Held>, HeldLater> held;
    /// Next attempt ordinal per (dst, seq) data identity — what lets the
    /// schedule give a retransmit a fresh fate.
    std::unordered_map<std::uint64_t, std::uint32_t> attempts;
    /// Ack messages carry no sequence number; give them a per-source
    /// ordinal so they draw distinct fates.
    std::uint32_t ack_ordinal = 0;
  };

  /// Forward one surviving copy: hold it when delayed, else pass through.
  void dispatch(ProcId src, rt::Message&& m, std::uint64_t extra_delay_ns,
                SrcState& st);

  rt::Machine& machine_;
  std::unique_ptr<rt::Transport> inner_;
  FaultSchedule sched_;
  std::vector<std::unique_ptr<SrcState>> state_;
  std::atomic<std::uint64_t> held_count_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> dups_{0};
  std::atomic<std::uint64_t> delays_{0};
};

}  // namespace tram::fault
