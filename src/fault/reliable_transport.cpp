#include "fault/reliable_transport.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "runtime/machine.hpp"
#include "runtime/process.hpp"
#include "util/payload_pool.hpp"
#include "util/timebase.hpp"

namespace tram::fault {

namespace {
/// Floor on the derived retransmit timeout: under the zero-cost test
/// model the modeled round trip is 0, but acks still take real wall time
/// (pump polling, thread scheduling) to come back — probing faster than
/// this only manufactures spurious duplicates.
constexpr std::uint64_t kMinRtoNs = 300'000;

/// Combine two "0 means none" deadlines into the earlier one.
std::uint64_t min_due(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0) return b;
  if (b == 0) return a;
  return a < b ? a : b;
}

/// Serial-number order (RFC 1982 style): does a precede b? Correct
/// across uint32 wraparound as long as the live window stays under
/// 2^31 sequences — service-length runs wrap, absolute comparison
/// would then dedup-drop every new message forever.
bool seq_before(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}
}  // namespace

ReliableTransport::ReliableTransport(rt::Machine& machine,
                                     std::unique_ptr<rt::Transport> inner,
                                     FaultConfig cfg)
    : machine_(machine),
      inner_(std::move(inner)),
      procs_(machine.topology().procs()) {
  cfg.validate();
  // Virtual-time timeout: a few modeled one-way latencies plus whatever
  // extra delay the fault layer injects, floored for zero-cost models.
  const auto& cost = machine.config().cost;
  const auto modeled = static_cast<std::uint64_t>(
      cost.alpha_remote_ns + cost.inject_ns);
  rto_ns_ = cfg.rto_ns != 0
                ? cfg.rto_ns
                : std::max(kMinRtoNs, 4 * (modeled + cfg.delay_ns));
  ack_delay_ns_ = cfg.ack_delay_ns != 0 ? cfg.ack_delay_ns : rto_ns_ / 8;
  ch_ = std::make_unique<Channel[]>(static_cast<std::size_t>(procs_) *
                                    static_cast<std::size_t>(procs_));
}

void ReliableTransport::send(ProcId src_proc, rt::Message&& m) {
  const ProcId dst = rt::message_dst_proc(machine_, m);

  ReliableHeader h;
  h.kind = ReliableHeader::kData;
  h.src_proc = static_cast<std::uint16_t>(src_proc);
  {
    // Piggyback: what this process has cumulatively received on the
    // reverse channel — and with it, the standalone ack it would
    // otherwise owe.
    Channel& rev = ch(dst, src_proc);
    std::lock_guard<util::Spinlock> g(rev.mu);
    h.ack = rev.cum;
    if (rev.owes_ack) {
      rev.owes_ack = false;
      rev.ack_deadline_ns = 0;
      owed_acks_total_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  // Frame into a fresh slab: header + payload bytes. The one copy this
  // protocol costs per message — the retransmit queue then holds the
  // framed slab by reference, so re-sends are copy-free. Multi-extent
  // messages are flattened here: extents are bare entry arrays that are
  // wire-equivalent concatenated, and a retransmit must not depend on
  // sub-view slabs whose owners have moved on.
  util::PayloadRef framed =
      util::PayloadPool::global().acquire(sizeof h + m.payload_bytes());
  std::size_t off = sizeof h;
  if (!m.payload.empty()) {
    std::memcpy(framed.data() + off, m.payload.data(), m.payload.size());
    off += m.payload.size();
  }
  for (const auto& e : m.extras) {
    if (e.empty()) continue;
    std::memcpy(framed.data() + off, e.data(), e.size());
    off += e.size();
  }

  rt::Message out;
  out.endpoint = m.endpoint;
  out.dst_worker = m.dst_worker;
  out.src_worker = m.src_worker;
  out.dst_proc_hint = m.dst_proc_hint;
  out.expedited = m.expedited;
  out.hops = m.hops;
  out.payload = std::move(framed);

  Channel& fwd = ch(src_proc, dst);
  {
    // The sequence number is assigned and the retransmit entry queued
    // before the message can reach the wire: an ack can never arrive for
    // an entry that is not yet tracked.
    std::lock_guard<util::Spinlock> g(fwd.mu);
    h.seq = fwd.next_seq++;
    std::memcpy(out.payload.data(), &h, sizeof h);
    fwd.unacked.push_back(SendEntry{h.seq, out});
    if (fwd.unacked.size() == 1) {
      fwd.probe_deadline_ns = util::now_ns() + rto_ns_;
    }
  }
  unacked_total_.fetch_add(1, std::memory_order_acq_rel);
  inner_->send(src_proc, std::move(out));
}

void ReliableTransport::apply_ack(ProcId data_src, ProcId data_dst,
                                  std::uint32_t ack) {
  Channel& c = ch(data_src, data_dst);
  std::size_t popped = 0;
  {
    std::lock_guard<util::Spinlock> g(c.mu);
    while (!c.unacked.empty() && seq_before(c.unacked.front().seq, ack)) {
      c.unacked.pop_front();
      ++popped;
    }
    if (popped != 0) {
      c.probe_deadline_ns =
          c.unacked.empty() ? 0 : util::now_ns() + rto_ns_;
    }
  }
  if (popped != 0) {
    unacked_total_.fetch_sub(popped, std::memory_order_acq_rel);
  }
}

bool ReliableTransport::on_inbound(rt::Process& proc, rt::Message& m) {
  const ProcId dst = proc.id();
  const ReliableHeader h = parse_reliable_header(m.payload.span());
  const auto src = static_cast<ProcId>(h.src_proc);

  // The ack field acknowledges data this process sent to src.
  apply_ack(dst, src, h.ack);
  if (h.kind == ReliableHeader::kAck) return false;  // consumed

  Channel& c = ch(src, dst);
  {
    std::lock_guard<util::Spinlock> g(c.mu);
    // Any data arrival (re-)arms the delayed ack: a duplicate means the
    // sender may have lost our previous ack, so it must be replaced.
    if (!c.owes_ack) {
      c.owes_ack = true;
      c.ack_deadline_ns = util::now_ns() + ack_delay_ns_;
      owed_acks_total_.fetch_add(1, std::memory_order_acq_rel);
    }
    if (seq_before(h.seq, c.cum) || c.ooo.count(h.seq) != 0) {
      dup_drops_.fetch_add(1, std::memory_order_relaxed);
      return false;  // duplicate: consumed before it reaches an endpoint
    }
    if (h.seq == c.cum) {
      ++c.cum;
      while (c.ooo.erase(c.cum) != 0) ++c.cum;
    } else {
      c.ooo.insert(h.seq);  // deliver out of order, remember for dedup
    }
  }
  // Strip the frame: the endpoint sees exactly the payload it was sent.
  m.payload = m.payload.subref(sizeof(ReliableHeader),
                               m.payload.size() - sizeof(ReliableHeader));
  return true;
}

void ReliableTransport::send_standalone_ack(ProcId from, ProcId to,
                                            std::uint32_t ack) {
  ReliableHeader h;
  h.kind = ReliableHeader::kAck;
  h.src_proc = static_cast<std::uint16_t>(from);
  h.ack = ack;
  rt::Message m;
  m.dst_worker = kInvalidWorker;
  m.dst_proc_hint = to;
  m.expedited = true;
  m.payload = util::PayloadPool::global().acquire(sizeof h);
  std::memcpy(m.payload.data(), &h, sizeof h);
  acks_sent_.fetch_add(1, std::memory_order_relaxed);
  inner_->send(from, std::move(m));
}

std::size_t ReliableTransport::poll(rt::Process& proc) {
  const std::size_t delivered = inner_->poll(proc);
  // Nothing unacked and no ack owed anywhere: the channel scan below
  // would find no work — two atomic loads instead of O(procs) locks on
  // every idle pump iteration. A stale read only defers the scan to the
  // next poll.
  if (unacked_total_.load(std::memory_order_acquire) == 0 &&
      owed_acks_total_.load(std::memory_order_acquire) == 0) {
    return delivered;
  }
  const ProcId p = proc.id();
  const std::uint64_t now = util::now_ns();
  // Once the machine is stopping, any ack still owed is redundant (its
  // data is already acked — in_flight() was zero when QD fired) and the
  // peer's pump may already have exited; sending it would strand a packet
  // in an undrained ingress queue.
  const bool stopping = machine_.stopping();
  for (ProcId d = 0; d < procs_; ++d) {
    if (d == p) continue;
    // Head-of-line retransmit probe on the outbound channel (p -> d).
    Channel& out = ch(p, d);
    rt::Message probe;
    bool send_probe = false;
    {
      std::lock_guard<util::Spinlock> g(out.mu);
      if (!out.unacked.empty() && now >= out.probe_deadline_ns) {
        probe = out.unacked.front().msg;  // shares the framed slab
        out.probe_deadline_ns = now + rto_ns_;
        send_probe = true;
      }
    }
    if (send_probe) {
      retransmits_.fetch_add(1, std::memory_order_relaxed);
      inner_->send(p, std::move(probe));
    }
    if (stopping) continue;
    // Standalone ack owed on the inbound channel (d -> p) once the
    // piggyback window has lapsed.
    Channel& in = ch(d, p);
    std::uint32_t ack = 0;
    bool send_ack = false;
    {
      std::lock_guard<util::Spinlock> g(in.mu);
      if (in.owes_ack && now >= in.ack_deadline_ns) {
        in.owes_ack = false;
        in.ack_deadline_ns = 0;
        owed_acks_total_.fetch_sub(1, std::memory_order_acq_rel);
        ack = in.cum;
        send_ack = true;
      }
    }
    if (send_ack) send_standalone_ack(p, d, ack);
  }
  return delivered;
}

std::uint64_t ReliableTransport::next_due_ns(ProcId p) const {
  std::uint64_t due = inner_->next_due_ns(p);
  if (unacked_total_.load(std::memory_order_acquire) == 0 &&
      owed_acks_total_.load(std::memory_order_acquire) == 0) {
    return due;
  }
  const bool stopping = machine_.stopping();
  for (ProcId d = 0; d < procs_; ++d) {
    if (d == p) continue;
    {
      const Channel& out = ch(p, d);
      std::lock_guard<util::Spinlock> g(out.mu);
      if (!out.unacked.empty()) due = min_due(due, out.probe_deadline_ns);
    }
    if (stopping) continue;
    const Channel& in = ch(d, p);
    std::lock_guard<util::Spinlock> g(in.mu);
    if (in.owes_ack) due = min_due(due, in.ack_deadline_ns);
  }
  return due;
}

std::uint64_t ReliableTransport::in_flight() const {
  // Sent-but-unacked messages may need re-shipping: the machine is not
  // quiescent until every one is confirmed delivered.
  return unacked_total_.load(std::memory_order_acquire) +
         inner_->in_flight();
}

std::uint64_t ReliableTransport::total_messages() const {
  return inner_->total_messages();
}

std::uint64_t ReliableTransport::total_bytes() const {
  return inner_->total_bytes();
}

std::uint64_t ReliableTransport::total_forwarded() const {
  return inner_->total_forwarded();
}

void ReliableTransport::reset() {
  const std::size_t n = static_cast<std::size_t>(procs_) *
                        static_cast<std::size_t>(procs_);
  for (std::size_t i = 0; i < n; ++i) {
    Channel& c = ch_[i];
    std::lock_guard<util::Spinlock> g(c.mu);
    c.next_seq = 0;
    c.unacked.clear();
    c.probe_deadline_ns = 0;
    c.cum = 0;
    c.ooo.clear();
    c.owes_ack = false;
    c.ack_deadline_ns = 0;
  }
  unacked_total_.store(0, std::memory_order_relaxed);
  owed_acks_total_.store(0, std::memory_order_relaxed);
  retransmits_.store(0, std::memory_order_relaxed);
  dup_drops_.store(0, std::memory_order_relaxed);
  acks_sent_.store(0, std::memory_order_relaxed);
  inner_->reset();
}

}  // namespace tram::fault
