#include "fault/reliable_transport.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "runtime/machine.hpp"
#include "runtime/process.hpp"
#include "trace/trace.hpp"
#include "util/payload_pool.hpp"
#include "util/timebase.hpp"

namespace tram::fault {

namespace {

/// Channel identity for trace event args: src proc in the high half.
std::uint32_t trace_chan(ProcId src, ProcId dst) noexcept {
  return (static_cast<std::uint32_t>(src) << 16) |
         (static_cast<std::uint32_t>(dst) & 0xffffu);
}
/// Floor on the retransmit timeout: under the zero-cost test model the
/// modeled round trip is 0, but acks still take real wall time (pump
/// polling, thread scheduling) to come back — probing faster than this
/// only manufactures spurious duplicates.
constexpr std::uint64_t kMinRtoNs = 300'000;

/// Cap on exponential backoff doubling; the ceiling clamp dominates long
/// before this, it only guards the shift itself.
constexpr std::uint32_t kMaxBackoffShift = 16;

/// Combine two "0 means none" deadlines into the earlier one.
std::uint64_t min_due(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0) return b;
  if (b == 0) return a;
  return a < b ? a : b;
}

/// Serial-number order (RFC 1982 style): does a precede b? Correct
/// across uint32 wraparound as long as the live window stays under
/// 2^31 sequences — service-length runs wrap, absolute comparison
/// would then dedup-drop every new message forever.
bool seq_before(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}

void fetch_max(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

ReliableTransport::ReliableTransport(rt::Machine& machine,
                                     std::unique_ptr<rt::Transport> inner,
                                     FaultConfig cfg)
    : machine_(machine),
      inner_(std::move(inner)),
      procs_(machine.topology().procs()) {
  cfg.validate();
  // Virtual-time timeout: a few modeled one-way latencies plus whatever
  // extra delay the fault layer injects, floored for zero-cost models.
  const auto& cost = machine.config().cost;
  const auto modeled = static_cast<std::uint64_t>(
      cost.alpha_remote_ns + cost.inject_ns);
  rto_ns_ = cfg.rto_ns != 0
                ? cfg.rto_ns
                : std::max(kMinRtoNs, 4 * (modeled + cfg.delay_ns));
  ack_delay_ns_ = cfg.ack_delay_ns != 0 ? cfg.ack_delay_ns : rto_ns_ / 8;
  rto_floor_ns_ = cfg.rto_floor_ns != 0 ? cfg.rto_floor_ns : kMinRtoNs;
  rto_ceil_ns_ = std::max(cfg.rto_ceil_ns, rto_floor_ns_);
  window_bytes_ = cfg.window_bytes;
  window_init_ = cfg.window_init;
  window_min_ = cfg.window_min;
  window_max_ = cfg.window_max;
  sack_ = cfg.sack;
  // An explicit rto_ns pins the timer: experiments that fix it replay
  // with an exactly known timeout (and PR 5 semantics).
  adaptive_ = cfg.adaptive_rto && cfg.rto_ns == 0;
  ch_ = std::make_unique<Channel[]>(static_cast<std::size_t>(procs_) *
                                    static_cast<std::size_t>(procs_));
  const std::size_t n = static_cast<std::size_t>(procs_) *
                        static_cast<std::size_t>(procs_);
  for (std::size_t i = 0; i < n; ++i) ch_[i].cwnd = window_init_;
}

std::uint64_t ReliableTransport::rto_for(const Channel& c) const noexcept {
  if (!adaptive_) return rto_ns_;
  std::uint64_t base = c.rtt_valid ? c.srtt_ns + 4 * c.rttvar_ns : rto_ns_;
  base = std::clamp(base, rto_floor_ns_, rto_ceil_ns_);
  const std::uint32_t shift = std::min(c.backoff_shift, kMaxBackoffShift);
  const std::uint64_t backed = base << shift;
  // Detect shift overflow as well as a plain over-ceiling value.
  if ((backed >> shift) != base || backed > rto_ceil_ns_) {
    return rto_ceil_ns_;
  }
  return backed;
}

bool ReliableTransport::window_admits(const Channel& c) const noexcept {
  if (c.inflight_msgs >= static_cast<std::uint32_t>(c.cwnd)) return false;
  if (window_bytes_ != 0 && c.inflight_bytes >= window_bytes_) {
    // Always admit at least one message, or a payload larger than the
    // byte cap could never leave and quiescence would hang.
    return c.inflight_msgs == 0;
  }
  return true;
}

void ReliableTransport::rtt_sample(Channel& c,
                                   std::uint64_t sample_ns) noexcept {
  if (!c.rtt_valid) {
    c.srtt_ns = sample_ns;
    c.rttvar_ns = sample_ns / 2;
    c.rtt_valid = true;
    return;
  }
  const auto err = static_cast<std::int64_t>(sample_ns) -
                   static_cast<std::int64_t>(c.srtt_ns);
  c.srtt_ns = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(c.srtt_ns) + err / 8);
  const std::int64_t abs_err = err < 0 ? -err : err;
  c.rttvar_ns = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(c.rttvar_ns) +
      (abs_err - static_cast<std::int64_t>(c.rttvar_ns)) / 4);
}

void ReliableTransport::loss_event(Channel& c, bool timeout) const noexcept {
  if (!c.in_recovery) {
    // One multiplicative decrease per recovery episode: every seq below
    // next_seq belongs to this episode, losses among them share the
    // single halving (NewReno-style partial-ack handling).
    c.in_recovery = true;
    c.recovery_end_seq = c.next_seq;
    c.cwnd = std::max<double>(window_min_,
                              timeout ? window_min_ : c.cwnd / 2);
  } else if (timeout) {
    c.cwnd = window_min_;
  }
  if (timeout && adaptive_ &&
      c.backoff_shift < kMaxBackoffShift) {
    ++c.backoff_shift;
  }
}

void ReliableTransport::send(ProcId src_proc, rt::Message&& m) {
  const ProcId dst = rt::message_dst_proc(machine_, m);
  const std::uint64_t now = util::now_ns();

  ReliableHeader h;
  h.kind = ReliableHeader::kData;
  h.src_proc = static_cast<std::uint16_t>(src_proc);
  {
    // Piggyback: what this process has cumulatively received on the
    // reverse channel, plus the out-of-order bitmap. The owed standalone
    // ack is only cancelled further down, once we know the message
    // transmits now rather than sitting in the pacing queue.
    Channel& rev = ch(dst, src_proc);
    std::lock_guard<util::Spinlock> g(rev.mu);
    h.ack = rev.cum;
    if (sack_) h.sack = build_sack_bitmap(rev.cum, rev.ooo);
  }

  // Frame into a fresh slab: header + payload bytes. The one copy this
  // protocol costs per message — the retransmit queue then holds the
  // framed slab by reference, so re-sends are copy-free. Multi-extent
  // messages are flattened here: extents are bare entry arrays that are
  // wire-equivalent concatenated, and a retransmit must not depend on
  // sub-view slabs whose owners have moved on.
  util::PayloadRef framed =
      util::PayloadPool::global().acquire(sizeof h + m.payload_bytes());
  std::size_t off = sizeof h;
  if (!m.payload.empty()) {
    std::memcpy(framed.data() + off, m.payload.data(), m.payload.size());
    off += m.payload.size();
  }
  for (const auto& e : m.extras) {
    if (e.empty()) continue;
    std::memcpy(framed.data() + off, e.data(), e.size());
    off += e.size();
  }

  rt::Message out;
  out.endpoint = m.endpoint;
  out.dst_worker = m.dst_worker;
  out.src_worker = m.src_worker;
  out.dst_proc_hint = m.dst_proc_hint;
  out.expedited = m.expedited;
  out.hops = m.hops;
  out.payload = std::move(framed);

  Channel& fwd = ch(src_proc, dst);
  bool tx = false;
  std::uint32_t inflight_now = 0;
  {
    // The sequence number is assigned, the header stamped (the slab is
    // still exclusively ours — nothing has reached the wire), and the
    // retransmit entry queued before the message can reach the wire: an
    // ack can never arrive for an entry that is not yet tracked.
    std::lock_guard<util::Spinlock> g(fwd.mu);
    h.seq = fwd.next_seq++;
    std::memcpy(out.payload.data(), &h, sizeof h);
    SendEntry e;
    e.seq = h.seq;
    e.bytes = static_cast<std::uint32_t>(out.payload.size());
    e.msg = out;
    // Transmit now only if nothing is already paced (seq order on the
    // wire queue) and the window has room; otherwise pace.
    if (fwd.paced.empty() && window_admits(fwd)) {
      e.first_send_ns = now;
      ++fwd.inflight_msgs;
      fwd.inflight_bytes += e.bytes;
      inflight_now = fwd.inflight_msgs;
      fwd.unacked.push_back(std::move(e));
      if (fwd.probe_deadline_ns == 0) {
        fwd.probe_deadline_ns = now + rto_for(fwd);
      }
      tx = true;
    } else {
      fwd.paced.push_back(std::move(e));
    }
  }
  unacked_total_.fetch_add(1, std::memory_order_acq_rel);
  if (!tx) {
    paced_msgs_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  fetch_max(max_inflight_msgs_, inflight_now);
  {
    // This transmit carries the reverse channel's current ack — cancel
    // the standalone one it owed.
    Channel& rev = ch(dst, src_proc);
    std::lock_guard<util::Spinlock> g(rev.mu);
    if (rev.owes_ack) {
      rev.owes_ack = false;
      rev.ack_deadline_ns = 0;
      owed_acks_total_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  inner_->send(src_proc, std::move(out));
}

void ReliableTransport::drain_paced(ProcId src_proc, Channel& c) {
  std::vector<rt::Message> to_send;
  std::uint32_t inflight_now = 0;
  const std::uint64_t now = util::now_ns();
  {
    std::lock_guard<util::Spinlock> g(c.mu);
    while (!c.paced.empty() && window_admits(c)) {
      SendEntry e = std::move(c.paced.front());
      c.paced.pop_front();
      e.first_send_ns = now;
      ++c.inflight_msgs;
      c.inflight_bytes += e.bytes;
      to_send.push_back(e.msg);  // shares the framed slab
      c.unacked.push_back(std::move(e));
    }
    if (!to_send.empty()) {
      inflight_now = c.inflight_msgs;
      if (c.probe_deadline_ns == 0) c.probe_deadline_ns = now + rto_for(c);
    }
  }
  if (to_send.empty()) return;
  fetch_max(max_inflight_msgs_, inflight_now);
  // Paced entries were stamped at submit time; their piggybacked ack may
  // be slightly stale, which is harmless (acks are monotonic).
  for (auto& m : to_send) inner_->send(src_proc, std::move(m));
}

void ReliableTransport::apply_ack(ProcId data_src, ProcId data_dst,
                                  std::uint32_t ack, std::uint64_t sack) {
  Channel& c = ch(data_src, data_dst);
  const std::uint64_t now = util::now_ns();
  std::uint64_t settled = 0;  // newly acked-or-sacked: leaves in_flight()
  std::vector<rt::Message> rtx;
  std::uint64_t rtx_bytes = 0;
  std::uint32_t fast_n = 0;
  std::uint32_t sacked_n = 0;
  std::uint64_t cwnd_now = 0;
  {
    std::lock_guard<util::Spinlock> g(c.mu);
    // 1. Pop everything the cumulative ack covers. SACKed shells were
    //    settled when their bit arrived; only live entries settle here.
    std::size_t popped_live = 0;
    while (!c.unacked.empty() && seq_before(c.unacked.front().seq, ack)) {
      SendEntry& e = c.unacked.front();
      if (!e.sacked) {
        if (e.rtx_count == 0 && e.first_send_ns != 0) {
          rtt_sample(c, now - e.first_send_ns);  // Karn: fresh sends only
        }
        --c.inflight_msgs;
        c.inflight_bytes -= e.bytes;
        ++popped_live;
        ++settled;
      }
      c.unacked.pop_front();
    }
    // 2. Mark SACKed entries: settled for the window and for quiescence,
    //    payload released early; the shell stays for seq accounting
    //    until the cumulative ack passes it. unacked is seq-contiguous,
    //    so the entry for seq s sits at offset s - front.seq.
    bool newly_sacked = false;
    if (sack != 0 && !c.unacked.empty()) {
      const std::uint32_t front = c.unacked.front().seq;
      for_each_sacked(ack, sack, [&](std::uint32_t s) {
        const std::uint32_t off = s - front;
        if (off >= c.unacked.size()) return;
        SendEntry& e = c.unacked[off];
        if (e.sacked) return;
        if (e.rtx_count == 0 && e.first_send_ns != 0) {
          rtt_sample(c, now - e.first_send_ns);
        }
        e.sacked = true;
        e.msg = rt::Message{};
        --c.inflight_msgs;
        c.inflight_bytes -= e.bytes;
        ++settled;
        newly_sacked = true;
        ++sacked_n;
      });
    }
    // 3. Fast retransmit: an unsacked entry serially below the highest
    //    SACKed sequence is a hole the fabric demonstrably passed —
    //    re-ship it now instead of waiting for the timer. Once per entry
    //    per timeout round (fast_rtxed); the timer is the backstop.
    if (sack_ && sack != 0 && !c.unacked.empty()) {
      const std::uint32_t hi_bit =
          63u - static_cast<std::uint32_t>(__builtin_clzll(sack));
      const std::uint32_t hi_seq = sack_bit_seq(ack, hi_bit);
      for (SendEntry& e : c.unacked) {
        if (!seq_before(e.seq, hi_seq)) break;
        if (e.sacked || e.fast_rtxed) continue;
        e.fast_rtxed = true;
        ++e.rtx_count;
        rtx.push_back(e.msg);
        rtx_bytes += e.bytes;
        ++fast_n;
      }
      if (fast_n != 0) loss_event(c, /*timeout=*/false);
    }
    // 4. Window dynamics on cumulative progress: exit recovery once the
    //    episode's marker is passed, then grow additively; consecutive-
    //    timeout backoff resets because the channel is demonstrably
    //    moving again.
    if (popped_live != 0) {
      c.backoff_shift = 0;
      if (c.in_recovery && !seq_before(ack, c.recovery_end_seq)) {
        c.in_recovery = false;
      }
      if (!c.in_recovery) {
        c.cwnd = std::min<double>(
            window_max_,
            c.cwnd + static_cast<double>(popped_live) / c.cwnd);
      }
    }
    // 5. Re-arm the timer against the (new) oldest outstanding entry.
    if (settled != 0 || fast_n != 0 || newly_sacked) {
      c.probe_deadline_ns =
          c.inflight_msgs != 0 ? now + rto_for(c) : 0;
    }
    cwnd_now = static_cast<std::uint64_t>(c.cwnd);
  }
  if (trace::enabled()) {
    const std::uint32_t chan = trace_chan(data_src, data_dst);
    if (sacked_n != 0) {
      trace::instant(trace::Cat::kFault, trace::kSackShell, sacked_n, chan);
    }
    if (fast_n != 0) {
      trace::instant(trace::Cat::kFault, trace::kFastRetransmit, fast_n,
                     chan);
    }
    // Both the multiplicative cut (fast retransmit) and the additive
    // growth (cumulative progress) land here — one sample per ack event
    // draws the AIMD sawtooth.
    if (settled != 0 || fast_n != 0) trace::cwnd_sample(cwnd_now, chan);
  }
  if (settled != 0) {
    unacked_total_.fetch_sub(settled, std::memory_order_acq_rel);
  }
  if (fast_n != 0) {
    retransmits_.fetch_add(fast_n, std::memory_order_relaxed);
    fast_retransmits_.fetch_add(fast_n, std::memory_order_relaxed);
    rtx_bytes_.fetch_add(rtx_bytes, std::memory_order_relaxed);
    for (auto& m : rtx) inner_->send(data_src, std::move(m));
  }
  // Freed window space admits paced traffic.
  drain_paced(data_src, c);
}

bool ReliableTransport::on_inbound(rt::Process& proc, rt::Message& m) {
  const ProcId dst = proc.id();
  const ReliableHeader h = parse_reliable_header(m.payload.span());
  const auto src = static_cast<ProcId>(h.src_proc);

  // The ack + sack fields acknowledge data this process sent to src.
  apply_ack(dst, src, h.ack, h.sack);
  if (h.kind == ReliableHeader::kAck) return false;  // consumed

  Channel& c = ch(src, dst);
  {
    std::lock_guard<util::Spinlock> g(c.mu);
    // Any data arrival (re-)arms the delayed ack: a duplicate means the
    // sender may have lost our previous ack, so it must be replaced.
    if (!c.owes_ack) {
      c.owes_ack = true;
      c.ack_deadline_ns = util::now_ns() + ack_delay_ns_;
      owed_acks_total_.fetch_add(1, std::memory_order_acq_rel);
    }
    if (seq_before(h.seq, c.cum) || c.ooo.count(h.seq) != 0) {
      dup_drops_.fetch_add(1, std::memory_order_relaxed);
      return false;  // duplicate: consumed before it reaches an endpoint
    }
    if (h.seq == c.cum) {
      ++c.cum;
      while (c.ooo.erase(c.cum) != 0) ++c.cum;
    } else {
      c.ooo.insert(h.seq);  // deliver out of order, remember for dedup
    }
  }
  // Strip the frame: the endpoint sees exactly the payload it was sent.
  m.payload = m.payload.subref(sizeof(ReliableHeader),
                               m.payload.size() - sizeof(ReliableHeader));
  return true;
}

void ReliableTransport::send_standalone_ack(ProcId from, ProcId to,
                                            std::uint32_t ack,
                                            std::uint64_t sack) {
  ReliableHeader h;
  h.kind = ReliableHeader::kAck;
  h.src_proc = static_cast<std::uint16_t>(from);
  h.ack = ack;
  h.sack = sack;
  rt::Message m;
  m.dst_worker = kInvalidWorker;
  m.dst_proc_hint = to;
  m.expedited = true;
  m.payload = util::PayloadPool::global().acquire(sizeof h);
  std::memcpy(m.payload.data(), &h, sizeof h);
  acks_sent_.fetch_add(1, std::memory_order_relaxed);
  inner_->send(from, std::move(m));
}

std::size_t ReliableTransport::poll(rt::Process& proc) {
  const std::size_t delivered = inner_->poll(proc);
  // Nothing unacked and no ack owed anywhere: the channel scan below
  // would find no work — two atomic loads instead of O(procs) locks on
  // every idle pump iteration. A stale read only defers the scan to the
  // next poll.
  if (unacked_total_.load(std::memory_order_acquire) == 0 &&
      owed_acks_total_.load(std::memory_order_acquire) == 0) {
    return delivered;
  }
  const ProcId p = proc.id();
  const std::uint64_t now = util::now_ns();
  // Once the machine is stopping, any ack still owed is redundant (its
  // data is already acked — in_flight() was zero when QD fired) and the
  // peer's pump may already have exited; sending it would strand a packet
  // in an undrained ingress queue.
  const bool stopping = machine_.stopping();
  for (ProcId d = 0; d < procs_; ++d) {
    if (d == p) continue;
    // Timer-driven retransmit on the outbound channel (p -> d). With
    // SACK every live in-window entry goes out again (batch recovery);
    // without it, the PR 5 head-of-line probe: the cumulative ack
    // advances past every delivered sequence once the lowest missing
    // one lands, so probing the head alone eventually recovers any loss
    // pattern — one timeout round per loss.
    Channel& out = ch(p, d);
    std::vector<rt::Message> rtx;
    std::uint64_t rtx_bytes = 0;
    std::uint64_t cwnd_now = 0;
    {
      std::lock_guard<util::Spinlock> g(out.mu);
      if (out.inflight_msgs != 0 && out.probe_deadline_ns != 0 &&
          now >= out.probe_deadline_ns) {
        for (SendEntry& e : out.unacked) {
          if (e.sacked) continue;
          ++e.rtx_count;
          e.fast_rtxed = false;  // eligible again next SACK round
          rtx.push_back(e.msg);
          rtx_bytes += e.bytes;
          if (!sack_) break;  // legacy: head-of-line probe only
        }
        loss_event(out, /*timeout=*/true);
        out.probe_deadline_ns = now + rto_for(out);
        cwnd_now = static_cast<std::uint64_t>(out.cwnd);
      }
    }
    if (!rtx.empty()) {
      rto_fires_.fetch_add(1, std::memory_order_relaxed);
      retransmits_.fetch_add(rtx.size(), std::memory_order_relaxed);
      rtx_bytes_.fetch_add(rtx_bytes, std::memory_order_relaxed);
      if (trace::enabled()) {
        const std::uint32_t chan = trace_chan(p, d);
        trace::instant(trace::Cat::kFault, trace::kRtoFire, rtx.size(),
                       chan);
        trace::cwnd_sample(cwnd_now, chan);
      }
      for (auto& m : rtx) inner_->send(p, std::move(m));
    }
    // Belt and braces for pacing: acks normally drain the queue, but an
    // admission opened by this very scan (e.g. the timer collapsing the
    // byte window's occupant) must not strand paced entries.
    drain_paced(p, out);
    if (stopping) continue;
    // Standalone ack owed on the inbound channel (d -> p) once the
    // piggyback window has lapsed.
    Channel& in = ch(d, p);
    std::uint32_t ack = 0;
    std::uint64_t sack = 0;
    bool send_ack = false;
    {
      std::lock_guard<util::Spinlock> g(in.mu);
      if (in.owes_ack && now >= in.ack_deadline_ns) {
        in.owes_ack = false;
        in.ack_deadline_ns = 0;
        owed_acks_total_.fetch_sub(1, std::memory_order_acq_rel);
        ack = in.cum;
        if (sack_) sack = build_sack_bitmap(in.cum, in.ooo);
        send_ack = true;
      }
    }
    if (send_ack) send_standalone_ack(p, d, ack, sack);
  }
  return delivered;
}

std::uint64_t ReliableTransport::next_due_ns(ProcId p) const {
  std::uint64_t due = inner_->next_due_ns(p);
  if (unacked_total_.load(std::memory_order_acquire) == 0 &&
      owed_acks_total_.load(std::memory_order_acquire) == 0) {
    return due;
  }
  const bool stopping = machine_.stopping();
  for (ProcId d = 0; d < procs_; ++d) {
    if (d == p) continue;
    {
      const Channel& out = ch(p, d);
      std::lock_guard<util::Spinlock> g(out.mu);
      if (out.inflight_msgs != 0) {
        due = min_due(due, out.probe_deadline_ns);
      }
    }
    if (stopping) continue;
    const Channel& in = ch(d, p);
    std::lock_guard<util::Spinlock> g(in.mu);
    if (in.owes_ack) due = min_due(due, in.ack_deadline_ns);
  }
  return due;
}

std::uint64_t ReliableTransport::in_flight() const {
  // Unacked messages — transmitted (may need re-shipping) or paced (not
  // yet shipped at all): the machine is not quiescent until every one is
  // confirmed delivered.
  return unacked_total_.load(std::memory_order_acquire) +
         inner_->in_flight();
}

std::uint64_t ReliableTransport::total_messages() const {
  return inner_->total_messages();
}

std::uint64_t ReliableTransport::total_bytes() const {
  return inner_->total_bytes();
}

std::uint64_t ReliableTransport::total_forwarded() const {
  return inner_->total_forwarded();
}

std::uint64_t ReliableTransport::debug_srtt_ns(ProcId src,
                                               ProcId dst) const {
  const Channel& c = ch(src, dst);
  std::lock_guard<util::Spinlock> g(c.mu);
  return c.rtt_valid ? c.srtt_ns : 0;
}

double ReliableTransport::debug_cwnd(ProcId src, ProcId dst) const {
  const Channel& c = ch(src, dst);
  std::lock_guard<util::Spinlock> g(c.mu);
  return c.cwnd;
}

std::size_t ReliableTransport::debug_paced(ProcId src, ProcId dst) const {
  const Channel& c = ch(src, dst);
  std::lock_guard<util::Spinlock> g(c.mu);
  return c.paced.size();
}

void ReliableTransport::reset() {
  const std::size_t n = static_cast<std::size_t>(procs_) *
                        static_cast<std::size_t>(procs_);
  for (std::size_t i = 0; i < n; ++i) {
    Channel& c = ch_[i];
    std::lock_guard<util::Spinlock> g(c.mu);
    c.next_seq = 0;
    c.unacked.clear();
    c.paced.clear();
    c.probe_deadline_ns = 0;
    c.cwnd = window_init_;
    c.inflight_msgs = 0;
    c.inflight_bytes = 0;
    c.srtt_ns = 0;
    c.rttvar_ns = 0;
    c.rtt_valid = false;
    c.backoff_shift = 0;
    c.in_recovery = false;
    c.recovery_end_seq = 0;
    c.cum = 0;
    c.ooo.clear();
    c.owes_ack = false;
    c.ack_deadline_ns = 0;
  }
  unacked_total_.store(0, std::memory_order_relaxed);
  owed_acks_total_.store(0, std::memory_order_relaxed);
  retransmits_.store(0, std::memory_order_relaxed);
  dup_drops_.store(0, std::memory_order_relaxed);
  acks_sent_.store(0, std::memory_order_relaxed);
  fast_retransmits_.store(0, std::memory_order_relaxed);
  rto_fires_.store(0, std::memory_order_relaxed);
  rtx_bytes_.store(0, std::memory_order_relaxed);
  paced_msgs_.store(0, std::memory_order_relaxed);
  max_inflight_msgs_.store(0, std::memory_order_relaxed);
  inner_->reset();
}

}  // namespace tram::fault
