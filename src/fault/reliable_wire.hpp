#pragma once
///
/// \file reliable_wire.hpp
/// \brief On-the-wire framing of the reliability protocol.
///
/// When fault injection is on, every cross-process message — routed or
/// direct, data or control — is prefixed with a ReliableHeader by
/// ReliableTransport::send. The receiver-side interceptor parses it,
/// applies the piggybacked cumulative ack, dedups data sequence numbers,
/// and strips the header (a zero-copy subref of the same slab) before the
/// message reaches its endpoint — the layers above never see the frame.
///
/// Sixteen bytes, a multiple of alignof(WireEntry) (8), so routed/WsP
/// entries behind the stripped header still decode aligned in place.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>

namespace tram::fault {

struct ReliableHeader {
  /// Guards against an unframed payload landing on the reliable path (or
  /// a framed one escaping it).
  std::uint32_t magic = kMagic;
  /// kData carries an application payload behind the header; kAck is a
  /// standalone cumulative ack the interceptor consumes.
  std::uint8_t kind = kData;
  std::uint8_t flags = 0;
  /// Source process of this message: names the (src, dst) channel the
  /// sequence number below lives on.
  std::uint16_t src_proc = 0;
  /// kData: per-(src, dst) channel sequence number, assigned at first
  /// send and reused verbatim by every retransmit of the same payload.
  std::uint32_t seq = 0;
  /// Cumulative ack for the reverse channel (dst -> src): every sequence
  /// number serially before this value has been received. Piggybacked on
  /// all traffic; monotonic, so stale values are harmless.
  std::uint32_t ack = 0;

  static constexpr std::uint32_t kMagic = 0x52454c59;  // "RELY"
  static constexpr std::uint8_t kData = 1;
  static constexpr std::uint8_t kAck = 2;
};
static_assert(sizeof(ReliableHeader) == 16);
static_assert(sizeof(ReliableHeader) % 8 == 0);

/// Parse and validate a reliable message prefix. Truncation, an unknown
/// magic, or an unknown kind is wire corruption, not a recoverable
/// condition — abort in every build mode (mirrors parse_routed_header).
inline ReliableHeader parse_reliable_header(
    std::span<const std::byte> bytes) {
  ReliableHeader h;
  if (bytes.size() < sizeof h) {
    std::fprintf(stderr, "reliable message truncated (%zu bytes)\n",
                 bytes.size());
    std::abort();
  }
  std::memcpy(&h, bytes.data(), sizeof h);
  if (h.magic != ReliableHeader::kMagic) {
    std::fprintf(stderr, "reliable message with bad magic %x\n", h.magic);
    std::abort();
  }
  if (h.kind != ReliableHeader::kData && h.kind != ReliableHeader::kAck) {
    std::fprintf(stderr, "reliable message with unknown kind %u\n", h.kind);
    std::abort();
  }
  return h;
}

}  // namespace tram::fault
