#pragma once
///
/// \file reliable_wire.hpp
/// \brief On-the-wire framing of the reliability protocol.
///
/// When fault injection is on, every cross-process message — routed or
/// direct, data or control — is prefixed with a ReliableHeader by
/// ReliableTransport::send. The receiver-side interceptor parses it,
/// applies the piggybacked cumulative ack + SACK bitmap, dedups data
/// sequence numbers, and strips the header (a zero-copy subref of the
/// same slab) before the message reaches its endpoint — the layers above
/// never see the frame.
///
/// Twenty-four bytes, a multiple of alignof(WireEntry) (8), so routed/WsP
/// entries behind the stripped header still decode aligned in place.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>

namespace tram::fault {

struct ReliableHeader {
  /// Guards against an unframed payload landing on the reliable path (or
  /// a framed one escaping it).
  std::uint32_t magic = kMagic;
  /// kData carries an application payload behind the header; kAck is a
  /// standalone cumulative ack the interceptor consumes.
  std::uint8_t kind = kData;
  std::uint8_t flags = 0;
  /// Source process of this message: names the (src, dst) channel the
  /// sequence number below lives on.
  std::uint16_t src_proc = 0;
  /// kData: per-(src, dst) channel sequence number, assigned at first
  /// send and reused verbatim by every retransmit of the same payload.
  std::uint32_t seq = 0;
  /// Cumulative ack for the reverse channel (dst -> src): every sequence
  /// number serially before this value has been received. Piggybacked on
  /// all traffic; monotonic, so stale values are harmless.
  std::uint32_t ack = 0;
  /// Selective ack for the reverse channel: bit i set means sequence
  /// number `ack + 1 + i` (serial arithmetic, so wrap-safe) has been
  /// received out of order. One ack round names every hole below the
  /// highest received sequence, which is what lets the sender recover a
  /// k-loss burst in one retransmit round instead of k head-of-line RTOs.
  /// A (ack, sack) pair is internally consistent even when stale: the
  /// bits are offsets from its own ack field, and marking an already
  /// acked/sacked sequence again is idempotent.
  std::uint64_t sack = 0;

  static constexpr std::uint32_t kMagic = 0x52454c59;  // "RELY"
  static constexpr std::uint8_t kData = 1;
  static constexpr std::uint8_t kAck = 2;
  /// Width of the SACK window beyond the cumulative ack. FaultConfig
  /// validates window_max <= kSackBits so every pacing-admitted in-flight
  /// sequence is addressable by one bitmap.
  static constexpr std::uint32_t kSackBits = 64;
};
static_assert(sizeof(ReliableHeader) == 24);
static_assert(sizeof(ReliableHeader) % 8 == 0);

/// The sequence number a SACK bit names: bit i of a bitmap carried next
/// to cumulative ack `ack` covers seq `ack + 1 + i`. Plain uint32
/// arithmetic wraps exactly like the sequence space (RFC 1982 serial
/// numbers), so the mapping is correct across the 2^32 boundary.
inline std::uint32_t sack_bit_seq(std::uint32_t ack,
                                  std::uint32_t bit) noexcept {
  return ack + 1u + bit;
}

/// Build the SACK bitmap for a receiver whose next expected sequence is
/// `cum` from its out-of-order set (any iterable of uint32 sequence
/// numbers serially after cum). Sequences beyond the 64-bit window are
/// simply not reported — the cumulative ack still covers them once the
/// holes below fill.
template <typename OooSet>
std::uint64_t build_sack_bitmap(std::uint32_t cum, const OooSet& ooo) {
  std::uint64_t bits = 0;
  for (const std::uint32_t s : ooo) {
    const std::uint32_t off = s - (cum + 1u);  // wraps with the seq space
    if (off < ReliableHeader::kSackBits) bits |= (1ull << off);
  }
  return bits;
}

/// Invoke fn(seq) for every sequence number a (ack, sack) pair reports
/// received out of order, in ascending serial order.
template <typename Fn>
void for_each_sacked(std::uint32_t ack, std::uint64_t sack, Fn&& fn) {
  while (sack != 0) {
    const int bit = __builtin_ctzll(sack);
    sack &= sack - 1;
    fn(sack_bit_seq(ack, static_cast<std::uint32_t>(bit)));
  }
}

/// Parse and validate a reliable message prefix. Truncation, an unknown
/// magic, or an unknown kind is wire corruption, not a recoverable
/// condition — abort in every build mode (mirrors parse_routed_header).
inline ReliableHeader parse_reliable_header(
    std::span<const std::byte> bytes) {
  ReliableHeader h;
  if (bytes.size() < sizeof h) {
    std::fprintf(stderr, "reliable message truncated (%zu bytes)\n",
                 bytes.size());
    std::abort();
  }
  std::memcpy(&h, bytes.data(), sizeof h);
  if (h.magic != ReliableHeader::kMagic) {
    std::fprintf(stderr, "reliable message with bad magic %x\n", h.magic);
    std::abort();
  }
  if (h.kind != ReliableHeader::kData && h.kind != ReliableHeader::kAck) {
    std::fprintf(stderr, "reliable message with unknown kind %u\n", h.kind);
    std::abort();
  }
  return h;
}

}  // namespace tram::fault
