#include "net/cost_model.hpp"

#include <sstream>

namespace tram::net {

std::string CostModel::to_string() const {
  std::ostringstream os;
  os << "alpha_remote=" << alpha_remote_ns << "ns alpha_local="
     << alpha_local_ns << "ns beta_remote=" << beta_remote_ns
     << "ns/B beta_local=" << beta_local_ns << "ns/B inject=" << inject_ns
     << "ns";
  return os.str();
}

}  // namespace tram::net
