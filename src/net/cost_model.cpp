#include "net/cost_model.hpp"

#include <sstream>

namespace tram::net {

std::string CostModel::to_string() const {
  std::ostringstream os;
  os << "alpha_remote=" << alpha_remote_ns << "ns alpha_local="
     << alpha_local_ns << "ns beta_remote=" << beta_remote_ns
     << "ns/B beta_local=" << beta_local_ns << "ns/B inject=" << inject_ns
     << "ns";
  if (link_contention()) {
    os << " link_per_msg=" << link_per_msg_ns
       << "ns link_per_byte=" << link_per_byte_ns << "ns/B";
  }
  return os.str();
}

}  // namespace tram::net
