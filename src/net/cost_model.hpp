#pragma once
///
/// \file cost_model.hpp
/// \brief Alpha-beta (LogGP-flavoured) communication cost model.
///
/// The paper's motivating measurement (Fig. 1) on Delta: the one-way time of
/// a small message is dominated by a per-message latency alpha of a few
/// microseconds, while the per-byte cost beta is ~0.1 ns (about 12 GB/s).
/// This model reproduces that regime, scaled down so benchmarks complete on
/// one box while preserving alpha >> beta * item_size, the ratio all of the
/// paper's effects depend on.
///
/// Three legs are modeled per message:
///   - injection overhead at the source NIC (serializes per source node),
///   - wire latency alpha (remote) or a cheaper alpha_local for same-node
///     cross-process transfers (cma/xpmem-style),
///   - per-byte cost beta charged during injection.

#include <cstdint>
#include <string>

namespace tram::net {

struct CostModel {
  /// One-way latency for a cross-node message, nanoseconds.
  double alpha_remote_ns = 2500.0;
  /// One-way latency for a same-node, cross-process message (shared-memory
  /// transport), nanoseconds.
  double alpha_local_ns = 400.0;
  /// Per-byte cost (inverse bandwidth) for cross-node messages. The paper
  /// measures ~0.1 ns/B on Delta; we keep the same order.
  double beta_remote_ns = 0.1;
  /// Per-byte cost for same-node cross-process copies.
  double beta_local_ns = 0.02;
  /// Per-message injection overhead at the source NIC (the 'o/g' of LogGP).
  /// Serialized per source node, so many processes injecting tiny messages
  /// contend here — but far less than on a single comm thread.
  double inject_ns = 120.0;
  /// Per-link contention: occupancy of the destination node's ingress
  /// link per message / per byte. Cross-node messages converging on one
  /// node serialize through that node's link clock for this occupancy —
  /// mesh hops that share a physical link queue behind each other, which
  /// is what makes send-window pacing measurable. 0 (the default)
  /// preserves the contention-free model exactly.
  double link_per_msg_ns = 0.0;
  double link_per_byte_ns = 0.0;

  /// Time the source NIC is occupied injecting this message.
  std::uint64_t injection_ns(std::size_t bytes, bool same_node) const noexcept {
    const double beta = same_node ? beta_local_ns : beta_remote_ns;
    return static_cast<std::uint64_t>(inject_ns +
                                      beta * static_cast<double>(bytes));
  }

  /// Wire latency after injection completes.
  std::uint64_t wire_ns(bool same_node) const noexcept {
    return static_cast<std::uint64_t>(same_node ? alpha_local_ns
                                                : alpha_remote_ns);
  }

  /// Total modeled one-way time for an uncontended message.
  std::uint64_t message_ns(std::size_t bytes, bool same_node) const noexcept {
    return injection_ns(bytes, same_node) + wire_ns(same_node);
  }

  /// Is per-link contention modeled at all? (Gates the link-clock RMW in
  /// Fabric::send, like the inj != 0 check gates the NIC clock.)
  bool link_contention() const noexcept {
    return link_per_msg_ns > 0.0 || link_per_byte_ns > 0.0;
  }

  /// Time a cross-node message occupies the destination node's ingress
  /// link; later arrivals on the same link queue behind it.
  std::uint64_t link_occupancy_ns(std::size_t bytes) const noexcept {
    return static_cast<std::uint64_t>(
        link_per_msg_ns + link_per_byte_ns * static_cast<double>(bytes));
  }

  /// The paper's closed-form cost of sending z items of b bytes with buffer
  /// size g: (z/g) * alpha + beta * b * z  (section III-C). Used by the
  /// ablate_formulas bench and tests.
  double aggregated_send_cost_ns(double z, double b, double g,
                                 bool same_node = false) const noexcept {
    const double alpha = same_node ? alpha_local_ns : alpha_remote_ns;
    const double beta = same_node ? beta_local_ns : beta_remote_ns;
    return (z / g) * alpha + beta * b * z;
  }

  std::string to_string() const;

  /// A model with all costs zero: used by tests that need deterministic,
  /// immediate delivery.
  static CostModel zero() noexcept {
    CostModel m;
    m.alpha_remote_ns = m.alpha_local_ns = 0.0;
    m.beta_remote_ns = m.beta_local_ns = 0.0;
    m.inject_ns = 0.0;
    return m;
  }

  /// The default scaled-down Delta-like model (alpha ~2.5us remote).
  static CostModel delta_like() noexcept { return CostModel{}; }
};

}  // namespace tram::net
