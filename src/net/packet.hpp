#pragma once
///
/// \file packet.hpp
/// \brief Wire-level message exchanged between simulated processes.
///
/// A Packet is what a comm thread hands to the Fabric: an opaque payload
/// plus routing metadata. The runtime layers its own Message envelope inside
/// the payload; the fabric only reads the routing fields. The payload is the
/// same pooled, refcounted buffer the originating Message carried — crossing
/// the Message/Packet boundary moves a handle, never bytes.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/payload_pool.hpp"
#include "util/types.hpp"

namespace tram::net {

struct Packet {
  ProcId src_proc = 0;
  ProcId dst_proc = 0;
  /// Destination worker within dst_proc's numbering (global WorkerId);
  /// kInvalidWorker means "any worker of the process" (runtime picks).
  WorkerId dst_worker = kInvalidWorker;
  /// Originating worker (for delivery-side bookkeeping).
  WorkerId src_worker = kInvalidWorker;
  /// Runtime endpoint the payload is dispatched to on arrival.
  EndpointId endpoint = 0;
  /// Expedited packets are delivered ahead of ordinary ones by the
  /// destination comm thread (Charm++ expedited entry methods; the paper
  /// uses them to prioritize TramLib messages).
  bool expedited = false;
  /// Transport hops the content has already taken (mesh routing; see
  /// rt::Message::hops). Carried so the delivery side can keep counting.
  std::uint8_t hops = 0;
  /// Wall-clock time (ns) at which the fabric will release the packet to
  /// the destination. Filled in by Fabric::send.
  std::uint64_t arrival_ns = 0;
  /// Time the packet was handed to the fabric (for fabric-level stats).
  std::uint64_t send_ns = 0;
  util::PayloadRef payload;
  /// Additional payload extents (see rt::Message::extras): logically
  /// concatenated after `payload`. The fabric treats them as wire bytes; a
  /// real NIC would gather-send the iovec.
  std::vector<util::PayloadRef> extras;

  std::size_t wire_bytes() const noexcept {
    // Payload plus a fixed header charge, mirroring a real transport.
    std::size_t n = payload.size() + kHeaderBytes;
    for (const auto& e : extras) n += e.size();
    return n;
  }
  static constexpr std::size_t kHeaderBytes = 32;
};

/// Orders packets by release time for the destination-side reorder heap.
struct PacketLater {
  bool operator()(const Packet& a, const Packet& b) const noexcept {
    if (a.arrival_ns != b.arrival_ns) return a.arrival_ns > b.arrival_ns;
    // Expedited first among equal arrivals.
    return a.expedited < b.expedited;
  }
};

}  // namespace tram::net
