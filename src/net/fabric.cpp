#include "net/fabric.hpp"

#include <stdexcept>

#include "util/timebase.hpp"

namespace tram::net {

Fabric::Fabric(util::Topology topo, CostModel model)
    : topo_(topo), model_(model) {
  nic_busy_until_.reserve(topo_.nodes());
  link_busy_until_.reserve(topo_.nodes());
  for (int n = 0; n < topo_.nodes(); ++n) {
    nic_busy_until_.push_back(
        std::make_unique<util::Padded<std::atomic<std::uint64_t>>>());
    link_busy_until_.push_back(
        std::make_unique<util::Padded<std::atomic<std::uint64_t>>>());
  }
  ingress_.reserve(topo_.procs());
  counters_.reserve(topo_.procs());
  for (int p = 0; p < topo_.procs(); ++p) {
    ingress_.push_back(std::make_unique<IngressSlot>());
    counters_.push_back(std::make_unique<util::Padded<FabricCounters>>());
  }
}

std::uint64_t Fabric::send(Packet&& p) {
  if (p.dst_proc < 0 || p.dst_proc >= topo_.procs()) {
    throw std::out_of_range("Fabric::send: bad dst_proc");
  }
  const NodeId src_node = topo_.node_of_proc(p.src_proc);
  const NodeId dst_node = topo_.node_of_proc(p.dst_proc);
  const bool same_node = src_node == dst_node;
  const std::size_t bytes = p.wire_bytes();
  const std::uint64_t now = util::now_ns();
  p.send_ns = now;

  std::uint64_t arrival;
  if (same_node) {
    // Shared-memory transport: no NIC serialization, cheap alpha.
    arrival = now + model_.message_ns(bytes, /*same_node=*/true);
  } else {
    // Serialize injection through the source node's NIC clock. A message
    // with no injection cost occupies the NIC for zero time, so it never
    // pushes the clock forward — skip the contended RMW entirely (this is
    // what makes CostModel::zero() runs cheap without a cached flag).
    const std::uint64_t inj = model_.injection_ns(bytes, false);
    std::uint64_t end = now;
    if (inj != 0) {
      auto& busy = nic_busy_until_[src_node]->value;
      std::uint64_t prev = busy.load(std::memory_order_relaxed);
      std::uint64_t start;
      do {
        start = prev > now ? prev : now;
        end = start + inj;
      } while (!busy.compare_exchange_weak(prev, end,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed));
    }
    arrival = end + model_.wire_ns(false);
    // Serialize through the destination node's ingress link. Messages
    // converging on one node (a mesh hop's fan-in, an incast) queue
    // behind each other for their link occupancy — the contention that
    // makes a sender-side congestion window earn its keep. The same
    // CAS-max loop as the NIC clock, keyed by destination node.
    const std::uint64_t occ = model_.link_occupancy_ns(bytes);
    if (occ != 0) {
      auto& link = link_busy_until_[dst_node]->value;
      std::uint64_t prev = link.load(std::memory_order_relaxed);
      std::uint64_t start;
      std::uint64_t lend;
      do {
        start = prev > arrival ? prev : arrival;
        lend = start + occ;
      } while (!link.compare_exchange_weak(prev, lend,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed));
      link_busy_ns_.fetch_add(occ, std::memory_order_relaxed);
      const std::uint64_t queued = start - arrival;
      if (queued != 0) {
        std::uint64_t cur =
            link_queue_ns_max_.load(std::memory_order_relaxed);
        while (cur < queued && !link_queue_ns_max_.compare_exchange_weak(
                                   cur, queued, std::memory_order_relaxed)) {
        }
      }
      arrival = lend;
    }
  }
  p.arrival_ns = arrival;

  auto& src_ctr = counters_[p.src_proc]->value;
  src_ctr.messages_sent.fetch_add(1, std::memory_order_relaxed);
  src_ctr.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  if (same_node) {
    src_ctr.local_messages_sent.fetch_add(1, std::memory_order_relaxed);
  }
  total_pushed_.fetch_add(1, std::memory_order_relaxed);

  ingress_[p.dst_proc]->queue.push(std::move(p));
  return arrival;
}

void Fabric::note_received(ProcId dst, const Packet&) {
  counters_[dst]->value.messages_received.fetch_add(
      1, std::memory_order_relaxed);
  total_popped_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Fabric::total_messages_sent() const {
  std::uint64_t total = 0;
  for (const auto& c : counters_) {
    total += c->value.messages_sent.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Fabric::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& c : counters_) {
    total += c->value.bytes_sent.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Fabric::in_flight() const {
  // Read popped before pushed: if a push lands between the two loads we may
  // report a phantom in-flight packet (safe: quiescence just retries), but
  // never miss a real one.
  const std::uint64_t popped = total_popped_.load(std::memory_order_acquire);
  const std::uint64_t pushed = total_pushed_.load(std::memory_order_acquire);
  return pushed - popped;
}

void Fabric::reset() {
  for (auto& n : nic_busy_until_) {
    n->value.store(0, std::memory_order_relaxed);
  }
  for (auto& n : link_busy_until_) {
    n->value.store(0, std::memory_order_relaxed);
  }
  link_busy_ns_.store(0, std::memory_order_relaxed);
  link_queue_ns_max_.store(0, std::memory_order_relaxed);
  for (auto& c : counters_) {
    c->value.messages_sent.store(0, std::memory_order_relaxed);
    c->value.bytes_sent.store(0, std::memory_order_relaxed);
    c->value.messages_received.store(0, std::memory_order_relaxed);
    c->value.local_messages_sent.store(0, std::memory_order_relaxed);
  }
}

}  // namespace tram::net
