#pragma once
///
/// \file fabric.hpp
/// \brief Simulated interconnect between simulated processes.
///
/// The fabric replaces the Delta network of the paper. Design:
///
///  - send(): the calling (comm) thread computes the packet's arrival time
///    from the CostModel. Injection serializes per *source node* through an
///    atomic busy-until timestamp, modeling a NIC: back-to-back messages
///    from one node queue behind each other for their injection time, then
///    spend the wire latency alpha in flight.
///  - The packet is pushed to the destination process's ingress MPSC queue
///    immediately; the *receiver* refrains from processing it until
///    wall-clock time reaches arrival_ns (see the reorder heap in
///    rt::ModeledFabricTransport). This gives real wall-clock latency
///    shapes without any dedicated network threads.
///  - With CostModel::zero() every modeled cost is 0, so arrival_ns equals
///    the send time and receivers process immediately (deterministic
///    tests); rt::InlineTransport skips the fabric entirely for the same
///    purpose, without the per-send NIC-clock CAS.
///
/// Same-node cross-process messages take the cheaper local alpha/beta and
/// do not serialize through the node NIC (they model cma/xpmem copies).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/cost_model.hpp"
#include "net/packet.hpp"
#include "util/mpsc_queue.hpp"
#include "util/spinlock.hpp"
#include "util/topology.hpp"

namespace tram::net {

/// Per-process fabric counters. Written by the owning comm thread / readers
/// after quiescence; relaxed atomics suffice.
struct FabricCounters {
  std::atomic<std::uint64_t> messages_sent{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> messages_received{0};
  std::atomic<std::uint64_t> local_messages_sent{0};  // same-node subset
};

class Fabric {
 public:
  Fabric(util::Topology topo, CostModel model);

  const util::Topology& topology() const noexcept { return topo_; }
  const CostModel& cost_model() const noexcept { return model_; }

  /// Hand a packet to the network. Fills in send_ns/arrival_ns, accounts
  /// stats, and enqueues on the destination ingress. Thread-safe. Returns
  /// the computed arrival time.
  std::uint64_t send(Packet&& p);

  /// Destination ingress queue for a process; drained by its comm thread.
  util::MpscQueue<Packet>& ingress(ProcId p) { return ingress_[p]->queue; }

  /// Counters for one process (src side of sent, dst side of received).
  FabricCounters& counters(ProcId p) { return counters_[p]->value; }

  /// Sum of messages sent across all processes.
  std::uint64_t total_messages_sent() const;
  std::uint64_t total_bytes_sent() const;
  /// Per-link contention counters (all zero unless the cost model sets
  /// link_per_msg_ns/link_per_byte_ns): total time cross-node messages
  /// occupied destination ingress links, and the worst single queueing
  /// delay any message spent waiting behind others for its link.
  std::uint64_t link_busy_ns() const noexcept {
    return link_busy_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_link_queue_ns() const noexcept {
    return link_queue_ns_max_.load(std::memory_order_relaxed);
  }
  /// Messages handed to the fabric but not yet popped by a receiver.
  /// Used by quiescence detection: the system cannot be quiescent while
  /// packets are in flight.
  std::uint64_t in_flight() const;

  /// Reset all counters and injection clocks (between benchmark trials).
  void reset();

 private:
  struct IngressSlot {
    util::MpscQueue<Packet> queue;
  };

  util::Topology topo_;
  CostModel model_;
  // One NIC busy-until clock per node, padded to avoid false sharing.
  std::vector<std::unique_ptr<util::Padded<std::atomic<std::uint64_t>>>>
      nic_busy_until_;
  // One ingress-link busy-until clock per node: cross-node messages
  // converging on a node serialize through it for their link occupancy
  // (CostModel::link_occupancy_ns). Untouched when contention is off.
  std::vector<std::unique_ptr<util::Padded<std::atomic<std::uint64_t>>>>
      link_busy_until_;
  std::vector<std::unique_ptr<IngressSlot>> ingress_;
  std::vector<std::unique_ptr<util::Padded<FabricCounters>>> counters_;
  std::atomic<std::uint64_t> total_pushed_{0};
  std::atomic<std::uint64_t> total_popped_{0};
  std::atomic<std::uint64_t> link_busy_ns_{0};
  std::atomic<std::uint64_t> link_queue_ns_max_{0};

  friend class FabricReceipt;

 public:
  /// Receivers must call this after popping a packet from ingress() so
  /// in_flight() stays accurate.
  void note_received(ProcId dst, const Packet& p);
};

}  // namespace tram::net
