#pragma once
///
/// \file merge.hpp
/// \brief Loser-tree k-way merge over sorted record runs.
///
/// A loser tree beats a binary heap for merging: each pop replays one
/// leaf-to-root path (log2 k comparisons, no sift-down branching), and
/// the winner is always at hand in node 0. The tree is stored implicitly
/// in an array of 2k slots — internal nodes 1..k-1 hold the *losers* of
/// their subtree matches, leaf j sits at slot k+j, node 0 holds the
/// overall winner.
///
/// Cursors are any type with
///   const Record* current()  — head of the run, nullptr when exhausted
///   void advance()           — step past the head
/// Two implementations cover the shuffle's needs: MemoryRunCursor walks
/// an in-memory sorted tail, SpillRunCursor streams a sorted run back
/// from a spill file through a small refill buffer.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "io/spill_file.hpp"
#include "shuffle/record.hpp"

namespace tram::shuffle {

/// Cursor over a sorted in-memory run (the unspilled staging tail).
class MemoryRunCursor {
 public:
  explicit MemoryRunCursor(std::span<const Record> run) noexcept
      : cur_(run.data()), end_(run.data() + run.size()) {}

  const Record* current() const noexcept { return cur_ < end_ ? cur_ : nullptr; }
  void advance() noexcept { ++cur_; }

 private:
  const Record* cur_;
  const Record* end_;
};

/// Cursor over a sorted run in a spill file, streamed through a refill
/// buffer the caller provides (sized by the merge's memory budget, whole
/// records only).
class SpillRunCursor {
 public:
  SpillRunCursor(io::RunReader reader, std::span<std::byte> buf) noexcept
      : reader_(reader), buf_(buf) {
    refill();
  }

  const Record* current() const noexcept { return idx_ < count_ ? &records()[idx_] : nullptr; }

  void advance() noexcept {
    if (++idx_ >= count_) refill();
  }

 private:
  const Record* records() const noexcept {
    return reinterpret_cast<const Record*>(buf_.data());
  }

  void refill() noexcept {
    const std::size_t whole = (buf_.size() / sizeof(Record)) * sizeof(Record);
    const std::size_t got = reader_.refill(buf_.subspan(0, whole));
    count_ = got / sizeof(Record);
    idx_ = 0;
  }

  io::RunReader reader_;
  std::span<std::byte> buf_;
  std::size_t idx_ = 0;
  std::size_t count_ = 0;
};

/// K-way merge. Build once over k cursors, then pop() until it returns
/// nullptr. Ties break toward the lower-index cursor, which together
/// with the (key, payload) total order makes the merged stream fully
/// deterministic.
template <typename Cursor>
class LoserTree {
 public:
  explicit LoserTree(std::vector<Cursor> cursors) : cursors_(std::move(cursors)) {
    const std::size_t k = cursors_.size();
    if (k == 0) return;
    tree_.assign(2 * k, 0);
    for (std::size_t j = 0; j < k; ++j) tree_[k + j] = j;
    if (k > 1) tree_[0] = build(1);
  }

  /// The next record in merged order, or nullptr when all runs are dry.
  /// The returned pointer is valid until the next pop() call.
  const Record* pop() {
    const std::size_t k = cursors_.size();
    if (k == 0) return nullptr;
    const std::size_t w = tree_[0];
    const Record* r = cursors_[w].current();
    if (r == nullptr) return nullptr;
    out_ = *r;  // advance() may refill the buffer r points into
    cursors_[w].advance();
    if (k > 1) replay(w);
    return &out_;
  }

 private:
  /// True when cursor a's head orders before cursor b's head (exhausted
  /// cursors sort last; equal heads break toward the lower index).
  bool wins(std::size_t a, std::size_t b) const {
    const Record* ra = cursors_[a].current();
    const Record* rb = cursors_[b].current();
    if (ra == nullptr) return false;
    if (rb == nullptr) return true;
    if (*ra < *rb) return true;
    if (*rb < *ra) return false;
    return a < b;
  }

  /// Recursively play the subtree under internal node `node`, storing
  /// losers on the way up; returns the subtree's winner.
  std::size_t build(std::size_t node) {
    const std::size_t k = cursors_.size();
    const std::size_t left = 2 * node;
    const std::size_t lw = left >= k ? tree_[left] : build(left);
    const std::size_t rw = left + 1 >= k ? tree_[left + 1] : build(left + 1);
    if (wins(lw, rw)) {
      tree_[node] = rw;
      return lw;
    }
    tree_[node] = lw;
    return rw;
  }

  /// After cursor `w` advanced, replay its leaf-to-root path.
  void replay(std::size_t w) {
    const std::size_t k = cursors_.size();
    std::size_t winner = w;
    for (std::size_t node = (k + w) / 2; node >= 1; node /= 2) {
      if (wins(tree_[node], winner)) {
        const std::size_t tmp = winner;
        winner = tree_[node];
        tree_[node] = tmp;
      }
    }
    tree_[0] = winner;
  }

  std::vector<Cursor> cursors_;
  std::vector<std::size_t> tree_;  ///< node 0 = winner, 1..k-1 = losers, k+j = leaf j
  Record out_{};
};

}  // namespace tram::shuffle
