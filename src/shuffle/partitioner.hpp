#pragma once
///
/// \file partitioner.hpp
/// \brief Key-range → destination worker map for the shuffle.
///
/// Contiguous key ranges map to workers in id order, so concatenating
/// the per-worker sorted outputs in worker-id order yields the globally
/// sorted stream — no final merge across workers is needed. The split
/// point is computed with a 128-bit multiply (owner = key * W >> 64),
/// which divides the full u64 key space into W near-equal ranges
/// without divisions on the hot path.

#include <cstdint>

#include "util/types.hpp"

namespace tram::shuffle {

class Partitioner {
 public:
  explicit Partitioner(std::uint32_t workers) noexcept : workers_(workers) {}

  WorkerId owner(std::uint64_t key) const noexcept {
    return static_cast<WorkerId>(
        (static_cast<unsigned __int128>(key) * workers_) >> 64);
  }

  std::uint32_t workers() const noexcept { return workers_; }

 private:
  std::uint32_t workers_;
};

}  // namespace tram::shuffle
