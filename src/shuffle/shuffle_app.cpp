#include "shuffle/shuffle_app.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "shuffle/merge.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace tram::shuffle {

namespace {

std::uint64_t pow2_floor(std::uint64_t v) noexcept {
  std::uint64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

std::span<const std::byte> record_bytes(const Record* r, std::size_t n) {
  return std::as_bytes(std::span<const Record>(r, n));
}

}  // namespace

ShuffleApp::ShuffleApp(rt::Machine& machine, const ShuffleParams& params)
    : machine_(machine),
      params_(params),
      input_(params.input_path),
      partitioner_(static_cast<std::uint32_t>(machine.topology().workers())),
      // The private pool is the budget ledger: max slab class = one slice,
      // so every acquire below is charged its exact power-of-two size.
      pool_(util::PayloadPool::Config{
          .min_slab_bytes = 64,
          .max_slab_bytes = static_cast<std::size_t>(pow2_floor(
              params.mem_budget_bytes /
              (static_cast<std::uint64_t>(machine.topology().workers()) + 1))),
          .max_slabs_per_class = 0}) {
  if (input_.size() % sizeof(Record) != 0) {
    throw std::runtime_error(
        "ShuffleApp: input is not a whole number of records");
  }
  records_total_ = input_.size() / sizeof(Record);
  const auto workers = static_cast<std::uint64_t>(machine.topology().workers());
  slice_bytes_ = pow2_floor(params_.mem_budget_bytes / (workers + 1));
  if (slice_bytes_ < 128) {
    // One slice must hold ≥ 2 records and admit a ≥ 2-way spill merge
    // (max fan-in is slice/64, see merge_worker).
    throw std::runtime_error(
        "ShuffleApp: mem budget below 128 bytes per worker slice");
  }
  slice_records_ = static_cast<std::size_t>(slice_bytes_) / sizeof(Record);

  auto deliver = [this](rt::Worker& w, const Record& r) {
    this->deliver(w, r);
  };
  if (core::is_routed(params_.tram.scheme)) {
    routed_ = std::make_unique<route::RoutedDomain<Record>>(machine,
                                                            params_.tram,
                                                            deliver);
  } else {
    direct_ = std::make_unique<core::TramDomain<Record>>(machine, params_.tram,
                                                         deliver);
  }
  sinks_.resize(static_cast<std::size_t>(workers));
}

void ShuffleApp::deliver(rt::Worker& w, const Record& r) {
  if (partitioner_.owner(r.key) != w.id()) {
    std::fprintf(stderr,
                 "ShuffleApp: record with key %llu misrouted to worker %d "
                 "(owner is %d)\n",
                 static_cast<unsigned long long>(r.key), w.id(),
                 partitioner_.owner(r.key));
    std::abort();
  }
  auto& s = sinks_[static_cast<std::size_t>(w.id())];
  if (s.buf.empty()) {
    s.buf = pool_.acquire(static_cast<std::size_t>(slice_bytes_));
  }
  auto* recs = reinterpret_cast<Record*>(s.buf.data());
  recs[s.count++] = r;
  ++s.delivered;
  if (s.count == slice_records_) {
    trace::instant(trace::Cat::kShuffle, trace::kSliceFill, s.count,
                   static_cast<std::uint32_t>(w.id()));
    spill(w.id(), s);
  }
}

void ShuffleApp::spill(WorkerId w, Sink& s) {
  const std::uint64_t t0 = trace::maybe_now();
  const std::size_t n = s.count;
  auto* recs = reinterpret_cast<Record*>(s.buf.data());
  std::sort(recs, recs + s.count);
  if (!s.writer) {
    s.writer = std::make_unique<io::SpillWriter>(spill_path(w, 0));
  }
  s.writer->write_run(record_bytes(recs, s.count));
  s.count = 0;
  trace::complete(trace::Cat::kShuffle, trace::kSpill, t0, n,
                  static_cast<std::uint32_t>(w));
}

std::string ShuffleApp::spill_path(WorkerId w, int pass) const {
  std::string p = params_.spill_dir + "/shuffle_w" + std::to_string(w);
  if (pass > 0) p += ".m" + std::to_string(pass);
  return p + ".spill";
}

ShuffleResult ShuffleApp::run(std::uint64_t seed) {
  for (auto& s : sinks_) s = Sink{};  // drop prior buffers before re-arming
  pool_.reset_stats();
  if (direct_) direct_->reset_stats();
  if (routed_) routed_->reset_stats();

  const auto workers = static_cast<std::uint64_t>(machine_.topology().workers());
  const std::uint64_t total = records_total_;
  const bool routed = routed_ != nullptr;
  const auto result = machine_.run(
      [this, total, workers, routed](rt::Worker& w) {
        auto* direct = direct_ ? &direct_->on(w) : nullptr;
        auto* mesh = routed_ ? &routed_->on(w) : nullptr;
        const auto id = static_cast<std::uint64_t>(w.id());
        const std::uint64_t begin = total * id / workers;
        const std::uint64_t end = total * (id + 1) / workers;
        io::ChunkReader rd(
            input_.bytes().subspan(begin * sizeof(Record),
                                   (end - begin) * sizeof(Record)),
            sizeof(Record), params_.chunk_bytes);
        std::uint64_t i = 0;
        for (auto chunk = rd.next(); !chunk.empty(); chunk = rd.next()) {
          const auto* recs =
              reinterpret_cast<const Record*>(chunk.data());
          const std::size_t n = chunk.size() / sizeof(Record);
          for (std::size_t j = 0; j < n; ++j) {
            const auto dest = partitioner_.owner(recs[j].key);
            if (routed) {
              mesh->insert(dest, recs[j]);
            } else {
              direct->insert(dest, recs[j]);
            }
            if (params_.progress_interval != 0 &&
                ++i % params_.progress_interval == 0) {
              w.progress();
            }
          }
        }
        if (routed) {
          mesh->flush_all();
        } else {
          direct->flush_all();
        }
      },
      seed);

  ShuffleResult res;
  res.run = result;
  res.tram = direct_ ? direct_->aggregate_stats() : routed_->aggregate_stats();
  res.max_reserved_buffers = direct_ ? direct_->max_reserved_buffers()
                                     : routed_->max_reserved_buffers();
  res.records_in = total;
  res.budget_bytes = params_.mem_budget_bytes;

  // Quiescence reached: every record sits in a staging tail or a spill
  // run. Merge worker by worker in id order — ranges are contiguous per
  // worker, so the concatenation is the globally sorted stream.
  std::FILE* out = nullptr;
  if (!params_.output_path.empty()) {
    out = std::fopen(params_.output_path.c_str(), "wb");
    if (out == nullptr) {
      throw std::runtime_error("ShuffleApp: cannot create output '" +
                               params_.output_path + "'");
    }
  }
  res.sorted = true;
  Record prev{};
  bool any_out = false;
  Crc64 crc;
  for (WorkerId w = 0; w < static_cast<WorkerId>(workers); ++w) {
    merge_worker(w, out, res, crc, prev, any_out);
  }
  res.output_crc = crc.value();
  if (out != nullptr) std::fclose(out);

  std::uint64_t delivered = 0;
  for (const auto& s : sinks_) delivered += s.delivered;
  res.staging_peak_bytes = pool_.stats().peak_outstanding_bytes;
  res.verified = res.records_out == res.records_in &&
                 delivered == res.records_in &&
                 res.tram.items_delivered == res.records_in && res.sorted &&
                 res.staging_peak_bytes <= res.budget_bytes;
  return res;
}

void ShuffleApp::merge_worker(WorkerId w, std::FILE* out, ShuffleResult& res,
                              Crc64& crc, Record& prev, bool& any_out) {
  const std::uint64_t t0 = trace::maybe_now();
  auto& s = sinks_[static_cast<std::size_t>(w)];
  auto* tail = s.buf.empty() ? nullptr : reinterpret_cast<Record*>(s.buf.data());
  if (tail != nullptr) std::sort(tail, tail + s.count);

  // Cascade over-wide spill sets down to the refill-buffer fan-in limit:
  // k cursors share one slice of budget, each needs a ≥ 64-byte
  // (min slab class) power-of-two buffer, so k ≤ slice/64 per merge.
  const std::size_t max_fanin =
      static_cast<std::size_t>(slice_bytes_) / 64;
  std::vector<io::SpillRun> runs;
  std::string cur_path;
  std::unique_ptr<io::SpillWriter> cascade;  // keeps last pass's index alive
  if (s.writer) {
    s.writer->flush();
    runs = s.writer->runs();
    res.spill_bytes += s.writer->bytes_written();
    res.spill_runs += runs.size();
    cur_path = spill_path(w, 0);
    int pass = 0;
    while (runs.size() > max_fanin) {
      ++pass;
      trace::instant(trace::Cat::kShuffle, trace::kMergePass, runs.size(),
                     static_cast<std::uint32_t>(pass));
      auto next = std::make_unique<io::SpillWriter>(spill_path(w, pass));
      io::SpillReader in(cur_path);
      for (std::size_t base = 0; base < runs.size(); base += max_fanin) {
        const std::size_t k = std::min(max_fanin, runs.size() - base);
        const std::size_t refill = static_cast<std::size_t>(
            pow2_floor(slice_bytes_ / k));
        std::vector<util::PayloadRef> bufs;
        std::vector<SpillRunCursor> cursors;
        bufs.reserve(k);
        cursors.reserve(k);
        for (std::size_t j = 0; j < k; ++j) {
          bufs.push_back(pool_.acquire(refill));
          cursors.emplace_back(in.run(runs[base + j]), bufs.back().span());
        }
        if (k > res.merge_fanin_max) res.merge_fanin_max = k;
        LoserTree<SpillRunCursor> tree(std::move(cursors));
        next->begin_run();
        std::array<Record, 256> batch;
        std::size_t bn = 0;
        for (const Record* r = tree.pop(); r != nullptr; r = tree.pop()) {
          batch[bn++] = *r;
          if (bn == batch.size()) {
            next->append(record_bytes(batch.data(), bn));
            bn = 0;
          }
        }
        if (bn != 0) next->append(record_bytes(batch.data(), bn));
        next->end_run();
      }
      next->flush();
      res.spill_bytes += next->bytes_written();
      if (pass > 1) std::remove(cur_path.c_str());
      runs = next->runs();
      cur_path = spill_path(w, pass);
      cascade = std::move(next);
    }
  }

  // Final merge: surviving spill runs (streamed through refill buffers)
  // plus the in-memory tail, straight into the output + CRC.
  std::vector<util::PayloadRef> bufs;
  std::optional<io::SpillReader> reader;
  const std::size_t k_spill = runs.size();
  const std::size_t k_total = k_spill + (s.count != 0 ? 1 : 0);
  if (k_total > res.merge_fanin_max) res.merge_fanin_max = k_total;

  // Both cursor kinds in one tree via a tiny sum-type cursor.
  struct AnyCursor {
    std::optional<SpillRunCursor> spill;
    std::optional<MemoryRunCursor> mem;
    const Record* current() const noexcept {
      return spill ? spill->current() : mem->current();
    }
    void advance() noexcept {
      if (spill) {
        spill->advance();
      } else {
        mem->advance();
      }
    }
  };
  std::vector<AnyCursor> cursors;
  cursors.reserve(k_total);
  if (k_spill != 0) {
    reader.emplace(cur_path);
    const std::size_t refill =
        static_cast<std::size_t>(pow2_floor(slice_bytes_ / k_spill));
    bufs.reserve(k_spill);
    for (const auto& r : runs) {
      bufs.push_back(pool_.acquire(refill));
      AnyCursor c;
      c.spill.emplace(reader->run(r), bufs.back().span());
      cursors.push_back(std::move(c));
    }
  }
  if (s.count != 0) {
    AnyCursor c;
    c.mem.emplace(std::span<const Record>(tail, s.count));
    cursors.push_back(std::move(c));
  }

  LoserTree<AnyCursor> tree(std::move(cursors));
  std::array<Record, 256> batch;
  std::size_t bn = 0;
  auto flush_batch = [&] {
    const auto bytes = record_bytes(batch.data(), bn);
    crc.update(bytes);
    if (out != nullptr &&
        std::fwrite(bytes.data(), 1, bytes.size(), out) != bytes.size()) {
      throw std::runtime_error("ShuffleApp: short write to output");
    }
    bn = 0;
  };
  for (const Record* r = tree.pop(); r != nullptr; r = tree.pop()) {
    if (any_out && *r < prev) res.sorted = false;
    prev = *r;
    any_out = true;
    ++res.records_out;
    batch[bn++] = *r;
    if (bn == batch.size()) flush_batch();
  }
  if (bn != 0) flush_batch();

  // Release this worker's budget share and clean its spill files.
  s.buf = util::PayloadRef{};
  s.count = 0;
  if (s.writer) {
    std::remove(spill_path(w, 0).c_str());
    s.writer.reset();
  }
  if (!cur_path.empty() && cur_path != spill_path(w, 0)) {
    std::remove(cur_path.c_str());
  }
  trace::complete(trace::Cat::kShuffle, trace::kMergeWorker, t0, k_total,
                  static_cast<std::uint32_t>(w));
}

std::uint64_t write_random_input(const std::string& path,
                                 std::uint64_t records, std::uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("write_random_input: cannot create '" + path +
                             "'");
  }
  std::uint64_t state = seed;
  std::array<Record, 1024> batch;
  std::uint64_t written = 0;
  while (written < records) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch.size(), records - written));
    for (std::size_t i = 0; i < n; ++i) {
      // payload = global index keeps every record distinct, so the
      // (key, payload) sort order — and the CRC — is unique.
      batch[i] = Record{util::splitmix64(state), written + i};
    }
    if (std::fwrite(batch.data(), sizeof(Record), n, f) != n) {
      std::fclose(f);
      throw std::runtime_error("write_random_input: short write");
    }
    written += n;
  }
  std::fclose(f);
  return written * sizeof(Record);
}

std::uint64_t reference_sort_crc(const std::string& path) {
  io::MappedFile in(path);
  const auto bytes = in.bytes();
  if (bytes.size() % sizeof(Record) != 0) {
    throw std::runtime_error("reference_sort_crc: not whole records");
  }
  std::vector<Record> all(bytes.size() / sizeof(Record));
  std::memcpy(all.data(), bytes.data(), bytes.size());
  std::sort(all.begin(), all.end());
  Crc64 crc;
  crc.update(record_bytes(all.data(), all.size()));
  return crc.value();
}

}  // namespace tram::shuffle
