#pragma once
///
/// \file shuffle_app.hpp
/// \brief Out-of-core streaming shuffle: mmap'd sources → key-range mesh
///        routing → spill/merge sinks.
///
/// The first app in the repo whose working set is deliberately larger
/// than its memory budget — the workload the paper's O(d·N^(1/d))
/// live-buffer bound exists for. Data flow:
///
///   input file (mmap, chunked)                    sources
///        │ insert(owner(key), record)
///        ▼
///   TramDomain / RoutedDomain (key-range partitioned)
///        │ deliver on owner worker
///        ▼
///   staging slice (budgeted PayloadPool)          sinks
///        │ slice full → sort → spill run
///        ▼
///   spill file (sorted runs + index)
///        │ at quiescence: loser-tree k-way merge
///        ▼
///   sorted output file (+ CRC64)
///
/// Memory-budget model: the app owns a private PayloadPool whose peak
/// outstanding bytes are the budget's ledger. With W workers each
/// staging one power-of-two slice of floor-pow2(budget/(W+1)) bytes,
/// the staging phase holds at most W slices and the merge phase adds at
/// most one slice of refill buffers (k cursors × floor-pow2(slice/k)),
/// so peak ≤ (W+1)·slice ≤ budget by construction — and the pool
/// high-water asserts it after the fact.
///
/// Verification is a pure function of the record multiset: the CRC64 of
/// the merged stream (records ordered by the total (key, payload) order,
/// per-worker outputs concatenated in worker-id order = globally sorted)
/// must match an in-memory reference sort, bit-identically across
/// aggregation schemes, transports, fault injection, and repeated runs.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tram.hpp"
#include "io/mapped_file.hpp"
#include "io/spill_file.hpp"
#include "route/routed_domain.hpp"
#include "runtime/machine.hpp"
#include "shuffle/partitioner.hpp"
#include "shuffle/record.hpp"
#include "util/payload_pool.hpp"

namespace tram::shuffle {

struct ShuffleParams {
  /// Input file of packed Records (see write_random_input).
  std::string input_path;
  /// Merged sorted output. Empty = discard (CRC is still computed).
  std::string output_path;
  /// Directory for per-worker spill files.
  std::string spill_dir = ".";
  /// Staging + merge memory budget, machine-wide, in bytes.
  std::uint64_t mem_budget_bytes = 2ull << 20;
  /// Source-side mmap chunk size (rounded down to whole records).
  std::size_t chunk_bytes = 1 << 20;
  core::TramConfig tram;
  /// Pump progress() every this many source inserts.
  std::uint32_t progress_interval = 64;
};

struct ShuffleResult {
  rt::Machine::RunResult run;
  core::WorkerTramStats tram;
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  /// CRC64 over the merged sorted byte stream.
  std::uint64_t output_crc = 0;
  /// Total bytes written to spill files (including cascade re-writes).
  std::uint64_t spill_bytes = 0;
  /// Sorted runs spilled across all workers (first-level only).
  std::uint64_t spill_runs = 0;
  /// Largest k in any single k-way merge (memory tail included).
  std::uint64_t merge_fanin_max = 0;
  /// Staging-pool high-water mark — must stay ≤ mem_budget_bytes.
  std::uint64_t staging_peak_bytes = 0;
  std::uint64_t budget_bytes = 0;
  std::uint64_t max_reserved_buffers = 0;
  /// Merged stream was verified non-decreasing during the write.
  bool sorted = false;
  /// records preserved exactly once, output sorted, peak ≤ budget.
  bool verified = false;
};

class ShuffleApp {
 public:
  /// Throws if the input is not whole records or the budget is too small
  /// for one 128-byte slice per worker plus one for the merge.
  ShuffleApp(rt::Machine& machine, const ShuffleParams& params);

  /// One full shuffle (re-runnable; spill/output files are rewritten).
  ShuffleResult run(std::uint64_t seed = 1);

  std::uint64_t records_total() const noexcept { return records_total_; }
  std::uint64_t slice_bytes() const noexcept { return slice_bytes_; }

 private:
  struct Sink {
    util::PayloadRef buf;   ///< staging slice (slice_bytes_ capacity)
    std::size_t count = 0;  ///< records currently staged
    std::unique_ptr<io::SpillWriter> writer;  ///< lazy: nullptr until 1st spill
    std::uint64_t delivered = 0;
  };

  void deliver(rt::Worker& w, const Record& r);
  void spill(WorkerId w, Sink& s);
  std::string spill_path(WorkerId w, int pass) const;
  /// Merge one worker's runs + memory tail into `out`, accumulating the
  /// global CRC/sortedness state threaded through by run().
  void merge_worker(WorkerId w, std::FILE* out, ShuffleResult& res,
                    Crc64& crc, Record& prev, bool& any_out);

  rt::Machine& machine_;
  ShuffleParams params_;
  io::MappedFile input_;
  Partitioner partitioner_;
  util::PayloadPool pool_;
  std::uint64_t records_total_ = 0;
  std::uint64_t slice_bytes_ = 0;
  std::size_t slice_records_ = 0;
  std::vector<Sink> sinks_;
  /// Exactly one of the two is constructed, per params.tram.scheme.
  std::unique_ptr<core::TramDomain<Record>> direct_;
  std::unique_ptr<route::RoutedDomain<Record>> routed_;
};

/// Fill `path` with `records` pseudo-random records (splitmix64 keys,
/// payload = index, so all records are distinct and the sorted order is
/// unique). Returns bytes written.
std::uint64_t write_random_input(const std::string& path,
                                 std::uint64_t records, std::uint64_t seed);

/// Reference for small inputs: load the whole file, std::sort, CRC64.
std::uint64_t reference_sort_crc(const std::string& path);

}  // namespace tram::shuffle
