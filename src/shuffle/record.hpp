#pragma once
///
/// \file record.hpp
/// \brief Fixed-width shuffle record and the CRC64 accumulator that
///        verifies it end to end.
///
/// A record is an 8-byte key plus an 8-byte payload — 16 bytes, no
/// padding, trivially copyable, so records move through the tram layer
/// by memcpy and live in spill files as raw bytes. Ordering is the full
/// (key, payload) pair: ties on the key alone would make the sorted
/// order (and therefore the output CRC) depend on arrival order, which
/// the mesh does not preserve. With the payload in the comparison the
/// sorted stream is a pure function of the record multiset, which is
/// exactly what exactly-once delivery promises to preserve.

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

namespace tram::shuffle {

struct Record {
  std::uint64_t key = 0;
  std::uint64_t payload = 0;

  friend bool operator==(const Record&, const Record&) = default;
  friend bool operator<(const Record& a, const Record& b) noexcept {
    if (a.key != b.key) return a.key < b.key;
    return a.payload < b.payload;
  }
};

static_assert(std::is_trivially_copyable_v<Record>);
static_assert(sizeof(Record) == 16, "Record must pack to 16 bytes");

/// CRC64 (ECMA-182 polynomial, bit-reversed, init/xorout ~0) over a byte
/// stream. Streamable: feed the sorted output run by run and compare the
/// final value against a reference computed in one shot.
class Crc64 {
 public:
  void update(std::span<const std::byte> bytes) noexcept {
    const std::uint64_t* t = table();
    std::uint64_t c = crc_;
    for (const std::byte b : bytes) {
      c = t[(c ^ static_cast<std::uint64_t>(b)) & 0xff] ^ (c >> 8);
    }
    crc_ = c;
  }

  void update(const Record& r) noexcept {
    update(std::as_bytes(std::span<const Record, 1>(&r, 1)));
  }

  std::uint64_t value() const noexcept { return ~crc_; }

 private:
  static const std::uint64_t* table() noexcept {
    static const auto tbl = [] {
      struct T {
        std::uint64_t e[256];
      } t{};
      // Reflected ECMA-182: poly 0x42F0E1EBA9EA3693 bit-reversed.
      constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ull;
      for (std::uint64_t i = 0; i < 256; ++i) {
        std::uint64_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
        }
        t.e[i] = c;
      }
      return t;
    }();
    return tbl.e;
  }

  std::uint64_t crc_ = ~0ull;
};

}  // namespace tram::shuffle
