#pragma once
///
/// \file worker.hpp
/// \brief A worker PE: message-driven scheduler bound to one thread.
///
/// Equivalent of a Charm++ PE: an OS thread with an inbox of messages,
/// dispatching each to its endpoint handler. Two inboxes implement
/// expedited delivery (expedited messages are handled first — the paper
/// prioritizes TramLib messages this way).
///
/// Workers expose two integration points used by TramLib and applications:
///  - idle hooks: run when the inbox is empty (flush-on-idle lives here);
///  - pending counters: report application-level buffered work so that
///    quiescence detection does not fire while items sit in aggregation
///    buffers or deferred queues.

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/message.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace tram::rt {

class Machine;
class Process;

class Worker {
 public:
  Worker(Machine& machine, Process& proc, WorkerId id, LocalWorkerId rank);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  WorkerId id() const noexcept { return id_; }
  LocalWorkerId local_rank() const noexcept { return rank_; }
  Process& process() noexcept { return proc_; }
  Machine& machine() noexcept { return machine_; }

  /// Send a message. Same-process destinations are delivered directly into
  /// the target worker's inbox (shared memory); remote destinations go via
  /// the comm thread and fabric. dst_worker must be valid unless the
  /// endpoint is process-addressed (send_to_proc below).
  void send(Message&& m);

  /// Send a message addressed to a process rather than a specific worker;
  /// the receiving side picks a local worker (round-robin). Used by the
  /// WPs/WsP/PP schemes whose buffers target processes.
  void send_to_proc(ProcId dst, Message&& m);

  /// Deliver a message into this worker's inbox (called by peers within the
  /// process and by the comm thread). Thread-safe.
  void enqueue(Message&& m);

  /// Handle up to config.progress_batch pending messages. Returns the
  /// number handled. Call from compute loops that also generate messages so
  /// that receives interleave with sends (message-driven execution).
  std::size_t progress();

  /// Scheduler loop: handle messages until the machine signals stop,
  /// running idle hooks when the inbox goes empty. Called by the runtime
  /// after the application main returns.
  void scheduler_loop();

  /// Register a callback run whenever this worker finds its inbox empty.
  /// TramLib registers flush-on-idle here.
  void add_idle_hook(std::function<void(Worker&)> hook) {
    idle_hooks_.push_back(std::move(hook));
  }

  /// Register a counter of application-level pending work (buffered items,
  /// deferred updates). The machine is quiescent only when all pending
  /// counters are zero.
  void add_pending_counter(std::function<std::uint64_t()> counter) {
    pending_counters_.push_back(std::move(counter));
  }

  std::uint64_t pending() const {
    std::uint64_t total = 0;
    for (const auto& c : pending_counters_) total += c();
    return total;
  }

  /// Deterministic per-worker RNG stream (re-seeded by Machine::run).
  util::Xoshiro256& rng() noexcept { return rng_; }
  void reseed(std::uint64_t seed) {
    rng_ = util::Xoshiro256::for_stream(seed, static_cast<std::uint64_t>(id_));
  }

  /// Messages handled by this worker since the run started.
  std::uint64_t handled_count() const noexcept {
    return handled_.load(std::memory_order_relaxed);
  }

  /// Remove all idle hooks / pending counters (between benchmark configs).
  void clear_hooks() {
    idle_hooks_.clear();
    pending_counters_.clear();
  }

 private:
  friend class Machine;
  friend class CommThread;

  /// Dispatch one message to its handler and account it.
  void dispatch(Message&& m);
  /// Run idle hooks once; returns true if any work might have been created.
  void run_idle_hooks();
  /// Non-SMP mode: pump this process's communication from the worker.
  void pump_comm_inline();

  Machine& machine_;
  Process& proc_;
  const WorkerId id_;
  const LocalWorkerId rank_;

  util::MpscQueue<Message> inbox_;
  util::MpscQueue<Message> expedited_inbox_;
  /// Debug guard: id of the thread driving this worker (set by Machine::run)
  /// so send/progress can assert they run on the owning thread.
  std::atomic<std::size_t> owner_thread_{0};

  std::vector<std::function<void(Worker&)>> idle_hooks_;
  std::vector<std::function<std::uint64_t()>> pending_counters_;
  util::Xoshiro256 rng_;
  std::atomic<std::uint64_t> handled_{0};
};

}  // namespace tram::rt
