#pragma once
///
/// \file process.hpp
/// \brief A simulated OS process: workers + comm thread + shared memory.
///
/// Each Process owns its worker PEs, the per-worker egress rings toward the
/// comm thread, and a SharedStore: the process-local shared-memory registry
/// through which the PP aggregation scheme publishes its cross-worker
/// buffers. By convention nothing outside net/rt touches another process's
/// memory — the simulation enforces the paper's process isolation at review
/// time, while PP's sharing stays within one process, exactly what SMP mode
/// permits.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/message.hpp"
#include "util/spsc_ring.hpp"
#include "util/types.hpp"

namespace tram::rt {

class Machine;
class Worker;

/// Keyed registry of process-shared objects. get_or_create is thread-safe;
/// all workers of a process calling with the same key receive the same
/// object (first caller constructs).
class SharedStore {
 public:
  template <typename T, typename Factory>
  std::shared_ptr<T> get_or_create(const std::string& key, Factory&& make) {
    std::lock_guard<std::mutex> g(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      auto obj = std::shared_ptr<T>(make());
      objects_.emplace(key, obj);
      return obj;
    }
    return std::static_pointer_cast<T>(it->second);
  }

  void clear() {
    std::lock_guard<std::mutex> g(mu_);
    objects_.clear();
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<void>> objects_;
};

class Process {
 public:
  Process(Machine& machine, ProcId id);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcId id() const noexcept { return id_; }
  NodeId node() const noexcept;
  Machine& machine() noexcept { return machine_; }

  int worker_count() const noexcept { return static_cast<int>(workers_.size()); }
  Worker& worker(LocalWorkerId r) { return *workers_[static_cast<std::size_t>(r)]; }

  /// Worker r's egress ring toward the comm thread (SPSC: worker produces,
  /// comm thread consumes).
  util::SpscRing<Message>& egress(LocalWorkerId r) {
    return *egress_[static_cast<std::size_t>(r)];
  }

  /// Round-robin choice of a local worker for process-addressed messages.
  WorkerId pick_delivery_worker();

  SharedStore& shared() noexcept { return shared_; }

 private:
  friend class Machine;

  Machine& machine_;
  const ProcId id_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<util::SpscRing<Message>>> egress_;
  std::atomic<std::uint32_t> rr_{0};
  SharedStore shared_;
};

}  // namespace tram::rt
