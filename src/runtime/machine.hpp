#pragma once
///
/// \file machine.hpp
/// \brief The simulated machine: topology + fabric + processes + QD.
///
/// Machine is the entry point of the runtime substrate. Usage (SPMD, like a
/// Charm++ mainchare broadcast):
///
///   Machine m(Topology(2, 2, 4), RuntimeConfig::testing());
///   EndpointId ep = m.register_endpoint([](Worker& w, Message&& msg) {...});
///   auto result = m.run([&](Worker& self) {
///     // runs on every worker; send messages, call self.progress(), ...
///   });
///   // result.wall_s covers start-barrier to global quiescence.
///
/// Termination is counting-based quiescence detection (Charm++ QD
/// analogue): all application mains returned, every runtime message sent
/// has been handled, and every registered pending counter (aggregation
/// buffers, deferred work) reads zero — stable across a settle window.
/// Multi-hop routed traffic (src/route/) is covered by the same counting:
/// entries re-aggregated at an intermediate raise that worker's pending
/// counter before the inbound message counts as handled, so the machine
/// can never look quiescent while forwarded entries sit in a
/// next-dimension buffer or a re-shipped message is in flight.

#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "runtime/config.hpp"
#include "runtime/endpoint.hpp"
#include "runtime/process.hpp"
#include "runtime/worker.hpp"
#include "util/topology.hpp"

namespace tram::core {
struct FaultStats;
}
namespace tram::fault {
class FaultyTransport;
class ReliableTransport;
}

namespace tram::rt {

class DeliveryInterceptor;
class Transport;

class Machine {
 public:
  Machine(util::Topology topo, RuntimeConfig cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const util::Topology& topology() const noexcept { return topo_; }
  const RuntimeConfig& config() const noexcept { return cfg_; }
  /// The simulated interconnect (driven only by the kModeledFabric
  /// transport; idle under kInline).
  net::Fabric& fabric() noexcept { return fabric_; }
  /// The transport carrying all cross-process traffic (see transport.hpp).
  /// With cfg.fault enabled this is the reliability decorator chain;
  /// otherwise exactly the base transport.
  Transport& transport() noexcept { return *transport_; }
  EndpointRegistry& endpoints() noexcept { return endpoints_; }

  /// The fault-injection / reliability layers, or nullptr when
  /// cfg.fault is all-zero (the undecorated fast path).
  fault::FaultyTransport* fault_layer() const noexcept { return faulty_; }
  fault::ReliableTransport* reliability() const noexcept {
    return reliable_;
  }
  /// Hook the transports' delivery tail runs inbound messages through
  /// (see DeliveryInterceptor); nullptr when fault injection is off.
  DeliveryInterceptor* delivery_interceptor() const noexcept {
    return interceptor_;
  }
  /// Merged fault/reliability counters — all zero when fault injection
  /// is off.
  core::FaultStats fault_stats() const;

  /// Register a message handler on all processes. Only before run().
  EndpointId register_endpoint(Handler h);

  Process& process(ProcId p) { return *procs_[static_cast<std::size_t>(p)]; }
  Worker& worker(WorkerId w);

  struct RunResult {
    /// Start barrier to first observed quiescence, seconds.
    double wall_s = 0.0;
    /// Fabric-level (aggregated) messages and bytes.
    std::uint64_t fabric_messages = 0;
    std::uint64_t fabric_bytes = 0;
    /// Subset of fabric_messages re-shipped by topological-routing
    /// intermediates (Message::hops > 0).
    std::uint64_t forwarded_messages = 0;
    /// Runtime-level messages (one per Message::send, local or remote).
    std::uint64_t runtime_messages = 0;
  };

  /// Execute main_fn on every worker, run message-driven scheduling to
  /// quiescence, join all threads, and report. Reusable: call repeatedly
  /// (counters and RNG streams reset between runs; endpoint registrations
  /// and idle hooks persist unless cleared).
  RunResult run(const std::function<void(Worker&)>& main_fn,
                std::uint64_t seed = 1);

  /// In-run barrier across all workers (control plane; call from main_fn).
  void barrier();

  /// --- hooks used by runtime internals ---
  void note_sent() noexcept {
    sent_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_handled() noexcept {
    handled_.fetch_add(1, std::memory_order_relaxed);
  }
  bool stopping() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  /// Sum of pending counters over all workers.
  std::uint64_t total_pending() const;
  std::uint64_t total_sent() const noexcept {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_handled() const noexcept {
    return handled_.load(std::memory_order_relaxed);
  }

  /// Remove all idle hooks and pending counters from every worker (between
  /// benchmark configurations that reuse the machine).
  void clear_worker_hooks();

 private:
  void quiescence_wait(std::uint64_t& t_end_ns);

  util::Topology topo_;
  RuntimeConfig cfg_;
  net::Fabric fabric_;
  std::unique_ptr<Transport> transport_;
  /// Non-owning views into the decorator chain held by transport_
  /// (nullptr when fault injection is off).
  fault::FaultyTransport* faulty_ = nullptr;
  fault::ReliableTransport* reliable_ = nullptr;
  DeliveryInterceptor* interceptor_ = nullptr;
  EndpointRegistry endpoints_;
  std::vector<std::unique_ptr<Process>> procs_;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> handled_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> mains_done_{0};
  bool running_ = false;

  std::unique_ptr<std::barrier<>> start_barrier_;  // workers + main thread
  std::unique_ptr<std::barrier<>> worker_barrier_; // workers only
};

}  // namespace tram::rt
