#include "runtime/process.hpp"

#include "runtime/machine.hpp"
#include "runtime/worker.hpp"

namespace tram::rt {

Process::Process(Machine& machine, ProcId id) : machine_(machine), id_(id) {
  const auto& topo = machine.topology();
  const int w = topo.workers_per_proc();
  workers_.reserve(static_cast<std::size_t>(w));
  egress_.reserve(static_cast<std::size_t>(w));
  for (LocalWorkerId r = 0; r < w; ++r) {
    workers_.push_back(std::make_unique<Worker>(
        machine, *this, topo.worker_at(id, r), r));
    egress_.push_back(std::make_unique<util::SpscRing<Message>>(
        machine.config().egress_ring_capacity));
  }
}

Process::~Process() = default;

NodeId Process::node() const noexcept {
  return machine_.topology().node_of_proc(id_);
}

WorkerId Process::pick_delivery_worker() {
  const std::uint32_t r = rr_.fetch_add(1, std::memory_order_relaxed);
  const int w = worker_count();
  return machine_.topology().worker_at(
      id_, static_cast<LocalWorkerId>(r % static_cast<std::uint32_t>(w)));
}

}  // namespace tram::rt
