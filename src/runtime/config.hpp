#pragma once
///
/// \file config.hpp
/// \brief Runtime tuning knobs (comm-thread costs, idle policy).

#include <cstdint>

#include "fault/fault_config.hpp"
#include "net/cost_model.hpp"

namespace tram::rt {

/// Which Transport implementation the machine drives its traffic through
/// (see runtime/transport.hpp).
enum class TransportKind {
  /// Cost-model fabric: NIC serialization, modeled latencies, reorder heap.
  kModeledFabric,
  /// Zero-delay direct delivery into destination inboxes: deterministic
  /// tests without the CostModel::zero() machinery.
  kInline,
};

struct RuntimeConfig {
  /// Interconnect model (see net::CostModel). zero() for deterministic
  /// tests, delta_like() for benchmarks. Ignored by kInline transport.
  net::CostModel cost = net::CostModel::delta_like();

  /// Transport implementation carrying cross-process messages.
  TransportKind transport = TransportKind::kModeledFabric;

  /// Fault injection (src/fault/). All-zero (the default) leaves the
  /// transport above exactly as selected — no decorators, no reliability
  /// headers, no per-message cost. Any nonzero knob wraps it in the
  /// FaultyTransport + ReliableTransport pair, which injects the faults
  /// and restores exactly-once delivery on top of them.
  fault::FaultConfig fault;

  /// Comm-thread occupancy per message sent / received, nanoseconds. This
  /// models the paper's section III-A finding: the dedicated comm thread
  /// serializes all of a process's traffic, and below ~167ns of application
  /// work per word it becomes the bottleneck. Burned with a calibrated spin
  /// on the comm thread (or on the worker itself in non-SMP mode).
  double comm_per_msg_send_ns = 350.0;
  double comm_per_msg_recv_ns = 350.0;
  /// Additional comm-thread occupancy per payload byte (memcpy-ish).
  double comm_per_byte_ns = 0.01;

  /// SMP mode: one dedicated comm thread per process (Charm++ SMP build).
  /// When false, every worker drives its own communication (non-SMP /
  /// MPI-everywhere); requires workers_per_proc == 1.
  bool dedicated_comm = true;

  /// Capacity of each worker -> comm-thread egress ring.
  std::uint32_t egress_ring_capacity = 2048;

  /// Max messages a worker handles per progress() call before returning to
  /// the application (bounds latency of interleaved compute/progress loops).
  std::uint32_t progress_batch = 64;

  /// Quiescence detection: the condition must hold this long (two samples)
  /// before the machine declares termination.
  std::uint64_t qd_settle_ns = 200'000;

  /// Spin iterations before a worker/comm thread starts yielding when idle,
  /// and the nap length once yields also find nothing.
  std::uint32_t idle_spin = 256;
  std::uint32_t idle_yield = 16;
  std::uint64_t idle_nap_ns = 20'000;

  /// Counter-sampler cadence while tracing is enabled (trace::enabled()):
  /// how often the sampler thread snapshots pool occupancy, send backlog,
  /// in-flight messages, and reliability counters into counter events.
  std::uint64_t trace_sample_ns = 200'000;

  /// Returns a config with a zero-cost interconnect and zero comm-thread
  /// per-message costs: deterministic unit-test mode.
  static RuntimeConfig testing() {
    RuntimeConfig c;
    c.cost = net::CostModel::zero();
    c.comm_per_msg_send_ns = 0.0;
    c.comm_per_msg_recv_ns = 0.0;
    c.comm_per_byte_ns = 0.0;
    c.qd_settle_ns = 50'000;
    return c;
  }

  /// testing(), but over the InlineTransport: the fastest deterministic
  /// mode (no fabric, no reorder heap, no NIC clock).
  static RuntimeConfig inline_testing() {
    RuntimeConfig c = testing();
    c.transport = TransportKind::kInline;
    return c;
  }
};

}  // namespace tram::rt
