#pragma once
///
/// \file transport.hpp
/// \brief The send/deliver seam between the runtime and the interconnect.
///
/// A Transport owns everything between "a Message leaves its source
/// process" and "a Message lands in a destination worker's inbox". It
/// replaces the seam that used to be split between net::Fabric, the comm
/// thread's pump_egress/pump_ingress, and the free helpers
/// forward_to_fabric/deliver_packet. Two implementations:
///
///  - ModeledFabricTransport: today's cost-model path. send() charges the
///    calling thread the per-message/per-byte comm cost and injects a
///    net::Packet into the fabric; poll() drains the fabric ingress into a
///    per-process reorder heap keyed by modeled arrival time and delivers
///    everything that is due.
///  - InlineTransport: zero-delay direct delivery — send() routes the
///    message straight into the destination worker's inbox with no cost
///    model, no fabric, and no reorder heap. This replaces the
///    CostModel::zero() special case for deterministic tests, and is the
///    template for future real backends (shared-memory rings, RDMA): a
///    backend only has to implement this interface.
///
/// Callers: the comm thread (SMP mode) or the worker itself (non-SMP).
/// send() and poll() for a given process are only invoked from that
/// process's pumping thread; counters/in_flight are read from anywhere.

#include <atomic>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "net/packet.hpp"
#include "runtime/message.hpp"
#include "util/types.hpp"

namespace tram::net {
class Fabric;
}

namespace tram::rt {

class Machine;
class Process;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Ship a cross-process message out of src_proc, charging the calling
  /// thread whatever processing cost the transport models. The message's
  /// destination is dst_worker, or dst_proc_hint when process-addressed.
  virtual void send(ProcId src_proc, Message&& m) = 0;

  /// Deliver due inbound messages for proc into its workers' inboxes.
  /// Returns the number delivered.
  virtual std::size_t poll(Process& proc) = 0;

  /// Earliest modeled arrival still pending for proc after the last
  /// poll(), or 0 when nothing is queued — the idle-wait hint.
  virtual std::uint64_t next_due_ns(ProcId p) const = 0;

  /// Messages accepted by send() but not yet delivered (quiescence
  /// detection: the machine cannot be quiescent while this is nonzero).
  virtual std::uint64_t in_flight() const = 0;

  /// Aggregate traffic counters (RunResult reporting).
  virtual std::uint64_t total_messages() const = 0;
  virtual std::uint64_t total_bytes() const = 0;
  /// Subset of total_messages() sent with Message::hops > 0: traffic
  /// re-shipped by a topological-routing intermediate rather than an
  /// originating worker.
  virtual std::uint64_t total_forwarded() const = 0;

  /// Reset counters and clocks between runs (machine quiesced).
  virtual void reset() = 0;
};

/// Hook between a transport's delivery tail and the worker inbox. The
/// reliability layer (src/fault/) implements it to dedup retransmitted
/// data, record acks, and consume protocol control traffic before a
/// message is enqueued; when no interceptor is installed (the default,
/// fault injection off) the delivery tail is exactly what it was.
class DeliveryInterceptor {
 public:
  virtual ~DeliveryInterceptor() = default;
  /// Inspect (and possibly rewrite, e.g. strip a frame off) an inbound
  /// message before it is enqueued. Runs on the delivering transport's
  /// thread. Return false to consume the message — a duplicate or a
  /// control message that must not reach an endpoint handler.
  virtual bool on_inbound(Process& proc, Message& m) = 0;
};

/// Shared delivery tail: run the machine's delivery interceptor (if any),
/// then enqueue the message into its destination worker's inbox.
/// m.dst_worker must already be concrete.
void deliver_to_process(Machine& machine, Process& proc, Message&& m);

/// Resolve a message's destination process (direct or process-addressed).
ProcId message_dst_proc(const Machine& machine, const Message& m);

/// The cost-model path: fabric injection with per-node NIC serialization,
/// modeled arrival times, and a destination-side reorder heap.
class ModeledFabricTransport final : public Transport {
 public:
  ModeledFabricTransport(Machine& machine, net::Fabric& fabric);

  void send(ProcId src_proc, Message&& m) override;
  std::size_t poll(Process& proc) override;
  std::uint64_t next_due_ns(ProcId p) const override;
  std::uint64_t in_flight() const override;
  std::uint64_t total_messages() const override;
  std::uint64_t total_bytes() const override;
  std::uint64_t total_forwarded() const override;
  void reset() override;

 private:
  /// Per-process reorder heap; only touched by that process's pumping
  /// thread, so no locking. unique_ptr keeps neighbours off one line.
  struct ProcState {
    std::priority_queue<net::Packet, std::vector<net::Packet>,
                        net::PacketLater>
        heap;
  };

  Machine& machine_;
  net::Fabric& fabric_;
  std::vector<std::unique_ptr<ProcState>> states_;
  std::atomic<std::uint64_t> forwarded_{0};
};

/// Zero-delay direct delivery: deterministic tests and an existence proof
/// that the runtime is transport-agnostic.
class InlineTransport final : public Transport {
 public:
  explicit InlineTransport(Machine& machine);

  void send(ProcId src_proc, Message&& m) override;
  std::size_t poll(Process& proc) override;
  std::uint64_t next_due_ns(ProcId p) const override;
  std::uint64_t in_flight() const override;
  std::uint64_t total_messages() const override;
  std::uint64_t total_bytes() const override;
  std::uint64_t total_forwarded() const override;
  void reset() override;

 private:
  Machine& machine_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> forwarded_{0};
};

}  // namespace tram::rt
