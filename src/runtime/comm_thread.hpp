#pragma once
///
/// \file comm_thread.hpp
/// \brief The dedicated communication thread of an SMP process.
///
/// Charm++'s SMP build devotes one core per process to communication; all
/// of the process's sends and receives funnel through it. The paper's
/// section III-A shows this thread is the serializing bottleneck for
/// fine-grained traffic — the effect reproduced by fig03_pingack — so the
/// model charges a configurable per-message (and per-byte) processing cost
/// here, burned with a calibrated spin.
///
/// Loop structure per iteration:
///   1. drain worker egress rings -> fabric (paying send cost per message);
///   2. drain fabric ingress into a reorder heap keyed by modeled arrival
///      time; deliver every packet whose arrival time has passed (paying
///      receive cost), routing it to the destination worker's inbox;
///   3. adaptive idling when nothing was ready.

#include <cstdint>
#include <queue>
#include <vector>

#include "net/packet.hpp"
#include "runtime/message.hpp"

namespace tram::rt {

class Machine;
class Process;

class CommThread {
 public:
  CommThread(Machine& machine, Process& proc);

  /// Thread body; returns when the machine stops and all queued traffic has
  /// been forwarded.
  void run();

  /// Messages this comm thread forwarded to the fabric / delivered locally.
  std::uint64_t sent_count() const noexcept { return sent_; }
  std::uint64_t delivered_count() const noexcept { return delivered_; }

 private:
  /// Drain egress rings; returns number of messages forwarded.
  std::size_t pump_egress();
  /// Drain ingress + deliver due packets; returns number delivered.
  std::size_t pump_ingress();

  Machine& machine_;
  Process& proc_;
  std::priority_queue<net::Packet, std::vector<net::Packet>, net::PacketLater>
      heap_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

/// Shared helper: turn a runtime Message into a fabric Packet and send it,
/// charging `cost_ns` of processing time to the calling thread. Used by the
/// comm thread (SMP) and by workers directly (non-SMP).
void forward_to_fabric(Machine& machine, ProcId src_proc, Message&& m,
                       double cost_ns);

/// Shared helper: deliver a received packet to a worker of `proc`,
/// charging `cost_ns`. Routes process-addressed packets round-robin.
void deliver_packet(Machine& machine, Process& proc, net::Packet&& p,
                    double cost_ns);

}  // namespace tram::rt
