#pragma once
///
/// \file comm_thread.hpp
/// \brief The dedicated communication thread of an SMP process.
///
/// Charm++'s SMP build devotes one core per process to communication; all
/// of the process's sends and receives funnel through it. The paper's
/// section III-A shows this thread is the serializing bottleneck for
/// fine-grained traffic — the effect reproduced by fig03_pingack — so the
/// transport charges a configurable per-message (and per-byte) processing
/// cost here, burned with a calibrated spin.
///
/// The comm thread itself is transport-agnostic: it only pumps. Loop
/// structure per iteration:
///   1. drain worker egress rings into Transport::send (the transport
///      charges the send cost and models the network);
///   2. Transport::poll delivers every due inbound message to the
///      destination worker's inbox (charging the receive cost);
///   3. adaptive idling when nothing was ready, waking for the
///      transport's next modeled arrival.

#include <cstdint>

namespace tram::rt {

class Machine;
class Process;
class Transport;

class CommThread {
 public:
  CommThread(Machine& machine, Process& proc);

  /// Thread body; returns when the machine stops and all queued traffic has
  /// been forwarded.
  void run();

  /// Messages this comm thread forwarded to the transport / delivered.
  std::uint64_t sent_count() const noexcept { return sent_; }
  std::uint64_t delivered_count() const noexcept { return delivered_; }

 private:
  /// Drain egress rings; returns number of messages forwarded.
  std::size_t pump_egress();
  /// Deliver due inbound traffic; returns number delivered.
  std::size_t pump_ingress();

  Machine& machine_;
  Process& proc_;
  Transport& transport_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace tram::rt
