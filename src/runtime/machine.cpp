#include "runtime/machine.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/tram_stats.hpp"
#include "fault/faulty_transport.hpp"
#include "fault/reliable_transport.hpp"
#include "runtime/comm_thread.hpp"
#include "runtime/transport.hpp"
#include "trace/trace.hpp"
#include "util/timebase.hpp"

namespace tram::rt {

Machine::Machine(util::Topology topo, RuntimeConfig cfg)
    : topo_(topo), cfg_(cfg), fabric_(topo, cfg.cost) {
  if (!cfg_.dedicated_comm && topo_.workers_per_proc() != 1) {
    throw std::invalid_argument(
        "non-SMP mode (dedicated_comm=false) requires workers_per_proc==1");
  }
  std::unique_ptr<Transport> base;
  switch (cfg_.transport) {
    case TransportKind::kModeledFabric:
      base = std::make_unique<ModeledFabricTransport>(*this, fabric_);
      break;
    case TransportKind::kInline:
      base = std::make_unique<InlineTransport>(*this);
      break;
  }
  if (cfg_.fault.enabled()) {
    // Faults and the recovery protocol install together: a lossy fabric
    // without reliability would hang quiescence on the first drop.
    cfg_.fault.validate();
    auto faulty = std::make_unique<fault::FaultyTransport>(
        *this, std::move(base), cfg_.fault);
    faulty_ = faulty.get();
    auto reliable = std::make_unique<fault::ReliableTransport>(
        *this, std::move(faulty), cfg_.fault);
    reliable_ = reliable.get();
    interceptor_ = reliable_;
    transport_ = std::move(reliable);
  } else {
    transport_ = std::move(base);
  }
  procs_.reserve(static_cast<std::size_t>(topo_.procs()));
  for (ProcId p = 0; p < topo_.procs(); ++p) {
    procs_.push_back(std::make_unique<Process>(*this, p));
  }
  start_barrier_ = std::make_unique<std::barrier<>>(topo_.workers() + 1);
  worker_barrier_ = std::make_unique<std::barrier<>>(topo_.workers());
}

Machine::~Machine() = default;

EndpointId Machine::register_endpoint(Handler h) {
  if (running_) {
    throw std::logic_error("register_endpoint while machine is running");
  }
  return endpoints_.add(std::move(h));
}

core::FaultStats Machine::fault_stats() const {
  core::FaultStats s;
  if (faulty_ != nullptr) {
    s.faults_injected_drop = faulty_->drops_injected();
    s.faults_injected_dup = faulty_->dups_injected();
    s.faults_injected_delay = faulty_->delays_injected();
  }
  if (reliable_ != nullptr) {
    s.retransmits = reliable_->retransmits();
    s.dup_drops = reliable_->dup_drops();
    s.acks_sent = reliable_->acks_sent();
    s.fast_retransmits = reliable_->fast_retransmits();
    s.rto_fires = reliable_->rto_fires();
    s.rtx_bytes = reliable_->rtx_bytes();
    s.paced_msgs = reliable_->paced_msgs();
    s.max_inflight_msgs = reliable_->max_inflight_msgs();
  }
  // Link counters live on the fabric, independent of fault injection:
  // nonzero whenever the cost model configures per-link contention.
  s.link_busy_ns = fabric_.link_busy_ns();
  s.max_link_queue_ns = fabric_.max_link_queue_ns();
  return s;
}

Worker& Machine::worker(WorkerId w) {
  return process(topo_.proc_of_worker(w)).worker(topo_.local_rank(w));
}

void Machine::barrier() { worker_barrier_->arrive_and_wait(); }

std::uint64_t Machine::total_pending() const {
  std::uint64_t total = 0;
  for (const auto& proc : procs_) {
    for (const auto& w : proc->workers_) total += w->pending();
  }
  return total;
}

void Machine::clear_worker_hooks() {
  for (auto& proc : procs_) {
    for (auto& w : proc->workers_) w->clear_hooks();
  }
  for (auto& proc : procs_) proc->shared().clear();
}

void Machine::quiescence_wait(std::uint64_t& t_end_ns) {
  // Counting QD: mains done, every sent message handled, no buffered work.
  // The (handled, sent) read order makes a single positive sample sound at
  // the instant handled was read; the stability window guards the pending
  // counters, which are application-maintained and may lag a flush by a few
  // instructions.
  const int total_workers = topo_.workers();
  std::uint64_t first_ok_ns = 0;
  std::uint64_t first_ok_sent = 0;
  for (;;) {
    const std::uint64_t h = total_handled();
    const std::uint64_t s = total_sent();
    const bool ok = mains_done_.load(std::memory_order_acquire) ==
                        total_workers &&
                    h == s && total_pending() == 0 &&
                    transport_->in_flight() == 0;
    const std::uint64_t now = util::now_ns();
    trace::instant(trace::Cat::kRuntime, trace::kQdRound, s - h,
                   ok ? 1u : 0u);
    if (!ok) {
      first_ok_ns = 0;
    } else if (first_ok_ns == 0) {
      first_ok_ns = now;
      first_ok_sent = s;
    } else if (s == first_ok_sent && now - first_ok_ns >= cfg_.qd_settle_ns) {
      t_end_ns = first_ok_ns;
      return;
    } else if (s != first_ok_sent) {
      first_ok_ns = 0;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

Machine::RunResult Machine::run(const std::function<void(Worker&)>& main_fn,
                                std::uint64_t seed) {
  if (running_) throw std::logic_error("Machine::run is not reentrant");
  running_ = true;

  stop_.store(false, std::memory_order_release);
  sent_.store(0, std::memory_order_relaxed);
  handled_.store(0, std::memory_order_relaxed);
  mains_done_.store(0, std::memory_order_relaxed);
  // A previous run must have drained completely: leftover messages would be
  // dispatched into the new run's state (and their payloads may alias
  // recycled pool slabs). Fail loudly rather than corrupt.
  if (transport_->in_flight() != 0) {
    throw std::logic_error("Machine::run: transport packets left over");
  }
  for (auto& proc : procs_) {
    for (auto& w : proc->workers_) {
      if (!w->inbox_.empty_approx() || !w->expedited_inbox_.empty_approx()) {
        throw std::logic_error("Machine::run: worker inbox not empty");
      }
    }
    for (LocalWorkerId r = 0; r < topo_.workers_per_proc(); ++r) {
      if (proc->egress(r).size_approx() != 0) {
        throw std::logic_error("Machine::run: egress ring not empty");
      }
    }
  }
  transport_->reset();
  for (auto& proc : procs_) {
    for (auto& w : proc->workers_) {
      w->reseed(seed);
      w->handled_.store(0, std::memory_order_relaxed);
    }
  }

  // While tracing: sample machine-wide occupancy into counter events on a
  // dedicated thread. Every source reads only atomics (the TSan job runs
  // traced machines).
  std::unique_ptr<trace::CounterSampler> sampler;
  if (trace::enabled()) {
    sampler = std::make_unique<trace::CounterSampler>(cfg_.trace_sample_ns);
    sampler->add("backlog msgs", [this] {
      const std::uint64_t h = total_handled();
      const std::uint64_t s = total_sent();
      return s > h ? s - h : 0;
    });
    sampler->add("pending items", [this] { return total_pending(); });
    sampler->add("transport in-flight",
                 [this] { return transport_->in_flight(); });
    sampler->add("pool outstanding bytes", [] {
      return core::payload_pool_stats().outstanding_bytes;
    });
    if (reliable_ != nullptr) {
      sampler->add("retransmits",
                   [this] { return reliable_->retransmits(); });
      sampler->add("paced msgs", [this] { return reliable_->paced_msgs(); });
    }
    sampler->start();
  }

  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<CommThread>> comms;
  threads.reserve(static_cast<std::size_t>(topo_.workers() + topo_.procs()));

  if (cfg_.dedicated_comm) {
    comms.reserve(static_cast<std::size_t>(topo_.procs()));
    for (ProcId p = 0; p < topo_.procs(); ++p) {
      comms.push_back(std::make_unique<CommThread>(*this, process(p)));
      threads.emplace_back([ct = comms.back().get()] { ct->run(); });
    }
  }

  for (ProcId p = 0; p < topo_.procs(); ++p) {
    for (LocalWorkerId r = 0; r < topo_.workers_per_proc(); ++r) {
      Worker* w = &process(p).worker(r);
      threads.emplace_back([this, w, &main_fn] {
        w->owner_thread_.store(
            std::hash<std::thread::id>{}(std::this_thread::get_id()),
            std::memory_order_relaxed);
        trace::set_thread_name("worker " + std::to_string(w->id()));
        start_barrier_->arrive_and_wait();
        main_fn(*w);
        mains_done_.fetch_add(1, std::memory_order_acq_rel);
        w->scheduler_loop();
        w->owner_thread_.store(0, std::memory_order_relaxed);
      });
    }
  }

  start_barrier_->arrive_and_wait();
  const std::uint64_t t0 = util::now_ns();

  std::uint64_t t_end = 0;
  quiescence_wait(t_end);
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  if (sampler) sampler->stop();

  RunResult res;
  res.wall_s = static_cast<double>(t_end - t0) * 1e-9;
  res.fabric_messages = transport_->total_messages();
  res.fabric_bytes = transport_->total_bytes();
  res.forwarded_messages = transport_->total_forwarded();
  res.runtime_messages = total_sent();
  running_ = false;
  return res;
}

}  // namespace tram::rt
