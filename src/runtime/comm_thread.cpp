#include "runtime/comm_thread.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "runtime/machine.hpp"
#include "runtime/process.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker.hpp"
#include "trace/trace.hpp"
#include "util/spinlock.hpp"
#include "util/timebase.hpp"

namespace tram::rt {

CommThread::CommThread(Machine& machine, Process& proc)
    : machine_(machine), proc_(proc), transport_(machine.transport()) {}

std::size_t CommThread::pump_egress() {
  const auto& cfg = machine_.config();
  const int nworkers = proc_.worker_count();
  std::size_t forwarded = 0;
  for (LocalWorkerId r = 0; r < nworkers; ++r) {
    auto& ring = proc_.egress(r);
    // Bounded batch per worker per iteration keeps one chatty worker from
    // starving its siblings.
    for (std::uint32_t i = 0; i < cfg.progress_batch; ++i) {
      auto m = ring.try_pop();
      if (!m) break;
      transport_.send(proc_.id(), std::move(*m));
      ++sent_;
      ++forwarded;
    }
  }
  return forwarded;
}

std::size_t CommThread::pump_ingress() {
  const std::size_t delivered = transport_.poll(proc_);
  delivered_ += delivered;
  return delivered;
}

void CommThread::run() {
  const auto& cfg = machine_.config();
  trace::set_thread_name("comm " + std::to_string(proc_.id()));
  std::uint32_t idle_round = 0;
  for (;;) {
    const std::uint64_t t0 = trace::maybe_now();
    std::size_t work = pump_egress();
    work += pump_ingress();
    if (work > 0) {
      trace::complete(trace::Cat::kRuntime, trace::kCommPump, t0, work);
      idle_round = 0;
      continue;
    }
    const std::uint64_t due = transport_.next_due_ns(proc_.id());
    if (machine_.stopping() && due == 0) return;
    ++idle_round;
    if (due != 0) {
      // Packets queued for a future arrival: wait just until the earliest.
      // Sleep for long gaps (burning a shared core would distort every
      // other thread's timing more than a few us of wakeup slack distorts
      // this packet's).
      const std::uint64_t now = util::now_ns();
      if (due > now) {
        const std::uint64_t gap = due - now;
        if (gap > 15'000) {
          // Cap the blind sleep: egress rings are not drained while we
          // sleep, and reliability-layer deadlines (retransmit probes,
          // delayed acks — src/fault/) sit hundreds of microseconds out,
          // far past the fabric's usual arrival horizon.
          std::this_thread::sleep_for(std::chrono::nanoseconds(
              std::min<std::uint64_t>(gap - 10'000, 100'000)));
        } else {
          util::spin_for_ns(std::min<std::uint64_t>(gap, 2'000));
        }
      }
      continue;
    }
    if (idle_round <= cfg.idle_spin) {
      util::cpu_relax();
    } else if (idle_round <= cfg.idle_spin + cfg.idle_yield) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(cfg.idle_nap_ns));
    }
  }
}

}  // namespace tram::rt
