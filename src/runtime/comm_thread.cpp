#include "runtime/comm_thread.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "runtime/machine.hpp"
#include "runtime/process.hpp"
#include "runtime/worker.hpp"
#include "util/spinlock.hpp"
#include "util/timebase.hpp"

namespace tram::rt {

void forward_to_fabric(Machine& machine, ProcId src_proc, Message&& m,
                       double cost_ns) {
  const auto& cfg = machine.config();
  const double byte_cost =
      cfg.comm_per_byte_ns * static_cast<double>(m.payload.size());
  util::spin_for_ns(static_cast<std::uint64_t>(cost_ns + byte_cost));

  net::Packet p;
  p.src_proc = src_proc;
  p.dst_proc = m.dst_worker == kInvalidWorker
                   ? m.dst_proc_hint
                   : machine.topology().proc_of_worker(m.dst_worker);
  p.dst_worker = m.dst_worker;
  p.src_worker = m.src_worker;
  p.endpoint = m.endpoint;
  p.expedited = m.expedited;
  p.payload = std::move(m.payload);
  machine.fabric().send(std::move(p));
}

void deliver_packet(Machine& machine, Process& proc, net::Packet&& p,
                    double cost_ns) {
  const auto& cfg = machine.config();
  const double byte_cost =
      cfg.comm_per_byte_ns * static_cast<double>(p.payload.size());
  util::spin_for_ns(static_cast<std::uint64_t>(cost_ns + byte_cost));
  machine.fabric().note_received(proc.id(), p);

  Message m;
  m.endpoint = p.endpoint;
  m.src_worker = p.src_worker;
  m.expedited = p.expedited;
  m.dst_worker =
      p.dst_worker == kInvalidWorker ? proc.pick_delivery_worker() : p.dst_worker;
  m.payload = std::move(p.payload);
  proc.worker(machine.topology().local_rank(m.dst_worker))
      .enqueue(std::move(m));
}

CommThread::CommThread(Machine& machine, Process& proc)
    : machine_(machine), proc_(proc) {}

std::size_t CommThread::pump_egress() {
  const auto& cfg = machine_.config();
  const int nworkers = proc_.worker_count();
  std::size_t forwarded = 0;
  for (LocalWorkerId r = 0; r < nworkers; ++r) {
    auto& ring = proc_.egress(r);
    // Bounded batch per worker per iteration keeps one chatty worker from
    // starving its siblings.
    for (std::uint32_t i = 0; i < cfg.progress_batch; ++i) {
      auto m = ring.try_pop();
      if (!m) break;
      // Process-addressed messages carry their destination in the payload
      // path: dst_worker == kInvalidWorker is resolved at the receiver.
      // We still must compute dst_proc here.
      net::Packet p;
      p.src_proc = proc_.id();
      p.src_worker = m->src_worker;
      p.endpoint = m->endpoint;
      p.expedited = m->expedited;
      p.dst_worker = m->dst_worker;
      if (m->dst_worker == kInvalidWorker) {
        p.dst_proc = m->dst_proc_hint;
      } else {
        p.dst_proc = machine_.topology().proc_of_worker(m->dst_worker);
      }
      const double byte_cost = cfg.comm_per_byte_ns *
                               static_cast<double>(m->payload.size());
      util::spin_for_ns(static_cast<std::uint64_t>(
          cfg.comm_per_msg_send_ns + byte_cost));
      p.payload = std::move(m->payload);
      machine_.fabric().send(std::move(p));
      ++sent_;
      ++forwarded;
    }
  }
  return forwarded;
}

std::size_t CommThread::pump_ingress() {
  auto& q = machine_.fabric().ingress(proc_.id());
  while (auto p = q.try_pop()) heap_.push(std::move(*p));
  std::size_t delivered = 0;
  std::uint64_t now = util::now_ns();
  while (!heap_.empty() && heap_.top().arrival_ns <= now) {
    net::Packet p = std::move(const_cast<net::Packet&>(heap_.top()));
    heap_.pop();
    deliver_packet(machine_, proc_, std::move(p),
                   machine_.config().comm_per_msg_recv_ns);
    ++delivered_;
    ++delivered;
    now = util::now_ns();
  }
  return delivered;
}

void CommThread::run() {
  const auto& cfg = machine_.config();
  std::uint32_t idle_round = 0;
  for (;;) {
    std::size_t work = pump_egress();
    work += pump_ingress();
    if (work > 0) {
      idle_round = 0;
      continue;
    }
    if (machine_.stopping() && heap_.empty()) return;
    ++idle_round;
    if (!heap_.empty()) {
      // Packets queued for a future arrival: wait just until the earliest.
      // Sleep for long gaps (burning a shared core would distort every
      // other thread's timing more than a few us of wakeup slack distorts
      // this packet's).
      const std::uint64_t due = heap_.top().arrival_ns;
      const std::uint64_t now = util::now_ns();
      if (due > now) {
        const std::uint64_t gap = due - now;
        if (gap > 15'000) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(gap - 10'000));
        } else {
          util::spin_for_ns(std::min<std::uint64_t>(gap, 2'000));
        }
      }
      continue;
    }
    if (idle_round <= cfg.idle_spin) {
      util::cpu_relax();
    } else if (idle_round <= cfg.idle_spin + cfg.idle_yield) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(cfg.idle_nap_ns));
    }
  }
}

}  // namespace tram::rt
