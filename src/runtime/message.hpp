#pragma once
///
/// \file message.hpp
/// \brief Runtime message envelope and POD payload codec.
///
/// A Message is the unit of message-driven execution: it names an endpoint
/// (registered handler) and a destination worker, and carries an opaque
/// byte payload. Within a process, messages move by moving the vector;
/// between processes they ride inside a net::Packet (same fields, so no
/// re-serialization happens at the boundary).
///
/// Payloads are arrays of trivially-copyable items; the codec below is a
/// checked memcpy in each direction.

#include <cassert>
#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

namespace tram::rt {

struct Message {
  EndpointId endpoint = 0;
  WorkerId dst_worker = kInvalidWorker;
  WorkerId src_worker = kInvalidWorker;
  /// For process-addressed messages (dst_worker == kInvalidWorker): the
  /// destination process. The receiving side picks a local worker.
  ProcId dst_proc_hint = -1;
  bool expedited = false;
  std::vector<std::byte> payload;
};

/// Serialize a span of trivially-copyable items into a byte payload.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::byte> encode_payload(std::span<const T> items) {
  std::vector<std::byte> bytes(items.size_bytes());
  if (!items.empty()) {
    std::memcpy(bytes.data(), items.data(), items.size_bytes());
  }
  return bytes;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::byte> encode_payload(const T& item) {
  return encode_payload(std::span<const T>(&item, 1));
}

/// View a payload as items of T. The payload must be a whole number of T.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::span<const T> decode_payload(std::span<const std::byte> bytes) {
  assert(bytes.size() % sizeof(T) == 0 &&
         "payload size is not a multiple of the item size");
  return {reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)};
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::span<const T> decode_payload(const Message& m) {
  return decode_payload<T>(std::span<const std::byte>(m.payload));
}

}  // namespace tram::rt
