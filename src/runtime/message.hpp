#pragma once
///
/// \file message.hpp
/// \brief Runtime message envelope and POD payload codec.
///
/// A Message is the unit of message-driven execution: it names an endpoint
/// (registered handler) and a destination worker, and carries an opaque
/// byte payload. Payloads are pooled, refcounted buffers
/// (util::PayloadRef): within a process messages move by moving the
/// handle; between processes they ride inside a net::Packet (same payload
/// handle, so the worker -> comm thread -> fabric -> worker path never
/// copies or allocates).
///
/// Payloads are arrays of trivially-copyable items; the codec below is a
/// checked memcpy in (encode) and a checked reinterpret view out (decode).

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/payload_pool.hpp"
#include "util/types.hpp"

namespace tram::rt {

struct Message {
  EndpointId endpoint = 0;
  WorkerId dst_worker = kInvalidWorker;
  WorkerId src_worker = kInvalidWorker;
  /// For process-addressed messages (dst_worker == kInvalidWorker): the
  /// destination process. The receiving side picks a local worker.
  ProcId dst_proc_hint = -1;
  bool expedited = false;
  /// Transport hops already taken by the payload's content: 0 for a ship
  /// off the originating worker, >0 when a topological-routing
  /// intermediate re-ships re-aggregated entries (src/route/). Transports
  /// count hops > 0 sends as forwarded traffic.
  std::uint8_t hops = 0;
  util::PayloadRef payload;
  /// Additional payload extents, delivered logically concatenated after
  /// `payload` (gather/iovec semantics, like a NIC gather-send). Normally
  /// empty; the routed mesh uses extras to forward runs of entries as
  /// refcounted sub-views of inbound slabs instead of copying them into
  /// the primary buffer. Extents are bare entry arrays: any per-message
  /// header lives at the front of `payload` and governs all extents.
  std::vector<util::PayloadRef> extras;

  /// Total payload bytes across all extents.
  std::size_t payload_bytes() const noexcept {
    std::size_t n = payload.size();
    for (const auto& e : extras) n += e.size();
    return n;
  }
};

/// Serialize a span of trivially-copyable items into a pooled payload.
template <typename T>
  requires std::is_trivially_copyable_v<T>
util::PayloadRef encode_payload(std::span<const T> items) {
  util::PayloadRef bytes =
      util::PayloadPool::global().acquire(items.size_bytes());
  if (!items.empty()) {
    std::memcpy(bytes.data(), items.data(), items.size_bytes());
  }
  return bytes;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
util::PayloadRef encode_payload(const T& item) {
  return encode_payload(std::span<const T>(&item, 1));
}

/// View a payload as items of T. The payload must be a whole number of T;
/// the check holds in release builds too (a truncated payload here means
/// wire corruption, not a recoverable condition). An empty payload decodes
/// to an empty span without ever forming a pointer.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::span<const T> decode_payload(std::span<const std::byte> bytes) {
  if (bytes.empty()) return {};
  if (bytes.size() % sizeof(T) != 0) {
    std::fprintf(stderr,
                 "decode_payload: %zu bytes is not a multiple of the "
                 "item size %zu\n",
                 bytes.size(), sizeof(T));
    std::abort();
  }
  return {reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)};
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::span<const T> decode_payload(const util::PayloadRef& payload) {
  return decode_payload<T>(payload.span());
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::span<const T> decode_payload(const Message& m) {
  if (!m.extras.empty()) {
    // A flat view over a multi-extent message does not exist; consumers
    // that understand extras (the routed mesh) walk them explicitly.
    std::fprintf(stderr,
                 "decode_payload: message has %zu extra extents; flat "
                 "decode would drop them\n",
                 m.extras.size());
    std::abort();
  }
  return decode_payload<T>(m.payload.span());
}

}  // namespace tram::rt
