#include "runtime/worker.hpp"

#include <chrono>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "runtime/machine.hpp"
#include "runtime/process.hpp"
#include "runtime/transport.hpp"
#include "trace/trace.hpp"
#include "util/spinlock.hpp"
#include "util/timebase.hpp"

namespace tram::rt {

Worker::Worker(Machine& machine, Process& proc, WorkerId id,
               LocalWorkerId rank)
    : machine_(machine), proc_(proc), id_(id), rank_(rank) {}

void Worker::enqueue(Message&& m) {
  if (m.expedited) {
    expedited_inbox_.push(std::move(m));
  } else {
    inbox_.push(std::move(m));
  }
}

namespace {
std::size_t this_thread_id() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}
}  // namespace

void Worker::send(Message&& m) {
  if (const std::size_t owner = owner_thread_.load(std::memory_order_relaxed);
      owner != 0 && owner != this_thread_id()) {
    std::fprintf(stderr, "Worker::send on foreign thread (worker %d)\n", id_);
    std::abort();
  }
  machine_.note_sent();
  const auto& topo = machine_.topology();
  const ProcId dst_proc = topo.proc_of_worker(m.dst_worker);
  if (dst_proc == proc_.id()) {
    // Shared-memory local delivery: straight into the peer's inbox.
    proc_.worker(topo.local_rank(m.dst_worker)).enqueue(std::move(m));
    return;
  }
  if (machine_.config().dedicated_comm) {
    // Hand off to the comm thread; spin on backpressure (the ring drains at
    // the comm thread's processing rate — this wait is the SMP serialization
    // the paper measures).
    auto& ring = proc_.egress(rank_);
    while (!ring.try_push(std::move(m))) {
      util::cpu_relax();
    }
  } else {
    // Non-SMP: this worker does its own communication, paying the
    // per-message processing cost itself.
    machine_.transport().send(proc_.id(), std::move(m));
  }
}

void Worker::send_to_proc(ProcId dst, Message&& m) {
  if (dst == proc_.id()) {
    // Process-addressed local message: pick a local worker directly.
    m.dst_worker = proc_.pick_delivery_worker();
    send(std::move(m));
    return;
  }
  m.dst_worker = kInvalidWorker;
  m.dst_proc_hint = dst;
  machine_.note_sent();
  if (machine_.config().dedicated_comm) {
    auto& ring = proc_.egress(rank_);
    while (!ring.try_push(std::move(m))) {
      util::cpu_relax();
    }
  } else {
    machine_.transport().send(proc_.id(), std::move(m));
  }
}

void Worker::dispatch(Message&& m) {
  const EndpointId ep = m.endpoint;
  machine_.endpoints().get(ep)(*this, std::move(m));
  handled_.fetch_add(1, std::memory_order_relaxed);
  machine_.note_handled();
}

std::size_t Worker::progress() {
  if (const std::size_t owner = owner_thread_.load(std::memory_order_relaxed);
      owner != 0 && owner != this_thread_id()) {
    std::fprintf(stderr, "Worker::progress on foreign thread (worker %d)\n",
                 id_);
    std::abort();
  }
  const std::uint32_t batch = machine_.config().progress_batch;
  // Span timestamp only when a batch is plausibly non-empty: idle workers
  // spin through here, and an unconditional clock read per spin is the
  // kind of traced-run overhead the fig_routed_histogram A/B row bounds.
  std::uint64_t t0 = 0;
  if (trace::enabled() &&
      (!expedited_inbox_.empty_approx() || !inbox_.empty_approx())) {
    t0 = trace::maybe_now();
  }
  std::size_t n = 0;
  // Expedited messages first (Charm++ expedited entry methods).
  while (n < batch) {
    auto m = expedited_inbox_.try_pop();
    if (!m) break;
    dispatch(std::move(*m));
    ++n;
  }
  while (n < batch) {
    auto m = inbox_.try_pop();
    if (!m) break;
    dispatch(std::move(*m));
    ++n;
  }
  // One span per non-empty batch: the worker's busy time is the sum of
  // these, everything between them is idle/overhead.
  if (n > 0) trace::complete(trace::Cat::kRuntime, trace::kWorkerBusy, t0, n);
  return n;
}

void Worker::run_idle_hooks() {
  for (auto& hook : idle_hooks_) hook(*this);
}

void Worker::pump_comm_inline() {
  // Non-SMP: single worker per process pumps its own communication.
  machine_.transport().poll(proc_);
}

void Worker::scheduler_loop() {
  const auto& cfg = machine_.config();
  std::uint32_t idle_round = 0;
  while (!machine_.stopping()) {
    if (!cfg.dedicated_comm) pump_comm_inline();
    const std::size_t n = progress();
    if (n > 0) {
      idle_round = 0;
      continue;
    }
    // Idle: let the application flush / advance deferred work, then back
    // off progressively so oversubscribed runs do not thrash.
    if (idle_round % 8 == 0) run_idle_hooks();
    ++idle_round;
    if (idle_round <= cfg.idle_spin) {
      util::cpu_relax();
    } else if (idle_round <= cfg.idle_spin + cfg.idle_yield ||
               !cfg.dedicated_comm) {
      // Non-SMP workers never nap: they are also the comm pump and a nap
      // would stretch every modeled arrival they owe their peers.
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(cfg.idle_nap_ns));
    }
  }
}

}  // namespace tram::rt
