#include "runtime/transport.hpp"

#include <stdexcept>
#include <utility>

#include "net/fabric.hpp"
#include "runtime/machine.hpp"
#include "runtime/process.hpp"
#include "runtime/worker.hpp"
#include "util/spinlock.hpp"
#include "util/timebase.hpp"

namespace tram::rt {

void deliver_to_process(Machine& machine, Process& proc, Message&& m) {
  // One predictable branch on the fault-free path; the reliability layer
  // (src/fault/) dedups and strips its frame here when installed.
  if (DeliveryInterceptor* icpt = machine.delivery_interceptor()) {
    if (!icpt->on_inbound(proc, m)) return;
  }
  proc.worker(machine.topology().local_rank(m.dst_worker))
      .enqueue(std::move(m));
}

ProcId message_dst_proc(const Machine& machine, const Message& m) {
  return m.dst_worker == kInvalidWorker
             ? m.dst_proc_hint
             : machine.topology().proc_of_worker(m.dst_worker);
}

// ---- ModeledFabricTransport ----

ModeledFabricTransport::ModeledFabricTransport(Machine& machine,
                                               net::Fabric& fabric)
    : machine_(machine), fabric_(fabric) {
  const int procs = machine.topology().procs();
  states_.reserve(static_cast<std::size_t>(procs));
  for (int p = 0; p < procs; ++p) {
    states_.push_back(std::make_unique<ProcState>());
  }
}

void ModeledFabricTransport::send(ProcId src_proc, Message&& m) {
  const auto& cfg = machine_.config();
  // The per-message (and per-byte) processing cost of section III-A,
  // burned on the calling thread — the comm thread in SMP mode, the
  // worker itself otherwise.
  const double byte_cost =
      cfg.comm_per_byte_ns * static_cast<double>(m.payload_bytes());
  util::spin_for_ns(
      static_cast<std::uint64_t>(cfg.comm_per_msg_send_ns + byte_cost));

  if (m.hops > 0) forwarded_.fetch_add(1, std::memory_order_relaxed);

  net::Packet p;
  p.src_proc = src_proc;
  p.dst_proc = message_dst_proc(machine_, m);
  p.dst_worker = m.dst_worker;
  p.src_worker = m.src_worker;
  p.endpoint = m.endpoint;
  p.expedited = m.expedited;
  p.hops = m.hops;
  p.payload = std::move(m.payload);
  p.extras = std::move(m.extras);
  fabric_.send(std::move(p));
}

std::size_t ModeledFabricTransport::poll(Process& proc) {
  const auto& cfg = machine_.config();
  auto& st = *states_[static_cast<std::size_t>(proc.id())];
  auto& q = fabric_.ingress(proc.id());
  while (auto p = q.try_pop()) st.heap.push(std::move(*p));

  std::size_t delivered = 0;
  std::uint64_t now = util::now_ns();
  while (!st.heap.empty() && st.heap.top().arrival_ns <= now) {
    // priority_queue::top is const; the element is popped immediately
    // after, so the const_cast move is safe.
    net::Packet p = std::move(const_cast<net::Packet&>(st.heap.top()));
    st.heap.pop();
    double recv_bytes = static_cast<double>(p.payload.size());
    for (const auto& e : p.extras) recv_bytes += static_cast<double>(e.size());
    const double byte_cost = cfg.comm_per_byte_ns * recv_bytes;
    util::spin_for_ns(
        static_cast<std::uint64_t>(cfg.comm_per_msg_recv_ns + byte_cost));
    fabric_.note_received(proc.id(), p);

    Message m;
    m.endpoint = p.endpoint;
    m.src_worker = p.src_worker;
    m.expedited = p.expedited;
    m.hops = p.hops;
    m.dst_worker = p.dst_worker == kInvalidWorker
                       ? proc.pick_delivery_worker()
                       : p.dst_worker;
    m.payload = std::move(p.payload);
    m.extras = std::move(p.extras);
    deliver_to_process(machine_, proc, std::move(m));
    ++delivered;
    now = util::now_ns();
  }
  return delivered;
}

std::uint64_t ModeledFabricTransport::next_due_ns(ProcId p) const {
  const auto& heap = states_[static_cast<std::size_t>(p)]->heap;
  return heap.empty() ? 0 : heap.top().arrival_ns;
}

std::uint64_t ModeledFabricTransport::in_flight() const {
  // Packets in the reorder heaps have not been note_received yet, so the
  // fabric's pushed-minus-received count covers them too.
  return fabric_.in_flight();
}

std::uint64_t ModeledFabricTransport::total_messages() const {
  return fabric_.total_messages_sent();
}

std::uint64_t ModeledFabricTransport::total_bytes() const {
  return fabric_.total_bytes_sent();
}

std::uint64_t ModeledFabricTransport::total_forwarded() const {
  return forwarded_.load(std::memory_order_relaxed);
}

void ModeledFabricTransport::reset() {
  forwarded_.store(0, std::memory_order_relaxed);
  fabric_.reset();
}

// ---- InlineTransport ----

InlineTransport::InlineTransport(Machine& machine) : machine_(machine) {}

void InlineTransport::send(ProcId /*src_proc*/, Message&& m) {
  const ProcId dst = message_dst_proc(machine_, m);
  if (dst < 0 || dst >= machine_.topology().procs()) {
    throw std::out_of_range("InlineTransport::send: bad dst_proc");
  }
  messages_.fetch_add(1, std::memory_order_relaxed);
  if (m.hops > 0) forwarded_.fetch_add(1, std::memory_order_relaxed);
  // Charge the same fixed header as the fabric so byte counters compare.
  bytes_.fetch_add(m.payload_bytes() + net::Packet::kHeaderBytes,
                   std::memory_order_relaxed);
  Process& proc = machine_.process(dst);
  if (m.dst_worker == kInvalidWorker) {
    m.dst_worker = proc.pick_delivery_worker();
  }
  deliver_to_process(machine_, proc, std::move(m));
}

std::size_t InlineTransport::poll(Process&) { return 0; }

std::uint64_t InlineTransport::next_due_ns(ProcId) const { return 0; }

std::uint64_t InlineTransport::in_flight() const { return 0; }

std::uint64_t InlineTransport::total_messages() const {
  return messages_.load(std::memory_order_relaxed);
}

std::uint64_t InlineTransport::total_bytes() const {
  return bytes_.load(std::memory_order_relaxed);
}

std::uint64_t InlineTransport::total_forwarded() const {
  return forwarded_.load(std::memory_order_relaxed);
}

void InlineTransport::reset() {
  messages_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  forwarded_.store(0, std::memory_order_relaxed);
}

}  // namespace tram::rt
