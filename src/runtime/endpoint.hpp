#pragma once
///
/// \file endpoint.hpp
/// \brief Registry of message handlers (Charm++ entry-method analogue).
///
/// Endpoints are registered identically on every process before the machine
/// starts (SPMD registration, like Charm++'s readonly/entry registration
/// phase), so an EndpointId is valid machine-wide. Registration is not
/// thread-safe; dispatch is read-only and safe from all workers.

#include <cassert>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/message.hpp"
#include "util/types.hpp"

namespace tram::rt {

class Worker;

/// A handler runs on the destination worker's thread, message-driven.
using Handler = std::function<void(Worker&, Message&&)>;

class EndpointRegistry {
 public:
  /// Register a handler; returns its machine-wide id. Call only before the
  /// machine runs.
  EndpointId add(Handler h) {
    handlers_.push_back(std::move(h));
    return static_cast<EndpointId>(handlers_.size() - 1);
  }

  const Handler& get(EndpointId id) const {
    assert(id >= 0 && static_cast<std::size_t>(id) < handlers_.size());
    return handlers_[static_cast<std::size_t>(id)];
  }

  std::size_t size() const noexcept { return handlers_.size(); }

 private:
  std::vector<Handler> handlers_;
};

}  // namespace tram::rt
