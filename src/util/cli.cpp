#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace tram::util {

void Cli::add_flag(std::string name, bool* out, std::string help) {
  options_.push_back({std::move(name), Kind::Flag, out, std::move(help),
                      *out ? "true" : "false"});
}

void Cli::add_int(std::string name, std::int64_t* out, std::string help) {
  options_.push_back({std::move(name), Kind::Int, out, std::move(help),
                      std::to_string(*out)});
}

void Cli::add_double(std::string name, double* out, std::string help) {
  options_.push_back({std::move(name), Kind::Double, out, std::move(help),
                      std::to_string(*out)});
}

void Cli::add_string(std::string name, std::string* out, std::string help) {
  options_.push_back(
      {std::move(name), Kind::Str, out, std::move(help), *out});
}

namespace {

/// "AxB[xC]" for help/default display; all-zero renders as "auto".
std::string dims_repr(const std::array<int, 3>& dims) {
  if (dims[0] == 0) return "auto";
  std::string s = std::to_string(dims[0]);
  for (int k = 1; k < 3 && dims[static_cast<std::size_t>(k)] != 0; ++k) {
    s += 'x';
    s += std::to_string(dims[static_cast<std::size_t>(k)]);
  }
  return s;
}

bool parse_dims(std::string_view value, std::array<int, 3>& out) {
  std::array<int, 3> dims{0, 0, 0};
  int n = 0;
  const char* p = value.data();
  const char* end = value.data() + value.size();
  while (p < end) {
    if (n == 3) return false;
    int extent = 0;
    auto [next, ec] = std::from_chars(p, end, extent);
    if (ec != std::errc() || next == p || extent < 1) return false;
    dims[static_cast<std::size_t>(n++)] = extent;
    p = next;
    if (p == end) break;
    if (*p != 'x' && *p != 'X') return false;
    ++p;
    if (p == end) return false;  // trailing 'x'
  }
  if (n < 2) return false;  // a mesh needs at least two extents
  out = dims;
  return true;
}

}  // namespace

void Cli::add_dims(std::string name, std::array<int, 3>* out,
                   std::string help) {
  options_.push_back(
      {std::move(name), Kind::Dims, out, std::move(help), dims_repr(*out)});
}

const Cli::Option* Cli::find(std::string_view name) const {
  for (const auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

bool Cli::apply(const Option& opt, std::string_view value) {
  switch (opt.kind) {
    case Kind::Flag: {
      auto* out = static_cast<bool*>(opt.out);
      if (value.empty() || value == "true" || value == "1") {
        *out = true;
      } else if (value == "false" || value == "0") {
        *out = false;
      } else {
        return false;
      }
      return true;
    }
    case Kind::Int: {
      auto* out = static_cast<std::int64_t*>(opt.out);
      auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), *out);
      return ec == std::errc() && ptr == value.data() + value.size();
    }
    case Kind::Double: {
      auto* out = static_cast<double*>(opt.out);
      try {
        std::size_t pos = 0;
        *out = std::stod(std::string(value), &pos);
        return pos == value.size();
      } catch (...) {
        return false;
      }
    }
    case Kind::Str: {
      *static_cast<std::string*>(opt.out) = std::string(value);
      return true;
    }
    case Kind::Dims: {
      return parse_dims(value, *static_cast<std::array<int, 3>*>(opt.out));
    }
  }
  return false;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      std::fprintf(stderr, "unknown argument '%s' (see --help)\n",
                   argv[i]);
      return false;
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::string_view value;
    bool has_inline = false;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_inline = true;
    }
    const Option* opt = find(name);
    if (opt == nullptr) {
      std::fprintf(stderr, "unknown option '--%.*s' (see --help)\n",
                   static_cast<int>(name.size()), name.data());
      return false;
    }
    if (!has_inline && opt->kind != Kind::Flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option '--%s' needs a value\n",
                     opt->name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!apply(*opt, value)) {
      std::fprintf(stderr, "bad value '%.*s' for option '--%s'\n",
                   static_cast<int>(value.size()), value.data(),
                   opt->name.c_str());
      return false;
    }
  }
  return true;
}

std::string Cli::help() const {
  std::ostringstream os;
  os << program_ << "\n\noptions:\n";
  for (const auto& opt : options_) {
    os << "  --" << opt.name;
    if (opt.kind != Kind::Flag) os << " <value>";
    os << "\n      " << opt.help << " (default: " << opt.default_repr
       << ")\n";
  }
  return os.str();
}

}  // namespace tram::util
