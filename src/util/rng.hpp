#pragma once
///
/// \file rng.hpp
/// \brief Deterministic, splittable random number generation.
///
/// Every worker in every benchmark draws from its own xoshiro256** stream,
/// seeded from (global seed, worker id, purpose tag) through splitmix64.
/// This makes whole-machine runs reproducible bit-for-bit regardless of
/// thread interleaving, which the tests rely on (e.g. histogram verification
/// replays each worker's stream sequentially).

#include <cmath>
#include <cstdint>
#include <limits>

namespace tram::util {

/// splitmix64: used to expand seeds; passes BigCrush, one 64-bit state word.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, small, and statistically
/// strong; satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed from a single 64-bit value; state words are derived via splitmix64
  /// so that nearby seeds give unrelated streams.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Convenience: derive an independent stream for (seed, stream, purpose).
  static Xoshiro256 for_stream(std::uint64_t seed, std::uint64_t stream,
                               std::uint64_t purpose = 0) noexcept {
    std::uint64_t sm = seed;
    std::uint64_t a = splitmix64(sm);
    sm ^= 0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL;
    std::uint64_t b = splitmix64(sm);
    sm ^= 0xbb67ae8584caa73bULL + purpose * 0xc2b2ae3d27d4eb4fULL;
    std::uint64_t c = splitmix64(sm);
    return Xoshiro256(a ^ b ^ c);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponential variate with the given mean (PHOLD timestamp increments).
  double exponential(double mean) noexcept {
    // 1 - uniform() is in (0, 1], so the log argument never hits zero.
    return -mean * std::log(1.0 - uniform());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace tram::util
