#pragma once
///
/// \file payload_pool.hpp
/// \brief Process-local slab pool of refcounted message payload buffers.
///
/// The paper's central premise is that fine-grained messaging is dominated
/// by per-message costs; a heap allocation (and free) per message payload
/// is exactly such a cost. This pool removes it: payloads live in slabs
/// drawn from per-size-class free lists, handed out as refcounted
/// PayloadRef handles. The steady-state insert -> ship -> deliver path
/// acquires a recycled slab, fills it in place, moves the handle through
/// rt::Message and net::Packet without copying, and returns the slab to
/// the free list when the last reference drops.
///
/// Design:
///  - Size classes are powers of two from min_slab_bytes to max_slab_bytes;
///    a request rounds up to its class. Larger requests (or requests past a
///    configured per-class slab cap) fall back to one-shot heap blocks that
///    behave identically but are freed on release — the pool degrades, it
///    never fails.
///  - Each class keeps kStripes spinlocked LIFO free lists indexed by a
///    thread-id hash, so concurrent workers rarely contend; an empty stripe
///    steals from its neighbours before allocating a new slab.
///  - A PayloadRef may be a *view* into another ref's slab (subref):
///    destination-side scatter ships segments of one inbound buffer as
///    zero-copy messages, and the slab recycles when the last segment is
///    delivered.
///
/// Thread-safety: acquire/release and refcounting are safe from any
/// thread. Mutation (data() writes, resize) requires the caller to hold
/// the only reference, which all runtime paths do by construction.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

#include "util/spinlock.hpp"
#include "util/sync.hpp"

namespace tram::util {

class PayloadPool;

namespace detail {

/// Control block preceding every slab's payload bytes. Cache-line sized so
/// the payload starts 64-byte aligned (sound for any trivially-copyable
/// wire entry type).
struct alignas(kCacheLine) SlabHeader {
  /// Refcount rides the sync seam: under TRAM_SYNC_DEBUG every inc/dec is
  /// a deterministic-scheduler yield point, which is what licenses the
  /// relaxed/release orders in PayloadRef below.
  DefaultSync::Atomic<std::uint32_t> refs{1};
  /// Usable payload bytes following this header.
  std::size_t capacity = 0;
  /// Pool that created this slab (stats + recycling on last release).
  PayloadPool* owner = nullptr;
  /// Pooled slabs recycle to a free list; fallback blocks are freed.
  bool pooled = false;
  /// Free-list link, valid only while cached in the pool.
  SlabHeader* next_free = nullptr;
};

inline std::byte* slab_data(SlabHeader* h) noexcept {
  return reinterpret_cast<std::byte*>(h + 1);
}
inline const std::byte* slab_data(const SlabHeader* h) noexcept {
  return reinterpret_cast<const std::byte*>(h + 1);
}

}  // namespace detail

/// Refcounted handle to a pooled payload buffer. Move-first (moves are
/// pointer swaps); copying shares the buffer and bumps the refcount. A
/// default-constructed ref is empty and acquires storage from the global
/// pool on first resize.
class PayloadRef {
 public:
  PayloadRef() noexcept = default;
  ~PayloadRef() { release(); }

  PayloadRef(const PayloadRef& o) noexcept
      : hdr_(o.hdr_), data_(o.data_), size_(o.size_) {
    if (hdr_) hdr_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  PayloadRef& operator=(const PayloadRef& o) noexcept {
    if (this != &o) {
      if (o.hdr_) o.hdr_->refs.fetch_add(1, std::memory_order_relaxed);
      release();
      hdr_ = o.hdr_;
      data_ = o.data_;
      size_ = o.size_;
    }
    return *this;
  }
  PayloadRef(PayloadRef&& o) noexcept
      : hdr_(o.hdr_), data_(o.data_), size_(o.size_) {
    o.hdr_ = nullptr;
    o.data_ = nullptr;
    o.size_ = 0;
  }
  PayloadRef& operator=(PayloadRef&& o) noexcept {
    if (this != &o) {
      release();
      hdr_ = o.hdr_;
      data_ = o.data_;
      size_ = o.size_;
      o.hdr_ = nullptr;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Bytes available at data() without reallocating (0 for an empty ref).
  /// For a subref this is the tail of the slab from the view's offset.
  std::size_t capacity() const noexcept {
    if (!hdr_) return 0;
    return hdr_->capacity -
           static_cast<std::size_t>(data_ - detail::slab_data(hdr_));
  }

  const std::byte* data() const noexcept { return data_; }
  /// Mutable access: caller must hold the only reference (all runtime fill
  /// paths do — buffers are filled before they are shared).
  std::byte* data() noexcept { return data_; }

  std::span<const std::byte> span() const noexcept { return {data_, size_}; }
  std::span<std::byte> span() noexcept { return {data_, size_}; }

  /// unique() keeps acquire: callers use it to justify *mutating* the
  /// buffer (resize's in-place path), so the load must synchronize with
  /// the release decrement of the last other owner — otherwise the write
  /// could race that owner's still-unpublished reads.
  bool unique() const noexcept {
    return hdr_ && hdr_->refs.load(std::memory_order_acquire) == 1;
  }
  /// Relaxed: diagnostic counter for tests/stats; nobody touches buffer
  /// memory on the strength of this value.
  std::uint32_t use_count() const noexcept {
    return hdr_ ? hdr_->refs.load(std::memory_order_relaxed) : 0;
  }

  /// Set the logical size. Shrinking and growing within capacity() on a
  /// unique ref are O(1) (grown bytes are zero-filled, matching the
  /// std::vector semantics the runtime had before pooling); anything else
  /// acquires a fresh buffer and copies the prefix.
  void resize(std::size_t n);

  /// A view of [offset, offset+len) sharing this ref's slab: the slab is
  /// pinned until every subref drops. Used for zero-copy scatter of
  /// pre-segmented inbound buffers.
  PayloadRef subref(std::size_t offset, std::size_t len) const noexcept {
    PayloadRef r;
    if (hdr_) {
      hdr_->refs.fetch_add(1, std::memory_order_relaxed);
      r.hdr_ = hdr_;
      r.data_ = data_ + offset;
      r.size_ = len;
    }
    return r;
  }

 private:
  friend class PayloadPool;
  PayloadRef(detail::SlabHeader* h, std::byte* d, std::size_t n) noexcept
      : hdr_(h), data_(d), size_(n) {}

  void release() noexcept;

  detail::SlabHeader* hdr_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Typed facade over a PayloadRef holding an array of T: what PpBuffer
/// seals evaluate to. Iterable/indexable like the vector it replaced, but
/// ships as a message payload without a copy (take_ref()).
template <typename T>
class PooledBatch {
 public:
  PooledBatch() noexcept = default;
  explicit PooledBatch(PayloadRef ref) noexcept : ref_(std::move(ref)) {}

  std::size_t size() const noexcept { return ref_.size() / sizeof(T); }
  bool empty() const noexcept { return ref_.empty(); }

  const T* data() const noexcept {
    return reinterpret_cast<const T*>(ref_.data());
  }
  T* data() noexcept { return reinterpret_cast<T*>(ref_.data()); }

  const T& operator[](std::size_t i) const noexcept { return data()[i]; }
  T& operator[](std::size_t i) noexcept { return data()[i]; }

  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size(); }
  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size(); }

  const PayloadRef& ref() const noexcept { return ref_; }
  /// Surrender the underlying buffer (e.g. into Message::payload).
  PayloadRef take_ref() && noexcept { return std::move(ref_); }

 private:
  PayloadRef ref_;
};

/// The slab pool. One global() instance serves the whole process; tests
/// construct private pools to exercise exhaustion and recycling.
class PayloadPool {
 public:
  struct Config {
    /// Smallest slab class, bytes (power of two).
    std::size_t min_slab_bytes = 64;
    /// Largest pooled class, bytes; bigger requests go to the heap.
    std::size_t max_slab_bytes = std::size_t{1} << 20;
    /// Cap on slabs a class may ever allocate (0 = unbounded). Acquires
    /// past the cap fall back to one-shot heap blocks.
    std::size_t max_slabs_per_class = 0;
  };

  /// Counter snapshot. recycle_rate() is the zero-copy claim's metric: the
  /// fraction of acquires served from a free list instead of an allocation.
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t slab_allocs = 0;
    std::uint64_t heap_fallbacks = 0;
    std::uint64_t releases = 0;
    std::uint64_t free_slabs = 0;
    /// Live buffers right now (not affected by reset_stats()).
    std::uint64_t outstanding = 0;
    /// Slab capacity held by live buffers right now (live counter, like
    /// outstanding). Counts full size-class capacity, not logical sizes —
    /// the bytes a memory budget actually pays for.
    std::uint64_t outstanding_bytes = 0;
    /// High-water mark of outstanding_bytes. reset_stats() re-arms it to
    /// the current outstanding_bytes, so per-trial peaks are measurable.
    std::uint64_t peak_outstanding_bytes = 0;

    double recycle_rate() const {
      return acquires == 0
                 ? 0.0
                 : static_cast<double>(pool_hits) /
                       static_cast<double>(acquires);
    }
  };

  PayloadPool();
  explicit PayloadPool(Config cfg);
  /// All refs into this pool must be dropped first (the global pool is
  /// immortal, so this only binds test-local pools).
  ~PayloadPool();

  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  /// Hand out a buffer of exactly `bytes` logical size (capacity is the
  /// enclosing size class). bytes == 0 returns an empty ref. Thread-safe.
  PayloadRef acquire(std::size_t bytes);

  Stats stats() const;
  /// Zero the counters (not the cached slabs) between benchmark trials.
  void reset_stats();

  /// The process-wide pool used by the runtime message path. Never
  /// destroyed (payloads may be in flight during static teardown).
  static PayloadPool& global();

 private:
  friend class PayloadRef;
  static constexpr std::size_t kStripes = 8;

  struct Stripe {
    Spinlock mu;
    detail::SlabHeader* head = nullptr;
  };
  struct SizeClass {
    std::size_t capacity = 0;
    std::atomic<std::size_t> total_slabs{0};
    Stripe stripes[kStripes];
  };

  static void release_slab(detail::SlabHeader* h) noexcept;
  void on_release(detail::SlabHeader* h) noexcept;

  detail::SlabHeader* new_block(std::size_t capacity, bool pooled);
  static void destroy_block(detail::SlabHeader* h) noexcept;

  int class_index(std::size_t bytes) const noexcept;

  Config cfg_;
  int num_classes_ = 0;
  int min_shift_ = 0;
  std::unique_ptr<SizeClass[]> classes_;

  std::atomic<std::uint64_t> acquires_{0};
  std::atomic<std::uint64_t> pool_hits_{0};
  std::atomic<std::uint64_t> slab_allocs_{0};
  std::atomic<std::uint64_t> heap_fallbacks_{0};
  std::atomic<std::uint64_t> releases_{0};
  std::atomic<std::uint64_t> free_slabs_{0};
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<std::uint64_t> outstanding_bytes_{0};
  std::atomic<std::uint64_t> peak_outstanding_bytes_{0};
};

inline void PayloadRef::release() noexcept {
  if (!hdr_) return;
  // Classic split refcount-drop: every decrement releases this owner's
  // accesses, and only the thread that hits zero pays an acquire (as a
  // fence) to pull in every other owner's accesses before recycling the
  // slab. Cheaper than acq_rel on all decrements; checked by the
  // DebugSync interleaving tests. TSan cannot model standalone fences
  // (gcc warns -Wtsan and reports the recycled slab's next writer as
  // racing its previous reader), so TSan builds pay acq_rel on every
  // decrement instead — same ordering, visible to the checker.
#if defined(__SANITIZE_THREAD__) || defined(TRAM_TSAN_FENCES)
  if (hdr_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    PayloadPool::release_slab(hdr_);
  }
#else
  if (hdr_->refs.fetch_sub(1, std::memory_order_release) == 1) {
    DefaultSync::fence(std::memory_order_acquire);
    PayloadPool::release_slab(hdr_);
  }
#endif
  hdr_ = nullptr;
  data_ = nullptr;
  size_ = 0;
}

inline void PayloadRef::resize(std::size_t n) {
  if (hdr_ && n <= capacity() && unique()) {
    if (n > size_) std::memset(data_ + size_, 0, n - size_);
    size_ = n;
    return;
  }
  PayloadPool& pool =
      hdr_ && hdr_->owner ? *hdr_->owner : PayloadPool::global();
  PayloadRef grown = pool.acquire(n);
  const std::size_t keep = size_ < n ? size_ : n;
  if (keep != 0) std::memcpy(grown.data(), data_, keep);
  if (n > keep) std::memset(grown.data() + keep, 0, n - keep);
  *this = std::move(grown);
}

}  // namespace tram::util
