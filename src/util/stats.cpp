#include "util/stats.hpp"

#include <cmath>
#include <sstream>

namespace tram::util {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::string RunningStats::to_string() const {
  std::ostringstream os;
  os << mean() << " +/- " << stddev() << " [" << min() << ", " << max()
     << "] (n=" << count() << ")";
  return os.str();
}

}  // namespace tram::util
