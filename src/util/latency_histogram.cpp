#include "util/latency_histogram.hpp"

#include <bit>
#include <cmath>
#include <sstream>

namespace tram::util {

std::size_t LatencyHistogram::bucket_for(std::uint64_t ns) noexcept {
  if (ns < 2) return 0;
  const int octave = 63 - std::countl_zero(ns);
  // Sub-bucket: top bit below the leading bit selects the half-octave.
  const std::uint64_t frac = (ns >> (octave - 1)) & 1u;
  std::size_t b = static_cast<std::size_t>(octave) * kSub + frac;
  return b < kBuckets ? b : kBuckets - 1;
}

double LatencyHistogram::bucket_mid(std::size_t b) noexcept {
  const double lo = std::exp2(static_cast<double>(b) / kSub);
  const double hi = std::exp2(static_cast<double>(b + 1) / kSub);
  return std::sqrt(lo * hi);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  sum_ns_ += other.sum_ns_;
  if (other.count_) {
    if (count_ == 0 || other.min_ns_ < min_ns_) min_ns_ = other.min_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  }
  count_ += other.count_;
}

double LatencyHistogram::percentile_ns(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) return bucket_mid(b);
  }
  return static_cast<double>(max_ns_);
}

std::string LatencyHistogram::to_string() const {
  std::ostringstream os;
  os << "latency: n=" << count_ << " mean=" << mean_ns() << "ns p50="
     << percentile_ns(0.5) << " p99=" << percentile_ns(0.99)
     << " max=" << max_ns_ << "\n";
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    os << "  [~" << bucket_mid(b) << "ns] " << buckets_[b] << "\n";
  }
  return os.str();
}

}  // namespace tram::util
