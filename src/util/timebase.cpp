#include "util/timebase.hpp"

#include <chrono>
#include <thread>

#include "util/spinlock.hpp"

namespace tram::util {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void spin_for_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const std::uint64_t deadline = now_ns() + ns;
  while (now_ns() < deadline) cpu_relax();
}

void wait_for_ns(std::uint64_t ns) noexcept {
  constexpr std::uint64_t kSleepThreshold = 100'000;  // 100us
  constexpr std::uint64_t kSleepSlack = 60'000;       // wake early, spin rest
  const std::uint64_t deadline = now_ns() + ns;
  if (ns >= kSleepThreshold) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns - kSleepSlack));
  }
  while (now_ns() < deadline) cpu_relax();
}

}  // namespace tram::util
