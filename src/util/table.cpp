#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tram::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::to_string() const {
  // Column widths over header + all rows.
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) {
      total += width[c] + (c + 1 < width.size() ? 2 : 0);
    }
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace tram::util
