#pragma once
///
/// \file latency_histogram.hpp
/// \brief Log-bucketed latency histogram with percentile queries.
///
/// Item latency is the paper's second key metric (time from insert() on the
/// source worker to delivery on the destination worker). Recording every
/// sample is too expensive at millions of items per second, so each worker
/// owns one of these: fixed-size log2 buckets (2 sub-buckets per octave,
/// ~41% relative error worst case, far below the scheme-to-scheme gaps the
/// paper reports), mergeable across workers after the run.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tram::util {

class LatencyHistogram {
 public:
  /// Record one latency sample in nanoseconds.
  void add(std::uint64_t ns) noexcept {
    buckets_[bucket_for(ns)]++;
    sum_ns_ += ns;
    ++count_;
    if (ns > max_ns_) max_ns_ = ns;
    if (count_ == 1 || ns < min_ns_) min_ns_ = ns;
  }

  void merge(const LatencyHistogram& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean_ns() const noexcept {
    return count_ ? static_cast<double>(sum_ns_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::uint64_t min_ns() const noexcept { return count_ ? min_ns_ : 0; }
  std::uint64_t max_ns() const noexcept { return max_ns_; }

  /// Approximate percentile (q in [0,1]) from bucket midpoints.
  double percentile_ns(double q) const noexcept;

  /// Multi-line bucket dump for debugging; empty buckets omitted.
  std::string to_string() const;

 private:
  // 2 sub-buckets per power of two covering [1ns, ~4.3s].
  static constexpr std::size_t kOctaves = 32;
  static constexpr std::size_t kSub = 2;
  static constexpr std::size_t kBuckets = kOctaves * kSub;

  static std::size_t bucket_for(std::uint64_t ns) noexcept;
  /// Representative value (geometric midpoint) of a bucket.
  static double bucket_mid(std::size_t b) noexcept;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t sum_ns_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace tram::util
