#pragma once
///
/// \file timebase.hpp
/// \brief Nanosecond clock helpers and a calibrated busy-wait.
///
/// The simulated fabric and comm threads need to *consume* modeled time (an
/// alpha of a few microseconds, a per-message processing cost of hundreds of
/// nanoseconds). sleep_for() cannot express sub-10us delays reliably, so
/// short delays are burned with a calibrated spin; longer ones combine
/// sleep + spin. All wall-clock timing in benchmarks goes through now_ns().

#include <cstdint>

namespace tram::util {

/// Monotonic wall-clock time in nanoseconds (steady_clock).
std::uint64_t now_ns() noexcept;

/// Busy-wait for approximately ns nanoseconds, using cpu_relax() in the
/// loop. Accurate to tens of nanoseconds after the first call (which
/// calibrates). ns == 0 returns immediately.
void spin_for_ns(std::uint64_t ns) noexcept;

/// Hybrid wait: sleeps for the bulk of the interval when it is long enough
/// (>= 100us) and spins the remainder. Use for modeled network latencies.
void wait_for_ns(std::uint64_t ns) noexcept;

}  // namespace tram::util
