#pragma once
///
/// \file types.hpp
/// \brief Fundamental identifier types shared across all tramlib modules.
///
/// The simulated machine is a three-level hierarchy mirroring the paper's
/// Charm++ SMP deployment: physical *nodes* host *processes*, each process
/// owns several *workers* (PEs — one pthread bound to a core in real
/// Charm++). Identifiers come in two flavours:
///
///  - *global* ids, unique machine-wide (`NodeId`, `ProcId`, `WorkerId`), and
///  - *local* ranks within the enclosing level (`LocalWorkerId` is a worker's
///    rank within its process).
///
/// All ids are dense 0-based integers so they can index vectors directly.

#include <cstdint>

namespace tram {

/// Global id of a physical node, in [0, nodes()).
using NodeId = std::int32_t;

/// Global id of a process, in [0, procs()). Processes are numbered
/// node-major: process p lives on node p / procs_per_node.
using ProcId = std::int32_t;

/// Global id of a worker (a PE in Charm++ terminology), in [0, workers()).
/// Workers are numbered process-major: worker w lives in process
/// w / workers_per_proc.
using WorkerId = std::int32_t;

/// A worker's rank within its own process, in [0, workers_per_proc).
using LocalWorkerId = std::int32_t;

/// Identifies a registered message handler (see rt::EndpointRegistry).
using EndpointId = std::int32_t;

/// Sentinel for "no worker" / broadcast-style destinations.
inline constexpr WorkerId kInvalidWorker = -1;

}  // namespace tram
