#include "util/topology.hpp"

#include <sstream>
#include <stdexcept>

namespace tram::util {

Topology::Topology(int nodes, int procs_per_node, int workers_per_proc)
    : nodes_(nodes),
      procs_per_node_(procs_per_node),
      workers_per_proc_(workers_per_proc) {
  if (nodes < 1 || procs_per_node < 1 || workers_per_proc < 1) {
    throw std::invalid_argument(
        "Topology: all dimensions must be >= 1, got " + to_string());
  }
}

std::string Topology::to_string() const {
  std::ostringstream os;
  os << nodes_ << "n x " << procs_per_node_ << "p x " << workers_per_proc_
     << "w";
  return os.str();
}

}  // namespace tram::util
