#pragma once
///
/// \file cli.hpp
/// \brief Minimal command-line parser for examples and bench drivers.
///
/// Supports --key value, --key=value, and boolean --flag forms. Unknown
/// arguments are an error (fail fast beats silently ignored typos in an
/// experiment sweep). Every option self-documents for --help.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tram::util {

class Cli {
 public:
  /// \param program one-line description printed by --help.
  explicit Cli(std::string program) : program_(std::move(program)) {}

  /// Register options before parse(). Returned reference is stable.
  void add_flag(std::string name, bool* out, std::string help);
  void add_int(std::string name, std::int64_t* out, std::string help);
  void add_double(std::string name, double* out, std::string help);
  void add_string(std::string name, std::string* out, std::string help);
  /// Mesh extents: "AxB" or "AxBxC" (case-insensitive 'x', each extent
  /// >= 1). Unused trailing entries stay 0 — the all-zero default means
  /// "auto-factor" (see core::TramConfig::route_dims / --route-dims).
  void add_dims(std::string name, std::array<int, 3>* out, std::string help);

  /// Parse argv. Returns false (after printing help or an error) when the
  /// caller should exit; true when parsing succeeded.
  bool parse(int argc, char** argv);

  std::string help() const;

 private:
  enum class Kind { Flag, Int, Double, Str, Dims };
  struct Option {
    std::string name;  // without leading dashes
    Kind kind;
    void* out;
    std::string help;
    std::string default_repr;
  };

  const Option* find(std::string_view name) const;
  bool apply(const Option& opt, std::string_view value);

  std::string program_;
  std::vector<Option> options_;
};

}  // namespace tram::util
