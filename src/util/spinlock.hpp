#pragma once
///
/// \file spinlock.hpp
/// \brief Test-and-test-and-set spinlock with exponential backoff.
///
/// Used for short critical sections on hot paths (aggregation buffers,
/// fabric queues) where a futex-based mutex would dominate the cost being
/// measured. Satisfies Lockable, so it composes with std::lock_guard /
/// std::scoped_lock.

#include <atomic>
#include <cstdint>

#include "util/sync.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace tram::util {

/// CPU-relax hint for spin loops; compiles to PAUSE on x86.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// TTAS spinlock with bounded exponential backoff.
///
/// The load-before-CAS ("test-and-test-and-set") keeps waiters spinning on a
/// shared cache line in S state instead of bouncing it in M state; backoff
/// caps contention when many workers hit one buffer (the PP scheme's worst
/// case).
///
/// Memory orders (already minimal; the seam exists to *check* them, not to
/// relax further): exchange(acquire) on the winning path publishes the
/// critical section's reads, store(release) on unlock publishes its writes,
/// and the inner wait loop is relaxed because only the eventual exchange
/// synchronizes.
template <typename Sync = DefaultSync>
class BasicSpinlock {
 public:
  BasicSpinlock() noexcept = default;
  BasicSpinlock(const BasicSpinlock&) = delete;
  BasicSpinlock& operator=(const BasicSpinlock&) = delete;

  void lock() noexcept {
    std::uint32_t backoff = 1;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Wait until the lock looks free before retrying the RMW.
      while (locked_.load(std::memory_order_relaxed)) {
        for (std::uint32_t i = 0; i < backoff; ++i) cpu_relax();
        if (backoff < kMaxBackoff) backoff <<= 1;
      }
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  static constexpr std::uint32_t kMaxBackoff = 64;
  typename Sync::template Atomic<bool> locked_{false};
};

/// The runtime's spinlock: shipping orders normally, deterministic-scheduler
/// instrumented under TRAM_SYNC_DEBUG.
using Spinlock = BasicSpinlock<>;

/// Pads T to a cache line to prevent false sharing in arrays of hot objects
/// (per-worker counters, per-destination buffer headers).
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};
};

}  // namespace tram::util
