#include "util/payload_pool.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <thread>

namespace tram::util {

namespace {

/// Round up to a power of two (>= 1).
std::size_t ceil_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

int log2_of(std::size_t pow2) noexcept {
  int n = 0;
  while ((std::size_t{1} << n) < pow2) ++n;
  return n;
}

/// Stripe affinity: hash the calling thread once so a thread's releases
/// land on the free list its next acquire checks first.
std::size_t my_stripe() noexcept {
  thread_local const std::size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripe;
}

}  // namespace

PayloadPool::PayloadPool() : PayloadPool(Config{}) {}

PayloadPool::PayloadPool(Config cfg) : cfg_(cfg) {
  cfg_.min_slab_bytes = ceil_pow2(cfg_.min_slab_bytes < 64 ? 64 : cfg_.min_slab_bytes);
  cfg_.max_slab_bytes = ceil_pow2(cfg_.max_slab_bytes);
  if (cfg_.max_slab_bytes < cfg_.min_slab_bytes) {
    cfg_.max_slab_bytes = cfg_.min_slab_bytes;
  }
  min_shift_ = log2_of(cfg_.min_slab_bytes);
  num_classes_ = log2_of(cfg_.max_slab_bytes) - min_shift_ + 1;
  classes_ = std::make_unique<SizeClass[]>(static_cast<std::size_t>(num_classes_));
  for (int c = 0; c < num_classes_; ++c) {
    classes_[c].capacity = cfg_.min_slab_bytes << c;
  }
}

PayloadPool::~PayloadPool() {
  // Free every cached slab. Outstanding refs must already be gone: a later
  // release would touch a destroyed pool (the global pool side-steps this
  // by never dying).
  for (int c = 0; c < num_classes_; ++c) {
    for (auto& stripe : classes_[c].stripes) {
      detail::SlabHeader* h = stripe.head;
      while (h != nullptr) {
        detail::SlabHeader* next = h->next_free;
        destroy_block(h);
        h = next;
      }
      stripe.head = nullptr;
    }
  }
}

PayloadPool& PayloadPool::global() {
  // Leaked on purpose: payload refs may outlive every other static.
  static PayloadPool* pool = new PayloadPool();
  return *pool;
}

int PayloadPool::class_index(std::size_t bytes) const noexcept {
  // Constant-time ceil-log2: hot per-message path (every acquire/release).
  const int w = static_cast<int>(std::bit_width(bytes - 1));
  return w <= min_shift_ ? 0 : w - min_shift_;
}

detail::SlabHeader* PayloadPool::new_block(std::size_t capacity,
                                           bool pooled) {
  void* mem = ::operator new(sizeof(detail::SlabHeader) + capacity,
                             std::align_val_t{kCacheLine});
  auto* h = new (mem) detail::SlabHeader;
  h->capacity = capacity;
  h->owner = this;
  h->pooled = pooled;
  return h;
}

void PayloadPool::destroy_block(detail::SlabHeader* h) noexcept {
  h->~SlabHeader();
  ::operator delete(h, std::align_val_t{kCacheLine});
}

PayloadRef PayloadPool::acquire(std::size_t bytes) {
  if (bytes == 0) return {};
  acquires_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  // Charge the block's full capacity (not the logical size): that is what
  // the budgeted caller's memory actually holds.
  const auto charge = [this](std::size_t cap) {
    const std::uint64_t now =
        outstanding_bytes_.fetch_add(cap, std::memory_order_relaxed) + cap;
    std::uint64_t peak = peak_outstanding_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_outstanding_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  };

  if (bytes > cfg_.max_slab_bytes) {
    heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    charge(bytes);
    detail::SlabHeader* h = new_block(bytes, /*pooled=*/false);
    return PayloadRef(h, detail::slab_data(h), bytes);
  }

  SizeClass& cls = classes_[class_index(bytes)];
  const std::size_t base = my_stripe();
  for (std::size_t i = 0; i < kStripes; ++i) {
    Stripe& stripe = cls.stripes[(base + i) % kStripes];
    detail::SlabHeader* h = nullptr;
    {
      std::lock_guard<Spinlock> g(stripe.mu);
      h = stripe.head;
      if (h != nullptr) {
        stripe.head = h->next_free;
        // Inside the lock: a pop must always observe the matching push's
        // increment, or the counter transiently underflows.
        free_slabs_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (h != nullptr) {
      pool_hits_.fetch_add(1, std::memory_order_relaxed);
      charge(h->capacity);
      h->next_free = nullptr;
      h->refs.store(1, std::memory_order_relaxed);
      return PayloadRef(h, detail::slab_data(h), bytes);
    }
  }

  if (cfg_.max_slabs_per_class != 0 &&
      cls.total_slabs.load(std::memory_order_relaxed) >=
          cfg_.max_slabs_per_class) {
    // Pool exhausted for this class: degrade to a one-shot heap block.
    heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    charge(bytes);
    detail::SlabHeader* h = new_block(bytes, /*pooled=*/false);
    return PayloadRef(h, detail::slab_data(h), bytes);
  }

  cls.total_slabs.fetch_add(1, std::memory_order_relaxed);
  slab_allocs_.fetch_add(1, std::memory_order_relaxed);
  charge(cls.capacity);
  detail::SlabHeader* h = new_block(cls.capacity, /*pooled=*/true);
  return PayloadRef(h, detail::slab_data(h), bytes);
}

void PayloadPool::release_slab(detail::SlabHeader* h) noexcept {
  // Last reference dropped; the owner decides between recycle and free.
  h->owner->on_release(h);
}

void PayloadPool::on_release(detail::SlabHeader* h) noexcept {
  releases_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  outstanding_bytes_.fetch_sub(h->capacity, std::memory_order_relaxed);
  if (!h->pooled) {
    destroy_block(h);
    return;
  }
  SizeClass& cls = classes_[class_index(h->capacity)];
  Stripe& stripe = cls.stripes[my_stripe() % kStripes];
  {
    std::lock_guard<Spinlock> g(stripe.mu);
    h->next_free = stripe.head;
    stripe.head = h;
    free_slabs_.fetch_add(1, std::memory_order_relaxed);
  }
}

PayloadPool::Stats PayloadPool::stats() const {
  Stats s;
  s.acquires = acquires_.load(std::memory_order_relaxed);
  s.pool_hits = pool_hits_.load(std::memory_order_relaxed);
  s.slab_allocs = slab_allocs_.load(std::memory_order_relaxed);
  s.heap_fallbacks = heap_fallbacks_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  s.free_slabs = free_slabs_.load(std::memory_order_relaxed);
  // A live counter, not acquires - releases: reset_stats() zeroes the
  // flow counters between benchmark trials while buffers stay alive.
  s.outstanding = outstanding_.load(std::memory_order_relaxed);
  s.outstanding_bytes = outstanding_bytes_.load(std::memory_order_relaxed);
  s.peak_outstanding_bytes =
      peak_outstanding_bytes_.load(std::memory_order_relaxed);
  return s;
}

void PayloadPool::reset_stats() {
  acquires_.store(0, std::memory_order_relaxed);
  pool_hits_.store(0, std::memory_order_relaxed);
  slab_allocs_.store(0, std::memory_order_relaxed);
  heap_fallbacks_.store(0, std::memory_order_relaxed);
  releases_.store(0, std::memory_order_relaxed);
  // Re-arm the high-water to the bytes still live, so the next trial's
  // peak measures that trial alone.
  peak_outstanding_bytes_.store(
      outstanding_bytes_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

}  // namespace tram::util
