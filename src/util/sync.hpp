#pragma once
///
/// \file sync.hpp
/// \brief Compile-time synchronization seam for the lock-free primitives.
///
/// Every concurrency primitive in util/ (mpsc_queue, spsc_ring, spinlock,
/// PayloadPool refcounts) is templated on a Sync policy that supplies its
/// atomics. Three policies exist:
///
///  - RealSync: std::atomic with the memory orders written at each call
///    site. This is what ships; the relaxed orders on the hot paths are
///    only legal because the other two policies exist to check them.
///  - ConservativeSync: every operation upgraded to seq_cst. The
///    "before" baseline for the micro-benchmarks, so each relaxation
///    lands with a measured delta rather than an assertion of speed.
///  - DebugSync: seq_cst plus a call into DebugScheduler::sync_point()
///    before every atomic operation. Under DebugScheduler::run() exactly
///    one thread executes at a time and every atomic op is a potential
///    deterministic, seeded context switch — a poor man's model checker
///    that explores adversarial interleavings reproducibly.
///
/// DefaultSync is RealSync normally and DebugSync when the build defines
/// TRAM_SYNC_DEBUG (CMake option of the same name), so the exact shipping
/// primitive code — same template body, same orders requested — runs under
/// the deterministic scheduler without a parallel implementation to drift.
///
/// Outside a DebugScheduler::run() region, DebugSync atomics degrade to
/// plain seq_cst atomics (sync_point() no-ops for unmanaged threads), so a
/// TRAM_SYNC_DEBUG build still runs the full runtime correctly, just
/// slower.

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

// TSan cannot model standalone memory fences (gcc emits -Wtsan on
// atomic_thread_fence): code relying on the release-decrement +
// acquire-fence-on-zero refcount pattern checks TRAM_TSAN_FENCES and
// falls back to acq_rel operations the checker can see. Clang spells
// the detection differently from gcc's __SANITIZE_THREAD__.
#if !defined(TRAM_TSAN_FENCES) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TRAM_TSAN_FENCES 1
#endif
#endif

namespace tram::util {

/// Deterministic token-passing scheduler used by DebugSync.
///
/// run() spawns one OS thread per function but admits exactly one at a
/// time: a token moves between threads, and every DebugSync atomic
/// operation offers to pass it (sync_point()). The next holder is drawn
/// from a splitmix64 stream seeded by the caller, so a given (seed, code)
/// pair replays the identical interleaving — a failing seed is a
/// reproducer, not a flake. Threads not created by run() (including the
/// caller) skip sync points entirely, so the scheduler composes with the
/// rest of the process.
class DebugScheduler {
 public:
  /// Execute `fns` to completion under scheduler control. Serializing:
  /// returns only after every function has finished. Not reentrant.
  static void run(std::uint64_t seed, std::vector<std::function<void()>> fns);

  /// Yield point: called by DebugSync before every atomic op. No-op on
  /// unmanaged threads or outside run().
  static void sync_point();

  /// Context switches performed by the last completed run() — test
  /// introspection (same seed must give the same count).
  static std::uint64_t switches();
};

namespace sync_detail {

/// std::atomic facade that ignores the requested memory order and runs
/// everything seq_cst; with kYield it also offers a DebugScheduler context
/// switch before each operation. Member functions are instantiated lazily,
/// so pointer specializations never touch fetch_add/fetch_sub.
template <typename T, bool kYield>
class SeqCstAtomic {
 public:
  SeqCstAtomic() noexcept = default;
  constexpr SeqCstAtomic(T v) noexcept : a_(v) {}
  SeqCstAtomic(const SeqCstAtomic&) = delete;
  SeqCstAtomic& operator=(const SeqCstAtomic&) = delete;

  T load(std::memory_order = std::memory_order_seq_cst) const noexcept {
    yield();
    return a_.load(std::memory_order_seq_cst);
  }
  void store(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
    yield();
    a_.store(v, std::memory_order_seq_cst);
  }
  T exchange(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
    yield();
    return a_.exchange(v, std::memory_order_seq_cst);
  }
  T fetch_add(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
    yield();
    return a_.fetch_add(v, std::memory_order_seq_cst);
  }
  T fetch_sub(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
    yield();
    return a_.fetch_sub(v, std::memory_order_seq_cst);
  }
  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order = std::memory_order_seq_cst,
      std::memory_order = std::memory_order_seq_cst) noexcept {
    yield();
    return a_.compare_exchange_weak(expected, desired,
                                    std::memory_order_seq_cst,
                                    std::memory_order_seq_cst);
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order = std::memory_order_seq_cst,
      std::memory_order = std::memory_order_seq_cst) noexcept {
    yield();
    return a_.compare_exchange_strong(expected, desired,
                                      std::memory_order_seq_cst,
                                      std::memory_order_seq_cst);
  }

 private:
  static void yield() noexcept {
    if constexpr (kYield) DebugScheduler::sync_point();
  }
  std::atomic<T> a_;
};

}  // namespace sync_detail

/// Shipping policy: plain std::atomic, orders as written at the call site.
struct RealSync {
  static constexpr bool kDebug = false;
  template <typename T>
  using Atomic = std::atomic<T>;
  static void fence(std::memory_order mo) noexcept {
    std::atomic_thread_fence(mo);
  }
};

/// Everything seq_cst: the measured "before" for each relaxation.
struct ConservativeSync {
  static constexpr bool kDebug = false;
  template <typename T>
  using Atomic = sync_detail::SeqCstAtomic<T, /*kYield=*/false>;
  static void fence(std::memory_order) noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
};

/// Seq_cst plus a deterministic-scheduler yield before every operation.
struct DebugSync {
  static constexpr bool kDebug = true;
  template <typename T>
  using Atomic = sync_detail::SeqCstAtomic<T, /*kYield=*/true>;
  static void fence(std::memory_order) noexcept {
    DebugScheduler::sync_point();
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
};

#if defined(TRAM_SYNC_DEBUG)
using DefaultSync = DebugSync;
inline constexpr bool kSyncDebugBuild = true;
#else
using DefaultSync = RealSync;
inline constexpr bool kSyncDebugBuild = false;
#endif

}  // namespace tram::util
