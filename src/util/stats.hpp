#pragma once
///
/// \file stats.hpp
/// \brief Streaming summary statistics (Welford) used by all benchmarks.

#include <cstddef>
#include <cstdint>
#include <string>

namespace tram::util {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
/// Mergeable, so per-worker accumulators can be combined after a run.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Combine two accumulators (Chan et al. parallel variance).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// "mean ± stddev [min, max] (n)" for logs.
  std::string to_string() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace tram::util
