#include "util/sync.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace tram::util {

namespace {

/// All scheduler state behind one mutex. Atomic operations in managed
/// threads are serialized through it, which is the point: exactly one
/// thread runs between sync points, so every interleaving the RNG picks is
/// observed in full, and the RNG draw order itself is deterministic.
struct SchedState {
  std::mutex mu;
  std::condition_variable cv;
  bool active = false;
  int current = -1;           // token holder; -1 = nobody
  std::vector<bool> done;     // per managed thread
  std::uint64_t rng = 0;
  std::uint64_t switch_count = 0;
  std::uint64_t last_switch_count = 0;
};

SchedState& state() {
  static SchedState s;
  return s;
}

/// Index of this thread within the current run; -1 for unmanaged threads.
thread_local int t_index = -1;

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform draw over not-yet-finished threads; -1 when all are done.
/// Caller holds the state mutex.
int pick_next(SchedState& s) {
  int alive = 0;
  for (std::size_t i = 0; i < s.done.size(); ++i) {
    if (!s.done[i]) ++alive;
  }
  if (alive == 0) return -1;
  auto k = static_cast<int>(splitmix64(s.rng) % static_cast<unsigned>(alive));
  for (std::size_t i = 0; i < s.done.size(); ++i) {
    if (!s.done[i] && k-- == 0) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

void DebugScheduler::run(std::uint64_t seed,
                         std::vector<std::function<void()>> fns) {
  SchedState& s = state();
  const int n = static_cast<int>(fns.size());
  if (n == 0) return;

  {
    std::lock_guard<std::mutex> g(s.mu);
    s.active = true;
    s.current = -1;
    s.done.assign(static_cast<std::size_t>(n), false);
    s.rng = seed;
    s.switch_count = 0;
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&s, i, fn = std::move(fns[static_cast<std::size_t>(
                                  i)])]() mutable {
      t_index = i;
      {
        // Wait for the token before touching anything.
        std::unique_lock<std::mutex> lk(s.mu);
        s.cv.wait(lk, [&] { return s.current == i; });
      }
      fn();
      {
        std::unique_lock<std::mutex> lk(s.mu);
        s.done[static_cast<std::size_t>(i)] = true;
        s.current = pick_next(s);
        s.cv.notify_all();
      }
      t_index = -1;
    });
  }

  {
    // Hand the token to a seeded first thread. The controlling thread
    // never takes the token itself, so joining below cannot deadlock.
    std::lock_guard<std::mutex> g(s.mu);
    s.current = pick_next(s);
    s.cv.notify_all();
  }
  for (auto& t : threads) t.join();

  {
    std::lock_guard<std::mutex> g(s.mu);
    s.active = false;
    s.current = -1;
    s.last_switch_count = s.switch_count;
  }
}

void DebugScheduler::sync_point() {
  if (t_index < 0) return;  // unmanaged thread (cheap thread-local test)
  SchedState& s = state();
  std::unique_lock<std::mutex> lk(s.mu);
  if (!s.active) return;
  const int next = pick_next(s);
  if (next == t_index || next < 0) return;  // keep the token
  ++s.switch_count;
  s.current = next;
  s.cv.notify_all();
  s.cv.wait(lk, [&] { return s.current == t_index; });
}

std::uint64_t DebugScheduler::switches() {
  SchedState& s = state();
  std::lock_guard<std::mutex> g(s.mu);
  return s.active ? s.switch_count : s.last_switch_count;
}

}  // namespace tram::util
