#pragma once
///
/// \file mpsc_queue.hpp
/// \brief Unbounded multi-producer single-consumer queue.
///
/// This is the worker inbox: any worker / comm thread may enqueue runtime
/// messages, only the owning worker dequeues. We use the Vyukov intrusive
/// MPSC algorithm generalized to non-intrusive nodes: producers swing an
/// atomic head with a single exchange (wait-free), the consumer follows next
/// pointers. The consumer can observe a transiently broken link while a
/// producer is between exchange and store; `try_pop` treats this as "empty",
/// which is safe because the producer completes promptly and the caller
/// polls.

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

namespace tram::util {

/// Unbounded MPSC FIFO (per-producer FIFO, global order unspecified).
/// T must be movable. pop() must only be called from one consumer thread.
template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    // Drain remaining nodes, including the stub.
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  /// Producer side; wait-free (single atomic exchange). Thread-safe.
  void push(T value) {
    Node* node = new Node(std::move(value));
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumer side; single-threaded. Returns nullopt when empty (or when a
  /// producer is mid-publish — caller polls, so this is indistinguishable
  /// from empty and equally correct).
  std::optional<T> try_pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    T out = std::move(next->value);
    tail_ = next;
    delete tail;
    pop_count_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  /// True when the queue looks empty to the consumer. Producers racing with
  /// this call may make it stale immediately; use only for idle heuristics.
  bool empty_approx() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

  /// Total elements ever popped (consumer-side monotone counter, used by
  /// quiescence detection).
  std::size_t pop_count() const {
    return pop_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T&& v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  alignas(64) std::atomic<Node*> head_;  // producers push here
  alignas(64) Node* tail_;               // consumer pops here
  std::atomic<std::size_t> pop_count_{0};
};

}  // namespace tram::util
