#pragma once
///
/// \file mpsc_queue.hpp
/// \brief Unbounded multi-producer single-consumer queue.
///
/// This is the worker inbox: any worker / comm thread may enqueue runtime
/// messages, only the owning worker dequeues. We use the Vyukov intrusive
/// MPSC algorithm generalized to non-intrusive nodes: producers swing an
/// atomic head with a single exchange (wait-free), the consumer follows next
/// pointers. The consumer can observe a transiently broken link while a
/// producer is between exchange and store; `try_pop` treats this as "empty",
/// which is safe because the producer completes promptly and the caller
/// polls.
///
/// Memory orders: the producer's exchange(acq_rel) + store(release) and the
/// consumer's load(acquire) on `next` are the load-bearing pair (they
/// publish the node's value). empty_approx() is an advisory idle heuristic
/// whose result is stale the instant it returns, so its load is relaxed;
/// pop_count is a single-writer monotone counter read under quiescence
/// windows, also relaxed. Both relaxations are exercised by util_sync_test
/// under the DebugSync deterministic scheduler.

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

#include "util/sync.hpp"

namespace tram::util {

/// Unbounded MPSC FIFO (per-producer FIFO, global order unspecified).
/// T must be movable. pop() must only be called from one consumer thread.
template <typename T, typename Sync = DefaultSync>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    // Drain remaining nodes, including the stub.
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  /// Producer side; wait-free (single atomic exchange). Thread-safe.
  void push(T value) {
    Node* node = new Node(std::move(value));
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumer side; single-threaded. Returns nullopt when empty (or when a
  /// producer is mid-publish — caller polls, so this is indistinguishable
  /// from empty and equally correct).
  std::optional<T> try_pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    T out = std::move(next->value);
    tail_ = next;
    delete tail;
    pop_count_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  /// True when the queue looks empty to the consumer. Producers racing with
  /// this call may make it stale immediately; use only for idle heuristics.
  /// Relaxed: the caller acts on the *value* only (poll again / go idle),
  /// never on memory published by the racing push, so no ordering is needed.
  bool empty_approx() const {
    return tail_->next.load(std::memory_order_relaxed) == nullptr;
  }

  /// Total elements ever popped (consumer-side monotone counter, used by
  /// quiescence detection).
  std::size_t pop_count() const {
    return pop_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T&& v) : value(std::move(v)) {}
    typename Sync::template Atomic<Node*> next{nullptr};
    T value{};
  };

  alignas(64) typename Sync::template Atomic<Node*> head_;  // producers
  alignas(64) Node* tail_;                                  // consumer
  typename Sync::template Atomic<std::size_t> pop_count_{0};
};

}  // namespace tram::util
