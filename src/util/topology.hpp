#pragma once
///
/// \file topology.hpp
/// \brief Machine shape: nodes x processes-per-node x workers-per-process.
///
/// Mirrors the paper's deployment vocabulary. "non-SMP mode" is simply
/// workers_per_proc == 1 (one process per core, no comm sharing); "SMP mode"
/// has workers_per_proc > 1 plus one dedicated comm thread per process.
/// All id conversions live here so every module agrees on the numbering:
/// processes are node-major, workers are process-major.

#include <string>

#include "util/types.hpp"

namespace tram::util {

class Topology {
 public:
  Topology() = default;

  /// \param nodes           physical nodes in the machine
  /// \param procs_per_node  processes on each node (>= 1)
  /// \param workers_per_proc worker PEs per process (>= 1)
  Topology(int nodes, int procs_per_node, int workers_per_proc);

  int nodes() const noexcept { return nodes_; }
  int procs_per_node() const noexcept { return procs_per_node_; }
  int workers_per_proc() const noexcept { return workers_per_proc_; }

  /// Total process count N in the paper's notation.
  int procs() const noexcept { return nodes_ * procs_per_node_; }
  /// Total worker count (N * t in the paper's notation).
  int workers() const noexcept { return procs() * workers_per_proc_; }
  /// Workers on one node.
  int workers_per_node() const noexcept {
    return procs_per_node_ * workers_per_proc_;
  }

  NodeId node_of_proc(ProcId p) const noexcept {
    return p / procs_per_node_;
  }
  ProcId proc_of_worker(WorkerId w) const noexcept {
    return w / workers_per_proc_;
  }
  NodeId node_of_worker(WorkerId w) const noexcept {
    return node_of_proc(proc_of_worker(w));
  }
  LocalWorkerId local_rank(WorkerId w) const noexcept {
    return w % workers_per_proc_;
  }
  WorkerId first_worker_of(ProcId p) const noexcept {
    return p * workers_per_proc_;
  }
  WorkerId worker_at(ProcId p, LocalWorkerId r) const noexcept {
    return p * workers_per_proc_ + r;
  }
  ProcId first_proc_of(NodeId n) const noexcept {
    return n * procs_per_node_;
  }

  /// True when the two workers share a process (shared memory reachable).
  bool same_proc(WorkerId a, WorkerId b) const noexcept {
    return proc_of_worker(a) == proc_of_worker(b);
  }
  /// True when the two workers share a physical node.
  bool same_node(WorkerId a, WorkerId b) const noexcept {
    return node_of_worker(a) == node_of_worker(b);
  }

  /// "4n x 2p x 8w" — used in bench table headers.
  std::string to_string() const;

  bool operator==(const Topology&) const = default;

 private:
  int nodes_ = 1;
  int procs_per_node_ = 1;
  int workers_per_proc_ = 1;
};

}  // namespace tram::util
