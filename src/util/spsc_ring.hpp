#pragma once
///
/// \file spsc_ring.hpp
/// \brief Bounded single-producer single-consumer ring buffer.
///
/// The classic Lamport queue with cached indices: producer and consumer each
/// keep a local copy of the other side's index and only re-read the shared
/// atomic when the cached value says the ring looks full/empty. Used for the
/// worker -> comm-thread egress channel, which is SPSC by construction (one
/// worker produces, one comm thread consumes).
///
/// Memory orders: each side's publishing store is release and the *refresh*
/// of the other side's index is acquire — that pair is what makes the slot
/// contents visible and must not be weakened (the cached-index reload is
/// exactly the point where one side starts trusting slots the other side
/// wrote). size_approx()/empty_approx() are advisory (idle heuristics,
/// pre-run sanity on a quiesced machine) and act only on the returned
/// count, never on slot memory, so their loads are relaxed.

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "util/spinlock.hpp"
#include "util/sync.hpp"

namespace tram::util {

/// Bounded SPSC FIFO. Capacity is rounded up to a power of two.
/// T must be movable. Not copyable; addresses are stable after construction.
template <typename T, typename Sync = DefaultSync>
class SpscRing {
 public:
  /// \param capacity minimum number of elements the ring can hold.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full (caller decides
  /// whether to retry, spill, or apply backpressure).
  ///
  /// Takes an rvalue reference, NOT a by-value parameter: on failure the
  /// caller's object is untouched, so `while (!ring.try_push(std::move(m)))`
  /// retry loops are safe. (A by-value parameter would already have
  /// consumed the object on a failed attempt, silently pushing an empty
  /// shell on retry.)
  bool try_push(T&& value) {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.value.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.value.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Copying overload for tests and PODs.
  bool try_push(const T& value) {
    T copy = value;
    return try_push(std::move(copy));
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.value.load(std::memory_order_acquire);
      if (tail == cached_head_) return std::nullopt;
    }
    T out = std::move(slots_[tail & mask_]);
    tail_.value.store(tail + 1, std::memory_order_release);
    return out;
  }

  /// Approximate occupancy; exact only when quiesced. Relaxed loads: the
  /// count is advisory and no slot memory is touched on its strength.
  std::size_t size_approx() const {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    return head - tail;
  }

  std::size_t capacity() const { return mask_ + 1; }
  bool empty_approx() const { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer-owned line: head index plus the producer's cached tail.
  Padded<typename Sync::template Atomic<std::size_t>> head_{};
  alignas(kCacheLine) std::size_t cached_tail_ = 0;
  // Consumer-owned line: tail index plus the consumer's cached head.
  Padded<typename Sync::template Atomic<std::size_t>> tail_{};
  alignas(kCacheLine) std::size_t cached_head_ = 0;
};

}  // namespace tram::util
