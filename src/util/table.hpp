#pragma once
///
/// \file table.hpp
/// \brief Aligned text tables and CSV output for the benchmark harness.
///
/// Every figure-reproduction bench prints one of these: a header row naming
/// the series (schemes), one row per x-value (node count, buffer size, ...),
/// mirroring the rows behind the paper's plots. The same data can be dumped
/// as CSV for external plotting.

#include <cstddef>
#include <string>
#include <vector>

namespace tram::util {

class Table {
 public:
  /// \param title  printed above the table (e.g. "Fig 9: Histogram 1M ...").
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt_int(long long v);

  /// Render with aligned columns.
  std::string to_string() const;
  /// Render as CSV (header + rows, no title).
  std::string to_csv() const;
  /// Print to stdout.
  void print() const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tram::util
