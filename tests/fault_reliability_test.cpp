/// End-to-end proof that the reliability protocol (src/fault/) restores
/// exactly-once delivery and bit-for-bit results on a faulty fabric:
/// histogram bin counts, SSSP FNV distance hashes, and PHOLD event counts
/// across {direct WsP, Mesh2D, Mesh3D} x {drop 5%, dup 5%, drop+dup+delay}
/// on both transports, each lossy run observing at least one injected
/// fault and the matching recovery (retransmit / dup-drop). Plus the SMP
/// sorted-scatter path (frame stripping in front of RoutedSortedHeader)
/// and a same-seed replay producing identical results.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/histogram.hpp"
#include "apps/phold.hpp"
#include "apps/sssp.hpp"
#include "core/scheme.hpp"
#include "core/tram_stats.hpp"
#include "graph/generator.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace tram;

struct FaultMode {
  const char* name;
  fault::FaultConfig cfg;
};

std::vector<FaultMode> fault_modes() {
  fault::FaultConfig drop5;
  drop5.drop_rate = 0.05;
  drop5.seed = 11;
  fault::FaultConfig dup5;
  dup5.dup_rate = 0.05;
  dup5.seed = 12;
  fault::FaultConfig all;
  all.drop_rate = 0.04;
  all.dup_rate = 0.04;
  all.delay_ns = 30'000;
  all.delay_rate = 0.5;  // half the packets lag: genuine reordering
  all.seed = 13;
  return {{"drop5", drop5}, {"dup5", dup5}, {"drop+dup+delay", all}};
}

const std::vector<core::Scheme> kSchemes = {
    core::Scheme::WsP, core::Scheme::Mesh2D, core::Scheme::Mesh3D};

struct TransportCase {
  const char* name;
  rt::TransportKind kind;
};
const std::vector<TransportCase> kTransports = {
    {"ModeledFabric", rt::TransportKind::kModeledFabric},
    {"Inline", rt::TransportKind::kInline}};

/// Non-SMP deterministic-cost config with the given transport + faults.
rt::RuntimeConfig faulty_runtime(rt::TransportKind kind,
                                 const fault::FaultConfig& f) {
  rt::RuntimeConfig cfg = kind == rt::TransportKind::kInline
                              ? rt::RuntimeConfig::inline_testing()
                              : rt::RuntimeConfig::testing();
  cfg.dedicated_comm = false;
  cfg.fault = f;
  return cfg;
}

/// Every lossy run must observe its faults firing AND the matching
/// recovery machinery engaging.
void expect_faults_observed(const core::FaultStats& fs,
                            const fault::FaultConfig& cfg,
                            const std::string& what) {
  if (cfg.drop_rate > 0.0) {
    EXPECT_GE(fs.faults_injected_drop, 1u) << what;
    EXPECT_GE(fs.retransmits, 1u) << what;
  }
  if (cfg.dup_rate > 0.0) {
    EXPECT_GE(fs.faults_injected_dup, 1u) << what;
    EXPECT_GE(fs.dup_drops, 1u) << what;
  }
  if (cfg.delay_ns > 0) {
    EXPECT_GE(fs.faults_injected_delay, 1u) << what;
  }
}

// ---- histogram: bin counts bit-for-bit ----

apps::HistogramParams histogram_params(core::Scheme scheme) {
  apps::HistogramParams p;
  p.updates_per_worker = 1500;
  p.bins_per_worker = 256;
  p.progress_interval = 64;
  p.tram.scheme = scheme;
  p.tram.buffer_items = 64;
  return p;
}

TEST(FaultReliability, HistogramExactlyOnceAndBitForBit) {
  const util::Topology topo(8, 1, 1);

  // Fault-free reference: the full distributed table, per worker.
  std::vector<std::vector<std::uint64_t>> ref;
  {
    rt::Machine machine(
        topo, faulty_runtime(rt::TransportKind::kInline, {}));
    apps::HistogramApp app(machine, histogram_params(core::Scheme::WsP));
    const auto res = app.run();
    ASSERT_TRUE(res.verified);
    for (WorkerId w = 0; w < topo.workers(); ++w) {
      ref.push_back(app.table_slice(w));
    }
  }

  for (const auto& transport : kTransports) {
    for (const auto scheme : kSchemes) {
      for (const auto& mode : fault_modes()) {
        const std::string what = std::string("histogram ") +
                                 transport.name + " " +
                                 core::to_string(scheme) + " " + mode.name;
        rt::Machine machine(topo, faulty_runtime(transport.kind, mode.cfg));
        apps::HistogramApp app(machine, histogram_params(scheme));
        const auto res = app.run();
        EXPECT_TRUE(res.verified) << what;
        EXPECT_EQ(res.tram.items_inserted, res.tram.items_delivered)
            << what;
        for (WorkerId w = 0; w < topo.workers(); ++w) {
          EXPECT_EQ(app.table_slice(w), ref[static_cast<std::size_t>(w)])
              << what << " worker " << w;
        }
        expect_faults_observed(machine.fault_stats(), mode.cfg, what);
      }
    }
  }
}

// ---- SSSP: FNV distance hash bit-for-bit ----

std::uint64_t distance_hash(const apps::SsspApp& app,
                            const graph::Csr& g) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    h ^= app.distance(v);
    h *= 1099511628211ULL;  // FNV-1a fold per vertex
  }
  return h;
}

TEST(FaultReliability, SsspDistanceHashBitForBit) {
  graph::GeneratorParams gp;
  gp.num_vertices = 3000;
  gp.avg_degree = 6.0;
  gp.seed = 5;
  const graph::Csr g = graph::build_uniform(gp);
  const util::Topology topo(8, 1, 1);

  apps::SsspParams params;
  params.graph = &g;
  params.delta = 8;
  params.verify = true;
  params.prioritize_urgent = true;  // priority path rides the faults too
  params.tram.buffer_items = 128;
  params.tram.priority_buffer_items = 8;

  std::uint64_t ref_hash = 0;
  {
    params.tram.scheme = core::Scheme::WsP;
    rt::Machine machine(
        topo, faulty_runtime(rt::TransportKind::kInline, {}));
    apps::SsspApp app(machine, params);
    const auto res = app.run();
    ASSERT_TRUE(res.verified);
    ref_hash = distance_hash(app, g);
  }

  for (const auto& transport : kTransports) {
    for (const auto scheme : kSchemes) {
      for (const auto& mode : fault_modes()) {
        const std::string what = std::string("sssp ") + transport.name +
                                 " " + core::to_string(scheme) + " " +
                                 mode.name;
        params.tram.scheme = scheme;
        rt::Machine machine(topo, faulty_runtime(transport.kind, mode.cfg));
        apps::SsspApp app(machine, params);
        const auto res = app.run();
        EXPECT_TRUE(res.verified) << what;  // matches Dijkstra
        EXPECT_EQ(res.tram.items_inserted, res.tram.items_delivered)
            << what;
        EXPECT_EQ(distance_hash(app, g), ref_hash) << what;
        expect_faults_observed(machine.fault_stats(), mode.cfg, what);
      }
    }
  }
}

// ---- PHOLD: machine-wide event count bit-for-bit ----

apps::PholdParams phold_params(core::Scheme scheme) {
  apps::PholdParams p;
  p.lps_per_worker = 8;
  p.init_events_per_lp = 1;
  p.lookahead = 1.0;
  p.mean_delay = 1.0;
  p.remote_prob = 0.5;
  p.end_time = 40.0;
  p.tram.scheme = scheme;
  p.tram.buffer_items = 32;
  return p;
}

TEST(FaultReliability, PholdEventCountBitForBit) {
  const util::Topology topo(8, 1, 1);

  std::uint64_t ref_events = 0;
  {
    rt::Machine machine(
        topo, faulty_runtime(rt::TransportKind::kInline, {}));
    apps::PholdApp app(machine, phold_params(core::Scheme::WsP));
    const auto res = app.run();
    ref_events = res.events_processed;
    ASSERT_GT(ref_events, 0u);
  }

  for (const auto& transport : kTransports) {
    for (const auto scheme : kSchemes) {
      for (const auto& mode : fault_modes()) {
        const std::string what = std::string("phold ") + transport.name +
                                 " " + core::to_string(scheme) + " " +
                                 mode.name;
        rt::Machine machine(topo, faulty_runtime(transport.kind, mode.cfg));
        apps::PholdApp app(machine, phold_params(scheme));
        const auto res = app.run();
        EXPECT_EQ(res.events_processed, ref_events) << what;
        EXPECT_EQ(res.tram.items_inserted, res.tram.items_delivered)
            << what;
        expect_faults_observed(machine.fault_stats(), mode.cfg, what);
      }
    }
  }
}

// ---- SMP: frame stripping ahead of the sorted-scatter fast path ----

/// With workers_per_proc > 1 a routed last hop ships a RoutedSortedHeader
/// and the receiver scatters refcounted sub-views of the slab — all
/// behind the stripped ReliableHeader. The comm-thread handoff is also
/// what the TSan job watches here.
TEST(FaultReliability, SmpSortedScatterSurvivesFaults) {
  const util::Topology topo(2, 2, 2);  // 4 procs x 2 workers, SMP

  std::vector<std::vector<std::uint64_t>> ref;
  {
    rt::RuntimeConfig cfg = rt::RuntimeConfig::testing();
    rt::Machine machine(topo, cfg);
    apps::HistogramApp app(machine,
                           histogram_params(core::Scheme::Mesh2D));
    const auto res = app.run();
    ASSERT_TRUE(res.verified);
    for (WorkerId w = 0; w < topo.workers(); ++w) {
      ref.push_back(app.table_slice(w));
    }
  }

  for (const auto& transport : kTransports) {
    fault::FaultConfig f;
    f.drop_rate = 0.04;
    f.dup_rate = 0.04;
    f.delay_ns = 30'000;
    f.delay_rate = 0.5;
    f.seed = 21;
    rt::RuntimeConfig cfg = transport.kind == rt::TransportKind::kInline
                                ? rt::RuntimeConfig::inline_testing()
                                : rt::RuntimeConfig::testing();
    cfg.fault = f;  // SMP: dedicated comm threads drive the protocol
    const std::string what =
        std::string("smp histogram Mesh2D ") + transport.name;
    rt::Machine machine(topo, cfg);
    apps::HistogramApp app(machine,
                           histogram_params(core::Scheme::Mesh2D));
    const auto res = app.run();
    EXPECT_TRUE(res.verified) << what;
    EXPECT_EQ(res.tram.items_inserted, res.tram.items_delivered) << what;
    for (WorkerId w = 0; w < topo.workers(); ++w) {
      EXPECT_EQ(app.table_slice(w), ref[static_cast<std::size_t>(w)])
          << what << " worker " << w;
    }
    expect_faults_observed(machine.fault_stats(), f, what);
  }
}

// ---- same seed, same results ----

/// Two runs under the same fault seed produce identical tables and both
/// recover exactly-once — the end-to-end face of the schedule's
/// replayability (the schedule function itself is proven pure in
/// fault_wire_test). rto is raised past the run length so no probe fires
/// spuriously while acks drain, keeping the runs free of timing-dependent
/// retransmits.
TEST(FaultReliability, SameSeedReplaysSameResults) {
  const util::Topology topo(4, 1, 1);
  fault::FaultConfig f;
  f.dup_rate = 0.3;
  f.seed = 99;
  // Far past any plausible scheduler stall on a loaded CI box: a probe
  // before the acks drain would be spurious, and the test asserts none.
  f.rto_ns = 2'000'000'000;
  f.ack_delay_ns = 100'000;

  auto run_once = [&](std::vector<std::vector<std::uint64_t>>& tables,
                      core::FaultStats& fs) {
    rt::Machine machine(
        topo, faulty_runtime(rt::TransportKind::kInline, f));
    apps::HistogramApp app(machine, histogram_params(core::Scheme::WsP));
    const auto res = app.run();
    ASSERT_TRUE(res.verified);
    ASSERT_EQ(res.tram.items_inserted, res.tram.items_delivered);
    for (WorkerId w = 0; w < topo.workers(); ++w) {
      tables.push_back(app.table_slice(w));
    }
    fs = machine.fault_stats();
  };

  std::vector<std::vector<std::uint64_t>> t1, t2;
  core::FaultStats fs1, fs2;
  run_once(t1, fs1);
  run_once(t2, fs2);
  EXPECT_EQ(t1, t2);
  EXPECT_GE(fs1.dup_drops, 1u);
  EXPECT_GE(fs2.dup_drops, 1u);
  EXPECT_EQ(fs1.retransmits, 0u);  // nothing dropped, rto out of reach
  EXPECT_EQ(fs2.retransmits, 0u);
}

}  // namespace
