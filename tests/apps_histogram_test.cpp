#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/histogram.hpp"
#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace {

using namespace tram;

struct Param {
  core::Scheme scheme;
  std::uint32_t buffer;
  std::string label() const {
    return std::string(core::to_string(scheme)) + "_g" +
           std::to_string(buffer);
  }
};

class HistogramSchemes : public ::testing::TestWithParam<Param> {};

TEST_P(HistogramSchemes, ConservesEveryUpdate) {
  rt::Machine m(util::Topology(2, 2, 2), rt::RuntimeConfig::testing());
  apps::HistogramParams p;
  p.updates_per_worker = 5000;
  p.bins_per_worker = 256;
  p.tram.scheme = GetParam().scheme;
  p.tram.buffer_items = GetParam().buffer;
  apps::HistogramApp app(m, p);
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.table_total, 8u * 5000u);
  EXPECT_EQ(res.tram.items_inserted, 8u * 5000u);
  EXPECT_EQ(res.tram.items_delivered, 8u * 5000u);
}

TEST_P(HistogramSchemes, BinContentsMatchRngReplay) {
  // The app draws bins from each worker's deterministic stream; replaying
  // the streams offline must predict every bin count exactly.
  rt::Machine m(util::Topology(1, 2, 2), rt::RuntimeConfig::testing());
  apps::HistogramParams p;
  p.updates_per_worker = 2000;
  p.bins_per_worker = 128;
  p.tram.scheme = GetParam().scheme;
  p.tram.buffer_items = GetParam().buffer;
  apps::HistogramApp app(m, p);
  const std::uint64_t seed = 11;
  const auto res = app.run(seed);
  ASSERT_TRUE(res.verified);

  const int W = m.topology().workers();
  const std::uint64_t total_bins = p.bins_per_worker * W;
  std::vector<std::uint64_t> expected(total_bins, 0);
  for (int w = 0; w < W; ++w) {
    auto rng = util::Xoshiro256::for_stream(seed, w);
    for (std::uint64_t i = 0; i < p.updates_per_worker; ++i) {
      expected[rng.below(total_bins)]++;
    }
  }
  graph::BlockPartition part(total_bins, W);
  for (std::uint64_t bin = 0; bin < total_bins; ++bin) {
    const int owner = part.owner(bin);
    ASSERT_EQ(app.table_slice(owner)[bin - part.begin(owner)],
              expected[bin])
        << "bin " << bin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, HistogramSchemes,
    ::testing::Values(Param{core::Scheme::None, 64},
                      Param{core::Scheme::WW, 64},
                      Param{core::Scheme::WPs, 64},
                      Param{core::Scheme::WsP, 64},
                      Param{core::Scheme::PP, 64},
                      Param{core::Scheme::WW, 1},
                      Param{core::Scheme::PP, 1},
                      Param{core::Scheme::WPs, 100000}),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return param_info.param.label();
    });

TEST(Histogram, RepeatedRunsIndependent) {
  rt::Machine m(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  apps::HistogramParams p;
  p.updates_per_worker = 3000;
  p.tram.scheme = core::Scheme::WPs;
  p.tram.buffer_items = 128;
  apps::HistogramApp app(m, p);
  for (int round = 0; round < 3; ++round) {
    const auto res = app.run(round + 1);
    EXPECT_TRUE(res.verified) << "round " << round;
    EXPECT_EQ(res.table_total, 4u * 3000u);
  }
}

TEST(Histogram, NonSmpMode) {
  auto cfg = rt::RuntimeConfig::testing();
  cfg.dedicated_comm = false;
  rt::Machine m(util::Topology(2, 4, 1), cfg);
  apps::HistogramParams p;
  p.updates_per_worker = 4000;
  p.tram.scheme = core::Scheme::WPs;
  p.tram.buffer_items = 64;
  apps::HistogramApp app(m, p);
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
}

TEST(Histogram, FlushMessagesAppearForShortStreams) {
  rt::Machine m(util::Topology(2, 2, 2), rt::RuntimeConfig::testing());
  apps::HistogramParams p;
  p.updates_per_worker = 100;  // far below one buffer per destination
  p.tram.scheme = core::Scheme::WW;
  p.tram.buffer_items = 1024;
  apps::HistogramApp app(m, p);
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.tram.flush_msgs, res.tram.msgs_shipped)
      << "every send should be flush-driven when buffers cannot fill";
}

}  // namespace
