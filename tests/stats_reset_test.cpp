/// High-water re-arm audit (one parameterized case per counter): every
/// max_/peak_ statistic must reset along the same path production uses
/// between benchmark trials, so a trial's peak measures that trial alone
/// and not whatever the warmup did. The four high-waters and their re-arm
/// points:
///   max_staged_fwd_bytes   — RoutedDomain::reset_stats()
///   max_inflight_msgs      — ReliableTransport::reset() (Machine::run)
///   peak_outstanding_bytes — PayloadPool::reset_stats()
///   max_link_queue_ns      — Fabric::reset() (FabricTransport::reset,
///                            also invoked at Machine::run start)
/// Each case drives a heavy scenario, re-arms, drives a light one, and
/// asserts the counter reports the light scenario — a stale high-water
/// would still show the heavy peak.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/tram.hpp"
#include "net/fabric.hpp"
#include "route/routed_domain.hpp"
#include "runtime/machine.hpp"
#include "util/payload_pool.hpp"

namespace {

using namespace tram;

void routed_exchange(rt::Machine& machine,
                     route::RoutedDomain<std::uint64_t>& domain,
                     std::uint64_t per_dest) {
  const int W = machine.topology().workers();
  machine.run([&](rt::Worker& self) {
    auto& h = domain.on(self);
    for (WorkerId dest = 0; dest < W; ++dest) {
      for (std::uint64_t i = 0; i < per_dest; ++i) {
        h.insert(dest, i * 1000 + static_cast<std::uint64_t>(dest));
      }
      self.progress();
    }
    h.flush_all();
  });
}

void check_staged_fwd_rearm() {
  // 2x2x2 Mesh3D, one worker per process: multi-hop forwards stage
  // refcounted sub-views, so the staged-bytes high-water is nonzero.
  auto cfg = rt::RuntimeConfig::testing();
  cfg.dedicated_comm = false;
  rt::Machine machine(util::Topology(8, 1, 1), cfg);
  core::TramConfig tram;
  tram.scheme = core::Scheme::Mesh3D;
  tram.buffer_items = 16;
  std::atomic<std::uint64_t> sink{0};
  route::RoutedDomain<std::uint64_t> domain(
      machine, tram, [&](rt::Worker&, const std::uint64_t& item) {
        sink.fetch_add(item, std::memory_order_relaxed);
      });

  routed_exchange(machine, domain, /*per_dest=*/40);
  const std::uint64_t heavy = domain.max_staged_forward_bytes();
  EXPECT_GT(heavy, 0u) << "heavy run staged no forwards; scenario broken";

  // The production re-arm: benches call reset_stats() between trials on
  // an idle machine. Idle => nothing staged => the high-water restarts
  // at zero, not at the heavy run's peak.
  domain.reset_stats();
  EXPECT_EQ(domain.max_staged_forward_bytes(), 0u);

  // The next (lighter) trial then reports its own peak — possibly zero
  // (4 items/dest may forward without ever retaining), never the heavy
  // run's.
  routed_exchange(machine, domain, /*per_dest=*/4);
  const std::uint64_t light = domain.max_staged_forward_bytes();
  EXPECT_LT(light, heavy);
}

void check_inflight_rearm() {
  // Delay-only faults (no drops: deterministic delivery) stretch every
  // RTT, so unacked data piles up during the heavy run.
  auto cfg = rt::RuntimeConfig::testing();
  cfg.dedicated_comm = false;
  cfg.fault.delay_ns = 200'000;
  cfg.fault.delay_rate = 1.0;
  rt::Machine machine(util::Topology(8, 1, 1), cfg);
  std::atomic<std::uint64_t> hits{0};
  const EndpointId ep = machine.register_endpoint(
      [&](rt::Worker&, rt::Message&&) {
        hits.fetch_add(1, std::memory_order_relaxed);
      });
  const int W = machine.topology().workers();

  machine.run([&](rt::Worker& w) {
    for (int i = 0; i < 64; ++i) {
      for (WorkerId dst = 0; dst < W; ++dst) {
        if (dst == w.id()) continue;
        rt::Message msg;
        msg.endpoint = ep;
        msg.dst_worker = dst;
        msg.src_worker = w.id();
        msg.payload = rt::encode_payload<int>(i);
        w.send(std::move(msg));
      }
    }
  });
  const std::uint64_t heavy = machine.fault_stats().max_inflight_msgs;
  EXPECT_GE(heavy, 4u) << "heavy run never piled up in-flight data; "
                          "scenario broken";

  // Machine::run begins with transport_->reset(), which re-arms the
  // in-flight high-water; a one-message run must report ~1, not the
  // heavy run's pile-up.
  machine.run([&](rt::Worker& w) {
    if (w.id() != 0) return;
    rt::Message msg;
    msg.endpoint = ep;
    msg.dst_worker = W - 1;
    msg.src_worker = 0;
    msg.payload = rt::encode_payload<int>(1);
    w.send(std::move(msg));
  });
  const std::uint64_t light = machine.fault_stats().max_inflight_msgs;
  EXPECT_GE(light, 1u);
  EXPECT_LT(light, heavy);
}

void check_pool_peak_rearm() {
  util::PayloadPool pool;
  {
    const auto big = pool.acquire(1 << 20);
    EXPECT_GE(pool.stats().peak_outstanding_bytes, std::uint64_t{1} << 20);
  }  // released: outstanding back to 0, peak still remembers the MiB

  const std::uint64_t heavy = pool.stats().peak_outstanding_bytes;
  EXPECT_GE(heavy, std::uint64_t{1} << 20);

  // reset_stats() re-arms the peak to the *current* outstanding bytes
  // (zero here), so the next trial's peak is its own.
  pool.reset_stats();
  EXPECT_EQ(pool.stats().peak_outstanding_bytes, 0u);

  const auto small = pool.acquire(64);
  const std::uint64_t light = pool.stats().peak_outstanding_bytes;
  EXPECT_GT(light, 0u);
  EXPECT_LT(light, heavy);
}

void check_link_queue_rearm() {
  // Two sources converging on one destination share its ingress link:
  // the second arrival queues, arming the queue-delay high-water.
  net::CostModel m = net::CostModel::zero();
  m.link_per_msg_ns = 10'000;
  net::Fabric fab(util::Topology(3, 1, 1), m);
  auto packet = [](ProcId src, ProcId dst) {
    net::Packet p;
    p.src_proc = src;
    p.dst_proc = dst;
    p.dst_worker = 0;
    p.payload.resize(16);
    return p;
  };
  fab.send(packet(0, 2));
  fab.send(packet(1, 2));
  const std::uint64_t heavy = fab.max_link_queue_ns();
  EXPECT_GT(heavy, 0u);

  // Fabric::reset() is what FabricTransport::reset() calls at the top of
  // every Machine::run. An uncontended send afterwards must leave the
  // high-water at zero, not at the heavy run's queueing.
  fab.reset();
  EXPECT_EQ(fab.max_link_queue_ns(), 0u);
  fab.send(packet(0, 1));
  EXPECT_EQ(fab.max_link_queue_ns(), 0u);
}

class HighWaterRearm : public ::testing::TestWithParam<std::string> {};

TEST_P(HighWaterRearm, ReArmsAlongTheProductionResetPath) {
  const std::string& counter = GetParam();
  if (counter == "max_staged_fwd_bytes") {
    check_staged_fwd_rearm();
  } else if (counter == "max_inflight_msgs") {
    check_inflight_rearm();
  } else if (counter == "peak_outstanding_bytes") {
    check_pool_peak_rearm();
  } else if (counter == "max_link_queue_ns") {
    check_link_queue_rearm();
  } else {
    FAIL() << "unknown counter " << counter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCounters, HighWaterRearm,
    ::testing::Values("max_staged_fwd_bytes", "max_inflight_msgs",
                      "peak_outstanding_bytes", "max_link_queue_ns"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
