#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/tram.hpp"
#include "runtime/machine.hpp"
#include "util/spinlock.hpp"

namespace {

using namespace tram;
using core::Scheme;
using core::TramConfig;
using core::TramDomain;
using rt::Machine;
using rt::RuntimeConfig;
using rt::Worker;
using util::Topology;

/// Item carrying (dest, src, seq) so the receiver can verify routing and
/// exactly-once delivery without out-of-band state.
struct TaggedItem {
  static std::uint64_t make(WorkerId dest, WorkerId src, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(dest) << 48) |
           (static_cast<std::uint64_t>(src) << 32) | seq;
  }
  static WorkerId dest(std::uint64_t v) {
    return static_cast<WorkerId>(v >> 48);
  }
  static WorkerId src(std::uint64_t v) {
    return static_cast<WorkerId>((v >> 32) & 0xffff);
  }
  static std::uint32_t seq(std::uint64_t v) {
    return static_cast<std::uint32_t>(v);
  }
};

struct Param {
  Scheme scheme;
  std::uint32_t buffer;
  int nodes, ppn, wpp;
  std::string label() const {
    return std::string(core::to_string(scheme)) + "_g" +
           std::to_string(buffer) + "_" + std::to_string(nodes) + "n" +
           std::to_string(ppn) + "p" + std::to_string(wpp) + "w";
  }
};

class TramSchemes : public ::testing::TestWithParam<Param> {};

/// Every item inserted arrives exactly once, at the right worker, and
/// nothing remains pending — across all schemes, buffer sizes, and shapes.
TEST_P(TramSchemes, ExactlyOnceDeliveryToCorrectWorker) {
  const Param p = GetParam();
  Machine machine(Topology(p.nodes, p.ppn, p.wpp), RuntimeConfig::testing());
  const int W = machine.topology().workers();
  constexpr std::uint32_t kPerWorker = 3000;

  // seen[dest] maps (src, seq) -> count; guarded per destination because
  // only the owner writes, but read at the end from the test thread.
  std::vector<std::vector<std::uint32_t>> seen(
      W, std::vector<std::uint32_t>(W * kPerWorker, 0));
  std::atomic<std::uint64_t> misrouted{0};

  TramConfig cfg;
  cfg.scheme = p.scheme;
  cfg.buffer_items = p.buffer;
  TramDomain<std::uint64_t> tram(
      machine, cfg, [&](Worker& w, const std::uint64_t& item) {
        if (TaggedItem::dest(item) != w.id()) {
          misrouted++;
          return;
        }
        const auto src = static_cast<std::size_t>(TaggedItem::src(item));
        seen[w.id()][src * kPerWorker + TaggedItem::seq(item)]++;
      });

  machine.run([&](Worker& w) {
    auto& h = tram.on(w);
    for (std::uint32_t i = 0; i < kPerWorker; ++i) {
      const WorkerId dest =
          static_cast<WorkerId>(w.rng().below(static_cast<std::uint64_t>(W)));
      h.insert(dest, TaggedItem::make(dest, w.id(), i));
    }
    h.flush_all();
  });

  EXPECT_EQ(misrouted.load(), 0u);
  const auto stats = tram.aggregate_stats();
  EXPECT_EQ(stats.items_inserted, static_cast<std::uint64_t>(W) * kPerWorker);
  EXPECT_EQ(stats.items_delivered, stats.items_inserted);
  // Exactly-once: every (dest,src,seq) seen at most once, and the total
  // matches, so each is exactly once.
  std::uint64_t total = 0;
  for (int d = 0; d < W; ++d) {
    for (const auto c : seen[d]) {
      ASSERT_LE(c, 1u);
      total += c;
    }
  }
  EXPECT_EQ(total, stats.items_inserted);
  EXPECT_EQ(machine.total_pending(), 0u);
}

/// Without flush, short streams stay buffered (pending > 0 would hang QD),
/// so flush-on-idle must ship them; with explicit flush and idle flushing
/// disabled, exactly the explicit flush ships them.
TEST_P(TramSchemes, ExplicitFlushShipsPartials) {
  const Param p = GetParam();
  if (p.scheme == Scheme::None) GTEST_SKIP() << "None never buffers";
  if (p.buffer == 1) GTEST_SKIP() << "g=1 ships every insert; no partials";
  Machine machine(Topology(p.nodes, p.ppn, p.wpp), RuntimeConfig::testing());
  const int W = machine.topology().workers();

  std::atomic<std::uint64_t> delivered{0};
  TramConfig cfg;
  cfg.scheme = p.scheme;
  cfg.buffer_items = p.buffer;
  cfg.flush_on_idle = false;
  TramDomain<std::uint64_t> tram(
      machine, cfg,
      [&](Worker&, const std::uint64_t&) { delivered++; });

  // Insert fewer than one buffer's worth per destination, then flush.
  machine.run([&](Worker& w) {
    auto& h = tram.on(w);
    for (int i = 0; i < 5; ++i) {
      h.insert(static_cast<WorkerId>((w.id() + i + 1) % W),
               TaggedItem::make(0, w.id(), static_cast<std::uint32_t>(i)));
    }
    h.flush_all();
  });

  EXPECT_EQ(delivered.load(), static_cast<std::uint64_t>(W) * 5);
  const auto stats = tram.aggregate_stats();
  EXPECT_GT(stats.flush_msgs, 0u);
  // Flushed messages are resized: mean occupancy is far below g.
  EXPECT_LT(stats.occupancy_at_ship.mean(), p.buffer);
}

TEST_P(TramSchemes, LatencyTrackingRecordsEveryItem) {
  const Param p = GetParam();
  Machine machine(Topology(p.nodes, p.ppn, p.wpp), RuntimeConfig::testing());
  const int W = machine.topology().workers();
  TramConfig cfg;
  cfg.scheme = p.scheme;
  cfg.buffer_items = p.buffer;
  cfg.latency_tracking = true;
  TramDomain<std::uint64_t> tram(machine, cfg,
                                 [](Worker&, const std::uint64_t&) {});
  constexpr std::uint32_t kPerWorker = 500;
  machine.run([&](Worker& w) {
    auto& h = tram.on(w);
    for (std::uint32_t i = 0; i < kPerWorker; ++i) {
      h.insert(static_cast<WorkerId>(w.rng().below(W)),
               TaggedItem::make(0, w.id(), i));
    }
    h.flush_all();
  });
  const auto stats = tram.aggregate_stats();
  EXPECT_EQ(stats.latency.count(), stats.items_delivered);
  EXPECT_GT(stats.latency.mean_ns(), 0.0);
}

/// Message-count bounds from section III-C, measured per source unit.
TEST_P(TramSchemes, MessageCountWithinBounds) {
  const Param p = GetParam();
  Machine machine(Topology(p.nodes, p.ppn, p.wpp), RuntimeConfig::testing());
  const auto& topo = machine.topology();
  const auto W = static_cast<std::uint64_t>(topo.workers());
  const auto N = static_cast<std::uint64_t>(topo.procs());
  const auto t = static_cast<std::uint64_t>(topo.workers_per_proc());
  constexpr std::uint64_t z = 20'000;

  TramConfig cfg;
  cfg.scheme = p.scheme;
  cfg.buffer_items = p.buffer;
  cfg.flush_on_idle = false;
  TramDomain<std::uint64_t> tram(machine, cfg,
                                 [](Worker&, const std::uint64_t&) {});
  machine.run([&](Worker& w) {
    auto& h = tram.on(w);
    for (std::uint64_t i = 0; i < z; ++i) {
      h.insert(static_cast<WorkerId>(w.rng().below(W)), i);
      if (i % 64 == 0) w.progress();
    }
    h.flush_all();
  });
  const auto stats = tram.aggregate_stats();
  const bool per_process = p.scheme == Scheme::PP;
  const std::uint64_t sources = per_process ? N : W;
  const std::uint64_t z_src = per_process ? z * t : z;
  auto bounds = core::messages_per_source(p.scheme, z_src, p.buffer, N, t);
  if (per_process) {
    // Uncoordinated per-worker flushes: up to t rounds of N partials.
    bounds.upper = z_src / p.buffer + N * t;
  }
  const double per_src = static_cast<double>(stats.msgs_shipped) /
                         static_cast<double>(sources);
  EXPECT_GE(per_src, static_cast<double>(bounds.lower));
  EXPECT_LE(per_src, static_cast<double>(bounds.upper));
}

/// The section III-C memory formulas are upper bounds on what the
/// implementation actually reserves (buffers reserve lazily on first use).
TEST_P(TramSchemes, AllocatedMemoryWithinFormula) {
  const Param p = GetParam();
  if (p.scheme == Scheme::None) GTEST_SKIP() << "None has no buffers";
  Machine machine(Topology(p.nodes, p.ppn, p.wpp), RuntimeConfig::testing());
  const auto& topo = machine.topology();
  const auto W = static_cast<std::uint64_t>(topo.workers());
  const auto N = static_cast<std::uint64_t>(topo.procs());
  const auto t = static_cast<std::uint64_t>(topo.workers_per_proc());

  TramConfig cfg;
  cfg.scheme = p.scheme;
  cfg.buffer_items = p.buffer;
  TramDomain<std::uint64_t> tram(machine, cfg,
                                 [](Worker&, const std::uint64_t&) {});
  machine.run([&](Worker& w) {
    auto& h = tram.on(w);
    // Touch every destination so every buffer is reserved.
    for (WorkerId d = 0; d < static_cast<WorkerId>(W); ++d) {
      h.insert(d, 1);
    }
    h.flush_all();
  });
  const std::uint64_t m = sizeof(core::WireEntry<std::uint64_t>);
  const std::uint64_t formula_total =
      core::buffer_bytes_per_process(p.scheme, p.buffer, m, N, t) * N;
  EXPECT_LE(tram.allocated_buffer_bytes(), formula_total);
  EXPECT_GT(tram.allocated_buffer_bytes(), 0u);
}

TEST_P(TramSchemes, SelfSendDelivers) {
  const Param p = GetParam();
  Machine machine(Topology(p.nodes, p.ppn, p.wpp), RuntimeConfig::testing());
  std::atomic<std::uint64_t> delivered{0};
  TramConfig cfg;
  cfg.scheme = p.scheme;
  cfg.buffer_items = p.buffer;
  TramDomain<std::uint64_t> tram(
      machine, cfg, [&](Worker&, const std::uint64_t&) { delivered++; });
  machine.run([&](Worker& w) {
    auto& h = tram.on(w);
    for (int i = 0; i < 100; ++i) h.insert(w.id(), 7);
    h.flush_all();
  });
  EXPECT_EQ(delivered.load(),
            static_cast<std::uint64_t>(machine.topology().workers()) * 100);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesBuffersShapes, TramSchemes,
    ::testing::Values(
        // All schemes on a canonical 2-node SMP shape.
        Param{Scheme::None, 64, 2, 2, 2},
        Param{Scheme::WW, 64, 2, 2, 2},
        Param{Scheme::WPs, 64, 2, 2, 2},
        Param{Scheme::WsP, 64, 2, 2, 2},
        Param{Scheme::PP, 64, 2, 2, 2},
        // Buffer-size extremes.
        Param{Scheme::WW, 1, 2, 2, 2},
        Param{Scheme::WPs, 1, 2, 2, 2},
        Param{Scheme::PP, 1, 2, 2, 2},
        Param{Scheme::WW, 4096, 2, 2, 2},
        Param{Scheme::WPs, 4096, 2, 2, 2},
        Param{Scheme::WsP, 4096, 2, 2, 2},
        Param{Scheme::PP, 4096, 2, 2, 2},
        // Single-process machine: everything is shared-memory local.
        Param{Scheme::WPs, 128, 1, 1, 4},
        Param{Scheme::PP, 128, 1, 1, 4},
        // One worker per process: regroup degenerates to direct delivery.
        Param{Scheme::WPs, 128, 2, 2, 1},
        Param{Scheme::WsP, 128, 2, 2, 1},
        Param{Scheme::PP, 128, 2, 2, 1},
        // Wide SMP processes.
        Param{Scheme::WPs, 256, 2, 1, 8},
        Param{Scheme::WsP, 256, 2, 1, 8},
        Param{Scheme::PP, 256, 2, 1, 8}),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return param_info.param.label();
    });

TEST(TramDomain, NoneShipsOneMessagePerItem) {
  Machine machine(Topology(2, 1, 2), RuntimeConfig::testing());
  TramConfig cfg;
  cfg.scheme = Scheme::None;
  TramDomain<std::uint64_t> tram(machine, cfg,
                                 [](Worker&, const std::uint64_t&) {});
  machine.run([&](Worker& w) {
    if (w.id() != 0) return;
    auto& h = tram.on(w);
    for (int i = 0; i < 50; ++i) h.insert(3, 1);
  });
  const auto stats = tram.aggregate_stats();
  EXPECT_EQ(stats.msgs_shipped, 50u);
  EXPECT_DOUBLE_EQ(stats.occupancy_at_ship.mean(), 1.0);
}

TEST(TramDomain, RegroupMessagesOnlyForProcessAddressedSchemes) {
  for (const Scheme s : {Scheme::WW, Scheme::WPs, Scheme::WsP, Scheme::PP}) {
    Machine machine(Topology(2, 1, 4), RuntimeConfig::testing());
    TramConfig cfg;
    cfg.scheme = s;
    cfg.buffer_items = 32;
    TramDomain<std::uint64_t> tram(machine, cfg,
                                   [](Worker&, const std::uint64_t&) {});
    const int W = machine.topology().workers();
    machine.run([&](Worker& w) {
      auto& h = tram.on(w);
      for (std::uint32_t i = 0; i < 2000; ++i) {
        h.insert(static_cast<WorkerId>(w.rng().below(W)), i);
      }
      h.flush_all();
    });
    const auto stats = tram.aggregate_stats();
    if (core::process_addressed(s)) {
      EXPECT_GT(stats.regroup_msgs, 0u) << core::to_string(s);
    } else {
      EXPECT_EQ(stats.regroup_msgs, 0u) << core::to_string(s);
    }
  }
}

/// Regression: two PP domains with different item types on one machine
/// must not share buffers. (A per-instantiation key counter once made the
/// second domain reinterpret the first domain's buffers as its own type.)
TEST(TramDomain, TwoPpDomainsWithDifferentItemTypesCoexist) {
  struct BigItem {
    std::uint64_t a, b, c;
  };
  Machine machine(Topology(2, 2, 2), RuntimeConfig::testing());
  std::atomic<std::uint64_t> small_sum{0};
  std::atomic<std::uint64_t> big_bad{0};
  std::atomic<std::uint64_t> big_count{0};
  TramConfig cfg;
  cfg.scheme = Scheme::PP;
  cfg.buffer_items = 16;
  TramDomain<std::uint32_t> small(
      machine, cfg,
      [&](Worker&, const std::uint32_t& v) { small_sum += v; });
  TramDomain<BigItem> big(machine, cfg, [&](Worker&, const BigItem& v) {
    big_count++;
    if (v.a + v.b != v.c) big_bad++;  // integrity check
  });
  const int W = machine.topology().workers();
  machine.run([&](Worker& w) {
    for (std::uint32_t i = 0; i < 1000; ++i) {
      const auto dest =
          static_cast<WorkerId>(w.rng().below(static_cast<std::uint64_t>(W)));
      small.on(w).insert(dest, 1u);
      big.on(w).insert(dest, BigItem{i, 7, i + 7});
    }
    small.on(w).flush_all();
    big.on(w).flush_all();
  });
  EXPECT_EQ(small_sum.load(), static_cast<std::uint64_t>(W) * 1000);
  EXPECT_EQ(big_count.load(), static_cast<std::uint64_t>(W) * 1000);
  EXPECT_EQ(big_bad.load(), 0u);
}

TEST(TramDomain, RejectsTooManyWorkersPerProc) {
  // kMaxLocalWorkers bounds the WsP segment header; constructing a domain
  // on a wider process must fail loudly (the machine itself allows it).
  Machine wide(Topology(1, 1, core::kMaxLocalWorkers + 1),
               RuntimeConfig::testing());
  TramConfig cfg;
  EXPECT_THROW(
      (TramDomain<std::uint64_t>(wide, cfg,
                                 [](Worker&, const std::uint64_t&) {})),
      std::invalid_argument);
}

TEST(TramDomain, ResetStatsClearsCounters) {
  Machine machine(Topology(1, 1, 2), RuntimeConfig::testing());
  TramConfig cfg;
  cfg.scheme = Scheme::WPs;
  cfg.buffer_items = 8;
  TramDomain<std::uint64_t> tram(machine, cfg,
                                 [](Worker&, const std::uint64_t&) {});
  machine.run([&](Worker& w) {
    tram.on(w).insert((w.id() + 1) % 2, 1);
    tram.on(w).flush_all();
  });
  EXPECT_GT(tram.aggregate_stats().items_inserted, 0u);
  tram.reset_stats();
  EXPECT_EQ(tram.aggregate_stats().items_inserted, 0u);
  EXPECT_EQ(tram.aggregate_stats().msgs_shipped, 0u);
}

}  // namespace
