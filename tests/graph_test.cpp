#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/csr.hpp"
#include "graph/generator.hpp"
#include "graph/shortest_path.hpp"

namespace {

using namespace tram::graph;

TEST(Csr, BuildsFromEdgeList) {
  const std::vector<Edge> edges{{0, 1, 5}, {0, 2, 3}, {1, 2, 1}, {2, 0, 7}};
  Csr g(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 1u);
  // Neighbor and weight arrays are parallel.
  const auto nbrs = g.neighbors(0);
  const auto wts = g.weights(0);
  ASSERT_EQ(nbrs.size(), 2u);
  std::set<std::pair<Vertex, Weight>> got;
  for (std::size_t i = 0; i < nbrs.size(); ++i) got.insert({nbrs[i], wts[i]});
  EXPECT_TRUE(got.count({1, 5}));
  EXPECT_TRUE(got.count({2, 3}));
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Csr, EmptyAndIsolatedVertices) {
  Csr g(4, std::vector<Edge>{});
  EXPECT_EQ(g.num_edges(), 0u);
  for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Csr, DegreeSumEqualsEdgeCount) {
  GeneratorParams p;
  p.num_vertices = 5000;
  p.avg_degree = 7.0;
  const Csr g = build_uniform(p);
  std::size_t sum = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) sum += g.degree(v);
  EXPECT_EQ(sum, g.num_edges());
}

TEST(Generator, DeterministicFromSeed) {
  GeneratorParams p;
  p.num_vertices = 1000;
  p.seed = 7;
  const auto a = generate_uniform(p);
  const auto b = generate_uniform(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].to, b[i].to);
    EXPECT_EQ(a[i].weight, b[i].weight);
  }
  p.seed = 8;
  const auto c = generate_uniform(p);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].from != c[i].from || a[i].to != c[i].to;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, RespectsSizeAndWeightBounds) {
  GeneratorParams p;
  p.num_vertices = 2048;
  p.avg_degree = 4.0;
  p.max_weight = 10;
  p.symmetric = false;
  for (const auto& edges : {generate_uniform(p), generate_rmat(p)}) {
    EXPECT_EQ(edges.size(), static_cast<std::size_t>(2048 * 4));
    for (const Edge& e : edges) {
      ASSERT_LT(e.from, p.num_vertices);
      ASSERT_LT(e.to, p.num_vertices);
      ASSERT_GE(e.weight, 1u);
      ASSERT_LE(e.weight, 10u);
    }
  }
}

TEST(Generator, SymmetricDoublesEdges) {
  GeneratorParams p;
  p.num_vertices = 512;
  p.avg_degree = 3.0;
  p.symmetric = true;
  const auto edges = generate_uniform(p);
  EXPECT_EQ(edges.size(), static_cast<std::size_t>(512 * 3 * 2));
  // Second half mirrors the first.
  const std::size_t half = edges.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_EQ(edges[i].from, edges[half + i].to);
    EXPECT_EQ(edges[i].to, edges[half + i].from);
    EXPECT_EQ(edges[i].weight, edges[half + i].weight);
  }
}

TEST(Generator, RmatIsSkewed) {
  // RMAT should concentrate edges: the max degree well above uniform's.
  GeneratorParams p;
  p.num_vertices = 1 << 14;
  p.avg_degree = 8.0;
  const Csr uniform = build_uniform(p);
  const Csr rmat = build_rmat(p);
  EXPECT_GT(rmat.max_degree(), 2 * uniform.max_degree());
}

TEST(BlockPartition, CoversRangeExactly) {
  for (const auto& [n, parts] : std::vector<std::pair<std::uint64_t, int>>{
           {10, 3}, {100, 7}, {8, 8}, {5, 8}, {1000, 1}, {64, 64}}) {
    BlockPartition part(n, parts);
    std::uint64_t covered = 0;
    for (int p = 0; p < parts; ++p) {
      EXPECT_EQ(part.end(p) - part.begin(p), part.size(p));
      covered += part.size(p);
      if (p > 0) {
        EXPECT_EQ(part.begin(p), part.end(p - 1));
      }
    }
    EXPECT_EQ(covered, n);
    // owner() agrees with the ranges, for every element.
    for (std::uint64_t v = 0; v < n; ++v) {
      const int o = part.owner(v);
      ASSERT_GE(v, part.begin(o));
      ASSERT_LT(v, part.end(o));
    }
    // Balanced: sizes differ by at most 1.
    std::uint64_t mn = n, mx = 0;
    for (int p = 0; p < parts; ++p) {
      mn = std::min(mn, part.size(p));
      mx = std::max(mx, part.size(p));
    }
    EXPECT_LE(mx - mn, 1u);
  }
}

class ShortestPathOracles : public ::testing::TestWithParam<std::uint64_t> {};

/// Dijkstra and the queue-based Bellman-Ford are independent
/// implementations; on random graphs they must agree exactly.
TEST_P(ShortestPathOracles, DijkstraAgreesWithBellmanFord) {
  GeneratorParams p;
  p.num_vertices = 3000;
  p.avg_degree = 5.0;
  p.seed = GetParam();
  const Csr g = build_uniform(p);
  const auto d1 = dijkstra(g, 0);
  const auto d2 = bellman_ford(g, 0);
  ASSERT_EQ(d1.size(), d2.size());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(d1[v], d2[v]) << "vertex " << v;
  }
}

TEST_P(ShortestPathOracles, RmatAgreement) {
  GeneratorParams p;
  p.num_vertices = 2048;
  p.avg_degree = 6.0;
  p.seed = GetParam();
  const Csr g = build_rmat(p);
  EXPECT_EQ(dijkstra(g, 1), bellman_ford(g, 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShortestPathOracles,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(ShortestPath, DisconnectedVerticesUnreachable) {
  // Two components: 0-1-2 and 3-4.
  const std::vector<Edge> edges{{0, 1, 1}, {1, 0, 1}, {1, 2, 2}, {2, 1, 2},
                                {3, 4, 1}, {4, 3, 1}};
  Csr g(5, edges);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 3u);
  EXPECT_EQ(d[3], kUnreachable);
  EXPECT_EQ(d[4], kUnreachable);
}

TEST(ShortestPath, PathThroughCheaperDetour) {
  // Direct edge 0->2 costs 10; 0->1->2 costs 3.
  const std::vector<Edge> edges{{0, 2, 10}, {0, 1, 1}, {1, 2, 2}};
  Csr g(3, edges);
  EXPECT_EQ(dijkstra(g, 0)[2], 3u);
}

}  // namespace
