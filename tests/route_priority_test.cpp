/// Tests for the routed priority path (RoutedDomain::insert_priority):
/// priority items inserted *after* bulk must still deliver first across
/// multi-hop routes — for {Mesh2D, Mesh3D} x {ModeledFabric, Inline} —
/// because the RoutedHeader priority bit re-buckets them into priority
/// slots at every intermediate; plus exactly-once accounting for mixed
/// bulk/priority traffic and the fallback when the knob is off.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/wire.hpp"
#include "route/routed_domain.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace tram;

TEST(RoutedHeader, PriorityBitRoundTrips) {
  core::RoutedHeader hdr;
  EXPECT_FALSE(hdr.priority());
  hdr.flags |= core::RoutedHeader::kPriority;
  EXPECT_TRUE(hdr.priority());
  // The flag must not disturb the layout the entries decode against.
  static_assert(sizeof(core::RoutedHeader) == 8);
}

struct OrderParam {
  core::Scheme scheme;
  int procs;      // non-SMP process count
  WorkerId far;   // destination maximally distant from worker 0
  int min_hops;   // mesh distance 0 -> far (sanity anchor)
  bool inline_transport;
  std::string label() const {
    return std::string(core::to_string(scheme)) + "_" +
           (inline_transport ? "Inline" : "ModeledFabric");
  }
};

class RoutedPriorityOrdering : public ::testing::TestWithParam<OrderParam> {
};

/// Worker 0 buffers a pile of bulk items toward the far corner of the
/// mesh, then inserts a handful of priority items to the same corner.
/// Bulk sits in big buffers until flush while priority ships through
/// small expedited buffers — and because every intermediate re-buckets
/// the flagged batch into its own priority slots and flushes them first,
/// the late-inserted urgent items arrive before any bulk item despite
/// crossing two or three hops.
TEST_P(RoutedPriorityOrdering, PriorityInsertedAfterBulkDeliversFirst) {
  const OrderParam param = GetParam();
  auto rt_cfg = param.inline_transport ? rt::RuntimeConfig::inline_testing()
                                       : rt::RuntimeConfig::testing();
  rt_cfg.dedicated_comm = false;
  rt::Machine machine(util::Topology(param.procs, 1, 1), rt_cfg);

  core::TramConfig cfg;
  cfg.scheme = param.scheme;
  cfg.buffer_items = 1024;       // bulk never fills: leaves only on flush
  cfg.priority_buffer_items = 4; // urgent ships on the 4th insert
  cfg.expedited = false;         // bulk rides the ordinary inbox

  constexpr std::uint64_t kBulk = 64;
  constexpr std::uint64_t kUrgent = 8;
  std::vector<std::uint64_t> order;  // written only by the far worker
  route::RoutedDomain<std::uint64_t> domain(
      machine, cfg, [&](rt::Worker& w, const std::uint64_t& v) {
        ASSERT_EQ(w.id(), param.far);
        order.push_back(v);
      });
  EXPECT_EQ(domain.mesh().hops(0, param.far), param.min_hops);

  machine.run([&](rt::Worker& self) {
    if (self.id() != 0) return;
    auto& h = domain.on(self);
    for (std::uint64_t i = 0; i < kBulk; ++i) {
      h.insert(param.far, 1000 + i);
    }
    for (std::uint64_t i = 0; i < kUrgent; ++i) {
      h.insert_priority(param.far, i);  // inserted last, must arrive first
    }
    h.flush_all();
  });

  ASSERT_EQ(order.size(), kBulk + kUrgent);
  for (std::uint64_t i = 0; i < kUrgent; ++i) {
    EXPECT_LT(order[i], 1000u)
        << "delivery slot " << i << " got bulk item " << order[i]
        << " ahead of a priority item";
  }
  const auto stats = domain.aggregate_stats();
  EXPECT_EQ(stats.items_delivered, kBulk + kUrgent);
  EXPECT_EQ(stats.priority_items, kUrgent);
  EXPECT_GT(stats.priority_msgs, 0u);
  // The route really was multi-hop: intermediates re-aggregated entries.
  EXPECT_GT(stats.routed_forwarded_items, 0u);
  EXPECT_EQ(machine.total_pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MeshesAndTransports, RoutedPriorityOrdering,
    ::testing::Values(
        // 3x3 mesh: 0 -> 8 differs in both dimensions (2 hops).
        OrderParam{core::Scheme::Mesh2D, 9, 8, 2, false},
        OrderParam{core::Scheme::Mesh2D, 9, 8, 2, true},
        // 2x2x2 mesh: 0 -> 7 differs in all three dimensions (3 hops).
        OrderParam{core::Scheme::Mesh3D, 8, 7, 3, false},
        OrderParam{core::Scheme::Mesh3D, 8, 7, 3, true}),
    [](const ::testing::TestParamInfo<OrderParam>& info) {
      return info.param.label();
    });

/// Mixed bulk/priority all-to-all: every item of both classes is
/// delivered exactly once to the right worker, across schemes,
/// transports, and SMP modes (the priority mirror of route_test's
/// run_exchange sweep).
void run_priority_exchange(core::Scheme scheme, const util::Topology& topo,
                           rt::RuntimeConfig rt_cfg) {
  rt::Machine machine(topo, rt_cfg);
  const int W = topo.workers();
  constexpr std::uint64_t kPerDest = 40;  // every 4th is priority
  std::vector<std::atomic<std::uint64_t>> bulk(
      static_cast<std::size_t>(W));
  std::vector<std::atomic<std::uint64_t>> urgent(
      static_cast<std::size_t>(W));

  core::TramConfig cfg;
  cfg.scheme = scheme;
  cfg.buffer_items = 16;
  cfg.priority_buffer_items = 4;
  route::RoutedDomain<std::uint64_t> domain(
      machine, cfg, [&](rt::Worker& w, const std::uint64_t& item) {
        ASSERT_EQ(static_cast<WorkerId>(item % 1'000'000), w.id());
        auto& tally = item >= 1'000'000 ? urgent : bulk;
        tally[static_cast<std::size_t>(w.id())].fetch_add(
            1, std::memory_order_relaxed);
      });

  machine.run([&](rt::Worker& self) {
    auto& h = domain.on(self);
    for (WorkerId dest = 0; dest < W; ++dest) {
      for (std::uint64_t i = 0; i < kPerDest; ++i) {
        const auto d = static_cast<std::uint64_t>(dest);
        if (i % 4 == 0) {
          h.insert_priority(dest, 1'000'000 + d);
        } else {
          h.insert(dest, d);
        }
      }
      self.progress();
    }
    h.flush_all();
  });

  const std::uint64_t urgent_per_worker =
      (kPerDest / 4) * static_cast<std::uint64_t>(W);
  const std::uint64_t bulk_per_worker =
      (kPerDest - kPerDest / 4) * static_cast<std::uint64_t>(W);
  for (int w = 0; w < W; ++w) {
    EXPECT_EQ(urgent[static_cast<std::size_t>(w)].load(),
              urgent_per_worker)
        << "worker " << w;
    EXPECT_EQ(bulk[static_cast<std::size_t>(w)].load(), bulk_per_worker)
        << "worker " << w;
  }
  const auto stats = domain.aggregate_stats();
  EXPECT_EQ(stats.items_inserted,
            kPerDest * static_cast<std::uint64_t>(W) * W);
  EXPECT_EQ(stats.items_delivered, stats.items_inserted);
  EXPECT_EQ(stats.priority_items,
            urgent_per_worker * static_cast<std::uint64_t>(W));
  EXPECT_GT(stats.priority_msgs, 0u);
  EXPECT_EQ(machine.total_pending(), 0u);
}

TEST(RoutedPriority, MixedExchangeExactlyOnceSmp) {
  run_priority_exchange(core::Scheme::Mesh2D, util::Topology(2, 2, 2),
                        rt::RuntimeConfig::testing());
  run_priority_exchange(core::Scheme::Mesh3D, util::Topology(2, 2, 2),
                        rt::RuntimeConfig::inline_testing());
}

TEST(RoutedPriority, MixedExchangeExactlyOnceNonSmp) {
  auto fabric = rt::RuntimeConfig::testing();
  fabric.dedicated_comm = false;
  auto inline_cfg = rt::RuntimeConfig::inline_testing();
  inline_cfg.dedicated_comm = false;
  const util::Topology topo(9, 1, 1);  // 3x3 / 1x3x3: multi-hop routes
  run_priority_exchange(core::Scheme::Mesh2D, topo, fabric);
  run_priority_exchange(core::Scheme::Mesh2D, topo, inline_cfg);
  run_priority_exchange(core::Scheme::Mesh3D, topo, fabric);
  run_priority_exchange(core::Scheme::Mesh3D, topo, inline_cfg);
}

TEST(RoutedPriority, FallsBackWhenDisabled) {
  auto rt_cfg = rt::RuntimeConfig::inline_testing();
  rt_cfg.dedicated_comm = false;
  rt::Machine machine(util::Topology(4, 1, 1), rt_cfg);
  std::atomic<std::uint64_t> got{0};
  core::TramConfig cfg;
  cfg.scheme = core::Scheme::Mesh2D;
  cfg.buffer_items = 16;
  cfg.priority_buffer_items = 0;  // disabled
  route::RoutedDomain<std::uint64_t> domain(
      machine, cfg, [&](rt::Worker&, const std::uint64_t&) { got++; });
  machine.run([&](rt::Worker& w) {
    auto& h = domain.on(w);
    h.insert_priority((w.id() + 1) % 4, 5);
    h.flush_all();
  });
  EXPECT_EQ(got.load(), 4u);
  EXPECT_EQ(domain.aggregate_stats().priority_items, 0u);  // bulk path
  EXPECT_EQ(domain.aggregate_stats().priority_msgs, 0u);
}

}  // namespace
