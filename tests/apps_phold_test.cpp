#include <gtest/gtest.h>

#include <string>

#include "apps/phold.hpp"

namespace {

using namespace tram;

class PholdSchemes : public ::testing::TestWithParam<core::Scheme> {};

TEST_P(PholdSchemes, ConservesEventChains) {
  rt::Machine m(util::Topology(2, 2, 2), rt::RuntimeConfig::testing());
  apps::PholdParams p;
  p.lps_per_worker = 8;
  p.init_events_per_lp = 2;
  p.end_time = 40.0;
  p.mean_delay = 1.0;
  p.tram.scheme = GetParam();
  p.tram.buffer_items = 32;
  apps::PholdApp app(m, p);
  const auto res = app.run();
  // Every chain processes at least its seed event; expectation is roughly
  // chains * end_time / (lookahead + mean).
  const std::uint64_t chains = 8u * 8u * 2u;
  EXPECT_GE(res.events_processed, chains);
  EXPECT_LE(res.ooo_events, res.events_processed);
  EXPECT_GE(res.ooo_pct, 0.0);
  EXPECT_LE(res.ooo_pct, 100.0);
  // Sanity on magnitude: chains advance ~1.1 time units per event.
  const double expected =
      static_cast<double>(chains) * p.end_time / (p.lookahead + p.mean_delay);
  EXPECT_GT(static_cast<double>(res.events_processed), 0.5 * expected);
  EXPECT_LT(static_cast<double>(res.events_processed), 2.0 * expected);
}

INSTANTIATE_TEST_SUITE_P(Schemes, PholdSchemes,
                         ::testing::Values(core::Scheme::None,
                                           core::Scheme::WW,
                                           core::Scheme::WPs,
                                           core::Scheme::WsP,
                                           core::Scheme::PP,
                                           core::Scheme::Mesh2D,
                                           core::Scheme::Mesh3D),
                         [](const auto& param_info) {
                           return std::string(core::to_string(param_info.param));
                         });

/// Events carry their own RNG streams, so the chain structure is a pure
/// function of the run seed: the machine-wide event count must match the
/// direct-scheme run bit-for-bit whatever path the messages take — the
/// cross-check fig_routed_phold's "verified" rows rest on. Exactly-once
/// delivery is asserted through the tram counters at the same time.
TEST(Phold, RoutedEventCountsMatchDirectBitForBit) {
  auto count_with = [](core::Scheme s) {
    rt::Machine m(util::Topology(2, 2, 2), rt::RuntimeConfig::testing());
    apps::PholdParams p;
    p.lps_per_worker = 16;
    p.init_events_per_lp = 2;
    p.end_time = 60.0;
    p.remote_prob = 0.6;
    p.tram.scheme = s;
    p.tram.buffer_items = 32;
    apps::PholdApp app(m, p);
    const auto res = app.run(11);
    EXPECT_EQ(res.tram.items_inserted, res.tram.items_delivered)
        << core::to_string(s);
    EXPECT_EQ(res.events_processed, res.tram.items_delivered)
        << core::to_string(s);
    return res.events_processed;
  };
  const std::uint64_t direct = count_with(core::Scheme::WPs);
  EXPECT_GT(direct, 0u);
  EXPECT_EQ(count_with(core::Scheme::Mesh2D), direct);
  EXPECT_EQ(count_with(core::Scheme::Mesh3D), direct);
  // Determinism also holds across the direct schemes themselves.
  EXPECT_EQ(count_with(core::Scheme::None), direct);
}

TEST(Phold, ZeroRemoteProbabilityStaysLocal) {
  rt::Machine m(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  apps::PholdParams p;
  p.lps_per_worker = 4;
  p.init_events_per_lp = 1;
  p.end_time = 30.0;
  p.remote_prob = 0.0;
  p.tram.scheme = core::Scheme::WPs;
  p.tram.buffer_items = 16;
  apps::PholdApp app(m, p);
  const auto res = app.run();
  EXPECT_GT(res.events_processed, 0u);
  // All successors stay on the owning worker: per-LP processing is in
  // timestamp order by construction, so nothing arrives out of order...
  // except interleavings among a worker's own LPs, which share buffers.
  // The strong claim that must hold: far fewer OOO than the remote case.
  rt::Machine m2(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  apps::PholdParams p2 = p;
  p2.remote_prob = 1.0;
  apps::PholdApp app2(m2, p2);
  const auto res2 = app2.run();
  EXPECT_LE(res.ooo_pct, res2.ooo_pct + 10.0);
}

TEST(Phold, EventsStopAtEndTime) {
  rt::Machine m(util::Topology(1, 1, 2), rt::RuntimeConfig::testing());
  apps::PholdParams p;
  p.lps_per_worker = 4;
  p.init_events_per_lp = 1;
  p.end_time = 10.0;
  p.mean_delay = 1.0;
  p.lookahead = 0.5;
  p.tram.scheme = core::Scheme::WW;
  p.tram.buffer_items = 8;
  apps::PholdApp app(m, p);
  const auto res = app.run();
  // Each chain ends once it crosses end_time: bounded events per chain.
  // 8 chains x at most ~(10 / 0.5) + 1 events is a hard ceiling.
  EXPECT_LE(res.events_processed, 8u * 21u);
  EXPECT_GT(res.events_processed, 8u);
}

TEST(Phold, ReusableAcrossRuns) {
  rt::Machine m(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  apps::PholdParams p;
  p.lps_per_worker = 8;
  p.init_events_per_lp = 2;
  p.end_time = 25.0;
  p.tram.scheme = core::Scheme::PP;
  p.tram.buffer_items = 16;
  apps::PholdApp app(m, p);
  std::uint64_t first = 0;
  for (int round = 0; round < 3; ++round) {
    const auto res = app.run(42);  // same seed
    EXPECT_GT(res.events_processed, 0u);
    if (round == 0) {
      first = res.events_processed;
    } else {
      // Same seed, same chain structure: successor draws come from the
      // event's own stream, so the count is exactly reproducible no
      // matter how deliveries interleave.
      EXPECT_EQ(res.events_processed, first);
    }
  }
}

}  // namespace
