/// The Transport seam: InlineTransport and ModeledFabricTransport with
/// CostModel::zero() must be observationally equivalent (identical
/// delivery counts for identical workloads), and the whole aggregation
/// stack must run unchanged over either implementation.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/tram.hpp"
#include "net/packet.hpp"
#include "runtime/machine.hpp"
#include "runtime/transport.hpp"
#include "util/spinlock.hpp"

namespace {

using namespace tram;
using rt::Machine;
using rt::Message;
using rt::RuntimeConfig;
using rt::Worker;
using util::Topology;

/// Per-worker and per-process delivery tallies of a fixed SPMD workload:
/// every worker sends kPerPair direct messages to every worker and
/// kPerPair process-addressed messages to every process.
struct WorkloadResult {
  std::vector<int> direct_per_worker;
  std::vector<int> addressed_per_proc;
  std::uint64_t runtime_messages = 0;
  std::uint64_t fabric_messages = 0;
};

WorkloadResult run_workload(const RuntimeConfig& cfg) {
  constexpr int kPerPair = 20;
  Machine m(Topology(2, 2, 2), cfg);  // 8 workers across 4 procs
  const int workers = m.topology().workers();
  const int procs = m.topology().procs();
  std::vector<util::Padded<std::atomic<int>>> direct(
      static_cast<std::size_t>(workers));
  std::vector<util::Padded<std::atomic<int>>> addressed(
      static_cast<std::size_t>(procs));
  const EndpointId ep_direct = m.register_endpoint(
      [&](Worker& w, Message&& msg) {
        direct[static_cast<std::size_t>(w.id())].value +=
            rt::decode_payload<int>(msg)[0];
      });
  const EndpointId ep_addr = m.register_endpoint(
      [&](Worker& w, Message&&) {
        addressed[static_cast<std::size_t>(
                      m.topology().proc_of_worker(w.id()))]
            .value++;
      });
  const auto res = m.run([&](Worker& w) {
    for (WorkerId dst = 0; dst < workers; ++dst) {
      for (int i = 0; i < kPerPair; ++i) {
        Message msg;
        msg.endpoint = ep_direct;
        msg.dst_worker = dst;
        msg.src_worker = w.id();
        msg.payload = rt::encode_payload<int>(1);
        w.send(std::move(msg));
      }
    }
    for (ProcId p = 0; p < procs; ++p) {
      for (int i = 0; i < kPerPair; ++i) {
        Message msg;
        msg.endpoint = ep_addr;
        msg.src_worker = w.id();
        w.send_to_proc(p, std::move(msg));
      }
    }
  });
  WorkloadResult out;
  out.direct_per_worker.reserve(static_cast<std::size_t>(workers));
  for (const auto& c : direct) out.direct_per_worker.push_back(c.value.load());
  for (const auto& c : addressed) {
    out.addressed_per_proc.push_back(c.value.load());
  }
  out.runtime_messages = res.runtime_messages;
  out.fabric_messages = res.fabric_messages;
  return out;
}

TEST(Transport, InlineMatchesModeledZeroDelay) {
  const WorkloadResult modeled = run_workload(RuntimeConfig::testing());
  const WorkloadResult inlined = run_workload(RuntimeConfig::inline_testing());
  EXPECT_EQ(modeled.direct_per_worker, inlined.direct_per_worker);
  EXPECT_EQ(modeled.addressed_per_proc, inlined.addressed_per_proc);
  EXPECT_EQ(modeled.runtime_messages, inlined.runtime_messages);
  // Both transports see exactly the cross-process subset of the traffic.
  EXPECT_EQ(modeled.fabric_messages, inlined.fabric_messages);
}

TEST(Transport, InlineDeliversEveryDirectMessage) {
  const WorkloadResult r = run_workload(RuntimeConfig::inline_testing());
  for (const int got : r.direct_per_worker) EXPECT_EQ(got, 8 * 20);
  for (const int got : r.addressed_per_proc) EXPECT_EQ(got, 8 * 20);
}

TEST(Transport, InlineWorksInNonSmpMode) {
  RuntimeConfig cfg = RuntimeConfig::inline_testing();
  cfg.dedicated_comm = false;
  Machine m(Topology(2, 2, 1), cfg);
  std::atomic<int> got{0};
  const EndpointId ep =
      m.register_endpoint([&](Worker&, Message&&) { got++; });
  m.run([&](Worker& w) {
    Message msg;
    msg.endpoint = ep;
    msg.dst_worker = (w.id() + 1) % 4;
    msg.src_worker = w.id();
    w.send(std::move(msg));
  });
  EXPECT_EQ(got.load(), 4);
}

TEST(Transport, AllSchemesDeliverEveryItemOverInline) {
  // The pooled aggregation stack end to end, per scheme, over the inline
  // transport: every inserted item must reach its destination worker.
  for (const auto scheme : core::all_schemes()) {
    Machine m(Topology(2, 2, 2), RuntimeConfig::inline_testing());
    const int workers = m.topology().workers();
    std::vector<util::Padded<std::atomic<std::uint64_t>>> received(
        static_cast<std::size_t>(workers));
    core::TramConfig tcfg;
    tcfg.scheme = scheme;
    tcfg.buffer_items = 64;
    core::TramDomain<std::uint32_t> tram_dom(
        m, tcfg, [&](Worker& w, const std::uint32_t& v) {
          received[static_cast<std::size_t>(w.id())].value += v;
        });
    constexpr int kItems = 4000;
    m.run([&](Worker& w) {
      auto& h = tram_dom.on(w);
      for (int i = 0; i < kItems; ++i) {
        h.insert(static_cast<WorkerId>(i % workers), 1u);
      }
      h.flush_all();
    });
    std::uint64_t total = 0;
    for (const auto& c : received) total += c.value.load();
    EXPECT_EQ(total, static_cast<std::uint64_t>(workers) * kItems)
        << "scheme " << core::to_string(scheme);
    const auto stats = tram_dom.aggregate_stats();
    EXPECT_EQ(stats.items_delivered, stats.items_inserted)
        << "scheme " << core::to_string(scheme);
    m.clear_worker_hooks();
  }
}

TEST(Transport, InlineCountsBytesLikeTheFabric) {
  // Same payload sizes must produce the same byte totals on both
  // implementations (payload + fixed header charge).
  RuntimeConfig modeled = RuntimeConfig::testing();
  RuntimeConfig inlined = RuntimeConfig::inline_testing();
  std::uint64_t bytes_modeled = 0, bytes_inline = 0;
  for (int variant = 0; variant < 2; ++variant) {
    Machine m(Topology(2, 1, 1), variant == 0 ? modeled : inlined);
    const EndpointId ep = m.register_endpoint([](Worker&, Message&&) {});
    const auto res = m.run([&](Worker& w) {
      if (w.id() != 0) return;
      for (int i = 0; i < 5; ++i) {
        Message msg;
        msg.endpoint = ep;
        msg.dst_worker = 1;
        msg.src_worker = 0;
        msg.payload.resize(100);
        w.send(std::move(msg));
      }
    });
    (variant == 0 ? bytes_modeled : bytes_inline) = res.fabric_bytes;
  }
  EXPECT_EQ(bytes_modeled, bytes_inline);
  EXPECT_EQ(bytes_modeled, 5u * (100u + net::Packet::kHeaderBytes));
}

}  // namespace
