/// Tests for the fault subsystem's wire format and schedule (src/fault/):
/// ReliableHeader parse validation (truncation / bad magic / unknown kind
/// abort, mirroring parse_routed_header), the seeded fault schedule's
/// bit-for-bit replayability, FaultConfig validation, and the structural
/// guarantee that an all-zero FaultConfig leaves the transport chain
/// undecorated.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <span>
#include <vector>

#include "core/tram_stats.hpp"
#include "fault/fault_config.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/reliable_wire.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace tram;

TEST(ReliableWire, HeaderRoundTrip) {
  fault::ReliableHeader h;
  h.kind = fault::ReliableHeader::kData;
  h.src_proc = 7;
  h.seq = 42;
  h.ack = 41;
  std::array<std::byte, sizeof h> buf{};
  std::memcpy(buf.data(), &h, sizeof h);
  const fault::ReliableHeader parsed = fault::parse_reliable_header(
      std::span<const std::byte>(buf.data(), buf.size()));
  EXPECT_EQ(parsed.magic, fault::ReliableHeader::kMagic);
  EXPECT_EQ(parsed.kind, fault::ReliableHeader::kData);
  EXPECT_EQ(parsed.src_proc, 7);
  EXPECT_EQ(parsed.seq, 42u);
  EXPECT_EQ(parsed.ack, 41u);
}

/// Wire-level validation: truncated, bad-magic, or unknown-kind prefixes
/// are wire corruption and must abort cleanly in every build mode.
TEST(ReliableWireDeathTest, TruncatedOrCorruptHeaderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::array<std::byte, sizeof(fault::ReliableHeader)> buf{};
  fault::ReliableHeader h;

  // Shorter than the fixed 24-byte prefix.
  EXPECT_DEATH(fault::parse_reliable_header(
                   std::span<const std::byte>(buf.data(), 8)),
               "truncated");

  // Unknown magic.
  h.magic = 0xdeadbeef;
  std::memcpy(buf.data(), &h, sizeof h);
  EXPECT_DEATH(fault::parse_reliable_header(
                   std::span<const std::byte>(buf.data(), buf.size())),
               "bad magic");

  // Valid magic, unknown kind.
  h.magic = fault::ReliableHeader::kMagic;
  h.kind = 9;
  std::memcpy(buf.data(), &h, sizeof h);
  EXPECT_DEATH(fault::parse_reliable_header(
                   std::span<const std::byte>(buf.data(), buf.size())),
               "unknown kind");
}

/// The schedule is a pure function of (seed, packet identity): the same
/// seed replays the same fault decisions bit-for-bit, independent of how
/// many other packets (acks, retransmits) were interleaved.
TEST(FaultSchedule, SameSeedReplaysBitForBit) {
  fault::FaultConfig cfg;
  cfg.drop_rate = 0.2;
  cfg.dup_rate = 0.2;
  cfg.delay_ns = 10'000;
  cfg.delay_rate = 0.5;
  cfg.seed = 1234;
  const fault::FaultSchedule a(cfg);
  const fault::FaultSchedule b(cfg);
  for (ProcId src = 0; src < 4; ++src) {
    for (ProcId dst = 0; dst < 4; ++dst) {
      for (std::uint32_t seq = 0; seq < 64; ++seq) {
        for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
          const fault::Fate fa = a.fate(
              src, dst, fault::ReliableHeader::kData, seq, attempt);
          const fault::Fate fb = b.fate(
              src, dst, fault::ReliableHeader::kData, seq, attempt);
          EXPECT_EQ(fa.drop, fb.drop);
          EXPECT_EQ(fa.dup, fb.dup);
          EXPECT_EQ(fa.extra_delay_ns, fb.extra_delay_ns);
        }
      }
    }
  }
}

TEST(FaultSchedule, DifferentSeedsDiverge) {
  fault::FaultConfig a_cfg;
  a_cfg.drop_rate = 0.5;
  a_cfg.seed = 1;
  fault::FaultConfig b_cfg = a_cfg;
  b_cfg.seed = 2;
  const fault::FaultSchedule a(a_cfg);
  const fault::FaultSchedule b(b_cfg);
  int differing = 0;
  for (std::uint32_t seq = 0; seq < 256; ++seq) {
    if (a.fate(0, 1, fault::ReliableHeader::kData, seq, 0).drop !=
        b.fate(0, 1, fault::ReliableHeader::kData, seq, 0).drop) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

/// Retransmits draw fresh fates: attempt k+1 of a sequence number must
/// not be condemned to repeat attempt k's drop, or a dropped packet could
/// never get through.
TEST(FaultSchedule, AttemptsDrawFreshFates) {
  fault::FaultConfig cfg;
  cfg.drop_rate = 0.5;
  cfg.seed = 7;
  const fault::FaultSchedule sched(cfg);
  int survived_retry = 0;
  for (std::uint32_t seq = 0; seq < 256; ++seq) {
    if (!sched.fate(0, 1, fault::ReliableHeader::kData, seq, 0).drop)
      continue;
    // First attempt dropped: some retry within a few attempts survives.
    for (std::uint32_t attempt = 1; attempt < 8; ++attempt) {
      if (!sched.fate(0, 1, fault::ReliableHeader::kData, seq, attempt)
               .drop) {
        ++survived_retry;
        break;
      }
    }
  }
  EXPECT_GT(survived_retry, 0);
}

TEST(FaultSchedule, ZeroRatesNeverFault) {
  fault::FaultConfig cfg;  // all zero
  const fault::FaultSchedule sched(cfg);
  for (std::uint32_t seq = 0; seq < 128; ++seq) {
    const fault::Fate f =
        sched.fate(1, 2, fault::ReliableHeader::kData, seq, 0);
    EXPECT_FALSE(f.faulty());
  }
}

TEST(FaultConfig, RejectsUnrecoverableRates) {
  fault::FaultConfig cfg;
  cfg.drop_rate = 0.95;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.drop_rate = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.drop_rate = 0.0;
  cfg.dup_rate = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.dup_rate = 0.0;
  cfg.delay_rate = 2.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  // And the machine enforces it at construction.
  rt::RuntimeConfig rt_cfg = rt::RuntimeConfig::inline_testing();
  rt_cfg.fault.drop_rate = 0.95;
  EXPECT_THROW(rt::Machine(util::Topology(2, 1, 1), rt_cfg),
               std::invalid_argument);
}

/// The congestion knobs validate too: a zero-width window could never
/// drain, an inverted window ordering is a config bug, a window wider
/// than the SACK bitmap would leave holes the bitmap cannot name, and an
/// inverted RTO clamp would make the timer unsatisfiable.
TEST(FaultConfig, RejectsBadCongestionKnobs) {
  fault::FaultConfig ok;
  ok.dup_rate = 0.1;
  EXPECT_NO_THROW(ok.validate());

  fault::FaultConfig cfg = ok;
  cfg.window_min = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = ok;
  cfg.window_min = 8;
  cfg.window_init = 4;  // init below min
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = ok;
  cfg.window_init = 32;
  cfg.window_max = 16;  // init above max
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = ok;
  cfg.window_max = 128;  // wider than the 64-bit SACK bitmap
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = ok;
  cfg.rto_floor_ns = 2'000'000;
  cfg.rto_ceil_ns = 1'000'000;  // floor above ceiling
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  // The machine rejects them at construction just like the rates.
  rt::RuntimeConfig rt_cfg = rt::RuntimeConfig::inline_testing();
  rt_cfg.fault.dup_rate = 0.1;
  rt_cfg.fault.window_min = 0;
  EXPECT_THROW(rt::Machine(util::Topology(2, 1, 1), rt_cfg),
               std::invalid_argument);
}

/// FaultConfig{} (all zero) must leave the transport chain exactly as it
/// was: no decorators, no interceptor, all-zero counters — the structural
/// half of the "no new per-message cost" guarantee (the timing half is
/// fig_routed_histogram's ns/item sanity check).
TEST(FaultConfig, AllZeroLeavesTransportUndecorated) {
  rt::Machine machine(util::Topology(2, 1, 1),
                      rt::RuntimeConfig::testing());
  EXPECT_EQ(machine.fault_layer(), nullptr);
  EXPECT_EQ(machine.reliability(), nullptr);
  EXPECT_EQ(machine.delivery_interceptor(), nullptr);
  const core::FaultStats fs = machine.fault_stats();
  EXPECT_EQ(fs.faults_injected_drop, 0u);
  EXPECT_EQ(fs.faults_injected_dup, 0u);
  EXPECT_EQ(fs.faults_injected_delay, 0u);
  EXPECT_EQ(fs.retransmits, 0u);
  EXPECT_EQ(fs.dup_drops, 0u);
  EXPECT_EQ(fs.acks_sent, 0u);

  // A nonzero config installs the pair — they only ever come together.
  rt::RuntimeConfig faulty_cfg = rt::RuntimeConfig::inline_testing();
  faulty_cfg.fault.dup_rate = 0.1;
  rt::Machine faulty(util::Topology(2, 1, 1), faulty_cfg);
  EXPECT_NE(faulty.fault_layer(), nullptr);
  EXPECT_NE(faulty.reliability(), nullptr);
  EXPECT_NE(faulty.delivery_interceptor(), nullptr);
}

}  // namespace
