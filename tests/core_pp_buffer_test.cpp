#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pp_buffer.hpp"

namespace {

using tram::core::PpBuffer;

struct Entry {
  std::uint64_t tag;
  std::uint64_t writer;
  std::uint64_t check;  // tag ^ writer ^ salt: detects torn entries
  static constexpr std::uint64_t kSalt = 0xabcdef0123456789ULL;
  static Entry make(std::uint64_t tag, std::uint64_t writer) {
    return {tag, writer, tag ^ writer ^ kSalt};
  }
  bool intact() const { return check == (tag ^ writer ^ kSalt); }
};

TEST(PpBuffer, SingleThreadSealsExactlyAtCapacity) {
  PpBuffer<Entry> buf(4);
  std::uint64_t retries = 0;
  EXPECT_FALSE(buf.insert(Entry::make(0, 0), retries).has_value());
  EXPECT_FALSE(buf.insert(Entry::make(1, 0), retries).has_value());
  EXPECT_FALSE(buf.insert(Entry::make(2, 0), retries).has_value());
  EXPECT_EQ(buf.size_approx(), 3u);
  const auto sealed = buf.insert(Entry::make(3, 0), retries);
  ASSERT_TRUE(sealed.has_value());
  ASSERT_EQ(sealed->size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*sealed)[i].tag, i);
    EXPECT_TRUE((*sealed)[i].intact());
  }
  EXPECT_EQ(buf.size_approx(), 0u);  // reopened
  EXPECT_EQ(retries, 0u);
}

TEST(PpBuffer, FlushReturnsPartialAndReopens) {
  PpBuffer<Entry> buf(8);
  std::uint64_t retries = 0;
  for (std::uint64_t i = 0; i < 3; ++i) {
    buf.insert(Entry::make(i, 1), retries);
  }
  const auto partial = buf.flush();
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(partial->size(), 3u);
  EXPECT_FALSE(buf.flush().has_value());  // now empty
  // Buffer reusable after flush.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto sealed = buf.insert(Entry::make(i, 2), retries);
    EXPECT_EQ(sealed.has_value(), i == 7);
  }
}

TEST(PpBuffer, FlushOnEmptyIsNoop) {
  PpBuffer<Entry> buf(8);
  EXPECT_FALSE(buf.flush().has_value());
  EXPECT_FALSE(buf.flush().has_value());
}

TEST(PpBuffer, CapacityOneSealsEveryInsert) {
  PpBuffer<Entry> buf(1);
  std::uint64_t retries = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto sealed = buf.insert(Entry::make(i, 0), retries);
    ASSERT_TRUE(sealed.has_value());
    EXPECT_EQ(sealed->size(), 1u);
    EXPECT_EQ((*sealed)[0].tag, i);
  }
}

TEST(PpBuffer, ManyEpochsReuseTheSameSlots) {
  // 1000 seal/reopen cycles: the epoch in the state word must keep claim
  // CASes ABA-safe across reuse.
  PpBuffer<Entry> buf(16);
  std::uint64_t retries = 0;
  std::uint64_t total = 0;
  for (int epoch = 0; epoch < 1000; ++epoch) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      const auto sealed = buf.insert(Entry::make(i, 9), retries);
      if (sealed) {
        total += sealed->size();
        for (const auto& e : *sealed) ASSERT_TRUE(e.intact());
      }
    }
  }
  EXPECT_EQ(total, 16'000u);
}

/// The load-bearing property: with concurrent writers and flushers, every
/// inserted entry comes out exactly once, intact.
TEST(PpBuffer, ConcurrentExactlyOnceDelivery) {
  constexpr int kWriters = 8;
  constexpr std::uint64_t kPerWriter = 150'000;
  for (const std::uint32_t cap : {32u, 257u, 1024u}) {
    PpBuffer<Entry> buf(cap);
    std::mutex sink_mu;
    std::vector<Entry> sink;
    std::atomic<bool> stop{false};
    // Sealed/flushed results are pooled batches; copy them out so the
    // slab recycles immediately.
    auto drain = [&](auto&& v) {
      std::lock_guard<std::mutex> g(sink_mu);
      sink.insert(sink.end(), v.begin(), v.end());
    };
    std::vector<std::thread> writers;
    for (int wdx = 0; wdx < kWriters; ++wdx) {
      writers.emplace_back([&, wdx] {
        std::uint64_t retries = 0;
        for (std::uint64_t i = 0; i < kPerWriter; ++i) {
          auto sealed = buf.insert(
              Entry::make(i, static_cast<std::uint64_t>(wdx)), retries);
          if (sealed) drain(std::move(*sealed));
        }
      });
    }
    std::thread flusher([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (auto partial = buf.flush()) drain(std::move(*partial));
      }
    });
    for (auto& t : writers) t.join();
    stop.store(true);
    flusher.join();
    if (auto last = buf.flush()) drain(std::move(*last));

    ASSERT_EQ(sink.size(), kWriters * kPerWriter) << "cap=" << cap;
    std::vector<std::vector<char>> seen(
        kWriters, std::vector<char>(kPerWriter, 0));
    for (const Entry& e : sink) {
      ASSERT_TRUE(e.intact()) << "torn entry, cap=" << cap;
      ASSERT_LT(e.writer, static_cast<std::uint64_t>(kWriters));
      ASSERT_LT(e.tag, kPerWriter);
      ASSERT_EQ(seen[e.writer][e.tag], 0) << "duplicate, cap=" << cap;
      seen[e.writer][e.tag] = 1;
    }
  }
}

TEST(PpBuffer, ConcurrentFlushersSerialize) {
  PpBuffer<Entry> buf(64);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> drained{0};
  std::vector<std::thread> threads;
  // 2 writers + 3 flushers all racing.
  for (int wdx = 0; wdx < 2; ++wdx) {
    threads.emplace_back([&, wdx] {
      std::uint64_t retries = 0;
      for (std::uint64_t i = 0; i < 100'000; ++i) {
        if (auto sealed =
                buf.insert(Entry::make(i, static_cast<std::uint64_t>(wdx)),
                           retries)) {
          drained += sealed->size();
        }
      }
    });
  }
  for (int f = 0; f < 3; ++f) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (auto partial = buf.flush()) drained += partial->size();
      }
    });
  }
  threads[0].join();
  threads[1].join();
  stop.store(true);
  for (std::size_t i = 2; i < threads.size(); ++i) threads[i].join();
  if (auto last = buf.flush()) drained += last->size();
  EXPECT_EQ(drained.load(), 200'000u);
}

TEST(PpBuffer, CasRetriesReportedUnderContention) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "CAS contention needs truly parallel writers; a "
                    "time-sliced single core can serialize every claim";
  }
  PpBuffer<Entry> buf(128);
  std::atomic<std::uint64_t> total_retries{0};
  std::atomic<std::uint64_t> sealed_items{0};
  std::vector<std::thread> writers;
  for (int wdx = 0; wdx < 8; ++wdx) {
    writers.emplace_back([&, wdx] {
      std::uint64_t retries = 0;
      for (std::uint64_t i = 0; i < 100'000; ++i) {
        if (auto s = buf.insert(
                Entry::make(i, static_cast<std::uint64_t>(wdx)), retries)) {
          sealed_items += s->size();
        }
      }
      total_retries += retries;
    });
  }
  for (auto& t : writers) t.join();
  // With 8 threads hammering one buffer, some CAS retries must occur —
  // this is the paper's "overhead of atomics" made visible.
  EXPECT_GT(total_retries.load(), 0u);
}

}  // namespace
