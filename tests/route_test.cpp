/// Tests for the topological routing subsystem (src/route/): mesh
/// factorization and coordinates, dimension-ordered next-hop chains, the
/// full multi-hop delivery lifecycle across schemes x transports x SMP
/// modes, forwarded-hop accounting, and the O(d*N^(1/d)) live-buffer
/// bound against direct WPs.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "core/tram.hpp"
#include "core/tram_stats.hpp"
#include "core/wire.hpp"
#include "route/routed_domain.hpp"
#include "route/router.hpp"
#include "route/virtual_mesh.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace tram;
using route::Router;
using route::VirtualMesh;

TEST(VirtualMesh, AutoFactorBalanced) {
  EXPECT_EQ(VirtualMesh::auto_factor(64, 2).to_string(), "8x8");
  EXPECT_EQ(VirtualMesh::auto_factor(64, 3).to_string(), "4x4x4");
  EXPECT_EQ(VirtualMesh::auto_factor(27, 3).to_string(), "3x3x3");
  EXPECT_EQ(VirtualMesh::auto_factor(12, 2).to_string(), "3x4");
  EXPECT_EQ(VirtualMesh::auto_factor(1, 2).to_string(), "1x1");
  // Primes degenerate gracefully: routing becomes single-hop.
  EXPECT_EQ(VirtualMesh::auto_factor(7, 2).to_string(), "1x7");
}

TEST(VirtualMesh, CoordsRoundTrip) {
  const std::vector<int> dims{2, 3, 4};
  const VirtualMesh mesh(24, dims);
  for (ProcId p = 0; p < 24; ++p) {
    // Rebuild p by substituting its own digits into process 0.
    ProcId q = 0;
    for (int k = 0; k < mesh.ndims(); ++k) {
      q = mesh.with_coord(q, k, mesh.coord(p, k));
    }
    EXPECT_EQ(q, p);
    EXPECT_EQ(mesh.first_mismatch(p, p), mesh.ndims());
    EXPECT_EQ(mesh.hops(p, p), 0);
  }
}

TEST(VirtualMesh, RejectsBadShapes) {
  const std::vector<int> wrong{4, 4};
  EXPECT_THROW(VirtualMesh(15, wrong), std::invalid_argument);
  const std::vector<int> zero{0, 4};
  EXPECT_THROW(VirtualMesh(0, zero), std::invalid_argument);
  EXPECT_THROW(VirtualMesh::auto_factor(8, 4), std::invalid_argument);
}

TEST(Router, DimensionOrderedChainsTerminate) {
  const VirtualMesh mesh = VirtualMesh::auto_factor(64, 3);
  const Router router(mesh);
  for (ProcId src = 0; src < 64; src += 7) {
    for (ProcId dst = 0; dst < 64; ++dst) {
      ProcId here = src;
      int hops = 0;
      int last_dim = -1;
      while (true) {
        const Router::Hop h = router.next_hop(here, dst);
        if (h.local) break;
        EXPECT_GT(h.dim, last_dim);  // dimension order is strict
        last_dim = h.dim;
        here = h.proc;
        ASSERT_LE(++hops, mesh.ndims());
      }
      EXPECT_EQ(here, dst);
      EXPECT_EQ(hops, mesh.hops(src, dst));
    }
  }
}

/// The precomputed table must agree with the loop-based next_hop on every
/// (src, dst) pair, for several mesh shapes — including degenerate
/// (prime, extent-1) ones. ships_final must imply the hop terminates.
TEST(Router, TableMatchesNextHopLoop) {
  struct Shape {
    int procs;
    std::vector<int> dims;
  };
  const std::vector<Shape> shapes = {
      {24, {2, 3, 4}}, {64, {8, 8}},  {64, {4, 4, 4}},
      {27, {3, 3, 3}}, {12, {3, 4}},  {7, {1, 7}},
      {8, {8, 1}},     {6, {1, 2, 3}}};
  for (const auto& shape : shapes) {
    const VirtualMesh mesh(shape.procs, shape.dims);
    const Router router(mesh);
    for (ProcId here = 0; here < shape.procs; ++here) {
      EXPECT_EQ(router.row(here), &router.route(here, 0));
      for (ProcId dst = 0; dst < shape.procs; ++dst) {
        const Router::Hop h = router.next_hop(here, dst);
        const Router::Route& r = router.route(here, dst);
        EXPECT_EQ(r.slot, router.slot(h)) << mesh.to_string();
        EXPECT_EQ(r.proc, h.proc) << mesh.to_string();
        EXPECT_EQ(static_cast<int>(r.dim),
                  h.local ? mesh.ndims() : h.dim)
            << mesh.to_string();
        // A final slot's ship terminates: no further hop from the
        // target to the destination.
        if (router.ships_final(r.slot)) {
          EXPECT_EQ(mesh.hops(r.proc, dst), 0)
              << mesh.to_string() << " " << here << "->" << dst;
        }
      }
    }
    // The local slot and every highest-nontrivial-dimension slot ship
    // final; lower dimensions with a nontrivial dimension above do not.
    EXPECT_TRUE(router.ships_final(router.local_slot()));
    int highest_nontrivial = -1;
    for (int k = 0; k < mesh.ndims(); ++k) {
      if (mesh.dim_size(k) > 1) highest_nontrivial = k;
    }
    for (int s = 0; s < router.local_slot(); ++s) {
      EXPECT_EQ(router.ships_final(s),
                router.dim_of_slot(s) >= highest_nontrivial)
          << mesh.to_string() << " slot " << s;
    }
  }
}

/// Wire-level validation of the sorted last-hop variant: truncated or
/// bad-magic prefixes are wire corruption and must abort cleanly.
TEST(RoutedWireDeathTest, TruncatedOrCorruptHeaderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::array<std::byte, sizeof(core::RoutedSortedHeader)> buf{};
  core::RoutedHeader hdr;

  // Shorter than the fixed 8-byte prefix.
  EXPECT_DEATH(core::parse_routed_header(
                   std::span<const std::byte>(buf.data(), 4), 1),
               "truncated");

  // Unknown magic.
  hdr.magic = 0xdeadbeef;
  std::memcpy(buf.data(), &hdr, sizeof hdr);
  EXPECT_DEATH(core::parse_routed_header(
                   std::span<const std::byte>(buf.data(), sizeof hdr), 1),
               "bad magic");

  // Sorted message into a multi-worker process without its SegmentHeader.
  hdr.magic = core::RoutedHeader::kSortedMagic;
  std::memcpy(buf.data(), &hdr, sizeof hdr);
  EXPECT_DEATH(core::parse_routed_header(
                   std::span<const std::byte>(buf.data(), sizeof hdr), 4),
               "truncated");

  // The same prefix is a complete, valid message for one worker per
  // process (trivial grouping needs no counts)...
  const core::RoutedWire w1 = core::parse_routed_header(
      std::span<const std::byte>(buf.data(), sizeof hdr), 1);
  EXPECT_TRUE(w1.sorted);
  EXPECT_EQ(w1.header_bytes, sizeof(core::RoutedHeader));
  // ...and with the counts present, valid for a multi-worker process.
  const core::RoutedWire w4 = core::parse_routed_header(
      std::span<const std::byte>(buf.data(), buf.size()), 4);
  EXPECT_TRUE(w4.sorted);
  EXPECT_EQ(w4.header_bytes, sizeof(core::RoutedSortedHeader));
}

TEST(Router, SlotLayoutRoundTrips) {
  const std::vector<int> dims{3, 4};
  const VirtualMesh mesh(12, dims);
  const Router router(mesh);
  EXPECT_EQ(router.slots(), 3 + 4 + 1);
  EXPECT_EQ(router.dim_of_slot(router.local_slot()), mesh.ndims());
  for (ProcId here = 0; here < 12; ++here) {
    EXPECT_EQ(router.ship_target(here, router.local_slot()), here);
    for (ProcId dst = 0; dst < 12; ++dst) {
      const Router::Hop h = router.next_hop(here, dst);
      if (h.local) continue;
      const int slot = router.slot(h);
      EXPECT_EQ(router.dim_of_slot(slot), h.dim);
      EXPECT_EQ(router.ship_target(here, slot), h.proc);
    }
  }
}

TEST(EntryBuffer, HeaderBytesShipInPlace) {
  core::EntryBuffer<core::WireEntry<std::uint64_t>> buf;
  buf.set_header_bytes(sizeof(core::RoutedHeader));
  for (std::uint64_t i = 0; i < 3; ++i) {
    core::WireEntry<std::uint64_t> e;
    e.dest = static_cast<WorkerId>(i);
    e.item = 100 + i;
    buf.push(e, 8);
  }
  core::RoutedHeader hdr;
  hdr.dim = 1;
  hdr.hop = 2;
  std::memcpy(buf.header(), &hdr, sizeof hdr);
  const util::PayloadRef payload = buf.take();
  ASSERT_EQ(payload.size(), sizeof(core::RoutedHeader) +
                                3 * sizeof(core::WireEntry<std::uint64_t>));
  core::RoutedHeader out;
  std::memcpy(&out, payload.data(), sizeof out);
  EXPECT_EQ(out.magic, core::RoutedHeader::kMagic);
  EXPECT_EQ(out.dim, 1);
  EXPECT_EQ(out.hop, 2);
  const auto entries = rt::decode_payload<core::WireEntry<std::uint64_t>>(
      payload.span().subspan(sizeof out));
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[2].item, 102u);
}

/// Every worker sends `per_dest` items to every worker (itself included);
/// checks exactly-once delivery to the right worker under the given
/// scheme/topology/transport, and returns the merged stats.
struct ExchangeResult {
  core::WorkerTramStats stats;
  rt::Machine::RunResult run;
  std::uint64_t max_reserved = 0;
  std::uint64_t max_staged = 0;
};

ExchangeResult run_exchange(core::Scheme scheme, const util::Topology& topo,
                            rt::RuntimeConfig rt_cfg,
                            std::uint64_t per_dest = 40,
                            std::uint32_t g = 16) {
  rt::Machine machine(topo, rt_cfg);
  const int W = topo.workers();
  std::vector<std::atomic<std::uint64_t>> received(
      static_cast<std::size_t>(W));

  core::TramConfig cfg;
  cfg.scheme = scheme;
  cfg.buffer_items = g;
  route::RoutedDomain<std::uint64_t> domain(
      machine, cfg, [&](rt::Worker& w, const std::uint64_t& item) {
        // The item encodes its intended destination; RoutedDomain already
        // aborts on a misrouted WireEntry, this checks end-to-end intent.
        ASSERT_EQ(static_cast<WorkerId>(item % 1000), w.id());
        received[static_cast<std::size_t>(w.id())].fetch_add(
            1, std::memory_order_relaxed);
      });

  ExchangeResult res;
  res.run = machine.run([&](rt::Worker& self) {
    auto& h = domain.on(self);
    for (WorkerId dest = 0; dest < W; ++dest) {
      for (std::uint64_t i = 0; i < per_dest; ++i) {
        h.insert(dest, i * 1000 + static_cast<std::uint64_t>(dest));
      }
      self.progress();
    }
    h.flush_all();
  });

  res.stats = domain.aggregate_stats();
  res.max_reserved = domain.max_reserved_buffers();
  res.max_staged = domain.max_staged_forward_bytes();
  const std::uint64_t expected_per_worker =
      per_dest * static_cast<std::uint64_t>(W);
  for (int w = 0; w < W; ++w) {
    EXPECT_EQ(received[static_cast<std::size_t>(w)].load(),
              expected_per_worker)
        << "worker " << w;
  }
  EXPECT_EQ(res.stats.items_inserted, expected_per_worker * W);
  EXPECT_EQ(res.stats.items_delivered, expected_per_worker * W);
  // The last hop always ships pre-sorted (the local slot at minimum), and
  // every sorted batch is consumed as zero-copy sub-views.
  EXPECT_GT(res.stats.routed_sorted_msgs, 0u);
  EXPECT_GT(res.stats.routed_subview_deliveries, 0u);
  EXPECT_LE(res.stats.routed_sorted_msgs, res.stats.routed_hop_msgs);
  return res;
}

TEST(RoutedDomain, DeliversExactlyOnceSmpModeledFabric) {
  // 8 workers over 4 processes; both mesh shapes.
  run_exchange(core::Scheme::Mesh2D, util::Topology(2, 2, 2),
               rt::RuntimeConfig::testing());
  run_exchange(core::Scheme::Mesh3D, util::Topology(2, 2, 2),
               rt::RuntimeConfig::testing());
}

TEST(RoutedDomain, DeliversExactlyOnceSmpInline) {
  run_exchange(core::Scheme::Mesh2D, util::Topology(2, 2, 2),
               rt::RuntimeConfig::inline_testing());
  run_exchange(core::Scheme::Mesh3D, util::Topology(2, 2, 2),
               rt::RuntimeConfig::inline_testing());
}

TEST(RoutedDomain, DeliversExactlyOnceNonSmp) {
  auto fabric = rt::RuntimeConfig::testing();
  fabric.dedicated_comm = false;
  auto inline_cfg = rt::RuntimeConfig::inline_testing();
  inline_cfg.dedicated_comm = false;
  const util::Topology topo(8, 1, 1);  // 8 single-worker processes
  run_exchange(core::Scheme::Mesh2D, topo, fabric);
  run_exchange(core::Scheme::Mesh3D, topo, fabric);
  run_exchange(core::Scheme::Mesh2D, topo, inline_cfg);
  run_exchange(core::Scheme::Mesh3D, topo, inline_cfg);
}

/// With one worker per process every routed slot ships its slab whole or
/// stages forwards as refcounted sub-views: an 8-process Mesh3D exchange
/// (2x2x2 — items cross up to three hops) must forward without copying a
/// single byte into an intermediate slot buffer.
TEST(RoutedDomain, ZeroCopyForwardingNonSmpMesh3D) {
  auto cfg = rt::RuntimeConfig::testing();
  cfg.dedicated_comm = false;
  const util::Topology topo(8, 1, 1);
  const auto res = run_exchange(core::Scheme::Mesh3D, topo, cfg);
  EXPECT_GT(res.stats.routed_forwarded_items, 0u);
  EXPECT_EQ(res.stats.routed_forward_copy_bytes, 0u)
      << "wpp==1 forwards must all ride as sub-views";
  EXPECT_GT(res.stats.routed_forward_subview_bytes, 0u);
  // Sub-views pin their source slabs, but retention is bounded: staged
  // runs are chunked to at most one fill and a slot ships as soon as
  // buffered+staged reaches a fill, so each slot holds under two fills.
  // The high-water mark is handle-wide (summed over the worker's
  // 1 + sum(dims_k - 1) = 4 live slots on a 2x2x2 mesh).
  EXPECT_GT(res.max_staged, 0u);
  EXPECT_LE(res.max_staged,
            4 * 2ull * 16 * sizeof(core::WireEntry<std::uint64_t>));
}

/// The SMP build of the same exchange may copy at final-dimension slots
/// (the permuted ship owns its slab) but nowhere else: every non-final
/// forward still rides as a sub-view, and rebucket's residual counting
/// sort only runs when an inbound extent mixes buckets.
TEST(RoutedDomain, SubViewForwardingDominatesSmpMesh3D) {
  // 8 processes x 2 workers: a 2x2x2 mesh whose middle-dimension forwards
  // are non-final and must stage as sub-views even in SMP mode.
  const auto res = run_exchange(core::Scheme::Mesh3D,
                                util::Topology(4, 2, 2),
                                rt::RuntimeConfig::testing());
  EXPECT_GT(res.stats.routed_forward_subview_bytes, 0u);
}

TEST(RoutedDomain, ExplicitDimsHonored) {
  rt::Machine machine(util::Topology(6, 1, 1),
                      rt::RuntimeConfig::inline_testing());
  core::TramConfig cfg;
  cfg.scheme = core::Scheme::Mesh2D;
  cfg.route_dims = {3, 2, 0};
  route::RoutedDomain<std::uint64_t> domain(machine, cfg,
                                            [](rt::Worker&, auto&) {});
  EXPECT_EQ(domain.mesh().to_string(), "3x2");
  // Dims that do not factor the process count are rejected.
  cfg.route_dims = {4, 2, 0};
  EXPECT_THROW(route::RoutedDomain<std::uint64_t>(machine, cfg,
                                                  [](rt::Worker&, auto&) {}),
               std::invalid_argument);
  // More extents than the scheme has dimensions: a mismatched
  // --scheme/--route-dims pair, not a topology to silently truncate.
  cfg.route_dims = {3, 2, 1};
  EXPECT_THROW(route::RoutedDomain<std::uint64_t>(machine, cfg,
                                                  [](rt::Worker&, auto&) {}),
               std::invalid_argument);
}

TEST(RoutedDomain, RejectsUnsupportedConfigKnobs) {
  rt::Machine machine(util::Topology(4, 1, 1),
                      rt::RuntimeConfig::inline_testing());
  const auto nop = [](rt::Worker&, const std::uint64_t&) {};
  core::TramConfig cfg;
  cfg.scheme = core::Scheme::Mesh2D;
  // flush_on_idle=false would strand intermediate-hop buffers forever
  // (quiescence would hang); the constructor must refuse it.
  cfg.flush_on_idle = false;
  EXPECT_THROW(route::RoutedDomain<std::uint64_t>(machine, cfg, nop),
               std::invalid_argument);
  cfg.flush_on_idle = true;
  cfg.flush_timeout_ns = 1'000'000;
  EXPECT_THROW(route::RoutedDomain<std::uint64_t>(machine, cfg, nop),
               std::invalid_argument);
  // The priority knob is implemented for routed schemes (see
  // route_priority_test.cpp); it must construct cleanly.
  cfg.flush_timeout_ns = 0;
  cfg.priority_buffer_items = 8;
  EXPECT_NO_THROW(route::RoutedDomain<std::uint64_t>(machine, cfg, nop));
}

TEST(TramDomain, RejectsRoutedSchemes) {
  rt::Machine machine(util::Topology(2, 1, 1),
                      rt::RuntimeConfig::inline_testing());
  core::TramConfig cfg;
  cfg.scheme = core::Scheme::Mesh2D;
  EXPECT_THROW(core::TramDomain<std::uint64_t>(machine, cfg,
                                               [](rt::Worker&, auto&) {}),
               std::invalid_argument);
}

/// Forwarded-hop accounting: on a mesh, an item whose destination differs
/// from its source in k dimensions is re-aggregated k-1 times — d-1 for
/// antipodal traffic. The counters must match the closed form exactly.
TEST(RoutedDomain, ForwardedHopCountersMatchMesh) {
  auto cfg = rt::RuntimeConfig::inline_testing();
  cfg.dedicated_comm = false;
  const int P = 16;
  const util::Topology topo(P, 1, 1);
  const std::uint64_t per_dest = 20;

  for (const auto scheme :
       {core::Scheme::Mesh2D, core::Scheme::Mesh3D}) {
    const auto res = run_exchange(scheme, topo, cfg, per_dest);
    const VirtualMesh mesh =
        VirtualMesh::auto_factor(P, core::mesh_ndims(scheme));
    // Expected re-aggregations: sum over ordered pairs of (hops - 1).
    std::uint64_t expected_forwarded = 0;
    for (ProcId s = 0; s < P; ++s) {
      for (ProcId t = 0; t < P; ++t) {
        const int hops = mesh.hops(s, t);
        if (hops > 1) {
          expected_forwarded +=
              per_dest * static_cast<std::uint64_t>(hops - 1);
        }
      }
    }
    EXPECT_EQ(res.stats.routed_forwarded_items, expected_forwarded)
        << core::to_string(scheme);
    // Every intermediate re-ship is a cross-process message with hops > 0,
    // and the transport saw exactly the ships the domain accounted.
    EXPECT_EQ(res.run.forwarded_messages, res.stats.routed_forward_msgs);
    if (expected_forwarded > 0) {
      EXPECT_GT(res.stats.routed_forward_msgs, 0u);
    }
    EXPECT_GE(res.stats.routed_hop_msgs, res.stats.routed_forward_msgs);
  }
}

/// The acceptance bound: at 64 virtual processes, a routed source worker
/// holds O(d*P^(1/d)) live buffers where direct WPs holds O(P).
TEST(RoutedDomain, LiveBufferBoundAt64Processes) {
  auto cfg = rt::RuntimeConfig::inline_testing();
  cfg.dedicated_comm = false;
  const int P = 64;
  const util::Topology topo(P, 1, 1);
  const std::uint64_t per_dest = 2;
  const std::uint32_t g = 8;

  // Direct WPs: every worker ends up reserving one buffer per process.
  std::uint64_t direct_reserved = 0;
  {
    rt::Machine machine(topo, cfg);
    std::atomic<std::uint64_t> received{0};
    core::TramConfig tram;
    tram.scheme = core::Scheme::WPs;
    tram.buffer_items = g;
    core::TramDomain<std::uint64_t> domain(
        machine, tram,
        [&](rt::Worker&, const std::uint64_t&) { received++; });
    machine.run([&](rt::Worker& self) {
      auto& h = domain.on(self);
      for (WorkerId dest = 0; dest < P; ++dest) {
        for (std::uint64_t i = 0; i < per_dest; ++i) h.insert(dest, i);
      }
      h.flush_all();
    });
    EXPECT_EQ(received.load(),
              per_dest * static_cast<std::uint64_t>(P) * P);
    direct_reserved = domain.max_reserved_buffers();
    EXPECT_EQ(direct_reserved, static_cast<std::uint64_t>(P));
  }

  // Routed: sum(dims_k - 1) + 1 buffers, asserted against the formula.
  for (const auto scheme :
       {core::Scheme::Mesh2D, core::Scheme::Mesh3D}) {
    const auto res = run_exchange(scheme, topo, cfg, per_dest, g);
    const VirtualMesh mesh =
        VirtualMesh::auto_factor(P, core::mesh_ndims(scheme));
    const std::uint64_t bound = core::routed_buffers_per_core(mesh.dims());
    EXPECT_LE(res.max_reserved, bound) << core::to_string(scheme);
    EXPECT_LT(res.max_reserved, direct_reserved)
        << core::to_string(scheme);
  }
  // 2-D: 2*(8-1)+1 = 15 vs 64. 3-D: 3*(4-1)+1 = 10 vs 64.
  EXPECT_EQ(core::routed_buffers_per_core(
                VirtualMesh::auto_factor(P, 2).dims()),
            15u);
  EXPECT_EQ(core::routed_buffers_per_core(
                VirtualMesh::auto_factor(P, 3).dims()),
            10u);
}

/// Latency stamps survive multi-hop forwarding: delivered latency is
/// measured from the original insert, not the last hop.
TEST(RoutedDomain, LatencyTracksAcrossHops) {
  auto rt_cfg = rt::RuntimeConfig::inline_testing();
  rt_cfg.dedicated_comm = false;
  rt::Machine machine(util::Topology(9, 1, 1), rt_cfg);
  core::TramConfig cfg;
  cfg.scheme = core::Scheme::Mesh2D;  // 3x3
  cfg.buffer_items = 4;
  cfg.latency_tracking = true;
  route::RoutedDomain<std::uint64_t> domain(machine, cfg,
                                            [](rt::Worker&, auto&) {});
  machine.run([&](rt::Worker& self) {
    if (self.id() == 0) {
      // Destination 8 differs from 0 in both mesh dimensions: 2 hops.
      for (int i = 0; i < 8; ++i) domain.on(self).insert(8, 7);
      domain.on(self).flush_all();
    }
  });
  const auto stats = domain.aggregate_stats();
  EXPECT_EQ(stats.items_delivered, 8u);
  EXPECT_EQ(stats.latency.count(), 8u);
  EXPECT_GT(stats.latency.mean_ns(), 0.0);
  EXPECT_GT(stats.routed_forwarded_items, 0u);
}

}  // namespace
