/// PayloadPool/PayloadRef: recycling, refcounting (including cross-thread
/// handoff, the simulated cross-process case), subref pinning, resize
/// semantics, and the exhaustion fallback.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "runtime/message.hpp"
#include "util/mpsc_queue.hpp"
#include "util/payload_pool.hpp"

namespace {

using tram::util::PayloadPool;
using tram::util::PayloadRef;

TEST(PayloadPool, AcquireSizesToRequestAndRoundsCapacity) {
  PayloadPool pool;
  PayloadRef r = pool.acquire(100);
  EXPECT_EQ(r.size(), 100u);
  EXPECT_GE(r.capacity(), 100u);
  EXPECT_TRUE(r.unique());
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 1u);
  EXPECT_EQ(s.slab_allocs, 1u);
  EXPECT_EQ(s.heap_fallbacks, 0u);
}

TEST(PayloadPool, AcquireZeroIsEmpty) {
  PayloadPool pool;
  PayloadRef r = pool.acquire(0);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.capacity(), 0u);
  EXPECT_EQ(pool.stats().acquires, 0u);
}

TEST(PayloadPool, ReleasedSlabIsRecycled) {
  PayloadPool pool;
  const std::byte* first;
  {
    PayloadRef r = pool.acquire(512);
    first = r.data();
  }
  PayloadRef again = pool.acquire(512);
  // Same thread -> same stripe -> LIFO reuse of the identical slab.
  EXPECT_EQ(again.data(), first);
  const auto s = pool.stats();
  EXPECT_EQ(s.pool_hits, 1u);
  EXPECT_EQ(s.slab_allocs, 1u);
  EXPECT_DOUBLE_EQ(s.recycle_rate(), 0.5);
}

TEST(PayloadPool, CopySharesAndLastDropRecycles) {
  PayloadPool pool;
  PayloadRef a = pool.acquire(64);
  std::memset(a.data(), 0x5a, 64);
  PayloadRef b = a;
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_FALSE(a.unique());
  a = PayloadRef();  // drop one reference; the slab must survive
  ASSERT_EQ(b.use_count(), 1u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(std::to_integer<int>(b.data()[i]), 0x5a);
  }
  b = PayloadRef();
  const auto s = pool.stats();
  EXPECT_EQ(s.releases, 1u);  // one slab released once, not per handle
  EXPECT_EQ(s.free_slabs, 1u);
  EXPECT_EQ(s.outstanding, 0u);
}

TEST(PayloadPool, SubrefPinsSlabPastParentRelease) {
  PayloadPool pool;
  PayloadRef whole = pool.acquire(256);
  for (int i = 0; i < 256; ++i) {
    whole.data()[i] = static_cast<std::byte>(i);
  }
  PayloadRef seg = whole.subref(100, 50);
  EXPECT_EQ(seg.size(), 50u);
  whole = PayloadRef();  // parent gone; segment must still pin the slab
  EXPECT_EQ(pool.stats().free_slabs, 0u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(std::to_integer<int>(seg.data()[i]), (100 + i) & 0xff);
  }
  seg = PayloadRef();
  EXPECT_EQ(pool.stats().free_slabs, 1u);
}

TEST(PayloadPool, ResizePreservesPrefixAndZeroFillsGrowth) {
  PayloadPool pool;
  PayloadRef r = pool.acquire(8);
  std::memset(r.data(), 0x11, 8);
  r.resize(16);  // within the 64B class: in place
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(std::to_integer<int>(r.data()[i]), 0x11);
  }
  for (int i = 8; i < 16; ++i) {
    EXPECT_EQ(std::to_integer<int>(r.data()[i]), 0);
  }
  const std::size_t old_cap = r.capacity();
  r.resize(old_cap + 1);  // beyond capacity: fresh slab, prefix kept
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(std::to_integer<int>(r.data()[i]), 0x11);
  }
  EXPECT_EQ(std::to_integer<int>(r.data()[old_cap]), 0);
}

TEST(PayloadPool, DefaultRefResizeDrawsFromGlobalPool) {
  PayloadRef r;
  r.resize(40);
  EXPECT_EQ(r.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(std::to_integer<int>(r.data()[i]), 0);
  }
}

TEST(PayloadPool, ResetStatsKeepsOutstandingExact) {
  // outstanding is a live counter: zeroing the flow counters between
  // benchmark trials must not make later releases underflow it.
  PayloadPool pool;
  PayloadRef held = pool.acquire(64);
  pool.reset_stats();
  EXPECT_EQ(pool.stats().outstanding, 1u);
  EXPECT_EQ(pool.stats().acquires, 0u);
  held = PayloadRef();
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(PayloadPool, ExhaustionFallsBackToHeapBlocks) {
  PayloadPool::Config cfg;
  cfg.max_slabs_per_class = 2;
  PayloadPool pool(cfg);
  PayloadRef a = pool.acquire(64);
  PayloadRef b = pool.acquire(64);
  PayloadRef c = pool.acquire(64);  // class is at its cap: heap block
  std::memset(c.data(), 0x7f, 64);  // still fully usable
  EXPECT_EQ(std::to_integer<int>(c.data()[63]), 0x7f);
  const auto s = pool.stats();
  EXPECT_EQ(s.slab_allocs, 2u);
  EXPECT_EQ(s.heap_fallbacks, 1u);
  a = b = c = PayloadRef();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  // Heap blocks are freed, not cached: only the two real slabs remain.
  EXPECT_EQ(pool.stats().free_slabs, 2u);
}

TEST(PayloadPool, OversizeRequestsBypassThePool) {
  PayloadPool::Config cfg;
  cfg.max_slab_bytes = 1024;
  PayloadPool pool(cfg);
  PayloadRef big = pool.acquire(4096);
  EXPECT_EQ(big.size(), 4096u);
  std::memset(big.data(), 1, 4096);
  EXPECT_EQ(pool.stats().heap_fallbacks, 1u);
}

TEST(PayloadPool, ConcurrentAcquireReleaseIsConsistent) {
  PayloadPool pool;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t bytes = 64u + static_cast<std::size_t>((i + t) % 7) * 300u;
        PayloadRef r = pool.acquire(bytes);
        r.data()[0] = static_cast<std::byte>(t);
        r.data()[bytes - 1] = static_cast<std::byte>(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.acquires, s.pool_hits + s.slab_allocs + s.heap_fallbacks);
  EXPECT_EQ(s.heap_fallbacks, 0u);
  EXPECT_EQ(s.outstanding, 0u);
  // Steady state must be dominated by recycling, not allocation.
  EXPECT_GT(s.recycle_rate(), 0.95);
}

TEST(PayloadPool, CrossThreadHandoffKeepsRefcountExact) {
  // The simulated cross-process case: one thread fills and ships buffers
  // (keeping its own reference alive briefly, like a sender-side stats
  // hook), another consumes and releases. Every slab must come back.
  PayloadPool pool;
  tram::util::MpscQueue<PayloadRef> channel;
  constexpr int kMessages = 50'000;
  constexpr int kWindow = 32;  // in-flight cap: mirrors a bounded egress ring
  std::atomic<int> consumed{0};
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      while (i - consumed.load(std::memory_order_acquire) >= kWindow) {
        std::this_thread::yield();
      }
      PayloadRef r = pool.acquire(1024);
      std::memcpy(r.data(), &i, sizeof i);
      PayloadRef keep = r;  // sender-side copy: refcount 2 across the hop
      channel.push(std::move(r));
      ASSERT_EQ(*reinterpret_cast<const int*>(keep.data()), i);
    }
  });
  std::thread consumer([&] {
    int expected = 0;
    while (expected < kMessages) {
      auto r = channel.try_pop();
      if (!r) {
        std::this_thread::yield();
        continue;
      }
      ASSERT_EQ(*reinterpret_cast<const int*>(r->data()), expected);
      ++expected;
      consumed.store(expected, std::memory_order_release);
    }
  });
  producer.join();
  consumer.join();
  const auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.acquires, static_cast<std::uint64_t>(kMessages));
  EXPECT_GT(s.recycle_rate(), 0.9);
}

TEST(PayloadCodec, EmptyPayloadDecodesToEmptySpan) {
  // The decode_payload hardening: no pointer is formed for empty input.
  EXPECT_TRUE(tram::rt::decode_payload<int>(
                  std::span<const std::byte>{})
                  .empty());
  PayloadRef empty;
  EXPECT_TRUE(tram::rt::decode_payload<std::uint64_t>(empty).empty());
}

TEST(PayloadCodec, EncodeRoundTripsThroughThePool) {
  std::vector<std::uint32_t> items{1u, 2u, 3u, 4u};
  PayloadRef bytes =
      tram::rt::encode_payload(std::span<const std::uint32_t>(items));
  EXPECT_EQ(bytes.size(), 16u);
  auto back = tram::rt::decode_payload<std::uint32_t>(bytes);
  ASSERT_EQ(back.size(), 4u);
  EXPECT_EQ(back[3], 4u);
}

}  // namespace
