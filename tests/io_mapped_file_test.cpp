/// src/io/ coverage: mmap'd chunk streaming (empty file, file smaller
/// than one chunk, partial tail record aborting, chunk boundaries always
/// falling on whole records) and the spill write→read roundtrip with
/// CRC64 verification of every run.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "io/mapped_file.hpp"
#include "io/spill_file.hpp"
#include "shuffle/record.hpp"
#include "util/rng.hpp"

namespace {

using namespace tram;

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "io_test_" + name;
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> out(n);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(util::splitmix64(state) & 0xff);
  }
  return out;
}

std::uint64_t crc_of(std::span<const std::byte> bytes) {
  shuffle::Crc64 crc;
  crc.update(bytes);
  return crc.value();
}

TEST(MappedFile, EmptyFileMapsToEmptySpan) {
  const std::string path = tmp_path("empty");
  write_file(path, {});
  io::MappedFile f(path);
  EXPECT_EQ(f.size(), 0u);
  EXPECT_TRUE(f.bytes().empty());

  io::ChunkReader rd(f.bytes(), 16, 4096);
  EXPECT_EQ(rd.records_total(), 0u);
  EXPECT_TRUE(rd.next().empty());
  std::remove(path.c_str());
}

TEST(MappedFile, MissingFileThrows) {
  EXPECT_THROW(io::MappedFile(tmp_path("does_not_exist")),
               std::runtime_error);
}

TEST(MappedFile, FileSmallerThanOneChunkComesBackWhole) {
  const std::string path = tmp_path("small");
  const auto data = random_bytes(10 * 16, 7);
  write_file(path, data);
  io::MappedFile f(path);
  io::ChunkReader rd(f.bytes(), 16, 1 << 20);
  EXPECT_EQ(rd.records_total(), 10u);

  const auto chunk = rd.next();
  ASSERT_EQ(chunk.size(), data.size());
  EXPECT_EQ(std::memcmp(chunk.data(), data.data(), data.size()), 0);
  EXPECT_TRUE(rd.next().empty());
  std::remove(path.c_str());
}

using MappedFileDeathTest = ::testing::Test;

TEST(MappedFileDeathTest, PartialTailRecordAborts) {
  // 24 bytes = 1.5 records of 16: truncated input must abort, not hand
  // the caller a short record.
  const std::string path = tmp_path("partial_tail");
  const auto data = random_bytes(24, 9);
  write_file(path, data);
  io::MappedFile f(path);
  EXPECT_DEATH(io::ChunkReader(f.bytes(), 16, 4096),
               "whole number of 16-byte records");
  std::remove(path.c_str());
}

TEST(MappedFile, ChunkBoundariesNeverSplitRecords) {
  // A 40-byte chunk target over 16-byte records must deliver 32-byte
  // chunks (2 whole records), never straddling a record, and the
  // reassembled stream must equal the input byte for byte.
  const std::string path = tmp_path("straddle");
  const auto data = random_bytes(25 * 16, 21);
  write_file(path, data);
  io::MappedFile f(path);
  io::ChunkReader rd(f.bytes(), 16, 40);

  std::vector<std::byte> reassembled;
  std::size_t chunks = 0;
  for (auto chunk = rd.next(); !chunk.empty(); chunk = rd.next()) {
    EXPECT_EQ(chunk.size() % 16, 0u) << "chunk split a record";
    EXPECT_LE(chunk.size(), 32u);
    reassembled.insert(reassembled.end(), chunk.begin(), chunk.end());
    ++chunks;
  }
  EXPECT_EQ(chunks, 13u);  // ceil(25 / 2) two-record chunks
  ASSERT_EQ(reassembled.size(), data.size());
  EXPECT_EQ(std::memcmp(reassembled.data(), data.data(), data.size()), 0);
  std::remove(path.c_str());
}

TEST(SpillFile, WriteReadRoundtripWithCrc) {
  const std::string path = tmp_path("spill");
  const std::vector<std::vector<std::byte>> runs = {
      random_bytes(1000, 1), random_bytes(64, 2), random_bytes(3000, 3)};

  io::SpillWriter w(path);
  w.write_run(runs[0]);
  w.write_run(runs[1]);
  // The third run goes through the streaming interface in two pieces.
  w.begin_run();
  w.append(std::span<const std::byte>(runs[2]).subspan(0, 1234));
  w.append(std::span<const std::byte>(runs[2]).subspan(1234));
  w.end_run();
  w.flush();

  ASSERT_EQ(w.runs().size(), 3u);
  EXPECT_EQ(w.bytes_written(), 1000u + 64u + 3000u);
  EXPECT_EQ(w.runs()[0].offset, 0u);
  EXPECT_EQ(w.runs()[1].offset, 1000u);
  EXPECT_EQ(w.runs()[2].offset, 1064u);
  EXPECT_EQ(w.runs()[2].bytes, 3000u);

  // Read every run back through a deliberately awkward 96-byte buffer
  // (not a divisor of any run length) and interleave the cursors to
  // prove pread-based refills are position-independent on the shared fd.
  io::SpillReader r(path);
  std::vector<io::RunReader> cursors;
  for (const auto& run : w.runs()) cursors.push_back(r.run(run));
  std::vector<std::vector<std::byte>> got(runs.size());
  std::byte buf[96];
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      const std::size_t n = cursors[i].refill(buf);
      if (n != 0) {
        got[i].insert(got[i].end(), buf, buf + n);
        progress = true;
      }
    }
  }
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(cursors[i].remaining(), 0u);
    ASSERT_EQ(got[i].size(), runs[i].size()) << "run " << i;
    EXPECT_EQ(crc_of(got[i]), crc_of(runs[i])) << "run " << i;
  }
  std::remove(path.c_str());
}

TEST(SpillFile, LazyOpenCreatesNoFileUntilFirstRun) {
  const std::string path = tmp_path("lazy");
  std::remove(path.c_str());
  {
    io::SpillWriter w(path);
    EXPECT_EQ(w.bytes_written(), 0u);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "writer created a file without any run";
  if (f != nullptr) std::fclose(f);
}

}  // namespace
