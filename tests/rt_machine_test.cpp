#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "runtime/machine.hpp"
#include "util/spinlock.hpp"

namespace {

using namespace tram;
using rt::Machine;
using rt::Message;
using rt::RuntimeConfig;
using rt::Worker;
using util::Topology;

RuntimeConfig testing_cfg() { return RuntimeConfig::testing(); }

TEST(PayloadCodec, RoundTripsPods) {
  struct Pod {
    int a;
    double b;
  };
  std::vector<Pod> items{{1, 2.5}, {3, 4.5}};
  const auto bytes = rt::encode_payload(std::span<const Pod>(items));
  EXPECT_EQ(bytes.size(), 2 * sizeof(Pod));
  const auto back = rt::decode_payload<Pod>(bytes);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].a, 1);
  EXPECT_DOUBLE_EQ(back[1].b, 4.5);
  // Single-item convenience overload.
  const auto one = rt::encode_payload<int>(42);
  EXPECT_EQ(rt::decode_payload<int>(one)[0], 42);
}

TEST(Machine, RunsMainOnEveryWorkerExactlyOnce) {
  Machine m(Topology(2, 2, 2), testing_cfg());
  std::vector<util::Padded<int>> calls(8);
  m.run([&](Worker& w) { calls[w.id()].value++; });
  for (const auto& c : calls) EXPECT_EQ(c.value, 1);
}

TEST(Machine, LocalAndRemoteDelivery) {
  Machine m(Topology(2, 2, 2), testing_cfg());
  std::atomic<int> sum{0};
  const EndpointId ep = m.register_endpoint([&](Worker& w, Message&& msg) {
    sum += rt::decode_payload<int>(msg)[0] * (w.id() + 1);
  });
  m.run([&](Worker& w) {
    if (w.id() != 0) return;
    for (WorkerId dst = 0; dst < 8; ++dst) {
      Message msg;
      msg.endpoint = ep;
      msg.dst_worker = dst;
      msg.src_worker = 0;
      msg.payload = rt::encode_payload<int>(1);
      w.send(std::move(msg));
    }
  });
  EXPECT_EQ(sum.load(), 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
}

TEST(Machine, SendToProcReachesSomeWorkerOfThatProc) {
  Machine m(Topology(2, 2, 2), testing_cfg());
  std::atomic<int> hits{0};
  std::atomic<int> wrong_proc{0};
  const EndpointId ep = m.register_endpoint([&](Worker& w, Message&&) {
    hits++;
    if (m.topology().proc_of_worker(w.id()) != 3) wrong_proc++;
  });
  m.run([&](Worker& w) {
    if (w.id() != 0) return;
    for (int i = 0; i < 10; ++i) {
      Message msg;
      msg.endpoint = ep;
      msg.src_worker = 0;
      w.send_to_proc(3, std::move(msg));
    }
  });
  EXPECT_EQ(hits.load(), 10);
  EXPECT_EQ(wrong_proc.load(), 0);
}

TEST(Machine, HandlerGeneratedMessagesAreDrainedByQd) {
  // A relay chain: each hop forwards until ttl hits zero. Quiescence must
  // not fire while hops remain.
  Machine m(Topology(2, 2, 2), testing_cfg());
  std::atomic<int> hops{0};
  EndpointId ep = -1;
  ep = m.register_endpoint([&](Worker& w, Message&& msg) {
    const int ttl = rt::decode_payload<int>(msg)[0];
    hops++;
    if (ttl > 0) {
      Message next;
      next.endpoint = ep;
      next.dst_worker = (w.id() + 1) % 8;
      next.src_worker = w.id();
      next.payload = rt::encode_payload<int>(ttl - 1);
      w.send(std::move(next));
    }
  });
  m.run([&](Worker& w) {
    if (w.id() != 0) return;
    Message msg;
    msg.endpoint = ep;
    msg.dst_worker = 1;
    msg.src_worker = 0;
    msg.payload = rt::encode_payload<int>(99);
    w.send(std::move(msg));
  });
  EXPECT_EQ(hops.load(), 100);
}

TEST(Machine, ExpeditedHandledBeforeOrdinary) {
  // Preload one worker's inboxes while it is blocked in main, then check
  // the expedited message is dispatched first.
  Machine m(Topology(1, 1, 2), testing_cfg());
  std::vector<int> order;
  util::Spinlock order_mu;
  const EndpointId ep = m.register_endpoint([&](Worker&, Message&& msg) {
    std::lock_guard<util::Spinlock> g(order_mu);
    order.push_back(rt::decode_payload<int>(msg)[0]);
  });
  m.run([&](Worker& w) {
    if (w.id() == 0) {
      // Fill worker 1's inboxes while it waits at the barrier: the
      // expedited message is sent LAST but must be dispatched FIRST.
      for (int i = 0; i < 3; ++i) {
        Message ordinary;
        ordinary.endpoint = ep;
        ordinary.dst_worker = 1;
        ordinary.src_worker = 0;
        ordinary.payload = rt::encode_payload<int>(i);
        w.send(std::move(ordinary));
      }
      Message fast;
      fast.endpoint = ep;
      fast.dst_worker = 1;
      fast.src_worker = 0;
      fast.expedited = true;
      fast.payload = rt::encode_payload<int>(100);
      w.send(std::move(fast));
    }
    w.machine().barrier();  // worker 1 starts dispatching only after this
  });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 100);
}

TEST(Machine, BarrierSynchronizesWorkers) {
  Machine m(Topology(1, 2, 2), testing_cfg());
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  m.run([&](Worker& w) {
    before++;
    w.machine().barrier();
    if (before.load() != 4) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Machine, ReusableAcrossRuns) {
  Machine m(Topology(2, 1, 2), testing_cfg());
  std::atomic<int> count{0};
  const EndpointId ep =
      m.register_endpoint([&](Worker&, Message&&) { count++; });
  for (int round = 0; round < 5; ++round) {
    count = 0;
    const auto res = m.run([&](Worker& w) {
      Message msg;
      msg.endpoint = ep;
      msg.dst_worker = (w.id() + 1) % 4;
      msg.src_worker = w.id();
      w.send(std::move(msg));
    });
    EXPECT_EQ(count.load(), 4);
    EXPECT_EQ(res.runtime_messages, 4u);
    EXPECT_GE(res.wall_s, 0.0);
  }
}

TEST(Machine, RunResultCountsFabricTraffic) {
  Machine m(Topology(2, 1, 1), testing_cfg());
  const EndpointId ep = m.register_endpoint([](Worker&, Message&&) {});
  const auto res = m.run([&](Worker& w) {
    if (w.id() != 0) return;
    for (int i = 0; i < 7; ++i) {
      Message msg;
      msg.endpoint = ep;
      msg.dst_worker = 1;  // remote
      msg.src_worker = 0;
      msg.payload.resize(10);
      w.send(std::move(msg));
    }
  });
  EXPECT_EQ(res.fabric_messages, 7u);
  EXPECT_EQ(res.runtime_messages, 7u);
  EXPECT_GT(res.fabric_bytes, 70u);
}

TEST(Machine, NonSmpModeWorks) {
  RuntimeConfig cfg = testing_cfg();
  cfg.dedicated_comm = false;
  Machine m(Topology(2, 2, 1), cfg);
  std::atomic<int> got{0};
  const EndpointId ep = m.register_endpoint(
      [&](Worker&, Message&& msg) { got += rt::decode_payload<int>(msg)[0]; });
  m.run([&](Worker& w) {
    Message msg;
    msg.endpoint = ep;
    msg.dst_worker = (w.id() + 1) % 4;
    msg.src_worker = w.id();
    msg.payload = rt::encode_payload<int>(10);
    w.send(std::move(msg));
  });
  EXPECT_EQ(got.load(), 40);
}

TEST(Machine, NonSmpRequiresOneWorkerPerProc) {
  RuntimeConfig cfg = testing_cfg();
  cfg.dedicated_comm = false;
  EXPECT_THROW(Machine(Topology(1, 1, 2), cfg), std::invalid_argument);
}

TEST(Machine, PendingCounterDefersQuiescence) {
  // A worker holds synthetic pending work, releasing it from an idle hook
  // after a few visits; QD must wait for the release plus the message it
  // triggers.
  Machine m(Topology(1, 1, 2), testing_cfg());
  std::atomic<std::uint64_t> pending{3};
  std::atomic<int> released{0};
  const EndpointId ep =
      m.register_endpoint([&](Worker&, Message&&) { released++; });
  m.worker(0).add_pending_counter(
      [&] { return pending.load(std::memory_order_relaxed); });
  m.worker(0).add_idle_hook([&](Worker& w) {
    if (pending.load() == 0) return;
    if (pending.fetch_sub(1) == 1) {
      Message msg;
      msg.endpoint = ep;
      msg.dst_worker = 1;
      msg.src_worker = 0;
      w.send(std::move(msg));
    }
  });
  m.run([](Worker&) {});
  EXPECT_EQ(pending.load(), 0u);
  EXPECT_EQ(released.load(), 1);
  m.clear_worker_hooks();
}

TEST(Machine, ClearWorkerHooksRemovesThem) {
  Machine m(Topology(1, 1, 1), testing_cfg());
  m.worker(0).add_pending_counter([] { return std::uint64_t{7}; });
  EXPECT_EQ(m.total_pending(), 7u);
  m.clear_worker_hooks();
  EXPECT_EQ(m.total_pending(), 0u);
}

TEST(Machine, RegisterEndpointOrderIsStable) {
  Machine m(Topology(1, 1, 1), testing_cfg());
  const EndpointId a = m.register_endpoint([](Worker&, Message&&) {});
  const EndpointId b = m.register_endpoint([](Worker&, Message&&) {});
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(m.endpoints().size(), 2u);
}

TEST(Machine, ProgressInterleavesWithCompute) {
  // Worker 0 floods worker 1 while worker 1 pumps progress() from its own
  // main loop — message-driven interleaving, not post-main drain only.
  Machine m(Topology(1, 1, 2), testing_cfg());
  std::atomic<int> seen{0};
  const EndpointId ep =
      m.register_endpoint([&](Worker&, Message&&) { seen++; });
  m.run([&](Worker& w) {
    if (w.id() == 0) {
      for (int i = 0; i < 1000; ++i) {
        Message msg;
        msg.endpoint = ep;
        msg.dst_worker = 1;
        msg.src_worker = 0;
        w.send(std::move(msg));
      }
    } else {
      while (seen.load() < 500) {
        w.progress();
      }
    }
  });
  EXPECT_EQ(seen.load(), 1000);
}

}  // namespace
