#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "util/spinlock.hpp"

namespace {

using tram::util::Padded;
using tram::util::Spinlock;

TEST(Spinlock, BasicLockUnlock) {
  Spinlock mu;
  mu.lock();
  mu.unlock();
  mu.lock();
  mu.unlock();
}

TEST(Spinlock, TryLock) {
  Spinlock mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());  // already held
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Spinlock, WorksWithLockGuard) {
  Spinlock mu;
  {
    std::lock_guard<Spinlock> g(mu);
    EXPECT_FALSE(mu.try_lock());
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock mu;
  constexpr int kThreads = 8;
  constexpr int kIters = 50'000;
  // A non-atomic counter: data races would lose increments without the
  // lock's mutual exclusion and ordering.
  long long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<Spinlock> g(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

TEST(Spinlock, NoOverlapDetected) {
  Spinlock mu;
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20'000; ++i) {
        std::lock_guard<Spinlock> g(mu);
        if (inside.fetch_add(1) != 0) overlap.store(true);
        inside.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(overlap.load());
}

TEST(Padded, OccupiesFullCacheLines) {
  static_assert(sizeof(Padded<int>) >= tram::util::kCacheLine);
  static_assert(alignof(Padded<int>) == tram::util::kCacheLine);
  Padded<int> array[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&array[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&array[1].value);
  EXPECT_GE(b - a, tram::util::kCacheLine);
}

}  // namespace
