/// Tests for the item-prioritization extension (paper future work):
/// correctness of the priority path across schemes, expedited transit,
/// flush ordering, and the fallback when priority buffering is off.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "apps/sssp.hpp"
#include "core/tram.hpp"
#include "graph/generator.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace tram;
using core::Scheme;
using core::TramConfig;
using core::TramDomain;
using rt::Machine;
using rt::RuntimeConfig;
using rt::Worker;
using util::Topology;

class PrioritySchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(PrioritySchemes, PriorityItemsDeliveredExactlyOnce) {
  Machine m(Topology(2, 2, 2), RuntimeConfig::testing());
  const int W = m.topology().workers();
  std::atomic<std::uint64_t> bulk{0}, urgent{0};
  TramConfig cfg;
  cfg.scheme = GetParam();
  cfg.buffer_items = 128;
  cfg.priority_buffer_items = 8;
  TramDomain<std::uint64_t> tram(
      m, cfg, [&](Worker&, const std::uint64_t& v) {
        (v == 1 ? urgent : bulk)++;
      });
  m.run([&](Worker& w) {
    auto& h = tram.on(w);
    for (int i = 0; i < 2000; ++i) {
      const auto dest = static_cast<WorkerId>(w.rng().below(W));
      if (i % 10 == 0) {
        h.insert_priority(dest, 1);
      } else {
        h.insert(dest, 0);
      }
    }
    h.flush_all();
  });
  EXPECT_EQ(urgent.load(), static_cast<std::uint64_t>(W) * 200);
  EXPECT_EQ(bulk.load(), static_cast<std::uint64_t>(W) * 1800);
  const auto stats = tram.aggregate_stats();
  if (GetParam() == Scheme::None) {
    // None has no buffers at all: insert_priority falls back to insert.
    EXPECT_EQ(stats.priority_items, 0u);
  } else {
    EXPECT_EQ(stats.priority_items, static_cast<std::uint64_t>(W) * 200);
    EXPECT_GT(stats.priority_msgs, 0u);
  }
  EXPECT_EQ(stats.items_delivered, static_cast<std::uint64_t>(W) * 2000);
  EXPECT_EQ(m.total_pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, PrioritySchemes,
                         ::testing::Values(Scheme::None, Scheme::WW,
                                           Scheme::WPs, Scheme::WsP,
                                           Scheme::PP),
                         [](const auto& param_info) {
                           return std::string(core::to_string(param_info.param));
                         });

TEST(Priority, FallsBackWhenDisabled) {
  Machine m(Topology(1, 1, 2), RuntimeConfig::testing());
  std::atomic<std::uint64_t> got{0};
  TramConfig cfg;
  cfg.scheme = Scheme::WPs;
  cfg.buffer_items = 16;
  cfg.priority_buffer_items = 0;  // disabled
  TramDomain<std::uint64_t> tram(
      m, cfg, [&](Worker&, const std::uint64_t&) { got++; });
  m.run([&](Worker& w) {
    tram.on(w).insert_priority((w.id() + 1) % 2, 5);
    tram.on(w).flush_all();
  });
  EXPECT_EQ(got.load(), 2u);
  EXPECT_EQ(tram.aggregate_stats().priority_items, 0u);  // took bulk path
  EXPECT_EQ(tram.aggregate_stats().priority_msgs, 0u);
}

TEST(Priority, UrgentItemsSeeLowerLatencyThanBulk) {
  // With real delays, a trickle of priority items (tiny expedited buffers)
  // must beat bulk items stuck in big buffers. Latency tracking measures
  // both through the same histogram; we separate them by running twice.
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "wall-clock latency ordering needs real parallelism "
                    "(workers + comm threads oversubscribe this host)";
  }
  rt::RuntimeConfig cfg;  // delta-like costs
  auto mean_latency = [&](bool priority) {
    Machine m(Topology(2, 1, 2), cfg);
    const int W = m.topology().workers();
    TramConfig tc;
    tc.scheme = Scheme::WPs;
    tc.buffer_items = 4096;  // bulk path: slow to fill
    tc.latency_tracking = true;
    tc.priority_buffer_items = priority ? 4 : 0;
    TramDomain<std::uint64_t> tram(m, tc,
                                   [](Worker&, const std::uint64_t&) {});
    m.run([&](Worker& w) {
      auto& h = tram.on(w);
      for (int i = 0; i < 3000; ++i) {
        const auto dest = static_cast<WorkerId>(w.rng().below(W));
        if (priority) {
          h.insert_priority(dest, 1);
        } else {
          h.insert(dest, 1);
        }
        if (i % 64 == 0) w.progress();
      }
      h.flush_all();
    });
    return tram.aggregate_stats().latency.mean_ns();
  };
  const double bulk_ns = mean_latency(false);
  const double prio_ns = mean_latency(true);
  EXPECT_LT(prio_ns, bulk_ns);
}

TEST(Priority, SsspWithPrioritizationStillCorrect) {
  graph::GeneratorParams gp;
  gp.num_vertices = 5000;
  gp.avg_degree = 6.0;
  const graph::Csr g = graph::build_uniform(gp);
  for (const Scheme s : {Scheme::WW, Scheme::WPs, Scheme::PP}) {
    Machine m(Topology(2, 2, 2), RuntimeConfig::testing());
    apps::SsspParams p;
    p.graph = &g;
    p.tram.scheme = s;
    p.tram.buffer_items = 128;
    p.tram.priority_buffer_items = 16;
    p.prioritize_urgent = true;
    p.delta = 16;
    apps::SsspApp app(m, p);
    const auto res = app.run();
    EXPECT_TRUE(res.verified) << core::to_string(s);
    EXPECT_GT(res.tram.priority_items, 0u) << core::to_string(s);
  }
}

TEST(Priority, FlushShipsPriorityPartialsFirst) {
  // Single-worker destination process: both messages land in one inbox,
  // where expedited dispatch order is deterministic.
  Machine m(Topology(2, 1, 1), RuntimeConfig::testing());
  std::atomic<int> order_first{0};  // 1 = urgent arrived first
  std::atomic<int> seen{0};
  TramConfig cfg;
  cfg.scheme = Scheme::WPs;
  cfg.buffer_items = 1024;
  cfg.priority_buffer_items = 1024;  // nothing ships before flush
  cfg.flush_on_idle = false;
  TramDomain<std::uint64_t> tram(
      m, cfg, [&](Worker&, const std::uint64_t& v) {
        if (seen.fetch_add(1) == 0 && v == 1) order_first = 1;
      });
  m.run([&](Worker& w) {
    if (w.id() != 0) return;
    auto& h = tram.on(w);
    h.insert(1, 0);           // bulk, buffered
    h.insert_priority(1, 1);  // urgent, buffered
    h.flush_all();            // priority buffer must ship first
  });
  EXPECT_EQ(seen.load(), 2);
  EXPECT_EQ(order_first.load(), 1);
}

}  // namespace
