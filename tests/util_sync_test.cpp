///
/// \file util_sync_test.cpp
/// \brief Seeded-interleaving tests for the synchronization seam.
///
/// The primitives are instantiated against DebugSync explicitly, so every
/// atomic operation is a deterministic context-switch point regardless of
/// how the binary was configured: the scheduler explores an adversarial
/// interleaving per seed and the invariants (exactly-once pop, FIFO,
/// mutual exclusion, balanced refcounts) must hold in all of them. A
/// failing seed replays identically — it is a reproducer, not a flake.
///
/// The PayloadPool scenario is the one exception: the pool is hardwired to
/// DefaultSync (that is the point — the shipping refcount code is what
/// runs under the scheduler in a TRAM_SYNC_DEBUG build), so it runs under
/// the scheduler only when kSyncDebugBuild and as a plain two-thread
/// stress otherwise. In a RealSync build, putting scheduler-managed
/// threads on the pool's RealSync spinlock could deadlock: the token
/// holder would spin forever on a lock whose owner is descheduled.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "util/mpsc_queue.hpp"
#include "util/payload_pool.hpp"
#include "util/spinlock.hpp"
#include "util/spsc_ring.hpp"
#include "util/sync.hpp"

namespace tram::util {
namespace {

constexpr std::uint64_t kSeeds = 20;

TEST(DebugScheduler, RunsEveryFunctionToCompletion) {
  bool ran[3] = {false, false, false};
  DebugScheduler::run(1, {[&] { ran[0] = true; },
                          [&] { ran[1] = true; },
                          [&] { ran[2] = true; }});
  EXPECT_TRUE(ran[0] && ran[1] && ran[2]);
}

TEST(DebugScheduler, SameSeedSameSchedule) {
  auto scenario = [] {
    MpscQueue<int, DebugSync> q;
    DebugScheduler::run(
        42, {[&] {
               for (int i = 0; i < 50; ++i) q.push(i);
             },
             [&] {
               for (int i = 0; i < 50; ++i) q.push(100 + i);
             },
             [&] {
               int got = 0;
               while (got < 100) {
                 if (q.try_pop()) ++got;
               }
             }});
    return DebugScheduler::switches();
  };
  const std::uint64_t a = scenario();
  const std::uint64_t b = scenario();
  EXPECT_EQ(a, b) << "same seed must replay the same interleaving";
  EXPECT_GT(a, 0u) << "a 3-thread run with contention must context-switch";
}

TEST(UtilSync, MpscExactlyOncePopUnderSeededInterleavings) {
  constexpr int kPerProducer = 40;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    MpscQueue<int, DebugSync> q;
    std::vector<int> popped;
    DebugScheduler::run(
        seed,
        {[&] {
           for (int i = 0; i < kPerProducer; ++i) q.push(i);
         },
         [&] {
           for (int i = 0; i < kPerProducer; ++i) q.push(1000 + i);
         },
         [&] {
           while (popped.size() < 2 * kPerProducer) {
             if (auto v = q.try_pop()) popped.push_back(*v);
           }
         }});
    ASSERT_EQ(popped.size(), 2u * kPerProducer) << "seed " << seed;
    // Exactly once: every pushed value seen once, none invented.
    std::map<int, int> seen;
    for (int v : popped) seen[v]++;
    for (int i = 0; i < kPerProducer; ++i) {
      EXPECT_EQ(seen[i], 1) << "seed " << seed << " value " << i;
      EXPECT_EQ(seen[1000 + i], 1) << "seed " << seed << " value "
                                   << 1000 + i;
    }
    // Per-producer FIFO (the queue's ordering contract).
    int last_a = -1, last_b = -1;
    for (int v : popped) {
      if (v < 1000) {
        EXPECT_GT(v, last_a) << "seed " << seed;
        last_a = v;
      } else {
        EXPECT_GT(v, last_b) << "seed " << seed;
        last_b = v;
      }
    }
    EXPECT_FALSE(q.try_pop().has_value());
    EXPECT_EQ(q.pop_count(), 2u * kPerProducer);
  }
}

TEST(UtilSync, SpscRingFifoExactlyOnceUnderSeededInterleavings) {
  constexpr int kCount = 60;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SpscRing<int, DebugSync> ring(4);  // tiny: constant full/empty races
    int next_expected = 0;
    DebugScheduler::run(
        seed, {[&] {
                 for (int i = 0; i < kCount; ++i) {
                   while (!ring.try_push(int{i})) {
                   }
                 }
               },
               [&] {
                 while (next_expected < kCount) {
                   if (auto v = ring.try_pop()) {
                     ASSERT_EQ(*v, next_expected) << "seed " << seed;
                     ++next_expected;
                   }
                 }
               }});
    EXPECT_EQ(next_expected, kCount) << "seed " << seed;
    EXPECT_FALSE(ring.try_pop().has_value());
  }
}

TEST(UtilSync, SpinlockMutualExclusionUnderSeededInterleavings) {
  constexpr int kPerThread = 50;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    BasicSpinlock<DebugSync> mu;
    int counter = 0;        // non-atomic: torn only if exclusion fails
    bool in_critical = false;
    bool overlap = false;
    auto contender = [&] {
      for (int i = 0; i < kPerThread; ++i) {
        mu.lock();
        if (in_critical) overlap = true;
        in_critical = true;
        ++counter;
        in_critical = false;
        mu.unlock();
      }
    };
    DebugScheduler::run(seed, {contender, contender, contender});
    EXPECT_EQ(counter, 3 * kPerThread) << "seed " << seed;
    EXPECT_FALSE(overlap) << "seed " << seed;
  }
}

/// Refcount/subref churn: three threads share one slab through copies and
/// sub-views; afterwards the pool must see the slab returned exactly once.
/// Under TRAM_SYNC_DEBUG the shipping refcount code itself yields at every
/// inc/dec, so the scheduler drives the copy/release races; otherwise this
/// is a plain concurrent stress of the same invariant.
TEST(UtilSync, PayloadPoolRefcountBalancedUnderChurn) {
  PayloadPool pool;
  {
    PayloadRef base = pool.acquire(256);
    auto churn = [&base] {
      for (int i = 0; i < 30; ++i) {
        PayloadRef copy = base;              // fetch_add
        PayloadRef view = copy.subref(8, 16);  // fetch_add
        PayloadRef view2 = view;             // fetch_add
        // Destructors: three release-decrements per iteration.
      }
    };
    if constexpr (kSyncDebugBuild) {
      for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        DebugScheduler::run(seed, {churn, churn, churn});
        EXPECT_TRUE(base.unique()) << "seed " << seed;
      }
    } else {
      std::vector<std::thread> threads;
      for (int t = 0; t < 3; ++t) threads.emplace_back(churn);
      for (auto& t : threads) t.join();
      EXPECT_TRUE(base.unique());
    }
    EXPECT_EQ(pool.stats().outstanding, 1u);
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u) << "slab leaked or double-freed";
  EXPECT_EQ(s.releases, s.acquires);
}

/// The scheduler must be a no-op for code it does not manage: DebugSync
/// primitives still work on plain threads (this is what a TRAM_SYNC_DEBUG
/// build relies on for the rest of the runtime).
TEST(UtilSync, DebugSyncPrimitivesWorkOutsideScheduler) {
  MpscQueue<int, DebugSync> q;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) q.push(i);
  });
  int got = 0;
  while (got < 1000) {
    if (auto v = q.try_pop()) {
      ASSERT_EQ(*v, got);
      ++got;
    }
  }
  producer.join();
  EXPECT_TRUE(q.empty_approx());
}

}  // namespace
}  // namespace tram::util
