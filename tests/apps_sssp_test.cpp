#include <gtest/gtest.h>

#include <string>

#include "apps/sssp.hpp"
#include "graph/generator.hpp"
#include "graph/shortest_path.hpp"

namespace {

using namespace tram;

struct Param {
  core::Scheme scheme;
  std::uint32_t buffer;
  std::uint32_t delta;
  bool rmat;
  std::string label() const {
    return std::string(core::to_string(scheme)) + "_g" +
           std::to_string(buffer) + "_d" + std::to_string(delta) +
           (rmat ? "_rmat" : "_uniform");
  }
};

class SsspSchemes : public ::testing::TestWithParam<Param> {};

TEST_P(SsspSchemes, DistancesMatchDijkstra) {
  const Param param = GetParam();
  graph::GeneratorParams gp;
  gp.num_vertices = 4000;
  gp.avg_degree = 6.0;
  gp.seed = 3;
  const graph::Csr g =
      param.rmat ? graph::build_rmat(gp) : graph::build_uniform(gp);

  rt::Machine m(util::Topology(2, 2, 2), rt::RuntimeConfig::testing());
  apps::SsspParams p;
  p.graph = &g;
  p.source = 0;
  p.tram.scheme = param.scheme;
  p.tram.buffer_items = param.buffer;
  p.delta = param.delta;
  apps::SsspApp app(m, p);
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.relaxations, 0u);
  EXPECT_LE(res.wasted_updates, res.received_updates);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SsspSchemes,
    ::testing::Values(Param{core::Scheme::None, 1, 16, false},
                      Param{core::Scheme::WW, 64, 16, false},
                      Param{core::Scheme::WPs, 64, 16, false},
                      Param{core::Scheme::WsP, 64, 16, false},
                      Param{core::Scheme::PP, 64, 16, false},
                      Param{core::Scheme::WPs, 64, 16, true},
                      Param{core::Scheme::PP, 256, 4, true},
                      Param{core::Scheme::WW, 1, 1000000, false},
                      Param{core::Scheme::WPs, 4096, 1, false},
                      // Routed schemes: same workload through
                      // route::RoutedDomain (multi-hop message path).
                      Param{core::Scheme::Mesh2D, 64, 16, false},
                      Param{core::Scheme::Mesh3D, 64, 16, false},
                      Param{core::Scheme::Mesh2D, 64, 16, true}),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return param_info.param.label();
    });

/// Routed SSSP with the mesh priority path: under-threshold improvements
/// ride insert_priority, overtake bulk at every hop, and the result
/// still verifies against Dijkstra — across multi-hop non-SMP meshes
/// (the exactly-once sweep the routed irregular apps depend on).
TEST(Sssp, RoutedPrioritizedMatchesDijkstra) {
  graph::GeneratorParams gp;
  gp.num_vertices = 4000;
  gp.avg_degree = 6.0;
  gp.seed = 7;
  const graph::Csr g = graph::build_uniform(gp);
  auto rt_cfg = rt::RuntimeConfig::testing();
  rt_cfg.dedicated_comm = false;
  for (const core::Scheme s :
       {core::Scheme::Mesh2D, core::Scheme::Mesh3D}) {
    rt::Machine m(util::Topology(8, 1, 1), rt_cfg);
    apps::SsspParams p;
    p.graph = &g;
    p.tram.scheme = s;
    p.tram.buffer_items = 128;
    p.tram.priority_buffer_items = 16;
    p.prioritize_urgent = true;
    p.delta = 16;
    apps::SsspApp app(m, p);
    const auto res = app.run();
    EXPECT_TRUE(res.verified) << core::to_string(s);
    EXPECT_GT(res.tram.priority_items, 0u) << core::to_string(s);
    EXPECT_GT(res.tram.routed_forwarded_items, 0u) << core::to_string(s);
    EXPECT_EQ(res.tram.items_inserted, res.tram.items_delivered)
        << core::to_string(s);
  }
}

TEST(Sssp, UnreachableVerticesStayInfinite) {
  // Build a graph with an isolated second component.
  std::vector<graph::Edge> edges;
  for (graph::Vertex v = 0; v + 1 < 100; ++v) {
    edges.push_back({v, v + 1, 2});
    edges.push_back({v + 1, v, 2});
  }
  // Vertices 100..199 form a separate ring.
  for (graph::Vertex v = 100; v < 199; ++v) {
    edges.push_back({v, v + 1, 1});
    edges.push_back({v + 1, v, 1});
  }
  const graph::Csr g(200, edges);
  rt::Machine m(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  apps::SsspParams p;
  p.graph = &g;
  p.source = 0;
  p.tram.scheme = core::Scheme::WPs;
  p.tram.buffer_items = 16;
  apps::SsspApp app(m, p);
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(app.distance(50), 100u);
  EXPECT_EQ(app.distance(150), UINT32_MAX);
}

TEST(Sssp, SourceInTheMiddlePartition) {
  graph::GeneratorParams gp;
  gp.num_vertices = 2000;
  gp.seed = 9;
  const graph::Csr g = graph::build_uniform(gp);
  rt::Machine m(util::Topology(2, 2, 2), rt::RuntimeConfig::testing());
  apps::SsspParams p;
  p.graph = &g;
  p.source = 1500;  // owned by a non-zero worker
  p.tram.scheme = core::Scheme::PP;
  p.tram.buffer_items = 64;
  apps::SsspApp app(m, p);
  EXPECT_TRUE(app.run().verified);
}

TEST(Sssp, RepeatedRunsConvergeIdentically) {
  graph::GeneratorParams gp;
  gp.num_vertices = 3000;
  gp.seed = 4;
  const graph::Csr g = graph::build_uniform(gp);
  rt::Machine m(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  apps::SsspParams p;
  p.graph = &g;
  p.tram.scheme = core::Scheme::WW;
  p.tram.buffer_items = 128;
  apps::SsspApp app(m, p);
  // Final distances are schedule-independent (monotone relaxation):
  // repeated runs must verify every time even though message orders vary.
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(app.run(round).verified) << "round " << round;
  }
}

TEST(Sssp, RequiresGraph) {
  rt::Machine m(util::Topology(1, 1, 1), rt::RuntimeConfig::testing());
  apps::SsspParams p;
  p.graph = nullptr;
  EXPECT_THROW(apps::SsspApp(m, p), std::invalid_argument);
}

TEST(Sssp, WastedUpdatesRespondToLatency) {
  // With real delays and large buffers (no latency bound), stale updates
  // multiply; unaggregated sends keep waste lower. This is the causal link
  // the paper's figs 14-15 rest on.
  graph::GeneratorParams gp;
  gp.num_vertices = 20'000;
  gp.avg_degree = 8.0;
  gp.seed = 5;
  const graph::Csr g = graph::build_uniform(gp);
  rt::RuntimeConfig cfg;  // delta-like real costs
  auto waste_with = [&](core::Scheme s, std::uint32_t buffer) {
    rt::Machine m(util::Topology(2, 2, 2), cfg);
    apps::SsspParams p;
    p.graph = &g;
    p.tram.scheme = s;
    p.tram.buffer_items = buffer;
    p.delta = 8;
    apps::SsspApp app(m, p);
    const auto res = app.run();
    EXPECT_TRUE(res.verified);
    return res.wasted_pct;
  };
  const double none_waste = waste_with(core::Scheme::None, 1);
  const double ww_waste = waste_with(core::Scheme::WW, 4096);
  EXPECT_LE(none_waste, ww_waste + 5.0);  // allow noise, require no inversion
}

}  // namespace
