#include <gtest/gtest.h>

#include <stdexcept>

#include "util/topology.hpp"

namespace {

using tram::util::Topology;

TEST(Topology, DefaultIsSingleton) {
  Topology t;
  EXPECT_EQ(t.nodes(), 1);
  EXPECT_EQ(t.procs(), 1);
  EXPECT_EQ(t.workers(), 1);
}

TEST(Topology, Counts) {
  Topology t(4, 2, 8);
  EXPECT_EQ(t.nodes(), 4);
  EXPECT_EQ(t.procs_per_node(), 2);
  EXPECT_EQ(t.workers_per_proc(), 8);
  EXPECT_EQ(t.procs(), 8);
  EXPECT_EQ(t.workers(), 64);
  EXPECT_EQ(t.workers_per_node(), 16);
}

TEST(Topology, RejectsNonPositiveDimensions) {
  EXPECT_THROW(Topology(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(Topology(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(Topology(1, 1, 0), std::invalid_argument);
  EXPECT_THROW(Topology(-2, 1, 1), std::invalid_argument);
}

TEST(Topology, IdMathIsConsistentExhaustively) {
  // Every worker id must round-trip through (proc, rank) and agree on its
  // node, across several shapes including degenerate ones.
  for (const Topology t : {Topology(1, 1, 1), Topology(3, 1, 1),
                           Topology(1, 5, 1), Topology(1, 1, 7),
                           Topology(2, 3, 4), Topology(4, 2, 8)}) {
    for (tram::WorkerId w = 0; w < t.workers(); ++w) {
      const tram::ProcId p = t.proc_of_worker(w);
      const tram::LocalWorkerId r = t.local_rank(w);
      ASSERT_GE(p, 0);
      ASSERT_LT(p, t.procs());
      ASSERT_GE(r, 0);
      ASSERT_LT(r, t.workers_per_proc());
      ASSERT_EQ(t.worker_at(p, r), w);
      ASSERT_EQ(t.node_of_worker(w), t.node_of_proc(p));
      ASSERT_GE(w, t.first_worker_of(p));
      ASSERT_LT(w, t.first_worker_of(p) + t.workers_per_proc());
    }
    for (tram::ProcId p = 0; p < t.procs(); ++p) {
      const tram::NodeId n = t.node_of_proc(p);
      ASSERT_GE(n, 0);
      ASSERT_LT(n, t.nodes());
      ASSERT_GE(p, t.first_proc_of(n));
      ASSERT_LT(p, t.first_proc_of(n) + t.procs_per_node());
    }
  }
}

TEST(Topology, SameProcSameNode) {
  Topology t(2, 2, 2);  // workers 0..7; procs 0..3; nodes 0..1
  EXPECT_TRUE(t.same_proc(0, 1));
  EXPECT_FALSE(t.same_proc(1, 2));
  EXPECT_TRUE(t.same_node(0, 3));   // procs 0 and 1 on node 0
  EXPECT_FALSE(t.same_node(3, 4));  // proc 1 (node 0) vs proc 2 (node 1)
  EXPECT_TRUE(t.same_node(4, 7));
}

TEST(Topology, NonSmpShape) {
  // MPI-everywhere / non-SMP: one worker per process.
  Topology t(2, 8, 1);
  EXPECT_EQ(t.workers(), 16);
  for (tram::WorkerId w = 0; w < t.workers(); ++w) {
    EXPECT_EQ(t.proc_of_worker(w), w);
    EXPECT_EQ(t.local_rank(w), 0);
  }
}

TEST(Topology, ToStringAndEquality) {
  Topology t(4, 2, 8);
  EXPECT_EQ(t.to_string(), "4n x 2p x 8w");
  EXPECT_EQ(t, Topology(4, 2, 8));
  EXPECT_NE(t, Topology(4, 8, 2));
}

}  // namespace
