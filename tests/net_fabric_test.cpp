#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hpp"
#include "util/timebase.hpp"
#include "util/topology.hpp"

namespace {

using tram::net::CostModel;
using tram::net::Fabric;
using tram::net::Packet;
using tram::util::Topology;

Packet make_packet(tram::ProcId src, tram::ProcId dst,
                   std::size_t bytes = 16) {
  Packet p;
  p.src_proc = src;
  p.dst_proc = dst;
  p.dst_worker = 0;
  p.payload.resize(bytes);
  return p;
}

TEST(Fabric, ZeroDelayDeliversImmediately) {
  Fabric fab(Topology(2, 2, 1), CostModel::zero());
  const std::uint64_t before = tram::util::now_ns();
  const std::uint64_t arrival = fab.send(make_packet(0, 3));
  EXPECT_GE(arrival, before);
  auto got = fab.ingress(3).try_pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src_proc, 0);
  EXPECT_LE(got->arrival_ns, tram::util::now_ns());
}

TEST(Fabric, CountsMessagesAndBytes) {
  Fabric fab(Topology(2, 1, 1), CostModel::zero());
  fab.send(make_packet(0, 1, 100));
  fab.send(make_packet(0, 1, 200));
  fab.send(make_packet(1, 0, 50));
  EXPECT_EQ(fab.total_messages_sent(), 3u);
  // wire_bytes adds the fixed header charge.
  EXPECT_EQ(fab.total_bytes_sent(),
            100 + 200 + 50 + 3 * Packet::kHeaderBytes);
  EXPECT_EQ(fab.counters(0).messages_sent.load(), 2u);
  EXPECT_EQ(fab.counters(1).messages_sent.load(), 1u);
}

TEST(Fabric, InFlightTracksPushedMinusReceived) {
  Fabric fab(Topology(2, 1, 1), CostModel::zero());
  EXPECT_EQ(fab.in_flight(), 0u);
  fab.send(make_packet(0, 1));
  fab.send(make_packet(0, 1));
  EXPECT_EQ(fab.in_flight(), 2u);
  auto p = fab.ingress(1).try_pop();
  ASSERT_TRUE(p.has_value());
  // Popping alone is not receipt: the receiver must acknowledge, so
  // reorder-heap residents still count as in flight.
  EXPECT_EQ(fab.in_flight(), 2u);
  fab.note_received(1, *p);
  EXPECT_EQ(fab.in_flight(), 1u);
  p = fab.ingress(1).try_pop();
  fab.note_received(1, *p);
  EXPECT_EQ(fab.in_flight(), 0u);
  EXPECT_EQ(fab.counters(1).messages_received.load(), 2u);
}

TEST(Fabric, RemoteArrivalRespectsAlpha) {
  CostModel m = CostModel::zero();
  m.alpha_remote_ns = 50'000;
  Fabric fab(Topology(2, 1, 1), m);
  const std::uint64_t before = tram::util::now_ns();
  const std::uint64_t arrival = fab.send(make_packet(0, 1));
  EXPECT_GE(arrival, before + 50'000);
}

TEST(Fabric, SameNodeSkipsNicAndUsesLocalAlpha) {
  CostModel m = CostModel::zero();
  m.alpha_remote_ns = 1'000'000;
  m.alpha_local_ns = 1'000;
  Fabric fab(Topology(1, 2, 1), m);  // both procs on one node
  const std::uint64_t before = tram::util::now_ns();
  const std::uint64_t arrival = fab.send(make_packet(0, 1));
  EXPECT_GE(arrival, before + 1'000);
  EXPECT_LT(arrival, before + 500'000);  // got local, not remote, alpha
  EXPECT_EQ(fab.counters(0).local_messages_sent.load(), 1u);
}

TEST(Fabric, InjectionSerializesPerSourceNode) {
  CostModel m = CostModel::zero();
  m.inject_ns = 10'000;
  m.alpha_remote_ns = 0;
  Fabric fab(Topology(2, 1, 1), m);
  // Back-to-back sends from one node must each wait for the previous
  // injection: arrivals at least inject_ns apart.
  std::vector<std::uint64_t> arrivals;
  for (int i = 0; i < 5; ++i) {
    arrivals.push_back(fab.send(make_packet(0, 1, 0)));
  }
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], arrivals[i - 1] + 10'000);
  }
}

TEST(Fabric, LinkContentionSerializesPerDestinationNode) {
  CostModel m = CostModel::zero();
  m.link_per_msg_ns = 10'000;
  Fabric fab(Topology(3, 1, 1), m);
  // Two sources converging on one destination node share its ingress
  // link: the second arrival queues behind the first's occupancy.
  std::vector<std::uint64_t> arrivals;
  arrivals.push_back(fab.send(make_packet(0, 2, 0)));
  arrivals.push_back(fab.send(make_packet(1, 2, 0)));
  EXPECT_GE(arrivals[1], arrivals[0] + 10'000);
  EXPECT_EQ(fab.link_busy_ns(), 20'000u);
  EXPECT_GT(fab.max_link_queue_ns(), 0u);
  // Distinct destination nodes have distinct links: no queueing.
  const std::uint64_t before = tram::util::now_ns();
  const std::uint64_t other = fab.send(make_packet(0, 1, 0));
  EXPECT_LT(other, before + 20'000);
}

TEST(Fabric, LinkContentionOffLeavesCountersZero) {
  CostModel m = CostModel::zero();
  m.inject_ns = 1'000;
  Fabric fab(Topology(2, 1, 1), m);
  EXPECT_FALSE(m.link_contention());
  fab.send(make_packet(0, 1));
  fab.send(make_packet(1, 0));
  EXPECT_EQ(fab.link_busy_ns(), 0u);
  EXPECT_EQ(fab.max_link_queue_ns(), 0u);
}

TEST(Fabric, LinkContentionChargesPerByte) {
  CostModel m = CostModel::zero();
  m.link_per_byte_ns = 2.0;
  Fabric fab(Topology(2, 1, 1), m);
  fab.send(make_packet(0, 1, 100));
  const std::size_t wire = 100 + Packet::kHeaderBytes;
  EXPECT_EQ(fab.link_busy_ns(), 2u * wire);
}

TEST(Fabric, ResetClearsLinkClocks) {
  CostModel m = CostModel::zero();
  m.link_per_msg_ns = 1'000'000;
  Fabric fab(Topology(2, 1, 1), m);
  fab.send(make_packet(0, 1));
  fab.send(make_packet(1, 0));
  fab.reset();
  EXPECT_EQ(fab.link_busy_ns(), 0u);
  EXPECT_EQ(fab.max_link_queue_ns(), 0u);
  // A fresh send after reset pays only its own occupancy, not the old
  // clock's backlog.
  const std::uint64_t before = tram::util::now_ns();
  const std::uint64_t arrival = fab.send(make_packet(0, 1));
  EXPECT_LT(arrival, before + 3'000'000);
}

TEST(Fabric, RejectsBadDestination) {
  Fabric fab(Topology(1, 2, 1), CostModel::zero());
  EXPECT_THROW(fab.send(make_packet(0, 7)), std::out_of_range);
  EXPECT_THROW(fab.send(make_packet(0, -1)), std::out_of_range);
}

TEST(Fabric, ResetClearsCountersAndClocks) {
  CostModel m = CostModel::zero();
  m.inject_ns = 1'000'000;
  Fabric fab(Topology(2, 1, 1), m);
  fab.send(make_packet(0, 1));
  auto p = fab.ingress(1).try_pop();
  fab.note_received(1, *p);
  fab.reset();
  EXPECT_EQ(fab.total_messages_sent(), 0u);
  EXPECT_EQ(fab.total_bytes_sent(), 0u);
  EXPECT_EQ(fab.counters(1).messages_received.load(), 0u);
}

TEST(Fabric, ExpeditedOrderedFirstAmongEqualArrivals) {
  tram::net::PacketLater later;
  Packet a, b;
  a.arrival_ns = 100;
  a.expedited = false;
  b.arrival_ns = 100;
  b.expedited = true;
  // In a max-heap with this comparator, b (expedited) comes out first.
  EXPECT_TRUE(later(a, b));
  EXPECT_FALSE(later(b, a));
  a.arrival_ns = 50;
  EXPECT_TRUE(later(b, a));  // earlier arrival still wins
}

}  // namespace
