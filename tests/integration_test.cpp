/// Cross-module integration tests: realistic cost models, tiny egress
/// rings (backpressure stress — regression territory for the message-loss
/// bug), machine reuse across heterogeneous apps, and a mixed workload
/// running two different applications' domains on one machine.

#include <gtest/gtest.h>

#include <atomic>

#include "apps/histogram.hpp"
#include "apps/index_gather.hpp"
#include "apps/pingack.hpp"
#include "apps/sssp.hpp"
#include "core/tram.hpp"
#include "graph/generator.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace tram;

rt::RuntimeConfig realistic_cfg() {
  rt::RuntimeConfig cfg;  // delta-like alpha/beta, real comm costs
  cfg.comm_per_msg_send_ns = 500;
  cfg.comm_per_msg_recv_ns = 500;
  return cfg;
}

TEST(Integration, HistogramAllSchemesWithRealDelays) {
  for (const auto scheme : core::all_schemes()) {
    rt::Machine m(util::Topology(2, 2, 2), realistic_cfg());
    apps::HistogramParams p;
    p.updates_per_worker = 10'000;
    p.tram.scheme = scheme;
    p.tram.buffer_items = 256;
    apps::HistogramApp app(m, p);
    const auto res = app.run();
    EXPECT_TRUE(res.verified) << core::to_string(scheme);
  }
}

/// Regression: a 2-slot egress ring forces constant backpressure in
/// Worker::send. Before the SpscRing try_push fix, retried pushes shipped
/// moved-from (empty) messages and items vanished silently.
TEST(Integration, TinyEgressRingLosesNothing) {
  for (const auto scheme :
       {core::Scheme::WW, core::Scheme::WPs, core::Scheme::PP}) {
    auto cfg = rt::RuntimeConfig::testing();
    cfg.egress_ring_capacity = 2;
    rt::Machine m(util::Topology(2, 2, 2), cfg);
    apps::HistogramParams p;
    p.updates_per_worker = 20'000;
    p.tram.scheme = scheme;
    p.tram.buffer_items = 16;  // many small messages
    apps::HistogramApp app(m, p);
    const auto res = app.run();
    EXPECT_TRUE(res.verified) << core::to_string(scheme);
    EXPECT_EQ(res.table_total, 8u * 20'000u);
  }
}

TEST(Integration, IndexGatherUnderCommThreadPressure) {
  auto cfg = realistic_cfg();
  cfg.comm_per_msg_send_ns = 2'000;  // comm thread clearly the bottleneck
  cfg.comm_per_msg_recv_ns = 2'000;
  rt::Machine m(util::Topology(2, 1, 4), cfg);
  apps::IgParams p;
  p.requests_per_worker = 5'000;
  p.tram.scheme = core::Scheme::PP;
  p.tram.buffer_items = 128;
  apps::IndexGatherApp app(m, p);
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
}

TEST(Integration, SsspOnRmatWithRealDelays) {
  graph::GeneratorParams gp;
  gp.num_vertices = 10'000;
  gp.avg_degree = 8.0;
  const graph::Csr g = graph::build_rmat(gp);
  rt::Machine m(util::Topology(2, 2, 2), realistic_cfg());
  apps::SsspParams p;
  p.graph = &g;
  p.tram.scheme = core::Scheme::WPs;
  p.tram.buffer_items = 128;
  p.delta = 16;
  apps::SsspApp app(m, p);
  EXPECT_TRUE(app.run().verified);
}

TEST(Integration, TwoAppsShareOneMachineSequentially) {
  // One machine, one endpoint registry: an IG app and a histogram app
  // register domains side by side and run back to back.
  rt::Machine m(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  apps::HistogramParams hp;
  hp.updates_per_worker = 3'000;
  hp.tram.scheme = core::Scheme::PP;
  hp.tram.buffer_items = 64;
  apps::HistogramApp histo(m, hp);
  apps::IgParams ip;
  ip.requests_per_worker = 3'000;
  ip.tram.scheme = core::Scheme::PP;
  ip.tram.buffer_items = 64;
  apps::IndexGatherApp ig(m, ip);

  for (int round = 0; round < 2; ++round) {
    EXPECT_TRUE(histo.run().verified) << "round " << round;
    EXPECT_TRUE(ig.run().verified) << "round " << round;
  }
}

TEST(Integration, PingAckTimesAreOrderedByCommCost) {
  // Doubling the comm-thread per-message cost must not make PingAck
  // faster (monotonicity sanity of the cost injection).
  auto run_with = [&](double cost) {
    auto cfg = realistic_cfg();
    cfg.comm_per_msg_send_ns = cost;
    cfg.comm_per_msg_recv_ns = cost;
    rt::Machine m(util::Topology(2, 1, 4), cfg);
    apps::PingAckApp app(m);
    apps::PingAckParams p;
    p.messages_per_worker = 2'000;
    return app.run(p).total_s;
  };
  const double cheap = run_with(100);
  const double expensive = run_with(4'000);
  EXPECT_LT(cheap, expensive);
}

TEST(Integration, ManyDomainsOnOneMachine) {
  // Eight PP domains at once: shared-store keys must stay distinct.
  rt::Machine m(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  core::TramConfig cfg;
  cfg.scheme = core::Scheme::PP;
  cfg.buffer_items = 16;
  std::vector<std::unique_ptr<core::TramDomain<std::uint64_t>>> domains;
  std::atomic<std::uint64_t> delivered{0};
  for (int d = 0; d < 8; ++d) {
    domains.push_back(std::make_unique<core::TramDomain<std::uint64_t>>(
        m, cfg,
        [&](rt::Worker&, const std::uint64_t&) { delivered++; }));
  }
  const int W = m.topology().workers();
  m.run([&](rt::Worker& w) {
    for (auto& d : domains) {
      auto& h = d->on(w);
      for (int i = 0; i < 200; ++i) {
        h.insert(static_cast<WorkerId>(w.rng().below(W)), 1);
      }
      h.flush_all();
    }
  });
  EXPECT_EQ(delivered.load(), 8u * W * 200u);
}

TEST(Integration, WsPSegmentsSurviveWideProcesses) {
  // 16 workers per process: segment headers index all ranks.
  rt::Machine m(util::Topology(2, 1, 16), rt::RuntimeConfig::testing());
  std::atomic<std::uint64_t> delivered{0};
  core::TramConfig cfg;
  cfg.scheme = core::Scheme::WsP;
  cfg.buffer_items = 64;
  core::TramDomain<std::uint64_t> tram(
      m, cfg, [&](rt::Worker&, const std::uint64_t&) { delivered++; });
  const int W = m.topology().workers();
  m.run([&](rt::Worker& w) {
    auto& h = tram.on(w);
    for (int i = 0; i < 2'000; ++i) {
      h.insert(static_cast<WorkerId>(w.rng().below(W)), 9);
    }
    h.flush_all();
  });
  EXPECT_EQ(delivered.load(), static_cast<std::uint64_t>(W) * 2'000u);
}

}  // namespace
