/// SACK / adaptive-RTO / pacing coverage for the congestion-aware
/// reliability layer (src/fault/):
///  - the SACK bitmap helpers across the RFC-1982 uint32 sequence wrap,
///    including out-of-order sequences beyond the 64-bit window;
///  - end-to-end recovery under heavy loss with SACK on and off (the
///    PR 5 head-of-line path), both bit-for-bit against a fault-free
///    reference — which also proves a retransmit arriving after SACK
///    already covered it, and a stale (duplicated) ack naming sequences
///    outside the live window, are both absorbed;
///  - fast retransmit and the RTT estimator actually engaging;
///  - window pacing never deadlocking quiescence detection: a
///    one-message window forces nearly every send through the pacing
///    queue, and the run still completes exactly-once (paced messages
///    count in in_flight(), so QD cannot fire under them).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "apps/histogram.hpp"
#include "core/scheme.hpp"
#include "core/tram_stats.hpp"
#include "fault/fault_config.hpp"
#include "fault/reliable_transport.hpp"
#include "fault/reliable_wire.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace tram;

// ---- bitmap helpers across the sequence wrap ----

TEST(SackWire, BitmapRoundTripsAcrossSeqWrap) {
  // Receiver: next expected is 2 before the wrap; out-of-order arrivals
  // straddle it on both sides.
  const std::uint32_t cum = 0xfffffffe;
  const std::set<std::uint32_t> ooo = {0xffffffff, 0x00000001, 0x00000002};
  const std::uint64_t bits = fault::build_sack_bitmap(cum, ooo);
  // Offsets from cum+1 = 0xffffffff: 0, 2, 3.
  EXPECT_EQ(bits, (1ull << 0) | (1ull << 2) | (1ull << 3));

  // The sender decodes exactly the same sequences, in serial order.
  std::vector<std::uint32_t> decoded;
  fault::for_each_sacked(cum, bits,
                         [&](std::uint32_t s) { decoded.push_back(s); });
  EXPECT_EQ(decoded, (std::vector<std::uint32_t>{0xffffffff, 0x00000001,
                                                 0x00000002}));
}

TEST(SackWire, SequencesBeyondTheWindowAreNotReported) {
  const std::uint32_t cum = 100;
  // 101..164 are representable (offsets 0..63); 165 and far-future
  // sequences are not — and sequences at/before cum never set a bit
  // (their wrapped offset lands far outside the 64-bit window).
  const std::set<std::uint32_t> ooo = {101, 164, 165, 5000, 100, 50};
  const std::uint64_t bits = fault::build_sack_bitmap(cum, ooo);
  EXPECT_EQ(bits, (1ull << 0) | (1ull << 63));
}

TEST(SackWire, HeaderCarriesSackBitmap) {
  fault::ReliableHeader h;
  h.seq = 7;
  h.ack = 3;
  h.sack = 0xdeadbeefcafef00dull;
  std::array<std::byte, sizeof h> buf{};
  std::memcpy(buf.data(), &h, sizeof h);
  const auto parsed = fault::parse_reliable_header(
      std::span<const std::byte>(buf.data(), buf.size()));
  EXPECT_EQ(parsed.sack, 0xdeadbeefcafef00dull);
  EXPECT_EQ(fault::ReliableHeader::kSackBits, 64u);
}

// ---- end-to-end: heavy loss, SACK on and off ----

apps::HistogramParams histogram_params() {
  apps::HistogramParams p;
  p.updates_per_worker = 1500;
  p.bins_per_worker = 256;
  p.progress_interval = 64;
  p.tram.scheme = core::Scheme::WsP;
  p.tram.buffer_items = 64;
  return p;
}

std::vector<std::vector<std::uint64_t>> reference_tables(
    const util::Topology& topo) {
  rt::RuntimeConfig cfg = rt::RuntimeConfig::inline_testing();
  cfg.dedicated_comm = false;
  rt::Machine machine(topo, cfg);
  apps::HistogramApp app(machine, histogram_params());
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
  std::vector<std::vector<std::uint64_t>> ref;
  for (WorkerId w = 0; w < topo.workers(); ++w) {
    ref.push_back(app.table_slice(w));
  }
  return ref;
}

/// Run the histogram under the given fault config and check exactly-once
/// plus bit-for-bit tables; returns the machine's fault stats.
core::FaultStats run_lossy(const util::Topology& topo,
                           const fault::FaultConfig& f,
                           const std::vector<std::vector<std::uint64_t>>& ref,
                           const std::string& what,
                           std::uint64_t* srtt_out = nullptr) {
  rt::RuntimeConfig cfg = rt::RuntimeConfig::inline_testing();
  cfg.dedicated_comm = false;
  cfg.fault = f;
  rt::Machine machine(topo, cfg);
  apps::HistogramApp app(machine, histogram_params());
  const auto res = app.run();
  EXPECT_TRUE(res.verified) << what;
  EXPECT_EQ(res.tram.items_inserted, res.tram.items_delivered) << what;
  for (WorkerId w = 0; w < topo.workers(); ++w) {
    EXPECT_EQ(app.table_slice(w), ref[static_cast<std::size_t>(w)])
        << what << " worker " << w;
  }
  // QD fired, so nothing may still be unacked, paced, or in the fabric.
  EXPECT_EQ(machine.reliability()->in_flight(), 0u) << what;
  if (srtt_out != nullptr) {
    std::uint64_t srtt = 0;
    for (ProcId s = 0; s < topo.procs(); ++s) {
      for (ProcId d = 0; d < topo.procs(); ++d) {
        if (s == d) continue;
        srtt = std::max(srtt, machine.reliability()->debug_srtt_ns(s, d));
      }
    }
    *srtt_out = srtt;
  }
  return machine.fault_stats();
}

/// Heavy loss with SACK: multi-loss windows recover via fast retransmit
/// (holes named by the bitmap go out before the timer), the RTT
/// estimator converges, and the result is still bit-for-bit. The same
/// run necessarily delivers retransmits for sequences SACK already
/// covered (a timer batch races the ack that settles it) — the dedup
/// window absorbs them, observable as dup_drops with dup_rate == 0.
TEST(FaultSack, HeavyLossRecoversViaFastRetransmit) {
  const util::Topology topo(8, 1, 1);
  const auto ref = reference_tables(topo);

  fault::FaultConfig f;
  f.drop_rate = 0.25;
  f.seed = 31;
  ASSERT_TRUE(f.sack);
  ASSERT_TRUE(f.adaptive_rto);
  std::uint64_t srtt = 0;
  const core::FaultStats fs =
      run_lossy(topo, f, ref, "sack heavy loss", &srtt);
  EXPECT_GE(fs.faults_injected_drop, 1u);
  EXPECT_GE(fs.retransmits, 1u);
  EXPECT_GE(fs.fast_retransmits, 1u);  // SACK recovery actually engaged
  EXPECT_GT(srtt, 0u);                 // estimator took samples
}

/// The A/B control: same loss, SACK off (cumulative-ack head-of-line
/// recovery, the PR 5 path). Still exactly-once and bit-for-bit — the
/// legacy mode stays a correct, if slower, recovery scheme.
TEST(FaultSack, HeadOfLineModeStillRecovers) {
  const util::Topology topo(8, 1, 1);
  const auto ref = reference_tables(topo);

  fault::FaultConfig f;
  f.drop_rate = 0.25;
  f.seed = 31;
  f.sack = false;
  const core::FaultStats fs = run_lossy(topo, f, ref, "hol heavy loss");
  EXPECT_GE(fs.retransmits, 1u);
  EXPECT_EQ(fs.fast_retransmits, 0u);  // no SACK, no fast path
}

/// Stale acks outside the live window: heavy duplication replays old
/// ack/sack pairs after the sender has popped past them (and after the
/// receiver's cum advanced past their seqs). Both ends must treat them
/// as no-ops — monotonic acks, idempotent SACK marks, dedup consumption.
TEST(FaultSack, StaleAcksOutsideWindowAreAbsorbed) {
  const util::Topology topo(8, 1, 1);
  const auto ref = reference_tables(topo);

  fault::FaultConfig f;
  f.drop_rate = 0.1;
  f.dup_rate = 0.3;
  f.delay_ns = 30'000;
  f.delay_rate = 0.5;  // genuine reordering against undelayed peers
  f.seed = 32;
  const core::FaultStats fs = run_lossy(topo, f, ref, "stale acks");
  EXPECT_GE(fs.dup_drops, 1u);
}

/// A one-message window forces nearly every send through the pacing
/// queue. If paced-but-unsent data were invisible to in_flight(),
/// quiescence would fire while messages sit in the queue and the run
/// would lose them — bit-for-bit failure (or a hang if the queue could
/// never drain). Completing exactly-once proves the accounting.
TEST(FaultSack, PacingNeverDeadlocksQuiescence) {
  const util::Topology topo(4, 1, 1);
  const auto ref = reference_tables(topo);

  fault::FaultConfig f;
  f.drop_rate = 0.1;
  f.seed = 33;
  f.window_init = 1;
  f.window_min = 1;
  f.window_max = 2;
  const core::FaultStats fs = run_lossy(topo, f, ref, "tiny window");
  EXPECT_GE(fs.paced_msgs, 1u);          // pacing actually engaged
  EXPECT_LE(fs.max_inflight_msgs, 2u);   // window honored
}

/// The byte cap alone paces too — and a payload larger than the cap must
/// still be admitted (one at a time), or quiescence would hang.
TEST(FaultSack, ByteWindowPacesWithoutDeadlock) {
  const util::Topology topo(4, 1, 1);
  const auto ref = reference_tables(topo);

  fault::FaultConfig f;
  f.dup_rate = 0.05;  // enable faults without loss noise
  f.seed = 34;
  f.window_bytes = 256;  // far below one framed buffer message
  const core::FaultStats fs = run_lossy(topo, f, ref, "byte window");
  EXPECT_GE(fs.paced_msgs, 1u);
}

}  // namespace
