#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "apps/index_gather.hpp"

namespace {

using namespace tram;

class IgSchemes : public ::testing::TestWithParam<core::Scheme> {};

TEST_P(IgSchemes, EveryRequestAnsweredCorrectly) {
  rt::Machine m(util::Topology(2, 2, 2), rt::RuntimeConfig::testing());
  apps::IgParams p;
  p.requests_per_worker = 4000;
  p.table_entries_per_worker = 512;
  p.tram.scheme = GetParam();
  p.tram.buffer_items = 64;
  apps::IndexGatherApp app(m, p);
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.responses, 8u * 4000u);
  EXPECT_EQ(res.wrong_values, 0u);
  // Round-trip latency recorded for every response.
  EXPECT_EQ(res.latency.count(), res.responses);
  EXPECT_GT(res.latency.mean_ns(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, IgSchemes,
                         ::testing::Values(core::Scheme::None,
                                           core::Scheme::WW,
                                           core::Scheme::WPs,
                                           core::Scheme::WsP,
                                           core::Scheme::PP),
                         [](const auto& param_info) {
                           return std::string(core::to_string(param_info.param));
                         });

TEST(IndexGather, ValueAtIsInjectiveEnough) {
  // The verification relies on value_at distinguishing nearby indices.
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_NE(apps::IndexGatherApp::value_at(i),
              apps::IndexGatherApp::value_at(i + 1));
  }
}

TEST(IndexGather, ReuseAcrossRunsIsClean) {
  rt::Machine m(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  apps::IgParams p;
  p.requests_per_worker = 2000;
  p.table_entries_per_worker = 256;
  p.tram.scheme = core::Scheme::PP;
  p.tram.buffer_items = 32;
  apps::IndexGatherApp app(m, p);
  for (int round = 0; round < 4; ++round) {
    const auto res = app.run(round + 1);
    EXPECT_TRUE(res.verified) << "round " << round;
    EXPECT_EQ(res.responses, 4u * 2000u) << "round " << round;
  }
}

TEST(IndexGather, BothDomainsAggregated) {
  rt::Machine m(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  apps::IgParams p;
  p.requests_per_worker = 3000;
  p.table_entries_per_worker = 128;
  p.tram.scheme = core::Scheme::WPs;
  p.tram.buffer_items = 64;
  apps::IndexGatherApp app(m, p);
  const auto res = app.run();
  ASSERT_TRUE(res.verified);
  // Requests and responses each flowed through aggregation: far fewer
  // messages than items in both directions.
  EXPECT_EQ(res.req_stats.items_inserted, 4u * 3000u);
  EXPECT_EQ(res.resp_stats.items_inserted, 4u * 3000u);
  EXPECT_LT(res.req_stats.msgs_shipped, res.req_stats.items_inserted / 4);
  EXPECT_LT(res.resp_stats.msgs_shipped, res.resp_stats.items_inserted / 4);
}

TEST(IndexGather, LatencyOrderingPpBelowWw) {
  // The paper's fig 12 claim at equal buffer size: PP's shared buffers
  // fill t times faster than WW's per-worker-per-destination buffers, so
  // items wait less. (None-vs-aggregated ordering is deliberately NOT
  // asserted: the paper notes aggregation can also *improve* latency by
  // unblocking the sender.)
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "wall-clock latency ordering needs real parallelism "
                    "(workers + comm threads oversubscribe this host)";
  }
  rt::RuntimeConfig cfg;  // real delta-like costs
  cfg.qd_settle_ns = 100'000;
  auto run_with = [&](core::Scheme s) {
    rt::Machine m(util::Topology(2, 2, 4), cfg);
    apps::IgParams p;
    p.requests_per_worker = 30'000;
    p.table_entries_per_worker = 1024;
    p.tram.scheme = s;
    p.tram.buffer_items = 1024;
    apps::IndexGatherApp app(m, p);
    const auto res = app.run();
    EXPECT_TRUE(res.verified);
    return res.latency.mean_ns();
  };
  const double ww_lat = run_with(core::Scheme::WW);
  const double pp_lat = run_with(core::Scheme::PP);
  EXPECT_LT(pp_lat, ww_lat);
}

}  // namespace
