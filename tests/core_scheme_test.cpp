#include <gtest/gtest.h>

#include <array>

#include "core/scheme.hpp"
#include "core/tram_stats.hpp"

namespace {

using namespace tram::core;

TEST(Scheme, ParseRoundTrips) {
  for (const Scheme s : all_schemes()) {
    const auto parsed = parse_scheme(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  for (const Scheme s : routed_schemes()) {
    const auto parsed = parse_scheme(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_EQ(parse_scheme("wps"), Scheme::WPs);
  EXPECT_EQ(parse_scheme("pp"), Scheme::PP);
  EXPECT_FALSE(parse_scheme("bogus").has_value());
  EXPECT_FALSE(parse_scheme("").has_value());
}

TEST(Scheme, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_scheme("WPS"), Scheme::WPs);
  EXPECT_EQ(parse_scheme("Wps"), Scheme::WPs);
  EXPECT_EQ(parse_scheme("wSp"), Scheme::WsP);
  EXPECT_EQ(parse_scheme("NONE"), Scheme::None);
  EXPECT_EQ(parse_scheme("mesh2d"), Scheme::Mesh2D);
  EXPECT_EQ(parse_scheme("MESH2D"), Scheme::Mesh2D);
  EXPECT_EQ(parse_scheme("Mesh3D"), Scheme::Mesh3D);
}

TEST(Scheme, Predicates) {
  EXPECT_FALSE(process_addressed(Scheme::None));
  EXPECT_FALSE(process_addressed(Scheme::WW));
  EXPECT_TRUE(process_addressed(Scheme::WPs));
  EXPECT_TRUE(process_addressed(Scheme::WsP));
  EXPECT_TRUE(process_addressed(Scheme::PP));
  EXPECT_TRUE(shares_source_buffers(Scheme::PP));
  EXPECT_FALSE(shares_source_buffers(Scheme::WPs));
  EXPECT_FALSE(is_routed(Scheme::WPs));
  EXPECT_TRUE(is_routed(Scheme::Mesh2D));
  EXPECT_TRUE(is_routed(Scheme::Mesh3D));
  EXPECT_EQ(mesh_ndims(Scheme::Mesh2D), 2);
  EXPECT_EQ(mesh_ndims(Scheme::Mesh3D), 3);
  EXPECT_EQ(mesh_ndims(Scheme::WW), 0);
}

TEST(Scheme, ListsAreConsistent) {
  EXPECT_EQ(all_schemes().size(), 5u);
  EXPECT_EQ(aggregating_schemes().size(), 4u);
  for (const Scheme s : aggregating_schemes()) {
    EXPECT_NE(s, Scheme::None);
  }
  EXPECT_EQ(routed_schemes().size(), 2u);
  for (const Scheme s : routed_schemes()) {
    EXPECT_TRUE(is_routed(s));
  }
}

/// Section III-C memory formulas, checked against hand-computed values for
/// N=4 processes, t=8 workers/proc, g=1024 items, m=24 bytes.
TEST(Formulas, BufferMemoryPerCore) {
  const std::uint64_t g = 1024, m = 24, N = 4, t = 8;
  EXPECT_EQ(buffer_bytes_per_core(Scheme::WW, g, m, N, t), g * m * N * t);
  EXPECT_EQ(buffer_bytes_per_core(Scheme::WPs, g, m, N, t), g * m * N);
  EXPECT_EQ(buffer_bytes_per_core(Scheme::WsP, g, m, N, t), g * m * N);
  EXPECT_EQ(buffer_bytes_per_core(Scheme::PP, g, m, N, t), 0u);
  EXPECT_EQ(buffer_bytes_per_core(Scheme::None, g, m, N, t), 0u);
}

TEST(Formulas, BufferMemoryPerProcess) {
  const std::uint64_t g = 1024, m = 24, N = 4, t = 8;
  EXPECT_EQ(buffer_bytes_per_process(Scheme::WW, g, m, N, t),
            g * m * N * t * t);
  EXPECT_EQ(buffer_bytes_per_process(Scheme::WPs, g, m, N, t), g * m * N * t);
  EXPECT_EQ(buffer_bytes_per_process(Scheme::PP, g, m, N, t), g * m * N);
}

TEST(Formulas, MemoryOrderingAcrossSchemes) {
  // The paper's motivation: per-process footprint PP < WPs/WsP < WW for
  // any t > 1.
  const std::uint64_t g = 512, m = 16, N = 16, t = 8;
  const auto ww = buffer_bytes_per_process(Scheme::WW, g, m, N, t);
  const auto wps = buffer_bytes_per_process(Scheme::WPs, g, m, N, t);
  const auto pp = buffer_bytes_per_process(Scheme::PP, g, m, N, t);
  EXPECT_GT(ww, wps);
  EXPECT_GT(wps, pp);
  EXPECT_EQ(ww / wps, t);
  EXPECT_EQ(wps / pp, t);
}

TEST(Formulas, MessageBounds) {
  const std::uint64_t z = 100'000, g = 1024, N = 8, t = 4;
  const auto ww = messages_per_source(Scheme::WW, z, g, N, t);
  EXPECT_EQ(ww.lower, z / g);
  EXPECT_EQ(ww.upper, z / g + N * t);
  const auto wps = messages_per_source(Scheme::WPs, z, g, N, t);
  EXPECT_EQ(wps.upper, z / g + N);
  const auto wsp = messages_per_source(Scheme::WsP, z, g, N, t);
  EXPECT_EQ(wsp.upper, wps.upper);
  const auto pp = messages_per_source(Scheme::PP, z * t, g, N, t);
  EXPECT_EQ(pp.lower, z * t / g);
  EXPECT_EQ(pp.upper, z * t / g + N);
  const auto none = messages_per_source(Scheme::None, z, g, N, t);
  EXPECT_EQ(none.lower, z);
  EXPECT_EQ(none.upper, z);
}

TEST(Formulas, LongStreamBoundsConverge) {
  // For z >> g the flush term vanishes relative to z/g: all aggregating
  // schemes send essentially the same message count (paper section III-C).
  const std::uint64_t z = 1'000'000'000, g = 1024, N = 8, t = 4;
  const auto ww = messages_per_source(Scheme::WW, z, g, N, t);
  const auto wps = messages_per_source(Scheme::WPs, z, g, N, t);
  const double spread =
      static_cast<double>(ww.upper - wps.upper) /
      static_cast<double>(ww.lower);
  EXPECT_LT(spread, 1e-4);
}

TEST(Formulas, RoutedBuffersPerCore) {
  // O(d * N^(1/d)): 64 processes as 8x8 -> 15 buffers, 4x4x4 -> 10,
  // against the direct schemes' 64.
  const std::array<int, 2> dims2{8, 8};
  EXPECT_EQ(routed_buffers_per_core(dims2), 15u);
  EXPECT_EQ(routed_buffer_bytes_per_core(1024, 24, dims2),
            1024u * 24u * 15u);
  const std::array<int, 3> dims3{4, 4, 4};
  EXPECT_EQ(routed_buffers_per_core(dims3), 10u);
  // Extents of 1 contribute nothing (that dimension never mismatches).
  const std::array<int, 3> degenerate{1, 1, 7};
  EXPECT_EQ(routed_buffers_per_core(degenerate), 7u);
}

TEST(Formulas, RoutedMessageBounds) {
  // 64 processes, 2-D: up to d ships per item, flush term d * side.
  const auto mesh2d =
      messages_per_source(Scheme::Mesh2D, 100'000, 1'000, 64, 1);
  EXPECT_EQ(mesh2d.lower, 100u);
  EXPECT_EQ(mesh2d.upper, 2u * (100u + 8u));
  const auto mesh3d =
      messages_per_source(Scheme::Mesh3D, 100'000, 1'000, 64, 1);
  EXPECT_EQ(mesh3d.upper, 3u * (100u + 4u));
  // The routed flush term beats the direct one once N outgrows d*N^(1/d).
  const auto direct = messages_per_source(Scheme::WPs, 0, 1'000, 64, 1);
  EXPECT_LT(mesh2d.upper - 2u * mesh2d.lower, direct.upper);
}

TEST(WorkerTramStats, MergeAccumulates) {
  tram::core::WorkerTramStats a, b;
  a.items_inserted = 10;
  a.msgs_shipped = 2;
  a.latency.add(100);
  b.items_inserted = 5;
  b.flush_msgs = 1;
  b.latency.add(300);
  a.merge(b);
  EXPECT_EQ(a.items_inserted, 15u);
  EXPECT_EQ(a.msgs_shipped, 2u);
  EXPECT_EQ(a.flush_msgs, 1u);
  EXPECT_EQ(a.latency.count(), 2u);
  EXPECT_DOUBLE_EQ(a.latency.mean_ns(), 200.0);
}

}  // namespace
