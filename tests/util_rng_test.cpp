#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "util/rng.hpp"

namespace {

using tram::util::splitmix64;
using tram::util::Xoshiro256;

TEST(SplitMix64, DeterministicAndAdvancesState) {
  std::uint64_t s1 = 42, s2 = 42;
  const std::uint64_t a = splitmix64(s1);
  const std::uint64_t b = splitmix64(s2);
  EXPECT_EQ(a, b);
  EXPECT_NE(s1, 42u);  // state advanced
  EXPECT_NE(splitmix64(s1), a);
}

TEST(Xoshiro, DeterministicFromSeed) {
  Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  // Different seed diverges (overwhelmingly likely in 10 draws).
  bool diverged = false;
  Xoshiro256 a2(7);
  for (int i = 0; i < 10; ++i) diverged = diverged || (a2() != c());
  EXPECT_TRUE(diverged);
}

TEST(Xoshiro, ForStreamGivesIndependentStreams) {
  Xoshiro256 s0 = Xoshiro256::for_stream(1, 0);
  Xoshiro256 s1 = Xoshiro256::for_stream(1, 1);
  Xoshiro256 s0_again = Xoshiro256::for_stream(1, 0);
  EXPECT_EQ(s0(), s0_again());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0() == s1()) ++same;
  }
  EXPECT_LT(same, 2);
  // Purpose tag splits further.
  Xoshiro256 p0 = Xoshiro256::for_stream(1, 0, 0);
  Xoshiro256 p1 = Xoshiro256::for_stream(1, 0, 1);
  EXPECT_NE(p0(), p1());
}

TEST(Xoshiro, BelowStaysInBounds) {
  Xoshiro256 rng(99);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                    1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Xoshiro256 rng(123);
  constexpr std::uint64_t kBuckets = 16;
  constexpr int kDraws = 160'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.below(kBuckets)]++;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  // Chi-square with 15 dof: 99.9th percentile ~ 37.7.
  double chi2 = 0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

TEST(Xoshiro, UniformInHalfOpenUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Xoshiro, ExponentialHasRequestedMean) {
  Xoshiro256 rng(6);
  for (const double mean : {0.5, 1.0, 4.0}) {
    double sum = 0;
    constexpr int kDraws = 200'000;
    for (int i = 0; i < kDraws; ++i) {
      const double x = rng.exponential(mean);
      ASSERT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum / kDraws, mean, mean * 0.03);
  }
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  // Usable with std distributions.
  std::uniform_int_distribution<int> dist(0, 9);
  for (int i = 0; i < 100; ++i) {
    const int v = dist(rng);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
  }
}

}  // namespace
