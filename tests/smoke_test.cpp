/// End-to-end smoke tests: a small machine runs each benchmark app with
/// each scheme and the answers verify. Deeper per-module tests live in the
/// sibling *_test.cpp files.

#include <gtest/gtest.h>

#include "apps/histogram.hpp"
#include "apps/index_gather.hpp"
#include "apps/phold.hpp"
#include "apps/pingack.hpp"
#include "apps/pingpong.hpp"
#include "apps/sssp.hpp"
#include "core/tram.hpp"
#include "graph/generator.hpp"

namespace {

using namespace tram;

rt::RuntimeConfig fast_cfg() { return rt::RuntimeConfig::testing(); }

TEST(Smoke, MachineRunsEmptyMain) {
  rt::Machine m(util::Topology(2, 2, 2), fast_cfg());
  const auto res = m.run([](rt::Worker&) {});
  EXPECT_EQ(res.runtime_messages, 0u);
}

TEST(Smoke, PointToPointMessage) {
  rt::Machine m(util::Topology(2, 1, 2), fast_cfg());
  std::atomic<int> got{0};
  const EndpointId ep = m.register_endpoint(
      [&](rt::Worker&, rt::Message&& msg) {
        const auto items = rt::decode_payload<int>(msg);
        got.fetch_add(items[0]);
      });
  m.run([&](rt::Worker& w) {
    if (w.id() != 0) return;
    rt::Message msg;
    msg.endpoint = ep;
    msg.dst_worker = 3;  // remote process
    msg.src_worker = 0;
    msg.payload = rt::encode_payload<int>(41);
    w.send(std::move(msg));
  });
  EXPECT_EQ(got.load(), 41);
}

TEST(Smoke, HistogramAllSchemes) {
  for (const auto scheme : core::all_schemes()) {
    rt::Machine m(util::Topology(2, 2, 2), fast_cfg());
    apps::HistogramParams p;
    p.updates_per_worker = 2000;
    p.bins_per_worker = 512;
    p.tram.scheme = scheme;
    p.tram.buffer_items = 64;
    apps::HistogramApp app(m, p);
    const auto res = app.run();
    EXPECT_TRUE(res.verified) << "scheme " << core::to_string(scheme);
    EXPECT_EQ(res.table_total, 8u * 2000u);
  }
}

TEST(Smoke, IndexGatherWPs) {
  rt::Machine m(util::Topology(2, 2, 2), fast_cfg());
  apps::IgParams p;
  p.requests_per_worker = 1000;
  p.table_entries_per_worker = 256;
  p.tram.scheme = core::Scheme::WPs;
  p.tram.buffer_items = 32;
  apps::IndexGatherApp app(m, p);
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.latency.count(), 8u * 1000u);
}

TEST(Smoke, SsspMatchesDijkstra) {
  graph::GeneratorParams gp;
  gp.num_vertices = 2000;
  gp.avg_degree = 6.0;
  const graph::Csr g = graph::build_uniform(gp);
  rt::Machine m(util::Topology(2, 2, 2), fast_cfg());
  apps::SsspParams p;
  p.graph = &g;
  p.tram.scheme = core::Scheme::PP;
  p.tram.buffer_items = 64;
  apps::SsspApp app(m, p);
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
}

TEST(Smoke, PholdRuns) {
  rt::Machine m(util::Topology(2, 2, 2), fast_cfg());
  apps::PholdParams p;
  p.lps_per_worker = 8;
  p.init_events_per_lp = 2;
  p.end_time = 50.0;
  p.tram.scheme = core::Scheme::WPs;
  p.tram.buffer_items = 32;
  apps::PholdApp app(m, p);
  const auto res = app.run();
  EXPECT_GT(res.events_processed, 0u);
}

TEST(Smoke, PingPongAndPingAck) {
  {
    rt::Machine m(util::Topology(2, 1, 1), fast_cfg());
    apps::PingPongApp app(m);
    const auto res = app.run({.payload_bytes = 8, .iterations = 50});
    EXPECT_GE(res.one_way_us, 0.0);
  }
  {
    rt::Machine m(util::Topology(2, 2, 2), fast_cfg());
    apps::PingAckApp app(m);
    const auto res = app.run({.messages_per_worker = 200});
    EXPECT_GT(res.total_s, 0.0);
    EXPECT_GT(res.fabric_messages, 0u);
  }
}

}  // namespace
