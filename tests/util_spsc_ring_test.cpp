#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/spsc_ring.hpp"

namespace {

using tram::util::SpscRing;

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  for (int i = 0; i < 8; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, RejectsWhenFull) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size_approx(), 4u);
  EXPECT_EQ(*ring.try_pop(), 0);
  EXPECT_TRUE(ring.try_push(99));  // slot freed
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.try_push(int{next_push})) ++next_push;
    while (auto v = ring.try_pop()) {
      EXPECT_EQ(*v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_GT(next_push, 3000);
}

/// Regression for the message-loss bug: a failed try_push must leave the
/// caller's object intact so `while (!try_push(std::move(x)))` retry loops
/// do not push a moved-from shell. (The runtime lost whole aggregated
/// messages under backpressure before this was fixed.)
TEST(SpscRing, FailedPushDoesNotConsumeValue) {
  SpscRing<std::vector<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::vector<int>{1}));
  ASSERT_TRUE(ring.try_push(std::vector<int>{2}));
  std::vector<int> payload{3, 4, 5};
  EXPECT_FALSE(ring.try_push(std::move(payload)));
  // Ring full: payload must be untouched.
  EXPECT_EQ(payload.size(), 3u);
  ring.try_pop();
  EXPECT_TRUE(ring.try_push(std::move(payload)));
  ring.try_pop();
  const auto back = ring.try_pop();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 3u);
}

TEST(SpscRing, MoveOnlyFriendlyRetryLoop) {
  SpscRing<std::unique_ptr<int>> ring(1);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(7)));
  auto second = std::make_unique<int>(8);
  EXPECT_FALSE(ring.try_push(std::move(second)));
  ASSERT_NE(second, nullptr);  // still ours
  EXPECT_EQ(**ring.try_pop(), 7);
  EXPECT_TRUE(ring.try_push(std::move(second)));
  EXPECT_EQ(**ring.try_pop(), 8);
}

TEST(SpscRing, TwoThreadStressPreservesEveryElement) {
  constexpr std::uint64_t kCount = 2'000'000;
  SpscRing<std::uint64_t> ring(256);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(std::uint64_t{i})) {
      }
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);  // strict FIFO, nothing lost or duplicated
      ++expected;
    }
  }
  producer.join();
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, StressWithBackpressureAndPayloads) {
  // Vectors exercise the move path; tiny capacity forces constant
  // backpressure retries (the regression's trigger).
  constexpr int kCount = 100'000;
  SpscRing<std::vector<int>> ring(4);
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      std::vector<int> v{i, i + 1, i + 2};
      while (!ring.try_push(std::move(v))) {
      }
    }
  });
  int seen = 0;
  while (seen < kCount) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(v->size(), 3u) << "lost payload at element " << seen;
      ASSERT_EQ((*v)[0], seen);
      ++seen;
    }
  }
  producer.join();
}

}  // namespace
