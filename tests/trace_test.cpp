/// Trace core (src/trace/): ring wrap + drop accounting, cross-thread
/// merge ordering, Chrome trace-event JSON structural validity, and
/// schedule-determinism of the recorded sequences under DebugScheduler.
/// Runs in the TSan CI job: the recording path, the counter sampler, and
/// a traced machine run are all exercised under the race detector.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/machine.hpp"
#include "trace/trace.hpp"
#include "util/sync.hpp"

namespace {

using namespace tram;

#if TRAM_TRACE

/// Every test owns the (process-global) trace state: wipe on entry and
/// leave recording disabled on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::clear();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::clear();
    trace::set_ring_capacity(8192);  // restore the default for neighbors
  }
};

TEST_F(TraceTest, RingWrapsAndCountsDrops) {
  trace::set_ring_capacity(8);
  trace::set_enabled(true);
  trace::set_thread_name("wrap");
  for (std::uint64_t i = 0; i < 20; ++i) {
    trace::instant(trace::Cat::kRuntime, trace::kQdRound, i);
  }
  trace::set_enabled(false);

  const auto rings = trace::snapshot_rings();
  const trace::RingSnapshot* wrap = nullptr;
  for (const auto& r : rings) {
    if (r.name == "wrap") wrap = &r;
  }
  ASSERT_NE(wrap, nullptr);
  // 20 events into an 8-slot ring: the newest 8 survive, 12 are dropped
  // (and counted), survivors come back oldest-first.
  ASSERT_EQ(wrap->events.size(), 8u);
  EXPECT_EQ(wrap->dropped, 12u);
  EXPECT_EQ(trace::dropped_events(), 12u);
  for (std::size_t i = 0; i < wrap->events.size(); ++i) {
    EXPECT_EQ(wrap->events[i].a0, 12 + i);
    EXPECT_LE(i == 0 ? 0 : wrap->events[i - 1].ts_ns,
              wrap->events[i].ts_ns);
  }
}

TEST_F(TraceTest, NothingRecordedWhileDisabled) {
  trace::set_thread_name("ghost");  // no-op: tracing is off
  trace::instant(trace::Cat::kRoute, trace::kShip, 1);
  trace::phase("ghost phase");
  EXPECT_TRUE(trace::snapshot_rings().empty());
  EXPECT_EQ(trace::dropped_events(), 0u);
}

TEST_F(TraceTest, MergeOrdersAcrossThreadsAndPreservesRingOrder) {
  trace::set_enabled(true);
  auto writer = [](const char* name, std::uint64_t base) {
    trace::set_thread_name(name);
    for (std::uint64_t i = 0; i < 200; ++i) {
      trace::instant(trace::Cat::kRuntime, trace::kQdRound, base + i);
    }
  };
  std::thread a(writer, "ring a", 0);
  std::thread b(writer, "ring b", 1000);
  a.join();
  b.join();
  trace::set_enabled(false);

  const auto merged = trace::merged_events();
  ASSERT_EQ(merged.size(), 400u);
  std::map<std::uint32_t, std::vector<std::uint64_t>> per_ring;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    // Global order is by timestamp...
    if (i > 0) {
      EXPECT_LE(merged[i - 1].e.ts_ns, merged[i].e.ts_ns);
    }
    per_ring[merged[i].ring].push_back(merged[i].e.a0);
  }
  // ...and within a ring the recording order survives the merge.
  ASSERT_EQ(per_ring.size(), 2u);
  for (const auto& [ring, seq] : per_ring) {
    ASSERT_EQ(seq.size(), 200u);
    for (std::size_t i = 1; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i], seq[i - 1] + 1);
    }
  }
}

/// Minimal structural JSON scan: brace/bracket balance outside strings,
/// no dangling commas. Enough to catch every way the writer could emit a
/// file json.load would reject, without a JSON library in the repo.
void expect_structurally_valid_json(const std::string& text) {
  long depth_obj = 0, depth_arr = 0;
  bool in_string = false, escaped = false;
  char prev_significant = '\0';
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        prev_significant = '"';
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}':
        --depth_obj;
        EXPECT_NE(prev_significant, ',') << "trailing comma before }";
        break;
      case '[': ++depth_arr; break;
      case ']':
        --depth_arr;
        EXPECT_NE(prev_significant, ',') << "trailing comma before ]";
        break;
      default: break;
    }
    ASSERT_GE(depth_obj, 0);
    ASSERT_GE(depth_arr, 0);
    if (!std::isspace(static_cast<unsigned char>(c))) prev_significant = c;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

TEST_F(TraceTest, TracedMachineRunWritesLoadableChromeJson) {
  trace::set_enabled(true);
  trace::set_thread_name("main");
  trace::phase("exchange");

  // A small all-to-all: enough traffic for worker-busy spans on every
  // worker track plus comm pumps, and long enough (quiescence settle)
  // for the counter sampler to land samples.
  auto cfg = rt::RuntimeConfig::testing();
  rt::Machine machine(util::Topology(2, 2, 2), cfg);
  std::atomic<std::uint64_t> sum{0};
  const EndpointId ep = machine.register_endpoint(
      [&](rt::Worker&, rt::Message&& msg) {
        sum.fetch_add(rt::decode_payload<int>(msg)[0],
                      std::memory_order_relaxed);
      });
  const int W = machine.topology().workers();
  machine.run([&](rt::Worker& w) {
    for (int i = 0; i < 32; ++i) {
      for (WorkerId dst = 0; dst < W; ++dst) {
        if (dst == w.id()) continue;
        rt::Message msg;
        msg.endpoint = ep;
        msg.dst_worker = dst;
        msg.src_worker = w.id();
        msg.payload = rt::encode_payload<int>(1);
        w.send(std::move(msg));
      }
    }
  });
  trace::set_enabled(false);
  EXPECT_EQ(sum.load(), 32u * W * (W - 1));

  const std::string path = "trace_test_machine.json";
  ASSERT_TRUE(trace::write_chrome_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::remove(path.c_str());

  expect_structurally_valid_json(text);
  // Required Chrome trace-event keys and one of each record family.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);  // "M"
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);  // spans
  EXPECT_NE(text.find("\"ph\": \"C\""), std::string::npos);  // counters
  EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);  // phase mark
  EXPECT_NE(text.find("phase: exchange"), std::string::npos);
  // One span track per worker plus the sampler's counter ring.
  for (int w = 0; w < W; ++w) {
    EXPECT_NE(text.find("worker " + std::to_string(w)), std::string::npos);
  }
  EXPECT_NE(text.find("counters"), std::string::npos);

  // The per-phase summary renders from the same merged stream.
  trace::print_phase_summary(stdout);
}

TEST_F(TraceTest, RecordedSequencesDeterministicUnderDebugScheduler) {
  // Two scheduled contenders bump a DebugSync atomic and trace every
  // observed value. The schedule is a pure function of the seed, so the
  // per-ring (id, a0) sequences must replay bit-for-bit.
  using Seq = std::map<std::string, std::vector<std::uint64_t>>;
  auto run_once = [](std::uint64_t seed) {
    trace::clear();
    trace::set_enabled(true);
    util::DebugSync::Atomic<std::uint64_t> shared{0};
    auto contender = [&](const char* name) {
      return [&, name] {
        trace::set_thread_name(name);
        for (int i = 0; i < 40; ++i) {
          const std::uint64_t seen = shared.fetch_add(1);
          trace::instant(trace::Cat::kRuntime, trace::kQdRound, seen);
        }
      };
    };
    util::DebugScheduler::run(seed,
                              {contender("ds a"), contender("ds b")});
    trace::set_enabled(false);
    Seq seq;
    for (const auto& r : trace::snapshot_rings()) {
      for (const auto& e : r.events) seq[r.name].push_back(e.a0);
    }
    return seq;
  };

  const Seq first = run_once(7);
  const Seq again = run_once(7);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first, again);
  std::uint64_t total = 0;
  for (const auto& [name, s] : first) total += s.size();
  EXPECT_EQ(total, 80u);
}

#else  // !TRAM_TRACE

TEST(TraceCompiledOut, WriterStillEmitsValidEmptyFile) {
  trace::set_enabled(true);  // records intent; captures nothing
  trace::instant(trace::Cat::kRoute, trace::kShip, 1);
  trace::phase("off");
  trace::set_enabled(false);
  EXPECT_TRUE(trace::snapshot_rings().empty());
  const std::string path = "trace_test_off.json";
  ASSERT_TRUE(trace::write_chrome_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

#endif  // TRAM_TRACE

}  // namespace
