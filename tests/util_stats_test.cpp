#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/latency_histogram.hpp"
#include "util/stats.hpp"

namespace {

using tram::util::LatencyHistogram;
using tram::util::RunningStats;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(-3.5);
  EXPECT_EQ(s.mean(), -3.5);
  EXPECT_EQ(s.min(), -3.5);
  EXPECT_EQ(s.max(), -3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(std::sin(i) * 10 + i % 7);
  RunningStats whole, left, right;
  for (std::size_t i = 0; i < data.size(); ++i) {
    whole.add(data[i]);
    (i < 300 ? left : right).add(data[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile_ns(0.5), 0.0);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
}

TEST(LatencyHistogram, ExactMeanMinMax) {
  LatencyHistogram h;
  h.add(100);
  h.add(200);
  h.add(600);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 300.0);
  EXPECT_EQ(h.min_ns(), 100u);
  EXPECT_EQ(h.max_ns(), 600u);
}

TEST(LatencyHistogram, PercentileWithinBucketError) {
  // Log bucketing with 2 sub-buckets per octave: relative error < sqrt(2).
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(1000);  // all exactly 1us
  const double p50 = h.percentile_ns(0.5);
  EXPECT_GT(p50, 1000.0 / 1.5);
  EXPECT_LT(p50, 1000.0 * 1.5);
}

TEST(LatencyHistogram, PercentileOrdering) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100'000; v += 7) h.add(v);
  const double p10 = h.percentile_ns(0.10);
  const double p50 = h.percentile_ns(0.50);
  const double p99 = h.percentile_ns(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  // Uniform distribution: p50 near 50k within bucket error.
  EXPECT_GT(p50, 50'000.0 / 1.5);
  EXPECT_LT(p50, 50'000.0 * 1.5);
  EXPECT_LE(p99, static_cast<double>(h.max_ns()) * 1.5);
}

TEST(LatencyHistogram, PercentileClampsQ) {
  LatencyHistogram h;
  h.add(5);
  EXPECT_GT(h.percentile_ns(-1.0), 0.0);
  EXPECT_GT(h.percentile_ns(2.0), 0.0);
}

TEST(LatencyHistogram, MergeMatchesCombined) {
  LatencyHistogram a, b, whole;
  for (std::uint64_t v = 1; v < 5000; v += 3) {
    a.add(v);
    whole.add(v);
  }
  for (std::uint64_t v = 10'000; v < 200'000; v += 97) {
    b.add(v);
    whole.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.mean_ns(), whole.mean_ns());
  EXPECT_EQ(a.min_ns(), whole.min_ns());
  EXPECT_EQ(a.max_ns(), whole.max_ns());
  EXPECT_DOUBLE_EQ(a.percentile_ns(0.9), whole.percentile_ns(0.9));
}

TEST(LatencyHistogram, HandlesExtremes) {
  LatencyHistogram h;
  h.add(0);
  h.add(1);
  h.add(~std::uint64_t{0});  // clamped into the last bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max_ns(), ~std::uint64_t{0});
  EXPECT_FALSE(h.to_string().empty());
}

}  // namespace
