#include <gtest/gtest.h>

#include "net/cost_model.hpp"

namespace {

using tram::net::CostModel;

TEST(CostModel, ZeroModelCostsNothing) {
  const CostModel m = CostModel::zero();
  EXPECT_EQ(m.message_ns(0, false), 0u);
  EXPECT_EQ(m.message_ns(1 << 20, false), 0u);
  EXPECT_EQ(m.message_ns(1 << 20, true), 0u);
  EXPECT_EQ(m.injection_ns(4096, false), 0u);
  EXPECT_EQ(m.wire_ns(false), 0u);
}

TEST(CostModel, AlphaDominatesSmallMessages) {
  const CostModel m = CostModel::delta_like();
  // The paper's fig 1 shape: 1B and 1KB messages cost nearly the same.
  const auto t1 = m.message_ns(1, false);
  const auto t1k = m.message_ns(1024, false);
  EXPECT_LT(static_cast<double>(t1k),
            1.2 * static_cast<double>(t1));
  // But 2MB is dominated by beta.
  const auto t2m = m.message_ns(2 << 20, false);
  EXPECT_GT(t2m, 2 * t1k);
}

TEST(CostModel, LocalCheaperThanRemote) {
  const CostModel m = CostModel::delta_like();
  EXPECT_LT(m.message_ns(64, true), m.message_ns(64, false));
  EXPECT_LT(m.wire_ns(true), m.wire_ns(false));
}

TEST(CostModel, InjectionScalesWithBytes) {
  CostModel m;
  m.inject_ns = 100;
  m.beta_remote_ns = 1.0;
  EXPECT_EQ(m.injection_ns(0, false), 100u);
  EXPECT_EQ(m.injection_ns(50, false), 150u);
}

TEST(CostModel, AggregatedSendCostFormula) {
  // Section III-C: cost(z items, b bytes, buffer g) = (z/g) alpha + beta b z.
  CostModel m;
  m.alpha_remote_ns = 1000;
  m.beta_remote_ns = 0.5;
  const double z = 10'000, b = 8;
  EXPECT_DOUBLE_EQ(m.aggregated_send_cost_ns(z, b, 1.0),
                   z * 1000 + 0.5 * 8 * z);
  EXPECT_DOUBLE_EQ(m.aggregated_send_cost_ns(z, b, 100.0),
                   (z / 100.0) * 1000 + 0.5 * 8 * z);
  // Aggregation reduces the alpha term by g, never the beta term.
  const double c1 = m.aggregated_send_cost_ns(z, b, 1);
  const double c64 = m.aggregated_send_cost_ns(z, b, 64);
  const double beta_term = 0.5 * 8 * z;
  EXPECT_GT(c1 - beta_term, 60.0 * (c64 - beta_term));
}

TEST(CostModel, MonotonicInBufferSize) {
  const CostModel m = CostModel::delta_like();
  double prev = 1e300;
  for (const double g : {1.0, 2.0, 8.0, 64.0, 1024.0, 65536.0}) {
    const double c = m.aggregated_send_cost_ns(1e6, 24, g);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

TEST(CostModel, ToStringMentionsParameters) {
  const std::string s = CostModel::delta_like().to_string();
  EXPECT_NE(s.find("alpha_remote"), std::string::npos);
  EXPECT_NE(s.find("inject"), std::string::npos);
}

}  // namespace
