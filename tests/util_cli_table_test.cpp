#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using tram::util::Cli;
using tram::util::Table;

/// Build argv from strings (argv[0] is the program name).
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    ptrs.push_back(const_cast<char*>("prog"));
    for (auto& s : storage) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(Cli, ParsesAllForms) {
  bool flag = false;
  std::int64_t num = 0;
  double d = 0;
  std::string s;
  Cli cli("test");
  cli.add_flag("verbose", &flag, "flag");
  cli.add_int("count", &num, "int");
  cli.add_double("rate", &d, "double");
  cli.add_string("name", &s, "str");
  Argv args({"--verbose", "--count", "42", "--rate=2.5", "--name=abc"});
  ASSERT_TRUE(cli.parse(args.argc(), args.argv()));
  EXPECT_TRUE(flag);
  EXPECT_EQ(num, 42);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "abc");
}

TEST(Cli, FlagExplicitValues) {
  bool flag = true;
  Cli cli("test");
  cli.add_flag("opt", &flag, "flag");
  Argv off({"--opt=false"});
  ASSERT_TRUE(cli.parse(off.argc(), off.argv()));
  EXPECT_FALSE(flag);
  Argv on({"--opt=1"});
  ASSERT_TRUE(cli.parse(on.argc(), on.argv()));
  EXPECT_TRUE(flag);
}

TEST(Cli, DimsParsesAllForms) {
  std::array<int, 3> dims{0, 0, 0};
  Cli cli("test");
  cli.add_dims("route-dims", &dims, "mesh extents");
  Argv eq({"--route-dims=8x8"});
  ASSERT_TRUE(cli.parse(eq.argc(), eq.argv()));
  EXPECT_EQ(dims, (std::array<int, 3>{8, 8, 0}));
  Argv sep({"--route-dims", "2x3x4"});
  ASSERT_TRUE(cli.parse(sep.argc(), sep.argv()));
  EXPECT_EQ(dims, (std::array<int, 3>{2, 3, 4}));
  // 'x' is case-insensitive.
  Argv upper({"--route-dims=4X16"});
  ASSERT_TRUE(cli.parse(upper.argc(), upper.argv()));
  EXPECT_EQ(dims, (std::array<int, 3>{4, 16, 0}));
}

TEST(Cli, DimsRoundTripsThroughHelpRepr) {
  // The default shown in --help round-trips through the parser (the
  // all-zero sentinel renders as "auto" and is not itself parseable —
  // it means "let the mesh auto-factor").
  std::array<int, 3> dims{2, 3, 4};
  Cli cli("test");
  cli.add_dims("route-dims", &dims, "mesh extents");
  EXPECT_NE(cli.help().find("2x3x4"), std::string::npos);
  std::array<int, 3> parsed{0, 0, 0};
  Cli cli2("test2");
  cli2.add_dims("route-dims", &parsed, "mesh extents");
  Argv args({"--route-dims=2x3x4"});
  ASSERT_TRUE(cli2.parse(args.argc(), args.argv()));
  EXPECT_EQ(parsed, dims);

  std::array<int, 3> autodims{0, 0, 0};
  Cli cli3("test3");
  cli3.add_dims("route-dims", &autodims, "mesh extents");
  EXPECT_NE(cli3.help().find("auto"), std::string::npos);
}

TEST(Cli, DimsRejectsMalformed) {
  for (const char* bad :
       {"8", "8x", "x8", "0x4", "axb", "1x2x3x4", "4x-2", "", "8x8x"}) {
    std::array<int, 3> dims{0, 0, 0};
    Cli cli("test");
    cli.add_dims("route-dims", &dims, "mesh extents");
    Argv args({std::string("--route-dims=") + bad});
    EXPECT_FALSE(cli.parse(args.argc(), args.argv())) << "'" << bad << "'";
  }
}

TEST(Cli, RejectsUnknownOption) {
  Cli cli("test");
  Argv args({"--nope"});
  EXPECT_FALSE(cli.parse(args.argc(), args.argv()));
}

TEST(Cli, RejectsBadValue) {
  std::int64_t num = 0;
  Cli cli("test");
  cli.add_int("count", &num, "int");
  Argv args({"--count", "notanumber"});
  EXPECT_FALSE(cli.parse(args.argc(), args.argv()));
}

TEST(Cli, RejectsMissingValue) {
  std::int64_t num = 0;
  Cli cli("test");
  cli.add_int("count", &num, "int");
  Argv args({"--count"});
  EXPECT_FALSE(cli.parse(args.argc(), args.argv()));
}

TEST(Cli, HelpStopsParsing) {
  Cli cli("test");
  Argv args({"--help"});
  EXPECT_FALSE(cli.parse(args.argc(), args.argv()));
  EXPECT_NE(cli.help().find("test"), std::string::npos);
}

TEST(Cli, PositionalArgumentsRejected) {
  Cli cli("test");
  Argv args({"stray"});
  EXPECT_FALSE(cli.parse(args.argc(), args.argv()));
}

TEST(Table, AlignsColumns) {
  Table t("title");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("== title =="), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Every row starts at column 0 and the value column is aligned: the
  // rendered "1" of row a is at the same column as "22"'s first char.
  const auto pos_value_hdr = t.to_string().find("value");
  const auto line_a = out.find("a ");
  ASSERT_NE(line_a, std::string::npos);
  (void)pos_value_hdr;
}

TEST(Table, CsvRoundTrip) {
  Table t("x");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, Formatting) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
}

TEST(Table, RaggedRowsDoNotCrash) {
  Table t("r");
  t.set_header({"a"});
  t.add_row({"1", "2", "3"});
  EXPECT_FALSE(t.to_string().empty());
}

}  // namespace
