#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using tram::util::Cli;
using tram::util::Table;

/// Build argv from strings (argv[0] is the program name).
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    ptrs.push_back(const_cast<char*>("prog"));
    for (auto& s : storage) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(Cli, ParsesAllForms) {
  bool flag = false;
  std::int64_t num = 0;
  double d = 0;
  std::string s;
  Cli cli("test");
  cli.add_flag("verbose", &flag, "flag");
  cli.add_int("count", &num, "int");
  cli.add_double("rate", &d, "double");
  cli.add_string("name", &s, "str");
  Argv args({"--verbose", "--count", "42", "--rate=2.5", "--name=abc"});
  ASSERT_TRUE(cli.parse(args.argc(), args.argv()));
  EXPECT_TRUE(flag);
  EXPECT_EQ(num, 42);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "abc");
}

TEST(Cli, FlagExplicitValues) {
  bool flag = true;
  Cli cli("test");
  cli.add_flag("opt", &flag, "flag");
  Argv off({"--opt=false"});
  ASSERT_TRUE(cli.parse(off.argc(), off.argv()));
  EXPECT_FALSE(flag);
  Argv on({"--opt=1"});
  ASSERT_TRUE(cli.parse(on.argc(), on.argv()));
  EXPECT_TRUE(flag);
}

TEST(Cli, RejectsUnknownOption) {
  Cli cli("test");
  Argv args({"--nope"});
  EXPECT_FALSE(cli.parse(args.argc(), args.argv()));
}

TEST(Cli, RejectsBadValue) {
  std::int64_t num = 0;
  Cli cli("test");
  cli.add_int("count", &num, "int");
  Argv args({"--count", "notanumber"});
  EXPECT_FALSE(cli.parse(args.argc(), args.argv()));
}

TEST(Cli, RejectsMissingValue) {
  std::int64_t num = 0;
  Cli cli("test");
  cli.add_int("count", &num, "int");
  Argv args({"--count"});
  EXPECT_FALSE(cli.parse(args.argc(), args.argv()));
}

TEST(Cli, HelpStopsParsing) {
  Cli cli("test");
  Argv args({"--help"});
  EXPECT_FALSE(cli.parse(args.argc(), args.argv()));
  EXPECT_NE(cli.help().find("test"), std::string::npos);
}

TEST(Cli, PositionalArgumentsRejected) {
  Cli cli("test");
  Argv args({"stray"});
  EXPECT_FALSE(cli.parse(args.argc(), args.argv()));
}

TEST(Table, AlignsColumns) {
  Table t("title");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("== title =="), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Every row starts at column 0 and the value column is aligned: the
  // rendered "1" of row a is at the same column as "22"'s first char.
  const auto pos_value_hdr = t.to_string().find("value");
  const auto line_a = out.find("a ");
  ASSERT_NE(line_a, std::string::npos);
  (void)pos_value_hdr;
}

TEST(Table, CsvRoundTrip) {
  Table t("x");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, Formatting) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
}

TEST(Table, RaggedRowsDoNotCrash) {
  Table t("r");
  t.set_header({"a"});
  t.add_row({"1", "2", "3"});
  EXPECT_FALSE(t.to_string().empty());
}

}  // namespace
