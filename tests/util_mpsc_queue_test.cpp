#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/mpsc_queue.hpp"

namespace {

using tram::util::MpscQueue;

TEST(MpscQueue, EmptyPopsNothing) {
  MpscQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.empty_approx());
  EXPECT_EQ(q.pop_count(), 0u);
}

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(int{i});
  EXPECT_FALSE(q.empty_approx());
  for (int i = 0; i < 100; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_EQ(q.pop_count(), 100u);
}

TEST(MpscQueue, DestructorReleasesPending) {
  // Leak-checked by ASan builds: destroy with elements still queued.
  auto* q = new MpscQueue<std::vector<int>>();
  for (int i = 0; i < 50; ++i) q->push(std::vector<int>(100, i));
  delete q;
}

TEST(MpscQueue, MoveOnlyElements) {
  MpscQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(5));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(MpscQueue, PerProducerFifoUnderContention) {
  // Each producer pushes an increasing sequence tagged with its id; the
  // consumer checks that every producer's elements arrive in order and
  // that nothing is lost or duplicated.
  constexpr int kProducers = 6;
  constexpr std::uint64_t kPerProducer = 200'000;
  MpscQueue<std::uint64_t> q;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.push((static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    if (auto v = q.try_pop()) {
      const auto p = static_cast<int>(*v >> 32);
      const std::uint64_t seq = *v & 0xffffffffu;
      ASSERT_LT(p, kProducers);
      ASSERT_EQ(seq, next[p]) << "producer " << p << " out of order";
      ++next[p];
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_EQ(q.pop_count(), kProducers * kPerProducer);
}

TEST(MpscQueue, ConsumerRacesProducersWithPayloads) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50'000;
  MpscQueue<std::vector<int>> q;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(std::vector<int>{p, i});
      }
    });
  }
  int received = 0;
  while (received < kProducers * kPerProducer) {
    if (auto v = q.try_pop()) {
      ASSERT_EQ(v->size(), 2u);
      ++received;
    }
  }
  for (auto& t : producers) t.join();
}

}  // namespace
