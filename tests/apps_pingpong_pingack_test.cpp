#include <gtest/gtest.h>

#include "apps/pingack.hpp"
#include "apps/pingpong.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace tram;

TEST(PingPong, RequiresTwoNodes) {
  rt::Machine m(util::Topology(1, 2, 1), rt::RuntimeConfig::testing());
  EXPECT_THROW(apps::PingPongApp{m}, std::invalid_argument);
}

TEST(PingPong, MeasuresPositiveOneWayTime) {
  rt::Machine m(util::Topology(2, 1, 1), rt::RuntimeConfig::testing());
  apps::PingPongApp app(m);
  const auto res = app.run({.payload_bytes = 64, .iterations = 100});
  EXPECT_GT(res.one_way_us, 0.0);
}

TEST(PingPong, TimeGrowsWithModeledAlpha) {
  auto run_with_alpha = [](double alpha_ns) {
    rt::RuntimeConfig cfg = rt::RuntimeConfig::testing();
    cfg.cost.alpha_remote_ns = alpha_ns;
    rt::Machine m(util::Topology(2, 1, 1), cfg);
    apps::PingPongApp app(m);
    return app.run({.payload_bytes = 8, .iterations = 100}).one_way_us;
  };
  const double fast = run_with_alpha(0.0);
  const double slow = run_with_alpha(50'000.0);
  // one-way must reflect the injected 50us alpha.
  EXPECT_GT(slow, fast + 40.0);
}

TEST(PingPong, TimeGrowsWithPayloadUnderBeta) {
  rt::RuntimeConfig cfg = rt::RuntimeConfig::testing();
  cfg.cost.beta_remote_ns = 1.0;  // 1 ns/B: 1MB costs ~1ms per direction
  rt::Machine m(util::Topology(2, 1, 1), cfg);
  apps::PingPongApp app(m);
  const double small =
      app.run({.payload_bytes = 64, .iterations = 50}).one_way_us;
  const double large =
      app.run({.payload_bytes = 1 << 20, .iterations = 50}).one_way_us;
  EXPECT_GT(large, small + 500.0);
}

TEST(PingAck, RequiresExactlyTwoNodes) {
  rt::Machine m(util::Topology(3, 1, 1), rt::RuntimeConfig::testing());
  EXPECT_THROW(apps::PingAckApp{m}, std::invalid_argument);
}

TEST(PingAck, CompletesAndCountsMessages) {
  rt::Machine m(util::Topology(2, 2, 2), rt::RuntimeConfig::testing());
  apps::PingAckApp app(m);
  const auto res = app.run({.messages_per_worker = 500});
  EXPECT_GT(res.total_s, 0.0);
  // 4 workers on node 0 send 500 remote messages each, plus 4 acks.
  EXPECT_GE(res.fabric_messages, 4u * 500u + 4u);
}

TEST(PingAck, ReusableWithDifferentCounts) {
  rt::Machine m(util::Topology(2, 1, 2), rt::RuntimeConfig::testing());
  apps::PingAckApp app(m);
  const auto a = app.run({.messages_per_worker = 100});
  const auto b = app.run({.messages_per_worker = 2000});
  EXPECT_GT(b.fabric_messages, a.fabric_messages);
}

TEST(PingAck, NonSmpMode) {
  auto cfg = rt::RuntimeConfig::testing();
  cfg.dedicated_comm = false;
  rt::Machine m(util::Topology(2, 4, 1), cfg);
  apps::PingAckApp app(m);
  const auto res = app.run({.messages_per_worker = 1000});
  EXPECT_GT(res.total_s, 0.0);
}

TEST(PingAck, SmpSlowerThanNonSmpUnderCommLoad) {
  // The paper's Fig 3 in miniature, as a regression guard: with a heavy
  // per-message comm cost, 1-proc SMP must lose to non-SMP.
  const int workers = 4;
  const int msgs = 1500;
  rt::RuntimeConfig smp = rt::RuntimeConfig::testing();
  smp.comm_per_msg_send_ns = 2'000;
  smp.comm_per_msg_recv_ns = 2'000;
  rt::Machine m_smp(util::Topology(2, 1, workers), smp);
  apps::PingAckApp app_smp(m_smp);

  rt::RuntimeConfig nonsmp = smp;
  nonsmp.dedicated_comm = false;
  rt::Machine m_non(util::Topology(2, workers, 1), nonsmp);
  apps::PingAckApp app_non(m_non);

  apps::PingAckParams params;
  params.messages_per_worker = msgs;
  const double t_smp = app_smp.run(params).total_s;
  const double t_non = app_non.run(params).total_s;
  EXPECT_GT(t_smp, t_non);
}

}  // namespace
