/// End-to-end proof for the out-of-core shuffle (src/shuffle/): for an
/// input 8x the memory budget, the merged output's CRC64 equals an
/// in-memory reference sort, the staging pool's high-water stays within
/// the budget, delivery is exactly-once, and the result is bit-identical
/// across {WsP, Mesh2D, Mesh3D} x {ModeledFabric, Inline}, across
/// repeated runs, under 5% drop + 3% dup fault injection, and through
/// the cascaded (multi-pass) merge a tighter budget forces.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "io/mapped_file.hpp"
#include "runtime/machine.hpp"
#include "shuffle/merge.hpp"
#include "shuffle/partitioner.hpp"
#include "shuffle/shuffle_app.hpp"

namespace {

using namespace tram;

constexpr std::uint64_t kBudget = 32 << 10;             // 32 KiB
constexpr std::uint64_t kRecords = 16384;               // 256 KiB = 8x budget
constexpr std::uint64_t kInputBytes = kRecords * sizeof(shuffle::Record);
static_assert(kInputBytes >= 8 * kBudget);

const std::vector<core::Scheme> kSchemes = {
    core::Scheme::WsP, core::Scheme::Mesh2D, core::Scheme::Mesh3D};

struct TransportCase {
  const char* name;
  rt::TransportKind kind;
};
const std::vector<TransportCase> kTransports = {
    {"ModeledFabric", rt::TransportKind::kModeledFabric},
    {"Inline", rt::TransportKind::kInline}};

rt::RuntimeConfig shuffle_runtime(rt::TransportKind kind,
                                  const fault::FaultConfig& f = {}) {
  rt::RuntimeConfig cfg = kind == rt::TransportKind::kInline
                              ? rt::RuntimeConfig::inline_testing()
                              : rt::RuntimeConfig::testing();
  cfg.dedicated_comm = false;
  cfg.fault = f;
  return cfg;
}

/// Shared input + reference CRC, generated once for the whole suite.
class ShuffleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    input_path_ = new std::string(testing::TempDir() + "shuffle_input.bin");
    shuffle::write_random_input(*input_path_, kRecords, /*seed=*/1234);
    reference_crc_ = shuffle::reference_sort_crc(*input_path_);
  }
  static void TearDownTestSuite() {
    std::remove(input_path_->c_str());
    delete input_path_;
    input_path_ = nullptr;
  }

  static shuffle::ShuffleParams params(core::Scheme scheme,
                                       std::uint64_t budget = kBudget) {
    shuffle::ShuffleParams p;
    p.input_path = *input_path_;
    p.spill_dir = testing::TempDir();
    p.mem_budget_bytes = budget;
    p.chunk_bytes = 8 << 10;  // several chunks per source
    p.tram.scheme = scheme;
    p.tram.buffer_items = 64;
    return p;
  }

  static void expect_exact(const shuffle::ShuffleResult& res,
                           const std::string& what) {
    EXPECT_TRUE(res.verified) << what;
    EXPECT_EQ(res.records_in, kRecords) << what;
    EXPECT_EQ(res.records_out, kRecords) << what;
    EXPECT_TRUE(res.sorted) << what;
    EXPECT_EQ(res.output_crc, reference_crc_) << what;
    EXPECT_EQ(res.tram.items_delivered, kRecords) << what;
    EXPECT_EQ(res.tram.items_inserted, kRecords) << what;
    EXPECT_LE(res.staging_peak_bytes, res.budget_bytes) << what;
    // 8x the budget cannot fit in staging: spilling must have happened.
    EXPECT_GT(res.spill_bytes, 0u) << what;
    EXPECT_GT(res.spill_runs, 0u) << what;
  }

  static std::string* input_path_;
  static std::uint64_t reference_crc_;
};

std::string* ShuffleTest::input_path_ = nullptr;
std::uint64_t ShuffleTest::reference_crc_ = 0;

TEST_F(ShuffleTest, BitIdenticalAcrossSchemesAndTransports) {
  const util::Topology topo(8, 1, 1);
  for (const auto& tc : kTransports) {
    for (const auto scheme : kSchemes) {
      const std::string what =
          std::string(tc.name) + "/" + core::to_string(scheme);
      rt::Machine machine(topo, shuffle_runtime(tc.kind));
      shuffle::ShuffleApp app(machine, params(scheme));
      const auto res = app.run();
      expect_exact(res, what);
    }
  }
}

TEST_F(ShuffleTest, RepeatedRunsAreBitIdentical) {
  const util::Topology topo(8, 1, 1);
  rt::Machine machine(topo,
                      shuffle_runtime(rt::TransportKind::kModeledFabric));
  shuffle::ShuffleApp app(machine, params(core::Scheme::Mesh2D));
  const auto first = app.run();
  const auto second = app.run();
  expect_exact(first, "first run");
  expect_exact(second, "second run");
  EXPECT_EQ(first.output_crc, second.output_crc);
  EXPECT_EQ(first.spill_runs, second.spill_runs);
  EXPECT_EQ(first.records_out, second.records_out);
}

TEST_F(ShuffleTest, SortedOutputFileOnDisk) {
  const util::Topology topo(8, 1, 1);
  rt::Machine machine(topo,
                      shuffle_runtime(rt::TransportKind::kModeledFabric));
  auto p = params(core::Scheme::Mesh3D);
  p.output_path = testing::TempDir() + "shuffle_sorted_out.bin";
  shuffle::ShuffleApp app(machine, p);
  const auto res = app.run();
  expect_exact(res, "Mesh3D with output file");

  // Independently re-scan the bytes on disk: whole records, globally
  // non-decreasing, CRC matching what the app reported.
  io::MappedFile out(p.output_path);
  ASSERT_EQ(out.size(), kInputBytes);
  shuffle::Crc64 crc;
  crc.update(out.bytes());
  EXPECT_EQ(crc.value(), reference_crc_);
  const auto* recs =
      reinterpret_cast<const shuffle::Record*>(out.bytes().data());
  for (std::uint64_t i = 1; i < kRecords; ++i) {
    ASSERT_FALSE(recs[i] < recs[i - 1]) << "output unsorted at " << i;
  }
  std::remove(p.output_path.c_str());
}

TEST_F(ShuffleTest, FaultInjectionDoesNotMoveTheCrc) {
  // Satellite case: 5% drop + 3% dup under sustained streaming load. The
  // reliability layer must keep the output bit-identical to fault-free.
  fault::FaultConfig f;
  f.drop_rate = 0.05;
  f.dup_rate = 0.03;
  f.seed = 77;
  const util::Topology topo(8, 1, 1);
  for (const auto scheme : {core::Scheme::WsP, core::Scheme::Mesh2D}) {
    const std::string what =
        std::string("faulty/") + core::to_string(scheme);
    rt::Machine machine(
        topo, shuffle_runtime(rt::TransportKind::kModeledFabric, f));
    shuffle::ShuffleApp app(machine, params(scheme));
    const auto res = app.run();
    expect_exact(res, what);
    // The run must actually have been lossy — and recovered.
    const auto fs = machine.fault_stats();
    EXPECT_GE(fs.faults_injected_drop, 1u) << what;
    EXPECT_GE(fs.faults_injected_dup, 1u) << what;
    EXPECT_GE(fs.retransmits, 1u) << what;
    EXPECT_GE(fs.dup_drops, 1u) << what;
  }
}

TEST_F(ShuffleTest, TightBudgetForcesCascadedMergeAndStillVerifies) {
  // 16 KiB budget, 8 workers: slice = 1 KiB, spill fan-in cap 16, but
  // each worker accumulates ~32 runs — the cascade (multi-pass merge)
  // must engage and the result must not change.
  const util::Topology topo(8, 1, 1);
  rt::Machine machine(topo,
                      shuffle_runtime(rt::TransportKind::kModeledFabric));
  shuffle::ShuffleApp app(machine, params(core::Scheme::Mesh2D, 16 << 10));
  EXPECT_EQ(app.slice_bytes(), 1u << 10);
  const auto res = app.run();
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.output_crc, reference_crc_);
  EXPECT_LE(res.staging_peak_bytes, res.budget_bytes);
  // Cascade evidence: total spill bytes exceed the input (intermediate
  // merged runs are re-spilled) and no merge exceeded the fan-in cap + 1
  // (the in-memory tail rides the final merge).
  EXPECT_GT(res.spill_bytes, kInputBytes);
  EXPECT_LE(res.merge_fanin_max, app.slice_bytes() / 64 + 1);
}

TEST_F(ShuffleTest, BudgetBelowFloorThrows) {
  const util::Topology topo(8, 1, 1);
  rt::Machine machine(topo,
                      shuffle_runtime(rt::TransportKind::kModeledFabric));
  auto p = params(core::Scheme::WsP);
  p.mem_budget_bytes = 256;  // slice would be < 128 bytes for 8 workers
  EXPECT_THROW(shuffle::ShuffleApp(machine, p), std::runtime_error);
}

// ---- unit coverage for the pieces under the app ----

TEST(Partitioner, RangesAreContiguousOrderedAndComplete) {
  shuffle::Partitioner part(8);
  EXPECT_EQ(part.owner(0), 0);
  EXPECT_EQ(part.owner(~0ull), 7);
  // Owners are non-decreasing in the key: range partitioning, so sorted
  // per-owner outputs concatenate to a globally sorted stream.
  std::uint64_t state = 5;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = util::splitmix64(state);
    const std::uint64_t b = util::splitmix64(state);
    const auto lo = a < b ? a : b, hi = a < b ? b : a;
    EXPECT_LE(part.owner(lo), part.owner(hi));
    EXPECT_LT(part.owner(a), 8);
  }
}

TEST(LoserTree, MergesManyRunsWithTieBreakStability) {
  // 7 sorted runs with heavy key duplication; the merged order must be
  // the exact multiset sort by (key, payload).
  std::vector<std::vector<shuffle::Record>> runs(7);
  std::vector<shuffle::Record> all;
  std::uint64_t state = 99;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (int i = 0; i < 200; ++i) {
      const shuffle::Record rec{util::splitmix64(state) % 64,
                                util::splitmix64(state)};
      runs[r].push_back(rec);
      all.push_back(rec);
    }
    std::sort(runs[r].begin(), runs[r].end());
  }
  std::sort(all.begin(), all.end());

  std::vector<shuffle::MemoryRunCursor> cursors;
  for (const auto& r : runs) cursors.emplace_back(std::span(r));
  shuffle::LoserTree<shuffle::MemoryRunCursor> tree(std::move(cursors));
  std::size_t i = 0;
  for (const auto* rec = tree.pop(); rec != nullptr; rec = tree.pop()) {
    ASSERT_LT(i, all.size());
    EXPECT_EQ(*rec, all[i]) << "at " << i;
    ++i;
  }
  EXPECT_EQ(i, all.size());
}

TEST(LoserTree, DegenerateShapes) {
  {
    shuffle::LoserTree<shuffle::MemoryRunCursor> empty({});
    EXPECT_EQ(empty.pop(), nullptr);
  }
  {
    const std::vector<shuffle::Record> one = {{3, 1}, {5, 2}};
    std::vector<shuffle::MemoryRunCursor> c;
    c.emplace_back(std::span(one));
    shuffle::LoserTree<shuffle::MemoryRunCursor> tree(std::move(c));
    EXPECT_EQ(tree.pop()->key, 3u);
    EXPECT_EQ(tree.pop()->key, 5u);
    EXPECT_EQ(tree.pop(), nullptr);
    EXPECT_EQ(tree.pop(), nullptr);  // stays exhausted
  }
}

TEST(Crc64, KnownVectorAndStreamingEquivalence) {
  // ECMA-182 reflected CRC64 ("CRC-64/XZ") of "123456789".
  const char* digits = "123456789";
  shuffle::Crc64 whole;
  whole.update(std::as_bytes(std::span(digits, 9)));
  EXPECT_EQ(whole.value(), 0x995dc9bbdf1939faull);

  shuffle::Crc64 split;
  split.update(std::as_bytes(std::span(digits, 4)));
  split.update(std::as_bytes(std::span(digits + 4, 5)));
  EXPECT_EQ(split.value(), whole.value());
}

}  // namespace
