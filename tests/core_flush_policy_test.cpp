/// Flush-policy tests: flush-on-idle (the latency bound for irregular
/// apps), the timeout flush, and expedited plumbing.

#include <gtest/gtest.h>

#include <atomic>

#include "core/tram.hpp"
#include "runtime/machine.hpp"
#include "util/timebase.hpp"

namespace {

using namespace tram;
using core::Scheme;
using core::TramConfig;
using core::TramDomain;
using rt::Machine;
using rt::RuntimeConfig;
using rt::Worker;
using util::Topology;

TEST(FlushPolicy, IdleFlushDrainsWithoutExplicitFlush) {
  // No explicit flush anywhere: buffered items must still arrive, because
  // idle workers flush — and QD must not fire before they do.
  Machine m(Topology(2, 2, 2), RuntimeConfig::testing());
  const int W = m.topology().workers();
  std::atomic<std::uint64_t> delivered{0};
  TramConfig cfg;
  cfg.scheme = Scheme::WPs;
  cfg.buffer_items = 1 << 20;  // never fills: idle flush is the only path
  cfg.flush_on_idle = true;
  TramDomain<std::uint64_t> tram(
      m, cfg, [&](Worker&, const std::uint64_t&) { delivered++; });
  m.run([&](Worker& w) {
    auto& h = tram.on(w);
    for (int i = 0; i < 500; ++i) {
      h.insert(static_cast<WorkerId>(w.rng().below(W)), 1);
    }
    // NOTE: no flush_all() here, deliberately.
  });
  EXPECT_EQ(delivered.load(), static_cast<std::uint64_t>(W) * 500);
}

TEST(FlushPolicy, TimeoutFlushShipsDuringBusyLoops) {
  // Worker 0 inserts a trickle into a huge buffer while staying busy (so
  // idle hooks never run during the loop); the timeout path must ship.
  Machine m(Topology(2, 1, 1), RuntimeConfig::testing());
  std::atomic<std::uint64_t> delivered{0};
  TramConfig cfg;
  cfg.scheme = Scheme::WW;
  cfg.buffer_items = 1 << 20;
  cfg.flush_on_idle = false;
  cfg.flush_timeout_ns = 1'000'000;  // 1ms
  TramDomain<std::uint64_t> tram(
      m, cfg, [&](Worker&, const std::uint64_t&) { delivered++; });
  std::atomic<bool> saw_mid_loop_delivery{false};
  m.run([&](Worker& w) {
    if (w.id() != 0) {
      // Receiver just schedules; nothing to do in main.
      return;
    }
    auto& h = tram.on(w);
    const std::uint64_t t0 = util::now_ns();
    std::uint64_t inserted = 0;
    // Busy loop for ~30ms, inserting steadily. The timeout check runs
    // every 1024 inserts, so insert well past that.
    while (util::now_ns() - t0 < 30'000'000) {
      h.insert(1, 1);
      ++inserted;
      if (delivered.load() > 0) saw_mid_loop_delivery = true;
    }
    h.flush_all();
  });
  EXPECT_TRUE(saw_mid_loop_delivery.load())
      << "timeout flush never shipped during the busy loop";
}

TEST(FlushPolicy, ExpeditedFlagPlumbsThroughToMessages) {
  // With expedited off, tram messages take the ordinary inbox; we can't
  // observe the inbox directly, but both settings must deliver everything
  // (plumbing regression guard).
  for (const bool expedited : {false, true}) {
    Machine m(Topology(2, 1, 2), RuntimeConfig::testing());
    const int W = m.topology().workers();
    std::atomic<std::uint64_t> delivered{0};
    TramConfig cfg;
    cfg.scheme = Scheme::PP;
    cfg.buffer_items = 32;
    cfg.expedited = expedited;
    TramDomain<std::uint64_t> tram(
        m, cfg, [&](Worker&, const std::uint64_t&) { delivered++; });
    m.run([&](Worker& w) {
      auto& h = tram.on(w);
      for (int i = 0; i < 1000; ++i) {
        h.insert(static_cast<WorkerId>(w.rng().below(W)), 1);
      }
      h.flush_all();
    });
    EXPECT_EQ(delivered.load(), static_cast<std::uint64_t>(W) * 1000)
        << "expedited=" << expedited;
  }
}

TEST(FlushPolicy, FlushAllIsIdempotent) {
  Machine m(Topology(1, 1, 2), RuntimeConfig::testing());
  std::atomic<std::uint64_t> delivered{0};
  TramConfig cfg;
  cfg.scheme = Scheme::WPs;
  cfg.buffer_items = 100;
  TramDomain<std::uint64_t> tram(
      m, cfg, [&](Worker&, const std::uint64_t&) { delivered++; });
  m.run([&](Worker& w) {
    auto& h = tram.on(w);
    h.insert((w.id() + 1) % 2, 1);
    h.flush_all();
    h.flush_all();  // nothing left: must not ship empty messages
    h.flush_all();
  });
  EXPECT_EQ(delivered.load(), 2u);
  // Exactly one flush message per worker, not three.
  EXPECT_EQ(tram.aggregate_stats().flush_msgs, 2u);
}

}  // namespace
