/// \file pdes_phold.cpp
/// \brief Optimistic PDES scenario: PHOLD with scheme comparison.
///
/// Runs the synthetic PHOLD benchmark (paper section III-D) once per
/// aggregation scheme and prints the out-of-order event rate — the proxy
/// for rollback pressure in an optimistic simulator. Lower-latency
/// aggregation => fewer events arrive behind their LP's clock => fewer
/// would-be rollbacks.
///
///   ./pdes_phold --lps 128 --end-time 200 --buffer 256

#include <cstdio>

#include "apps/phold.hpp"
#include "runtime/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace tram;

int main(int argc, char** argv) {
  std::int64_t lps = 128;
  std::int64_t buffer = 256;
  double end_time = 200.0;
  double remote_prob = 0.5;
  util::Cli cli("pdes_phold: PHOLD out-of-order rate per scheme");
  cli.add_int("lps", &lps, "logical processes per worker PE");
  cli.add_int("buffer", &buffer, "aggregation buffer size");
  cli.add_double("end-time", &end_time, "virtual end time");
  cli.add_double("remote-prob", &remote_prob,
                 "probability an event targets a remote LP");
  if (!cli.parse(argc, argv)) return 0;

  util::Table table("PHOLD: out-of-order (would-be rollback) events");
  table.set_header({"scheme", "events", "out-of-order", "%", "wall ms"});

  for (const auto scheme : core::all_schemes()) {
    rt::Machine machine(util::Topology(2, 1, 8), rt::RuntimeConfig{});
    apps::PholdParams params;
    params.lps_per_worker = static_cast<int>(lps);
    params.init_events_per_lp = 1;
    params.lookahead = 1.0;
    params.remote_prob = remote_prob;
    params.end_time = end_time;
    params.tram.scheme = scheme;
    params.tram.buffer_items = static_cast<std::uint32_t>(buffer);
    apps::PholdApp app(machine, params);
    const auto res = app.run();
    table.add_row({core::to_string(scheme),
                   util::Table::fmt_int(
                       static_cast<long long>(res.events_processed)),
                   util::Table::fmt_int(
                       static_cast<long long>(res.ooo_events)),
                   util::Table::fmt(res.ooo_pct, 2),
                   util::Table::fmt(res.run.wall_s * 1e3, 1)});
  }
  table.print();
  std::printf(
      "\nReading the table: None has the lowest latency and the highest\n"
      "message cost; PP aggregates with the lowest latency among the\n"
      "aggregating schemes, so its out-of-order rate sits closest to None.\n");
  return 0;
}
