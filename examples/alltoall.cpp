/// \file alltoall.cpp
/// \brief All-to-all personalized exchange — the paper's other use-case
/// family (short, bounded streams where flush costs dominate).
///
/// Every worker sends `per-pair` items to every other worker, then
/// flushes. With few items per destination pair the WW scheme degenerates
/// into pure flush traffic (N*t nearly-empty messages per worker), while
/// the per-process schemes coalesce across destination workers — compare
/// the message counts this prints. The routed schemes (Mesh2D/Mesh3D)
/// coalesce further still: a worker only buffers per mesh coordinate, so
/// flush traffic shrinks from O(N) to O(d*N^(1/d)) messages at the cost
/// of multi-hop forwarding (the "fwd msgs" column).
///
///   ./alltoall --per-pair 100 --buffer 1024 [--route-dims 2x2]

#include <atomic>
#include <cstdio>

#include "core/tram.hpp"
#include "route/routed_domain.hpp"
#include "runtime/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace tram;

int main(int argc, char** argv) {
  std::int64_t per_pair = 100;
  std::int64_t buffer = 1024;
  std::array<int, 3> route_dims{0, 0, 0};
  util::Cli cli("alltoall: short personalized exchange per scheme");
  cli.add_int("per-pair", &per_pair, "items per (source, destination) pair");
  cli.add_int("buffer", &buffer, "aggregation buffer size");
  cli.add_dims("route-dims", &route_dims,
               "mesh extents for the routed schemes (AxB[xC])");
  if (!cli.parse(argc, argv)) return 0;

  util::Table table("All-to-all: items per pair = " +
                    std::to_string(per_pair));
  table.set_header({"scheme", "msgs", "flush msgs", "fwd msgs", "items/msg",
                    "wall ms", "ok"});

  auto schemes = core::all_schemes();
  for (const auto s : core::routed_schemes()) schemes.push_back(s);

  for (const auto scheme : schemes) {
    rt::Machine machine(util::Topology(2, 2, 4), rt::RuntimeConfig{});
    const int W = machine.topology().workers();
    std::atomic<std::uint64_t> received{0};

    core::TramConfig cfg;
    cfg.scheme = scheme;
    cfg.buffer_items = static_cast<std::uint32_t>(buffer);
    const auto count = [&](rt::Worker&, const std::uint64_t&) { received++; };
    std::unique_ptr<core::TramDomain<std::uint64_t>> direct;
    std::unique_ptr<route::RoutedDomain<std::uint64_t>> routed;
    if (core::is_routed(scheme)) {
      // Explicit extents only fit the 2-D mesh of this 4-process machine;
      // the 3-D mesh always auto-factors.
      if (scheme == core::Scheme::Mesh2D) cfg.route_dims = route_dims;
      routed = std::make_unique<route::RoutedDomain<std::uint64_t>>(
          machine, cfg, count);
    } else {
      direct = std::make_unique<core::TramDomain<std::uint64_t>>(
          machine, cfg, count);
    }

    const auto result = machine.run([&](rt::Worker& self) {
      for (WorkerId dest = 0; dest < W; ++dest) {
        if (dest == self.id()) continue;
        for (std::int64_t i = 0; i < per_pair; ++i) {
          if (routed) {
            routed->on(self).insert(dest, static_cast<std::uint64_t>(i));
          } else {
            direct->on(self).insert(dest, static_cast<std::uint64_t>(i));
          }
        }
        self.progress();
      }
      if (routed) {
        routed->on(self).flush_all();
      } else {
        direct->on(self).flush_all();
      }
    });

    const auto stats =
        direct ? direct->aggregate_stats() : routed->aggregate_stats();
    const std::uint64_t expected = static_cast<std::uint64_t>(W) *
                                   (W - 1) * per_pair;
    std::string name = core::to_string(scheme);
    if (routed) name += " (" + routed->mesh().to_string() + ")";
    table.add_row(
        {name,
         util::Table::fmt_int(static_cast<long long>(stats.msgs_shipped)),
         util::Table::fmt_int(static_cast<long long>(stats.flush_msgs)),
         util::Table::fmt_int(
             static_cast<long long>(stats.routed_forward_msgs)),
         util::Table::fmt(stats.occupancy_at_ship.mean(), 1),
         util::Table::fmt(result.wall_s * 1e3, 2),
         received.load() == expected ? "yes" : "NO"});
  }
  table.print();
  return 0;
}
