/// \file alltoall.cpp
/// \brief All-to-all personalized exchange — the paper's other use-case
/// family (short, bounded streams where flush costs dominate).
///
/// Every worker sends `per-pair` items to every other worker, then
/// flushes. With few items per destination pair the WW scheme degenerates
/// into pure flush traffic (N*t nearly-empty messages per worker), while
/// the per-process schemes coalesce across destination workers — compare
/// the message counts this prints.
///
///   ./alltoall --per-pair 100 --buffer 1024

#include <atomic>
#include <cstdio>

#include "core/tram.hpp"
#include "runtime/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace tram;

int main(int argc, char** argv) {
  std::int64_t per_pair = 100;
  std::int64_t buffer = 1024;
  util::Cli cli("alltoall: short personalized exchange per scheme");
  cli.add_int("per-pair", &per_pair, "items per (source, destination) pair");
  cli.add_int("buffer", &buffer, "aggregation buffer size");
  if (!cli.parse(argc, argv)) return 0;

  util::Table table("All-to-all: items per pair = " +
                    std::to_string(per_pair));
  table.set_header({"scheme", "msgs", "flush msgs", "items/msg", "wall ms",
                    "ok"});

  for (const auto scheme : core::all_schemes()) {
    rt::Machine machine(util::Topology(2, 2, 4), rt::RuntimeConfig{});
    const int W = machine.topology().workers();
    std::atomic<std::uint64_t> received{0};

    core::TramConfig cfg;
    cfg.scheme = scheme;
    cfg.buffer_items = static_cast<std::uint32_t>(buffer);
    core::TramDomain<std::uint64_t> tram(
        machine, cfg,
        [&](rt::Worker&, const std::uint64_t&) { received++; });

    const auto result = machine.run([&](rt::Worker& self) {
      auto& agg = tram.on(self);
      for (WorkerId dest = 0; dest < W; ++dest) {
        if (dest == self.id()) continue;
        for (std::int64_t i = 0; i < per_pair; ++i) {
          agg.insert(dest, static_cast<std::uint64_t>(i));
        }
        self.progress();
      }
      agg.flush_all();
    });

    const auto stats = tram.aggregate_stats();
    const std::uint64_t expected = static_cast<std::uint64_t>(W) *
                                   (W - 1) * per_pair;
    table.add_row(
        {core::to_string(scheme),
         util::Table::fmt_int(static_cast<long long>(stats.msgs_shipped)),
         util::Table::fmt_int(static_cast<long long>(stats.flush_msgs)),
         util::Table::fmt(stats.occupancy_at_ship.mean(), 1),
         util::Table::fmt(result.wall_s * 1e3, 2),
         received.load() == expected ? "yes" : "NO"});
  }
  table.print();
  return 0;
}
