/// \file quickstart.cpp
/// \brief Sixty-second tour of the TramLib public API.
///
/// We build a simulated SMP machine (2 nodes x 2 processes x 4 worker PEs),
/// create an aggregation domain for 8-byte items, and run a tiny
/// histogram-style exchange: every worker fires updates at random
/// destination workers, TramLib coalesces them per the chosen scheme, and
/// each delivered item increments a local counter.
///
///   ./quickstart --scheme WPs --buffer 512 --updates 100000
///
/// Try --scheme WW / PP / WsP / None and compare the printed message
/// counts: that difference is the whole point of the paper.

#include <cstdio>
#include <vector>

#include "core/tram.hpp"
#include "runtime/machine.hpp"
#include "util/cli.hpp"

using namespace tram;

int main(int argc, char** argv) {
  std::string scheme_name = "WPs";
  std::int64_t buffer = 512;
  std::int64_t updates = 100'000;
  util::Cli cli("quickstart: aggregate random updates through TramLib");
  cli.add_string("scheme", &scheme_name, "None|WW|WPs|WsP|PP");
  cli.add_int("buffer", &buffer, "items per aggregation buffer (g)");
  cli.add_int("updates", &updates, "updates per worker PE");
  if (!cli.parse(argc, argv)) return 0;

  const auto scheme = core::parse_scheme(scheme_name);
  if (!scheme) {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme_name.c_str());
    return 1;
  }

  // 1. A machine: 2 simulated nodes, 2 processes each, 4 worker PEs per
  //    process, with a Delta-like alpha-beta interconnect model.
  rt::Machine machine(util::Topology(2, 2, 4), rt::RuntimeConfig{});
  const int W = machine.topology().workers();

  // 2. An aggregation domain: the delivery lambda runs on the destination
  //    worker for every item, exactly like a Charm++ entry method.
  std::vector<util::Padded<std::uint64_t>> counters(W);
  core::TramConfig cfg;
  cfg.scheme = *scheme;
  cfg.buffer_items = static_cast<std::uint32_t>(buffer);
  core::TramDomain<std::uint64_t> tram(
      machine, cfg, [&](rt::Worker& w, const std::uint64_t& item) {
        counters[w.id()].value += item;
      });

  // 3. SPMD main: runs on every worker. insert() buffers the item; full
  //    buffers ship automatically; flush_all() ships the stragglers.
  const auto result = machine.run([&](rt::Worker& self) {
    auto& agg = tram.on(self);
    for (std::int64_t i = 0; i < updates; ++i) {
      const auto dest = static_cast<WorkerId>(self.rng().below(W));
      agg.insert(dest, 1);
      if (i % 64 == 0) self.progress();  // keep receiving while sending
    }
    agg.flush_all();
  });

  std::uint64_t total = 0;
  for (const auto& c : counters) total += c.value;
  const auto stats = tram.aggregate_stats();
  std::printf("scheme          : %s (buffer %lld)\n",
              core::to_string(*scheme), static_cast<long long>(buffer));
  std::printf("items delivered : %llu (expected %llu) %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(updates) * W,
              total == static_cast<std::uint64_t>(updates) * W ? "OK"
                                                               : "MISMATCH");
  std::printf("tram messages   : %llu (%.1f items/message)\n",
              static_cast<unsigned long long>(stats.msgs_shipped),
              stats.occupancy_at_ship.mean());
  std::printf("fabric messages : %llu\n",
              static_cast<unsigned long long>(result.fabric_messages));
  std::printf("wall time       : %.3f ms\n", result.wall_s * 1e3);
  return total == static_cast<std::uint64_t>(updates) * W ? 0 : 1;
}
