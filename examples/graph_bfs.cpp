/// \file graph_bfs.cpp
/// \brief Level-synchronous BFS over TramLib — the fine-grained graph
/// workload the paper's introduction motivates.
///
/// Vertices are block-partitioned over worker PEs. Each BFS level, every
/// worker scans its frontier and fires one tiny item per cross-partition
/// edge; TramLib aggregates them. The example prints per-level frontier
/// sizes and the end-to-end message statistics, and verifies the resulting
/// parent tree covers exactly the component of the source.
///
///   ./graph_bfs --vertices 200000 --degree 8 --scheme WPs

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "core/tram.hpp"
#include "graph/generator.hpp"
#include "runtime/machine.hpp"
#include "util/cli.hpp"

using namespace tram;

namespace {

struct VisitItem {
  graph::Vertex vertex;
  graph::Vertex parent;
};

struct BfsWorkerState {
  std::vector<std::uint32_t> level;        // per local vertex; ~0u = unseen
  std::vector<graph::Vertex> parent;       // discovered parent
  std::vector<graph::Vertex> frontier;     // local vertices found this level
  std::uint64_t discovered = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::int64_t vertices = 200'000;
  double degree = 8.0;
  std::string scheme_name = "WPs";
  std::int64_t buffer = 1024;
  std::int64_t seed = 42;
  bool rmat = false;
  util::Cli cli("graph_bfs: aggregated breadth-first search");
  cli.add_int("vertices", &vertices, "number of vertices");
  cli.add_double("degree", &degree, "average degree");
  cli.add_string("scheme", &scheme_name, "None|WW|WPs|WsP|PP");
  cli.add_int("buffer", &buffer, "aggregation buffer size");
  cli.add_int("seed", &seed, "graph seed");
  cli.add_flag("rmat", &rmat, "use an RMAT (power-law) graph");
  if (!cli.parse(argc, argv)) return 0;
  const auto scheme = core::parse_scheme(scheme_name);
  if (!scheme) {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme_name.c_str());
    return 1;
  }

  graph::GeneratorParams gp;
  gp.num_vertices = static_cast<graph::Vertex>(vertices);
  gp.avg_degree = degree;
  gp.seed = static_cast<std::uint64_t>(seed);
  const graph::Csr g = rmat ? graph::build_rmat(gp) : graph::build_uniform(gp);
  std::printf("graph: %u vertices, %zu edges (%s)\n", g.num_vertices(),
              g.num_edges(), rmat ? "rmat" : "uniform");

  rt::Machine machine(util::Topology(2, 2, 4), rt::RuntimeConfig{});
  const int W = machine.topology().workers();
  graph::BlockPartition part(g.num_vertices(), W);

  std::vector<util::Padded<BfsWorkerState>> state(W);
  for (int w = 0; w < W; ++w) {
    state[w].value.level.assign(part.size(w), ~0u);
    state[w].value.parent.assign(part.size(w), 0);
  }
  std::uint32_t current_level = 0;  // shared, advanced between barriers

  core::TramConfig cfg;
  cfg.scheme = *scheme;
  cfg.buffer_items = static_cast<std::uint32_t>(buffer);
  core::TramDomain<VisitItem> tram(
      machine, cfg, [&](rt::Worker& w, const VisitItem& item) {
        auto& st = state[w.id()].value;
        const auto local = item.vertex - part.begin(w.id());
        if (st.level[local] != ~0u) return;  // already discovered
        st.level[local] = current_level + 1;
        st.parent[local] = item.parent;
        st.frontier.push_back(item.vertex);
        ++st.discovered;
      });

  const graph::Vertex source = 0;
  std::atomic<std::uint64_t> next_frontier_total{0};
  std::atomic<bool> bfs_done{false};
  const auto result = machine.run([&](rt::Worker& self) {
    auto& st = state[self.id()].value;
    auto& agg = tram.on(self);
    // Seed the root.
    if (part.owner(source) == self.id()) {
      st.level[source - part.begin(self.id())] = 0;
      st.frontier.push_back(source);
      ++st.discovered;
    }
    // Level-synchronous sweep: expand, flush, drain, barrier, repeat.
    for (;;) {
      std::vector<graph::Vertex> frontier;
      frontier.swap(st.frontier);
      for (const graph::Vertex v : frontier) {
        for (const graph::Vertex nb : g.neighbors(v)) {
          const int owner = part.owner(nb);
          if (owner == self.id()) {
            const auto local = nb - part.begin(self.id());
            if (st.level[local] == ~0u) {
              st.level[local] = current_level + 1;
              st.parent[local] = v;
              st.frontier.push_back(nb);
              ++st.discovered;
            }
          } else {
            agg.insert(static_cast<WorkerId>(owner), VisitItem{nb, v});
          }
        }
        self.progress();
      }
      agg.flush_all();
      // Drain in-flight visits. After the barrier every send of this level
      // has been issued, and BFS deliveries send nothing themselves, so
      // "every runtime message handled" is an exact level-complete test.
      self.machine().barrier();
      while (self.machine().total_sent() != self.machine().total_handled()) {
        self.progress();
      }
      self.progress();
      self.machine().barrier();

      // Level bookkeeping, re-synced across workers.
      next_frontier_total += st.frontier.size();
      self.machine().barrier();
      if (self.id() == 0) {
        std::printf("level %u: frontier %llu\n", current_level + 1,
                    static_cast<unsigned long long>(
                        next_frontier_total.load()));
        bfs_done.store(next_frontier_total.load() == 0);
        next_frontier_total = 0;
        ++current_level;
      }
      self.machine().barrier();
      if (bfs_done.load()) break;
    }
  });

  // Verification: discovered set == component of source (sequential BFS).
  std::vector<char> reachable(g.num_vertices(), 0);
  std::vector<graph::Vertex> queue{source};
  reachable[source] = 1;
  std::size_t expected = 1;
  while (!queue.empty()) {
    const graph::Vertex v = queue.back();
    queue.pop_back();
    for (const graph::Vertex nb : g.neighbors(v)) {
      if (!reachable[nb]) {
        reachable[nb] = 1;
        ++expected;
        queue.push_back(nb);
      }
    }
  }
  std::uint64_t discovered = 0;
  for (const auto& s : state) discovered += s.value.discovered;

  const auto stats = tram.aggregate_stats();
  std::printf("discovered %llu vertices (component size %zu) %s\n",
              static_cast<unsigned long long>(discovered), expected,
              discovered == expected ? "OK" : "MISMATCH");
  std::printf("tram messages: %llu (%.1f items/msg), wall %.3f ms\n",
              static_cast<unsigned long long>(stats.msgs_shipped),
              stats.occupancy_at_ship.mean(), result.wall_s * 1e3);
  return discovered == expected ? 0 : 1;
}
